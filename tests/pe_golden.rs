//! Golden-vector tests for the six Figure 3 PE templates.
//!
//! Each test builds one PE from an explicit [`PeSpec`], drives it
//! cycle-by-cycle through its protocol, and compares *every* observed output
//! against a committed per-cycle vector. The vectors are derived by hand from
//! the template semantics in `crates/hw/src/pe.rs`:
//!
//! - registers sample on `step()` when their enable is high;
//! - combinational nets (the `product`, reduce-out) follow pokes within the
//!   same cycle;
//! - values are read back after the interpreter settles, so a "pre" read
//!   (after poking, before stepping) sees combinational results and the
//!   registers' previous state, while a "post" read sees the freshly
//!   clocked state.
//!
//! Both interpreter engines (compiled bytecode and the tree-walking
//! reference) must reproduce the same vectors.

use tensorlib::hw::interp::{elaborate, FlatDesign, Interpreter};
use tensorlib::hw::pe::{build_pe, PeIoKind, PeSpec, PeTensorSpec};
use tensorlib::ir::DataType;

fn pe_spec(kinds: &[(&str, PeIoKind)]) -> PeSpec {
    PeSpec {
        name: "pe".into(),
        datatype: DataType::Int16,
        tensors: kinds
            .iter()
            .map(|(n, k)| PeTensorSpec {
                tensor: n.to_string(),
                kind: *k,
                delay: 1,
            })
            .collect(),
    }
}

fn flat_pe(kinds: &[(&str, PeIoKind)]) -> FlatDesign {
    let m = build_pe(&pe_spec(kinds));
    m.validate().expect("PE module validates");
    elaborate(&[m], &[], "pe").expect("PE elaborates")
}

/// Runs `scenario` under both interpreter engines.
fn both_engines(flat: FlatDesign, scenario: impl Fn(Interpreter, &str)) {
    scenario(Interpreter::new(flat.clone()), "compiled");
    scenario(Interpreter::new_tree_walking(flat), "tree-walking");
}

fn as_u16(v: i64) -> u64 {
    (v as u64) & 0xFFFF
}

fn as_u32(v: i64) -> u64 {
    (v as u64) & 0xFFFF_FFFF
}

/// (a) systolic-in: the operand is used the cycle it arrives and forwarded
/// through one en-gated register.
#[test]
fn systolic_in_golden() {
    both_engines(
        flat_pe(&[("a", PeIoKind::SystolicIn), ("c", PeIoKind::ReduceOut)]),
        |mut sim, engine| {
            // Cycle-indexed: (en, a_in) → expected (c_out before step,
            // a_out before step, a_out after step).
            //
            // c_out = product = sext(a_in) combinationally; a_out shows the
            // previous captured value before the step and the newly captured
            // one after; en=0 freezes the hop register.
            let vectors: &[(u64, i64, i64, i64, i64)] = &[
                (1, 5, 5, 0, 5),
                (1, 7, 7, 5, 7),
                (1, -9, -9, 7, -9),
                (0, 42, 42, -9, -9), // en low: product follows, hop holds
                (1, 3, 3, -9, 3),
            ];
            for (t, &(en, a, c_pre, a_pre, a_post)) in vectors.iter().enumerate() {
                sim.poke_many([("en", en), ("a_in", as_u16(a))]);
                assert_eq!(sim.peek("c_out"), as_u32(c_pre), "{engine} c_out pre t={t}");
                assert_eq!(sim.peek("a_out"), as_u16(a_pre), "{engine} a_out pre t={t}");
                sim.step();
                assert_eq!(sim.peek("a_out"), as_u16(a_post), "{engine} a_out post t={t}");
            }
        },
    );
}

/// (b) systolic-out: partial sums accumulate the local product into the
/// incoming chain value and forward one register later.
#[test]
fn systolic_out_golden() {
    both_engines(
        flat_pe(&[("a", PeIoKind::DirectIn), ("c", PeIoKind::SystolicOut)]),
        |mut sim, engine| {
            // (en, a_in, c_in) → c_out after step = c_in + a_in when enabled.
            let vectors: &[(u64, i64, i64, i64)] = &[
                (1, 3, 100, 103),
                (1, -4, 103, 99),
                (0, 50, 0, 99), // en low: psum register holds
                (1, 1, 99, 100),
            ];
            for (t, &(en, a, c_in, c_post)) in vectors.iter().enumerate() {
                sim.poke_many([("en", en), ("a_in", as_u16(a)), ("c_in", as_u32(c_in))]);
                sim.step();
                assert_eq!(sim.peek("c_out"), as_u32(c_post), "{engine} c_out t={t}");
            }
        },
    );
}

/// (c) stationary-in: double-buffered ping-pong — compute from one buffer
/// while the load chain refills the other, `phase` selecting which is which.
#[test]
fn stationary_in_golden() {
    both_engines(
        flat_pe(&[("a", PeIoKind::StationaryIn), ("c", PeIoKind::ReduceOut)]),
        |mut sim, engine| {
            // phase=0 computes from buf0 and loads buf1 (chain-out shows
            // buf1); phase=1 computes from buf1 and loads buf0.
            // (load_en, phase, a_in) → (c_out after step, a_out after step).
            let vectors: &[(u64, u64, i64, i64, i64)] = &[
                (1, 0, 11, 0, 11),  // buf1 <- 11; compute side (buf0) still 0
                (0, 1, 0, 11, 0),   // swap phases: now compute from buf1
                (1, 1, 22, 11, 22), // buf0 <- 22 while buf1 keeps computing
                (0, 0, 0, 22, 11),  // swap back: compute from buf0 = 22
            ];
            sim.poke("en", 1);
            for (t, &(load_en, phase, a, c_post, a_post)) in vectors.iter().enumerate() {
                sim.poke_many([
                    ("load_en", load_en),
                    ("phase", phase),
                    ("a_in", as_u16(a)),
                ]);
                sim.step();
                assert_eq!(sim.peek("c_out"), as_u32(c_post), "{engine} c_out t={t}");
                assert_eq!(sim.peek("a_out"), as_u16(a_post), "{engine} a_out t={t}");
            }
        },
    );
}

/// (d) stationary-out: accumulate in place; `swap` restarts the accumulator
/// and captures the finished tile into the transfer register, which then
/// shifts along the drain chain under `drain_en`.
#[test]
fn stationary_out_golden() {
    both_engines(
        flat_pe(&[
            ("a", PeIoKind::DirectIn),
            ("b", PeIoKind::DirectIn),
            ("c", PeIoKind::StationaryOut),
        ]),
        |mut sim, engine| {
            // (en, swap, drain_en, a, b, c_in) → c_out after step.
            let vectors: &[(u64, u64, u64, i64, i64, i64, i64)] = &[
                (1, 0, 0, 2, 3, 0, 0),     // acc = 6
                (1, 0, 0, 4, 5, 0, 0),     // acc = 26
                (1, 0, 0, 10, 10, 0, 0),   // acc = 126
                (1, 1, 0, 1, 1, 0, 126),   // swap: xfer <- 126, acc restarts at 1
                (1, 0, 1, 0, 7, 999, 999), // drain: xfer <- c_in; acc = 1 + 0
                (1, 1, 0, 0, 0, 0, 1),     // next swap exposes the restarted acc
            ];
            for (t, &(en, swap, drain, a, b, c_in, c_post)) in vectors.iter().enumerate() {
                sim.poke_many([
                    ("en", en),
                    ("swap", swap),
                    ("drain_en", drain),
                    ("a_in", as_u16(a)),
                    ("b_in", as_u16(b)),
                    ("c_in", as_u32(c_in)),
                ]);
                sim.step();
                assert_eq!(sim.peek("c_out"), as_u32(c_post), "{engine} c_out t={t}");
            }
        },
    );
}

/// (e) direct-in: the streamed operand is consumed combinationally — no
/// registers, same-cycle visibility, correct sign extension into the
/// accumulator width.
#[test]
fn direct_in_golden() {
    both_engines(
        flat_pe(&[
            ("a", PeIoKind::DirectIn),
            ("b", PeIoKind::DirectIn),
            ("c", PeIoKind::ReduceOut),
        ]),
        |mut sim, engine| {
            // (a, b) → c_out in the same cycle, no step needed.
            let vectors: &[(i64, i64, i64)] = &[
                (3, 7, 21),
                (-3, 7, -21),
                (-3, -7, 21),
                (300, 300, 90_000), // exceeds 16 bits: lives in the 32-bit product
                (0, 12345, 0),
            ];
            for (t, &(a, b, c)) in vectors.iter().enumerate() {
                sim.poke_many([("a_in", as_u16(a)), ("b_in", as_u16(b))]);
                assert_eq!(sim.peek("c_out"), as_u32(c), "{engine} c_out t={t}");
            }
        },
    );
}

/// (f) reduce-out: the product is exposed combinationally to the array-level
/// reduction tree — stepping the clock must not change it.
#[test]
fn reduce_out_golden() {
    both_engines(
        flat_pe(&[("a", PeIoKind::DirectIn), ("c", PeIoKind::ReduceOut)]),
        |mut sim, engine| {
            let vectors: &[(i64, i64)] = &[(9, 9), (-32768, -32768), (32767, 32767)];
            for (t, &(a, c)) in vectors.iter().enumerate() {
                sim.poke("a_in", as_u16(a));
                assert_eq!(sim.peek("c_out"), as_u32(c), "{engine} pre-step t={t}");
                sim.step();
                assert_eq!(
                    sim.peek("c_out"),
                    as_u32(c),
                    "{engine} post-step t={t}: reduce-out is stateless"
                );
            }
        },
    );
}

/// Bonus template: direct-out registers the product once per enabled cycle
/// and writes it straight toward the tensor's bank.
#[test]
fn direct_out_golden() {
    both_engines(
        flat_pe(&[
            ("a", PeIoKind::DirectIn),
            ("b", PeIoKind::DirectIn),
            ("c", PeIoKind::DirectOut),
        ]),
        |mut sim, engine| {
            // (en, a, b) → c_out after step.
            let vectors: &[(u64, i64, i64, i64)] = &[
                (1, 6, 7, 42),
                (0, 8, 8, 42), // en low: result register holds
                (1, -2, 5, -10),
            ];
            for (t, &(en, a, b, c_post)) in vectors.iter().enumerate() {
                sim.poke_many([("en", en), ("a_in", as_u16(a)), ("b_in", as_u16(b))]);
                sim.step();
                assert_eq!(sim.peek("c_out"), as_u32(c_post), "{engine} c_out t={t}");
            }
        },
    );
}

//! Exact rational linear algebra for space-time transformation analysis.
//!
//! Space-Time Transformation (STT) analysis manipulates small integer matrices:
//! inverting the transformation matrix `T`, computing null spaces of access
//! matrices, and projecting reuse directions between the iteration domain and
//! the space-time domain. Floating point is unacceptable here — a reuse vector
//! either is or is not zero — so everything in this crate is computed over
//! exact rationals ([`Frac`], an `i128` fraction kept in lowest terms).
//!
//! The two workhorse types are:
//!
//! - [`Frac`]: an exact rational number with full arithmetic operator support.
//! - [`Mat`]: a dense row-major matrix of [`Frac`] with rank, inverse,
//!   null-space, pseudo-inverse, and Gauss–Jordan elimination.
//!
//! # Examples
//!
//! Invert the classic output-stationary STT matrix and recover a loop point
//! from a space-time point:
//!
//! ```
//! use tensorlib_linalg::{Mat, Frac};
//!
//! // T maps (i, j, k) -> (p1, p2, t) = (i, j, i + j + k).
//! let t = Mat::from_i64(&[&[1, 0, 0], &[0, 1, 0], &[1, 1, 1]]);
//! let t_inv = t.inverse().expect("T is full rank");
//! let st = Mat::col_from_i64(&[1, 2, 6]);
//! let x = &t_inv * &st;
//! assert_eq!(x.col_to_i64().unwrap(), vec![1, 2, 3]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod frac;
mod mat;
pub mod par;
pub mod rng;
mod solve;

pub use frac::{Frac, ParseFracError};
pub use mat::{Mat, MatShapeError};
pub use solve::{gcd_i128, lcm_i128, primitive_integer_vector};

//! Property-based tests over the whole pipeline: any valid (kernel,
//! selection, unimodular STT) combination that generates hardware must
//! simulate bit-exactly; classification must be stable under mapping-
//! preserving symmetries.

use proptest::prelude::*;
use tensorlib::dataflow::{classify_tensor, Dataflow, FlowClass, LoopSelection, Stt};
use tensorlib::hw::design::{generate, HwConfig};
use tensorlib::hw::ArrayConfig;
use tensorlib::ir::{workloads, Kernel, TensorRole};
use tensorlib::linalg::Mat;
use tensorlib::sim::functional;

/// Small kernels covering 2- and 3-input shapes and affine (conv) accesses.
fn kernels() -> Vec<Kernel> {
    vec![
        workloads::gemm(6, 6, 6),
        workloads::batched_gemv(5, 5, 5),
        workloads::conv2d(3, 3, 5, 5, 2, 2),
        workloads::depthwise_conv(3, 5, 5, 2, 2),
        workloads::mttkrp(4, 4, 4, 4),
        workloads::ttmc(3, 3, 3, 3, 3),
    ]
}

fn gcd(a: i64, b: i64) -> i64 {
    let (mut a, mut b) = (a.abs(), b.abs());
    while b != 0 {
        (a, b) = (b, a % b);
    }
    a
}

/// Divides out the content, leaving the shortest integer vector on the line.
fn primitive3(v: [i64; 3]) -> [i64; 3] {
    let g = gcd(gcd(v[0], v[1]), v[2]);
    assert!(g != 0, "primitive3 needs a nonzero vector");
    [v[0] / g, v[1] / g, v[2] / g]
}

/// Same orientation rule as the classifier: dt > 0 preferred, else the
/// spatial part lexicographically positive.
fn orient3(v: [i64; 3]) -> [i64; 3] {
    let flip = if v[2] != 0 {
        v[2] < 0
    } else if v[0] != 0 {
        v[0] < 0
    } else {
        v[1] < 0
    };
    if flip {
        [-v[0], -v[1], -v[2]]
    } else {
        v
    }
}

/// A 2×3 access matrix whose null space is exactly span{r}.
fn rank1_access(r: [i64; 3]) -> Mat {
    let rows: [[i64; 3]; 2] = if r[0] != 0 {
        [[r[1], -r[0], 0], [r[2], 0, -r[0]]]
    } else if r[1] != 0 {
        [[1, 0, 0], [0, r[2], -r[1]]]
    } else {
        [[1, 0, 0], [0, 1, 0]]
    };
    Mat::from_i64(&[&rows[0][..], &rows[1][..]])
}

/// Two independent integer vectors spanning the plane w⊥.
fn plane_basis(w: [i64; 3]) -> ([i64; 3], [i64; 3]) {
    if w[0] != 0 {
        ([w[1], -w[0], 0], [w[2], 0, -w[0]])
    } else if w[1] != 0 {
        ([1, 0, 0], [0, w[2], -w[1]])
    } else {
        ([1, 0, 0], [0, 1, 0])
    }
}

/// A primitive, oriented spatial direction (dt = 0).
fn arb_spatial() -> impl Strategy<Value = [i64; 3]> {
    proptest::collection::vec(-2i64..=2, 2).prop_filter_map("nonzero spatial", |v| {
        ((v[0], v[1]) != (0, 0)).then(|| orient3(primitive3([v[0], v[1], 0])))
    })
}

fn arb_primitive() -> impl Strategy<Value = [i64; 3]> {
    proptest::collection::vec(-2i64..=2, 3).prop_filter_map("nonzero", |v| {
        let v = [v[0], v[1], v[2]];
        (v != [0, 0, 0]).then(|| primitive3(v))
    })
}

fn arb_unimodular() -> impl Strategy<Value = Stt> {
    proptest::collection::vec(-1i64..=1, 9).prop_filter_map("unimodular", |v| {
        let rows = [
            [v[0], v[1], v[2]],
            [v[3], v[4], v[5]],
            [v[6], v[7], v[8]],
        ];
        Stt::from_rows(rows).ok().filter(Stt::is_unimodular)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn any_generated_design_simulates_bit_exactly(
        kernel_idx in 0usize..6,
        stt in arb_unimodular(),
        sel_seed in any::<u64>(),
        data_seed in any::<u64>(),
    ) {
        let kernel = kernels().swap_remove(kernel_idx);
        let n = kernel.loop_nest().len();
        // Derive a selection deterministically from the seed.
        let mut idx: Vec<usize> = (0..n).collect();
        let a = (sel_seed as usize) % n;
        idx.swap(0, a);
        let b = 1 + ((sel_seed / 7) as usize) % (n - 1);
        idx.swap(1, b);
        let sel = LoopSelection::by_indices(&kernel, [idx[0], idx[1], idx[2]]).unwrap();
        let df = Dataflow::analyze(&kernel, sel, stt).unwrap();
        let cfg = HwConfig { array: ArrayConfig::square(3), ..HwConfig::default() };
        // Not every reuse vector is wireable; that is a documented error,
        // not a failure.
        if let Ok(design) = generate(&df, &cfg) {
            design.validate().expect("generated designs validate");
            let run = functional::simulate(&design, &kernel, data_seed)
                .unwrap_or_else(|e| panic!("{}: {e}", df.name()));
            prop_assert!(run.matches_reference);
            prop_assert_eq!(run.macs_executed, kernel.macs());
        }
    }

    #[test]
    fn negating_stt_preserves_dataflow_letters(stt in arb_unimodular()) {
        // -T maps the same reuse subspaces, so classification is identical.
        let gemm = workloads::gemm(8, 8, 8);
        let sel = LoopSelection::by_names(&gemm, ["m", "n", "k"]).unwrap();
        let rows = *stt.rows();
        let neg = Stt::from_rows([
            [-rows[0][0], -rows[0][1], -rows[0][2]],
            [-rows[1][0], -rows[1][1], -rows[1][2]],
            [-rows[2][0], -rows[2][1], -rows[2][2]],
        ]).unwrap();
        let a = Dataflow::analyze(&gemm, sel.clone(), stt).unwrap();
        let b = Dataflow::analyze(&gemm, sel, neg).unwrap();
        prop_assert_eq!(a.letters(), b.letters());
    }

    #[test]
    fn swapping_space_rows_transposes_but_preserves_classes(stt in arb_unimodular()) {
        // Exchanging p1 and p2 transposes the array; every per-tensor class
        // keeps its letter.
        let gemm = workloads::gemm(8, 8, 8);
        let sel = LoopSelection::by_names(&gemm, ["m", "n", "k"]).unwrap();
        let rows = *stt.rows();
        let swapped = Stt::from_rows([rows[1], rows[0], rows[2]]).unwrap();
        let a = Dataflow::analyze(&gemm, sel.clone(), stt).unwrap();
        let b = Dataflow::analyze(&gemm, sel, swapped).unwrap();
        prop_assert_eq!(a.letters(), b.letters());
    }

    // ---- Table I: the classifier against by-construction ground truth ----
    //
    // Rather than sampling random access matrices and trusting the
    // classifier twice, these tests *construct* access matrices whose reuse
    // subspace is known exactly — a chosen line or plane in loop space — and
    // check that `classify_tensor` lands on the Table I row that the STT
    // image of that subspace dictates.

    #[test]
    fn table1_rank0_is_always_unicast(stt in arb_unimodular(), access in arb_unimodular()) {
        // A full-rank access matrix has an empty null space: no reuse, so
        // every STT and role must classify as unicast.
        let r = access.rows();
        let a_sel = Mat::from_i64(&[&r[0][..], &r[1][..], &r[2][..]]);
        for role in [TensorRole::Input, TensorRole::Output] {
            prop_assert_eq!(classify_tensor(&a_sel, &stt, role), FlowClass::Unicast);
        }
    }

    #[test]
    fn table1_rank1_matches_the_reuse_direction(
        stt in arb_unimodular(),
        r in arb_primitive(),
    ) {
        // The access matrix is built so its null space is exactly span{r};
        // the space-time reuse direction is then T·r, and Table I reads off
        // the class from its zero pattern.
        let a_sel = rank1_access(r);
        let v = orient3(primitive3(stt.apply(&r)));
        let (dp, dt) = ([v[0], v[1]], v[2]);
        for role in [TensorRole::Input, TensorRole::Output] {
            let want = match (dp == [0, 0], dt == 0) {
                (true, false) => FlowClass::Stationary { dt },
                (false, false) => FlowClass::Systolic { dp, dt },
                (false, true) => match role {
                    TensorRole::Input => FlowClass::Multicast { dp },
                    TensorRole::Output => FlowClass::ReductionTree { dp },
                },
                (true, true) => unreachable!("primitive vectors are nonzero"),
            };
            prop_assert_eq!(
                classify_tensor(&a_sel, &stt, role),
                want,
                "r={:?} T·r={:?} role={}", r, v, role
            );
        }
    }

    #[test]
    fn table1_reduction_tree_on_outputs_multicast_on_inputs(
        stt in arb_unimodular(),
        d in arb_spatial(),
    ) {
        // Target a *spatial* reuse direction d (dt = 0) directly: pulling it
        // back through T⁻¹ gives the loop-space line whose image is d, so
        // the classified dp is forced. Outputs must reduce through a tree,
        // inputs must multicast — the asymmetric row of Table I.
        let r = stt.unapply(&d).expect("unimodular STTs invert over the integers");
        let a_sel = rank1_access(primitive3(r));
        let dp = [d[0], d[1]];
        prop_assert_eq!(
            classify_tensor(&a_sel, &stt, TensorRole::Output),
            FlowClass::ReductionTree { dp }
        );
        prop_assert_eq!(
            classify_tensor(&a_sel, &stt, TensorRole::Input),
            FlowClass::Multicast { dp }
        );
    }

    #[test]
    fn table1_rank2_splits_on_the_time_axis(
        stt in arb_unimodular(),
        w in arb_primitive(),
    ) {
        // A single access row w leaves the whole plane w⊥ as reuse. The
        // class is decided by how T·(w⊥) meets the time axis: perpendicular
        // → broadcast; containing it → multicast+stationary; oblique →
        // systolic+multicast. All three predicates are computable without
        // the classifier, as is the (canonical) multicast line — the
        // plane's intersection with {dt = 0}.
        let a_sel = Mat::from_i64(&[&w[..]]);
        let (u1, u2) = plane_basis(w);
        let s1 = stt.apply(&u1);
        let s2 = stt.apply(&u2);
        let tinv_e3 = stt.unapply(&[0, 0, 1]).expect("unimodular");
        let contains_t_axis =
            w[0] * tinv_e3[0] + w[1] * tinv_e3[1] + w[2] * tinv_e3[2] == 0;
        for role in [TensorRole::Input, TensorRole::Output] {
            let got = classify_tensor(&a_sel, &stt, role);
            if s1[2] == 0 && s2[2] == 0 {
                prop_assert!(
                    matches!(got, FlowClass::Broadcast { .. }),
                    "plane ⊥ t-axis must broadcast, got {}", got
                );
                continue;
            }
            let line = orient3(primitive3([
                s1[0] * s2[2] - s2[0] * s1[2],
                s1[1] * s2[2] - s2[1] * s1[2],
                0,
            ]));
            let dp = [line[0], line[1]];
            match got {
                FlowClass::MulticastStationary { dp: got_dp } => {
                    prop_assert!(contains_t_axis, "w={:?}: plane misses t-axis", w);
                    prop_assert_eq!(got_dp, dp);
                }
                FlowClass::SystolicMulticast { multicast_dp, systolic_dt, .. } => {
                    prop_assert!(!contains_t_axis, "w={:?}: plane contains t-axis", w);
                    prop_assert_eq!(multicast_dp, dp);
                    prop_assert!(systolic_dt != 0);
                }
                other => prop_assert!(false, "expected a rank-2 class, got {other}"),
            }
        }
    }

    #[test]
    fn selected_extent_permutation_matches_column_permutation(
        stt in arb_unimodular(),
    ) {
        // Permuting the selection order while permuting T's columns the same
        // way is a no-op on the analysis.
        let gemm = workloads::gemm(8, 8, 8);
        let sel_a = LoopSelection::by_names(&gemm, ["m", "n", "k"]).unwrap();
        let sel_b = LoopSelection::by_names(&gemm, ["k", "m", "n"]).unwrap();
        let r = *stt.rows();
        // Columns reordered to match selection order (k, m, n).
        let permuted = Stt::from_rows([
            [r[0][2], r[0][0], r[0][1]],
            [r[1][2], r[1][0], r[1][1]],
            [r[2][2], r[2][0], r[2][1]],
        ]).unwrap();
        let a = Dataflow::analyze(&gemm, sel_a, stt).unwrap();
        let b = Dataflow::analyze(&gemm, sel_b, permuted).unwrap();
        prop_assert_eq!(a.letters(), b.letters());
        for (fa, fb) in a.flows().iter().zip(b.flows()) {
            prop_assert_eq!(&fa.class, &fb.class, "tensor {}", fa.tensor);
        }
    }
}

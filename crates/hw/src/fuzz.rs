//! Seeded netlist fuzzing: a random-but-valid module generator, a
//! differential oracle over the two interpreter engines, and an automatic
//! shrinker.
//!
//! The generator draws width-respecting expression trees, registers, and
//! child instances from a [`SplitMix64`] stream, producing netlists that are
//! valid by construction (single driver per net, acyclic combinational
//! logic, width-coherent assignments). Each generated netlist then runs
//! through the oracle stack:
//!
//! 1. [`Module::validate`] on every module — the generator and the validator
//!    keep each other honest: a rejection of a generated netlist is a bug in
//!    one of them.
//! 2. Verilog emission ([`crate::verilog::emit_module`]) with a structural
//!    lint — a part-select applied to a parenthesized expression (`)[`) is
//!    illegal Verilog and exactly the class of bug the emitter's hoisting
//!    pass exists to prevent.
//! 3. [`elaborate`] as a crash oracle.
//! 4. A lock-step differential run of the tree-walking interpreter against
//!    the compiled bytecode interpreter: identical seeded stimulus every
//!    cycle, every flat net compared after every step.
//! 5. Interchange round trips ([`check_text_roundtrip`] /
//!    [`check_yosys_roundtrip`]): the textual and Yosys-JSON forms must
//!    reproduce the design exactly — structural identity, byte-identical
//!    re-emission, and byte-identical compiled bytecode.
//!
//! Any failure can be handed to [`shrink_netlist`], which greedily deletes
//! assigns, registers, instances, and ports (garbage-collecting unreferenced
//! nets and child modules) while the failure reproduces, and
//! [`rust_repro`] renders the survivor as a paste-ready regression test.
//!
//! Seed discipline: every random decision derives from the one `u64` seed,
//! so a finding is its seed — reports need carry nothing else to reproduce.

use serde::Serialize;

use tensorlib_linalg::rng::SplitMix64;
use crate::batch::BatchSim;
use crate::interp::{elaborate, Interpreter};
use crate::netlist::{BinOp, Dir, Expr, Module, NetId};
use crate::opt::{self, gc_children, gc_nets, GcPorts, OptOptions, Parts};
use crate::verilog::emit_module;

/// Knobs for the random netlist generator and differential runner.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct NetlistFuzzConfig {
    /// Maximum top-level input ports (at least 1 is always generated).
    pub max_inputs: usize,
    /// Maximum driven (non-input) nets in the top module.
    pub max_driven: usize,
    /// Maximum expression tree depth.
    pub max_expr_depth: u32,
    /// Maximum child-module instances.
    pub max_instances: usize,
    /// Cycles each differential run steps both engines.
    pub cycles: u64,
}

impl Default for NetlistFuzzConfig {
    fn default() -> NetlistFuzzConfig {
        NetlistFuzzConfig {
            max_inputs: 3,
            max_driven: 7,
            max_expr_depth: 3,
            max_instances: 2,
            cycles: 16,
        }
    }
}

/// Which oracle a netlist sample failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum NetlistFailureKind {
    /// `Module::validate` rejected a generated (valid-by-construction)
    /// netlist.
    Validate,
    /// Elaboration of a validated netlist failed.
    Elaborate,
    /// Emitted Verilog contains an illegal construct.
    Emission,
    /// The two interpreter engines disagreed on a net value.
    Mismatch,
    /// The lane-batched engine disagreed with a scalar reference lane.
    BatchMismatch,
    /// The optimized netlist misbehaved: it failed validation, emission, or
    /// elaboration, or any engine running it diverged from the unoptimized
    /// reference on a top-level output.
    OptMismatch,
    /// The textual-netlist round trip broke: the emitted text failed to
    /// parse, the parsed document differed structurally from the original,
    /// re-emission was not byte-identical, or the compiled bytecode of the
    /// round-tripped design diverged.
    TextRoundtrip,
    /// The Yosys-JSON round trip broke (same contract as [`TextRoundtrip`]
    /// over the JSON interchange path).
    ///
    /// [`TextRoundtrip`]: NetlistFailureKind::TextRoundtrip
    YosysRoundtrip,
}

impl NetlistFailureKind {
    /// Stable lower-case label for reports.
    pub fn label(self) -> &'static str {
        match self {
            NetlistFailureKind::Validate => "validate",
            NetlistFailureKind::Elaborate => "elaborate",
            NetlistFailureKind::Emission => "emission",
            NetlistFailureKind::Mismatch => "mismatch",
            NetlistFailureKind::BatchMismatch => "batch_mismatch",
            NetlistFailureKind::OptMismatch => "opt_mismatch",
            NetlistFailureKind::TextRoundtrip => "text_roundtrip",
            NetlistFailureKind::YosysRoundtrip => "yosys_roundtrip",
        }
    }
}

/// A failed oracle check for one netlist sample.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct NetlistFailure {
    /// Which oracle failed.
    pub kind: NetlistFailureKind,
    /// Human-readable specifics (net, cycle, values, error text).
    pub detail: String,
}

// ---------------------------------------------------------------------------
// Generator
// ---------------------------------------------------------------------------

fn rand_width(rng: &mut SplitMix64) -> u32 {
    1 + rng.below(16) as u32
}

fn mask(width: u32) -> u64 {
    if width >= 64 {
        u64::MAX
    } else {
        (1u64 << width) - 1
    }
}

/// Coerces `e` (of width `from`) to exactly `to` bits, via a seeded choice
/// of zero- or sign-extension when widths differ.
fn coerce(rng: &mut SplitMix64, e: Expr, from: u32, to: u32) -> Expr {
    if from == to {
        e
    } else if rng.below(2) == 0 {
        e.resize(to)
    } else {
        e.sext(to)
    }
}

/// Generates a random expression over `avail` (driven `(net, width)` pairs).
/// Returns the expression and its width.
fn gen_expr(rng: &mut SplitMix64, avail: &[(NetId, u32)], depth: u32) -> (Expr, u32) {
    if depth == 0 || rng.below(3) == 0 {
        // Leaf: a net read or a masked literal.
        if !avail.is_empty() && rng.below(4) != 0 {
            let (id, w) = avail[rng.below(avail.len() as u64) as usize];
            return (Expr::net(id), w);
        }
        let w = rand_width(rng);
        return (Expr::lit(rng.next_u64() & mask(w), w), w);
    }
    match rng.below(4) {
        0 => {
            let (e, w) = gen_expr(rng, avail, depth - 1);
            (Expr::Not(Box::new(e)), w)
        }
        1 => {
            // Resize / sign-extend of an arbitrary subexpression — the
            // compound-operand case the Verilog emitter must hoist.
            let (e, w) = gen_expr(rng, avail, depth - 1);
            let to = rand_width(rng);
            (coerce(rng, e, w, to), if w == to { w } else { to })
        }
        2 => {
            let (sel, sw) = gen_expr(rng, avail, depth - 1);
            let (a, aw) = gen_expr(rng, avail, depth - 1);
            let (b, bw) = gen_expr(rng, avail, depth - 1);
            let w = aw.max(bw);
            let sel = coerce(rng, sel, sw, 1);
            (
                Expr::mux(sel, coerce(rng, a, aw, w), coerce(rng, b, bw, w)),
                w,
            )
        }
        _ => {
            let op = match rng.below(8) {
                0 => BinOp::Add,
                1 => BinOp::Sub,
                2 => BinOp::Mul,
                3 => BinOp::And,
                4 => BinOp::Or,
                5 => BinOp::Xor,
                6 => BinOp::Eq,
                _ => BinOp::Lt,
            };
            let (a, aw) = gen_expr(rng, avail, depth - 1);
            let (b, bw) = gen_expr(rng, avail, depth - 1);
            let w = match op {
                BinOp::Eq | BinOp::Lt => 1,
                _ => aw.max(bw),
            };
            (Expr::Bin(op, Box::new(a), Box::new(b)), w)
        }
    }
}

/// Generates a random, valid-by-construction netlist for `seed`: a top
/// module plus any child modules it instantiates. Returns the module list
/// and the top module's name.
///
/// Validity invariants the generator maintains: every net has exactly one
/// driver; combinational assigns read only nets declared (and driven)
/// earlier, so the logic is acyclic even across instance boundaries;
/// expression widths are coerced to their target's width; registers may read
/// anything (they break timing paths).
pub fn gen_netlist(seed: u64, cfg: &NetlistFuzzConfig) -> (Vec<Module>, String) {
    let mut rng = SplitMix64::new(seed);
    let top_name = format!("fz_top_{seed}");
    let mut m = Module::new(&top_name);
    let mut children: Vec<Module> = Vec::new();

    let n_in = 1 + rng.below(cfg.max_inputs.max(1) as u64) as usize;
    // Nets usable as combinational reads, in declaration (= topological)
    // order.
    let mut avail: Vec<(NetId, u32)> = Vec::new();
    for i in 0..n_in {
        let w = rand_width(&mut rng);
        avail.push((m.input(format!("in{i}"), w), w));
    }

    let n_driven = 1 + rng.below(cfg.max_driven.max(1) as u64) as usize;
    let mut inst_budget = cfg.max_instances;
    for i in 0..n_driven {
        let w = rand_width(&mut rng);
        // The last driven net is always an output so the module is
        // observable end to end.
        let is_out = i + 1 == n_driven || rng.below(3) == 0;
        let declare = |m: &mut Module| {
            if is_out {
                m.output(format!("n{i}"), w)
            } else {
                m.net(format!("n{i}"), w)
            }
        };
        match rng.below(4) {
            3 if inst_budget > 0 => {
                // Drive via a child instance: build a small combinational
                // child whose input widths match nets we already have.
                inst_budget -= 1;
                let n_cin = 1 + rng.below(2) as usize;
                let picks: Vec<(NetId, u32)> = (0..n_cin)
                    .map(|_| avail[rng.below(avail.len() as u64) as usize])
                    .collect();
                let child_name = format!("fz_child_{seed}_{}", children.len());
                let mut c = Module::new(&child_name);
                let mut c_avail = Vec::new();
                for (j, (_, cw)) in picks.iter().enumerate() {
                    c_avail.push((c.input(format!("cin{j}"), *cw), *cw));
                }
                let cout = c.output("cout", w);
                let (e, ew) = gen_expr(&mut rng, &c_avail, cfg.max_expr_depth);
                let e = coerce(&mut rng, e, ew, w);
                c.assign(cout, e);
                children.push(c);
                let id = declare(&mut m);
                let mut conns: Vec<(String, NetId)> = picks
                    .iter()
                    .enumerate()
                    .map(|(j, (pid, _))| (format!("cin{j}"), *pid))
                    .collect();
                conns.push(("cout".into(), id));
                m.instance(child_name, format!("u{i}"), conns);
                avail.push((id, w));
            }
            2 => {
                // A register: may read anything already declared, itself
                // included (accumulator feedback is legal).
                let id = declare(&mut m);
                let mut reg_avail = avail.clone();
                reg_avail.push((id, w));
                let (next, nw) = gen_expr(&mut rng, &reg_avail, cfg.max_expr_depth);
                let next = coerce(&mut rng, next, nw, w);
                let enable = if rng.below(2) == 0 {
                    let (e, ew) = gen_expr(&mut rng, &reg_avail, 1);
                    Some(coerce(&mut rng, e, ew, 1))
                } else {
                    None
                };
                let init = rng.next_u64() & mask(w);
                m.reg(id, next, enable, init);
                avail.push((id, w));
            }
            _ => {
                // A combinational assign over strictly earlier nets.
                let (e, ew) = gen_expr(&mut rng, &avail, cfg.max_expr_depth);
                let e = coerce(&mut rng, e, ew, w);
                let id = declare(&mut m);
                m.assign(id, e);
                avail.push((id, w));
            }
        }
    }

    children.push(m);
    (children, top_name)
}

// ---------------------------------------------------------------------------
// Differential oracle
// ---------------------------------------------------------------------------

/// Runs the full oracle stack on one netlist.
///
/// `perturb_input` (an index into the top module's input ports) injects an
/// artificial engine divergence: the tree-walking run sees that input's
/// low bit flipped every cycle. It exists to exercise the mismatch path and
/// the shrinker; real campaigns pass `None`.
///
/// # Errors
///
/// Returns the first [`NetlistFailure`] any oracle reports.
pub fn check_netlist(
    modules: &[Module],
    top: &str,
    seed: u64,
    cycles: u64,
    perturb_input: Option<usize>,
) -> Result<(), NetlistFailure> {
    for m in modules {
        m.validate().map_err(|e| NetlistFailure {
            kind: NetlistFailureKind::Validate,
            detail: e.to_string(),
        })?;
    }
    for m in modules {
        let v = emit_module(m);
        if v.contains(")[") {
            return Err(NetlistFailure {
                kind: NetlistFailureKind::Emission,
                detail: format!(
                    "module {:?} emits a part-select of a compound expression",
                    m.name()
                ),
            });
        }
    }
    let flat = elaborate(modules, &[], top).map_err(|e| NetlistFailure {
        kind: NetlistFailureKind::Elaborate,
        detail: e.to_string(),
    })?;
    let net_names: Vec<String> = flat.nets().iter().map(|n| n.name.clone()).collect();
    let inputs: Vec<String> = flat
        .ports()
        .iter()
        .filter(|(_, d)| *d == Dir::Input)
        .map(|(id, _)| flat.nets()[*id].name.clone())
        .collect();
    let mut compiled = Interpreter::new(flat.clone());
    let mut tree = Interpreter::new_tree_walking(flat);
    debug_assert!(compiled.is_compiled() && !tree.is_compiled());

    // Stimulus stream is decoupled from the structure stream so the same
    // seed always drives the same values.
    let mut rng = SplitMix64::new(seed ^ 0xD1F7_0000_0000_0001);
    for cycle in 0..cycles {
        for (i, name) in inputs.iter().enumerate() {
            let v = rng.next_u64();
            compiled.poke(name, v);
            let tv = if perturb_input == Some(i) { v ^ 1 } else { v };
            tree.poke(name, tv);
        }
        compiled.step();
        tree.step();
        for name in &net_names {
            let c = compiled.peek(name);
            let t = tree.peek(name);
            if c != t {
                return Err(NetlistFailure {
                    kind: NetlistFailureKind::Mismatch,
                    detail: format!(
                        "net {name:?} diverged at cycle {cycle}: compiled={c} tree={t}"
                    ),
                });
            }
        }
    }
    Ok(())
}

/// Lane count [`assert_engines_agree`] uses for its built-in batched oracle:
/// wide enough to exercise real lane divergence, cheap enough for
/// per-regression-test use.
pub const DEFAULT_ORACLE_LANES: usize = 4;

/// Lane-vs-scalar differential oracle: runs one [`BatchSim`] of `lanes`
/// lanes against `lanes` independent scalar [`Interpreter`]s, each lane
/// driven by its own seeded stimulus stream (lane 0's stream is exactly the
/// scalar campaign stream for `seed`, so scalar findings reproduce on lane
/// 0). Every flat net is compared on every lane after every cycle.
///
/// # Errors
///
/// Returns a [`NetlistFailureKind::BatchMismatch`] failure naming the net,
/// lane, and cycle of the first divergence (or an
/// [`NetlistFailureKind::Elaborate`] failure if the netlist does not
/// elaborate).
pub fn check_batch_netlist(
    modules: &[Module],
    top: &str,
    seed: u64,
    cycles: u64,
    lanes: usize,
) -> Result<(), NetlistFailure> {
    let flat = elaborate(modules, &[], top).map_err(|e| NetlistFailure {
        kind: NetlistFailureKind::Elaborate,
        detail: e.to_string(),
    })?;
    let net_names: Vec<String> = flat.nets().iter().map(|n| n.name.clone()).collect();
    let inputs: Vec<String> = flat
        .ports()
        .iter()
        .filter(|(_, d)| *d == Dir::Input)
        .map(|(id, _)| flat.nets()[*id].name.clone())
        .collect();
    let mut refs: Vec<Interpreter> = (0..lanes).map(|_| Interpreter::new(flat.clone())).collect();
    let mut batch = BatchSim::new(flat, lanes);
    let mut rngs: Vec<SplitMix64> = (0..lanes)
        .map(|l| SplitMix64::new(seed.wrapping_add(l as u64) ^ 0xD1F7_0000_0000_0001))
        .collect();
    let mut vals = vec![vec![0u64; lanes]; inputs.len()];
    for cycle in 0..cycles {
        for (i, name) in inputs.iter().enumerate() {
            for (l, r) in refs.iter_mut().enumerate() {
                vals[i][l] = rngs[l].next_u64();
                r.poke(name, vals[i][l]);
            }
        }
        batch.poke_lanes_many(
            inputs
                .iter()
                .zip(&vals)
                .map(|(n, v)| (n.as_str(), v.as_slice())),
        );
        batch.step();
        for r in &mut refs {
            r.step();
        }
        for name in &net_names {
            for (l, r) in refs.iter().enumerate() {
                let b = batch.peek_lane(name, l);
                let s = r.peek(name);
                if b != s {
                    return Err(NetlistFailure {
                        kind: NetlistFailureKind::BatchMismatch,
                        detail: format!(
                            "net {name:?} diverged at cycle {cycle} lane {l}: batch={b} scalar={s}"
                        ),
                    });
                }
            }
        }
    }
    Ok(())
}

/// Opt-vs-unoptimized lock-step differential oracle: runs the full
/// [`crate::opt`] pipeline over the netlist, then proves the result
/// behaviourally identical to the original.
///
/// The optimized netlist must itself pass validation, the `)[` emission
/// lint, and elaboration; then three engines run lock-step under identical
/// seeded stimulus — the compiled interpreter on the *unoptimized* flat
/// design as the reference, plus the compiled and tree-walking interpreters
/// on the optimized one — comparing every top-level output port after every
/// cycle. (Internal nets are fair game for the optimizer to collapse;
/// ports are the preserved interface.) Finally the lane-batched oracle
/// re-runs the optimized netlist across `lanes` stimulus lanes.
///
/// # Errors
///
/// Returns a [`NetlistFailureKind::OptMismatch`] failure describing the
/// first divergence, or an [`NetlistFailureKind::Elaborate`] failure if the
/// *original* netlist does not elaborate (a generator bug, not an optimizer
/// bug).
pub fn check_opt_netlist(
    modules: &[Module],
    top: &str,
    seed: u64,
    cycles: u64,
    lanes: usize,
) -> Result<(), NetlistFailure> {
    check_opt_netlist_with(modules, top, seed, cycles, lanes, &OptOptions::default())
}

/// [`check_opt_netlist`] with an explicit pass selection, so each rewrite
/// pass can be proven semantics-preserving in isolation (the per-pass
/// property tests run one pass at a time over hundreds of generator seeds).
///
/// # Errors
///
/// Same contract as [`check_opt_netlist`].
pub fn check_opt_netlist_with(
    modules: &[Module],
    top: &str,
    seed: u64,
    cycles: u64,
    lanes: usize,
    opts: &OptOptions,
) -> Result<(), NetlistFailure> {
    let (opt_modules, _) = opt::optimize_netlist(modules, top, opts);
    for m in &opt_modules {
        m.validate().map_err(|e| NetlistFailure {
            kind: NetlistFailureKind::OptMismatch,
            detail: format!("optimized module {:?} fails validation: {e}", m.name()),
        })?;
        let v = emit_module(m);
        if v.contains(")[") {
            return Err(NetlistFailure {
                kind: NetlistFailureKind::OptMismatch,
                detail: format!(
                    "optimized module {:?} emits a part-select of a compound expression",
                    m.name()
                ),
            });
        }
    }
    let flat_ref = elaborate(modules, &[], top).map_err(|e| NetlistFailure {
        kind: NetlistFailureKind::Elaborate,
        detail: e.to_string(),
    })?;
    let flat_opt = elaborate(&opt_modules, &[], top).map_err(|e| NetlistFailure {
        kind: NetlistFailureKind::OptMismatch,
        detail: format!("optimized netlist fails elaboration: {e}"),
    })?;
    let inputs: Vec<String> = flat_ref
        .ports()
        .iter()
        .filter(|(_, d)| *d == Dir::Input)
        .map(|(id, _)| flat_ref.nets()[*id].name.clone())
        .collect();
    let outputs: Vec<String> = flat_ref
        .ports()
        .iter()
        .filter(|(_, d)| *d == Dir::Output)
        .map(|(id, _)| flat_ref.nets()[*id].name.clone())
        .collect();
    let mut reference = Interpreter::new(flat_ref);
    let mut optimized = Interpreter::new(flat_opt.clone());
    let mut opt_tree = Interpreter::new_tree_walking(flat_opt);
    let mut rng = SplitMix64::new(seed ^ 0xD1F7_0000_0000_0001);
    for cycle in 0..cycles {
        for name in &inputs {
            let v = rng.next_u64();
            reference.poke(name, v);
            optimized.poke(name, v);
            opt_tree.poke(name, v);
        }
        reference.step();
        optimized.step();
        opt_tree.step();
        for name in &outputs {
            let r = reference.peek(name);
            let o = optimized.peek(name);
            let t = opt_tree.peek(name);
            if o != r || t != r {
                return Err(NetlistFailure {
                    kind: NetlistFailureKind::OptMismatch,
                    detail: format!(
                        "output {name:?} diverged at cycle {cycle}: \
                         unoptimized={r} optimized={o} optimized_tree={t}"
                    ),
                });
            }
        }
    }
    check_batch_netlist(&opt_modules, top, seed, cycles, lanes).map_err(|f| NetlistFailure {
        kind: NetlistFailureKind::OptMismatch,
        detail: format!("optimized netlist failed the batch oracle: {}", f.detail),
    })
}

/// Shared body of the two interchange round-trip oracles: re-parse the
/// emitted form, demand structural identity, byte-identical re-emission,
/// and identical compiled bytecode ([`crate::interp::bytecode_dump`]).
fn check_roundtrip_with<E>(
    modules: &[Module],
    top: &str,
    kind: NetlistFailureKind,
    what: &str,
    emit: impl Fn(&crate::text::NetlistDoc) -> String,
    parse: impl Fn(&str) -> Result<crate::text::NetlistDoc, E>,
) -> Result<(), NetlistFailure>
where
    E: std::fmt::Display,
{
    let fail = |detail: String| NetlistFailure { kind, detail };
    let doc = crate::text::NetlistDoc::from_modules(modules, top);
    let emitted = emit(&doc);
    let parsed =
        parse(&emitted).map_err(|e| fail(format!("emitted {what} does not parse: {e}")))?;
    if parsed != doc {
        return Err(fail(format!(
            "parsed {what} document is not structurally identical to the original"
        )));
    }
    let re_emitted = emit(&parsed);
    if re_emitted != emitted {
        return Err(fail(format!("{what} re-emission is not byte-identical")));
    }
    let flat_ref = elaborate(modules, &[], top).map_err(|e| NetlistFailure {
        kind: NetlistFailureKind::Elaborate,
        detail: e.to_string(),
    })?;
    let flat_rt = elaborate(&parsed.modules, &[], &parsed.top)
        .map_err(|e| fail(format!("round-tripped {what} netlist fails elaboration: {e}")))?;
    if crate::interp::bytecode_dump(&flat_rt) != crate::interp::bytecode_dump(&flat_ref) {
        return Err(fail(format!(
            "round-tripped {what} netlist compiles to different bytecode"
        )));
    }
    Ok(())
}

/// Round-trip oracle over the textual netlist format
/// ([`crate::text::emit_text`] / [`crate::text::parse_text`]): the emitted
/// text must parse back to a structurally identical document, re-emit
/// byte-identically, and compile to byte-identical bytecode.
pub fn check_text_roundtrip(modules: &[Module], top: &str) -> Result<(), NetlistFailure> {
    check_roundtrip_with(
        modules,
        top,
        NetlistFailureKind::TextRoundtrip,
        "text",
        crate::text::emit_text,
        crate::text::parse_text,
    )
}

/// Round-trip oracle over the Yosys-JSON interchange format
/// ([`crate::yosys::emit_yosys`] / [`crate::yosys::parse_yosys`]): same
/// contract as [`check_text_roundtrip`].
pub fn check_yosys_roundtrip(modules: &[Module], top: &str) -> Result<(), NetlistFailure> {
    check_roundtrip_with(
        modules,
        top,
        NetlistFailureKind::YosysRoundtrip,
        "yosys-json",
        crate::yosys::emit_yosys,
        crate::yosys::parse_yosys,
    )
}

/// Panics if the two scalar interpreter engines (or any crash oracle)
/// disagree on this netlist, if the lane-batched engine diverges from a
/// scalar reference on any flat net on any of [`DEFAULT_ORACLE_LANES`]
/// stimulus lanes in any cycle, if the optimization pipeline changes any
/// observable output ([`check_opt_netlist`]), or if either interchange
/// round trip ([`check_text_roundtrip`] / [`check_yosys_roundtrip`]) fails
/// to reproduce the design exactly. Convenience wrapper used by committed
/// regression tests.
pub fn assert_engines_agree(modules: &[Module], top: &str, seed: u64, cycles: u64) {
    if let Err(f) = check_netlist(modules, top, seed, cycles, None)
        .and_then(|()| check_batch_netlist(modules, top, seed, cycles, DEFAULT_ORACLE_LANES))
        .and_then(|()| check_opt_netlist(modules, top, seed, cycles, DEFAULT_ORACLE_LANES))
        .and_then(|()| check_text_roundtrip(modules, top))
        .and_then(|()| check_yosys_roundtrip(modules, top))
    {
        panic!("{}: {}", f.kind.label(), f.detail);
    }
}

// ---------------------------------------------------------------------------
// Shrinker
// ---------------------------------------------------------------------------

// The editable module decomposition (`Parts`, `to_parts`, `from_parts`) and
// the dead-net / dead-child GC now live in `crate::opt` — the optimizer's
// GC pass and the shrinker share one implementation (the shrinker runs it
// in `GcPorts::PruneUnreadInputs` mode, which additionally drops input
// ports nothing reads).

/// Greedily minimizes a failing netlist: one by one, tries deleting each
/// assign, register, instance, and output port of every module (garbage
/// collecting unreferenced nets and child modules after each deletion) and
/// keeps any deletion under which `still_fails` holds. Loops to a fixpoint.
///
/// `still_fails` should reproduce the *same* failure (same oracle), not just
/// any failure — the campaign driver pins the original failure kind.
pub fn shrink_netlist<F>(
    modules: &[Module],
    top: &str,
    still_fails: F,
) -> (Vec<Module>, String)
where
    F: Fn(&[Module], &str) -> bool,
{
    let mut parts: Vec<Parts> = modules.iter().map(opt::to_parts).collect();
    let build =
        |parts: &[Parts]| -> Vec<Module> { parts.iter().map(opt::from_parts).collect() };
    loop {
        let mut improved = false;
        'outer: for mi in 0..parts.len() {
            let n_assigns = parts[mi].assigns.len();
            let n_regs = parts[mi].regs.len();
            let n_insts = parts[mi].instances.len();
            let n_ports = parts[mi].ports.len();
            // Candidate deletions, coarsest first: instances, regs, assigns,
            // then output ports.
            for k in 0..(n_insts + n_regs + n_assigns + n_ports) {
                let mut cand = parts.clone();
                if k < n_insts {
                    cand[mi].instances.remove(k);
                } else if k < n_insts + n_regs {
                    cand[mi].regs.remove(k - n_insts);
                } else if k < n_insts + n_regs + n_assigns {
                    cand[mi].assigns.remove(k - n_insts - n_regs);
                } else {
                    let pi = k - n_insts - n_regs - n_assigns;
                    if cand[mi].ports[pi].1 != Dir::Output {
                        continue;
                    }
                    // Deleting an output port also deletes its driver,
                    // otherwise the gc keeps the net alive via the driver.
                    let net = cand[mi].ports[pi].0;
                    cand[mi].ports.remove(pi);
                    cand[mi].assigns.retain(|(t, _)| *t != net);
                    cand[mi].regs.retain(|r| r.target != net);
                    cand[mi]
                        .instances
                        .retain(|(_, _, conns)| conns.iter().all(|(_, n)| *n != net));
                }
                for p in &mut cand {
                    gc_nets(p, GcPorts::PruneUnreadInputs);
                }
                gc_children(&mut cand, top);
                let candidate = build(&cand);
                if still_fails(&candidate, top) {
                    parts = cand;
                    improved = true;
                    break 'outer;
                }
            }
        }
        if !improved {
            break;
        }
    }
    (build(&parts), top.to_string())
}

// ---------------------------------------------------------------------------
// Repro emission
// ---------------------------------------------------------------------------

fn expr_code(e: &Expr) -> String {
    match e {
        Expr::Const { value, width } => format!("Expr::lit({value}, {width})"),
        Expr::Net(id) => format!("Expr::net({id})"),
        Expr::Not(x) => format!("Expr::Not(Box::new({}))", expr_code(x)),
        Expr::Bin(op, a, b) => format!(
            "Expr::Bin(BinOp::{op:?}, Box::new({}), Box::new({}))",
            expr_code(a),
            expr_code(b)
        ),
        Expr::Mux {
            sel,
            on_true,
            on_false,
        } => format!(
            "Expr::mux({}, {}, {})",
            expr_code(sel),
            expr_code(on_true),
            expr_code(on_false)
        ),
        Expr::Resize(x, w) => format!("{}.resize({w})", expr_code(x)),
        Expr::SignExtend(x, w) => format!("{}.sext({w})", expr_code(x)),
    }
}

/// Renders a netlist as a paste-ready Rust regression test that rebuilds the
/// modules through the public builder API and asserts engine agreement.
pub fn rust_repro(modules: &[Module], top: &str, seed: u64, cycles: u64) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    let _ = writeln!(s, "#[test]");
    let _ = writeln!(s, "fn fuzz_regression_seed_{seed}() {{");
    let _ = writeln!(
        s,
        "    use tensorlib_hw::netlist::{{BinOp, Expr, Module}};"
    );
    let _ = writeln!(s, "    #[allow(unused_imports)] use std::boxed::Box;");
    for (i, m) in modules.iter().enumerate() {
        let _ = writeln!(s, "    let mut m{i} = Module::new({:?});", m.name());
        for (id, net) in m.nets().iter().enumerate() {
            let ctor = match m.port_dir(&net.name) {
                Some(Dir::Input) => "input",
                Some(Dir::Output) => "output",
                None => "net",
            };
            let _ = writeln!(
                s,
                "    let _n{id} = m{i}.{ctor}({:?}, {});",
                net.name, net.width
            );
        }
        for (target, expr) in m.assigns() {
            let _ = writeln!(s, "    m{i}.assign({target}, {});", expr_code(expr));
        }
        for r in m.regs() {
            let en = match &r.enable {
                Some(e) => format!("Some({})", expr_code(e)),
                None => "None".to_string(),
            };
            let _ = writeln!(
                s,
                "    m{i}.reg({}, {}, {en}, {});",
                r.target,
                expr_code(&r.next),
                r.init
            );
        }
        for inst in m.instances() {
            let conns: Vec<String> = inst
                .connections
                .iter()
                .map(|(p, n)| format!("({:?}.into(), {n})", p))
                .collect();
            let _ = writeln!(
                s,
                "    m{i}.instance({:?}, {:?}, vec![{}]);",
                inst.module,
                inst.name,
                conns.join(", ")
            );
        }
    }
    let list: Vec<String> = (0..modules.len()).map(|i| format!("m{i}")).collect();
    let _ = writeln!(
        s,
        "    tensorlib_hw::fuzz::assert_engines_agree(&[{}], {top:?}, {seed}, {cycles});",
        list.join(", ")
    );
    let _ = writeln!(s, "}}");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_netlists_are_valid_and_engines_agree() {
        let cfg = NetlistFuzzConfig::default();
        for seed in 0..50 {
            let (modules, top) = gen_netlist(seed, &cfg);
            check_netlist(&modules, &top, seed, cfg.cycles, None)
                .unwrap_or_else(|f| panic!("seed {seed}: {}: {}", f.kind.label(), f.detail));
        }
    }

    #[test]
    fn generation_is_seed_deterministic() {
        let cfg = NetlistFuzzConfig::default();
        let (a, ta) = gen_netlist(42, &cfg);
        let (b, tb) = gen_netlist(42, &cfg);
        assert_eq!(ta, tb);
        assert_eq!(a, b);
        let (c, _) = gen_netlist(43, &cfg);
        assert_ne!(a, c, "different seeds should differ");
    }

    #[test]
    fn perturbed_engine_is_detected_and_shrinks_small() {
        let cfg = NetlistFuzzConfig::default();
        // Find a seed whose sample actually propagates input 0 to an
        // observable net (most do).
        let mut hit = None;
        for seed in 0..64 {
            let (modules, top) = gen_netlist(seed, &cfg);
            if let Err(f) = check_netlist(&modules, &top, seed, cfg.cycles, Some(0)) {
                assert_eq!(f.kind, NetlistFailureKind::Mismatch);
                hit = Some((seed, modules, top));
                break;
            }
        }
        let (seed, modules, top) = hit.expect("some seed must expose the injected fault");
        let (shrunk, stop) = shrink_netlist(&modules, &top, |mods, t| {
            matches!(
                check_netlist(mods, t, seed, cfg.cycles, Some(0)),
                Err(NetlistFailure {
                    kind: NetlistFailureKind::Mismatch,
                    ..
                })
            )
        });
        // Still failing, and small: the acceptance bar is ≤ 10 nets.
        assert!(check_netlist(&shrunk, &stop, seed, cfg.cycles, Some(0)).is_err());
        let total_nets: usize = shrunk.iter().map(|m| m.nets().len()).sum();
        assert!(
            total_nets <= 10,
            "shrunk repro still has {total_nets} nets across {} modules",
            shrunk.len()
        );
    }

    #[test]
    fn rust_repro_snippet_mentions_every_module() {
        let cfg = NetlistFuzzConfig::default();
        let (modules, top) = gen_netlist(7, &cfg);
        let snippet = rust_repro(&modules, &top, 7, cfg.cycles);
        assert!(snippet.contains("fn fuzz_regression_seed_7()"));
        assert!(snippet.contains("assert_engines_agree"));
        for m in &modules {
            assert!(snippet.contains(&format!("Module::new({:?})", m.name())));
        }
    }
}

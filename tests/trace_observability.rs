//! Observability-layer integration tests.
//!
//! 1. **Differential**: measured hardware counters (`sim::trace::measure`)
//!    against the analytic cycle model (`sim::perf::estimate`) across three
//!    kernels × three dataflow families, with stated tolerances.
//! 2. **VCD round trip**: export an event trace as a waveform, re-parse it
//!    with the bundled reader, and require transition-exact agreement with
//!    the in-memory event ring.

use tensorlib::dataflow::{Dataflow, LoopSelection, Stt};
use tensorlib::hw::design::{generate, AcceleratorDesign, HwConfig};
use tensorlib::hw::ArrayConfig;
use tensorlib::ir::{workloads, Kernel};
use tensorlib::sim::perf::cross_check;
use tensorlib::sim::trace::{measure, parse_vcd};
use tensorlib::sim::{SimConfig, TraceConfig};

fn build(kernel: &Kernel, sel: [&str; 3], stt: [[i64; 3]; 3], n: usize) -> AcceleratorDesign {
    let sel = LoopSelection::by_names(kernel, sel).expect("selection resolves");
    let stt = Stt::from_rows(stt).expect("valid STT");
    let df = Dataflow::analyze(kernel, sel, stt).expect("analyzable");
    generate(
        &df,
        &HwConfig {
            array: ArrayConfig::square(n),
            ..HwConfig::default()
        },
    )
    .expect("wireable")
}

/// Systolic output-stationary, weight-stationary-style, and
/// multicast/reduction-tree STTs — the three interconnect families of
/// Figure 4.
const OS: [[i64; 3]; 3] = [[1, 0, 0], [0, 1, 0], [1, 1, 1]];
const WS: [[i64; 3]; 3] = [[0, 0, 1], [0, 1, 0], [1, 1, 1]];
const MTM: [[i64; 3]; 3] = [[0, 1, 0], [0, 0, 1], [1, 0, 0]];

/// Measured controller counters vs the analytic model, 3 kernels × 3
/// dataflows.
///
/// Tolerances, and why they are what they are:
///
/// - per-tile **compute** cycles must agree *exactly* up to the analytic
///   pipeline tail (reduction-tree fill): both derive from the tiling's
///   `t_extent`, so `analytic/measured ∈ [1.0, 1.5]`;
/// - **total** cycles per tile may differ more: the generated controller
///   serializes load → compute → drain while the analytic model overlaps
///   them across tiles (double buffering), so the measured/analytic ratio is
///   allowed `[0.5, 2.0]` and is expected at or above 1.
#[test]
fn measured_counters_track_the_analytic_model_3x3() {
    let gemm = workloads::gemm(8, 8, 8);
    let conv = workloads::conv2d(4, 4, 4, 6, 3, 3);
    let mttkrp = workloads::mttkrp(4, 4, 4, 4);
    type Case<'a> = (&'a str, &'a Kernel, [&'a str; 3], [[i64; 3]; 3]);
    let cases: Vec<Case> = vec![
        ("gemm/OS", &gemm, ["m", "n", "k"], OS),
        ("gemm/WS", &gemm, ["m", "n", "k"], WS),
        ("gemm/MTM", &gemm, ["m", "n", "k"], MTM),
        ("conv/OS", &conv, ["k", "c", "x"], OS),
        ("conv/WS", &conv, ["k", "c", "x"], WS),
        ("conv/MTM", &conv, ["k", "c", "x"], MTM),
        ("mttkrp/OS", &mttkrp, ["i", "j", "k"], OS),
        ("mttkrp/WS", &mttkrp, ["i", "j", "k"], WS),
        ("mttkrp/MTM", &mttkrp, ["i", "j", "k"], MTM),
    ];
    let tiles = 2u64;
    for (name, kernel, sel, stt) in cases {
        let design = build(kernel, sel, stt, 4);
        let phases = design.phases();
        let cc = cross_check(&design, kernel, &SimConfig::paper_default(), tiles)
            .unwrap_or_else(|e| panic!("{name}: {e}"));

        // Schedule identities: the measurement protocol is cycle-exact.
        assert_eq!(
            cc.measured_cycles,
            1 + tiles * phases.total(),
            "{name}: protocol cycle count"
        );
        assert_eq!(
            cc.measured_compute_cycles,
            tiles * phases.compute_cycles,
            "{name}: compute phase multiples"
        );
        assert_eq!(cc.measured_stall_cycles, 1, "{name}: only the start stall");

        // Analytic per-tile compute = t_extent + pipeline tail.
        let analytic_tile_compute =
            cc.analytic.compute_cycles as f64 / cc.analytic.tiles as f64;
        let measured_tile_compute = phases.compute_cycles as f64;
        let compute_ratio = analytic_tile_compute / measured_tile_compute;
        assert!(
            (1.0..=1.5).contains(&compute_ratio),
            "{name}: analytic tile compute {analytic_tile_compute} vs measured \
             {measured_tile_compute} (ratio {compute_ratio})"
        );

        // Whole-tile cycle ratio within the stated tolerance band.
        assert!(
            (0.5..=2.0).contains(&cc.tile_cycle_ratio),
            "{name}: tile cycle ratio {} out of [0.5, 2.0] (measured {} vs analytic {})",
            cc.tile_cycle_ratio,
            cc.measured_cycles_per_tile,
            cc.analytic_cycles_per_tile
        );

        // Utilization is a fraction, and nonzero once data reaches the PEs.
        assert!(
            cc.measured_utilization > 0.0 && cc.measured_utilization <= 1.0,
            "{name}: utilization {}",
            cc.measured_utilization
        );
    }
}

/// Export → parse → compare: the VCD writer and the bundled reader must
/// agree transition-for-transition with the in-memory event ring.
#[test]
fn vcd_round_trip_matches_the_event_ring() {
    let gemm = workloads::gemm(4, 4, 4);
    let design = build(&gemm, ["m", "n", "k"], OS, 4);
    let cfg = TraceConfig::default().with_watch([
        "en",
        "swap",
        "done",
        "array_i.pe_r0c0.product",
    ]);
    let run = measure(&design, &cfg, 2).expect("measured run");
    assert_eq!(
        run.stats.events_dropped, 0,
        "ring must be large enough for a lossless round trip"
    );
    let events = run.sim.trace_events();
    let signals = run.sim.watched_signals();
    assert_eq!(signals.len(), 4);
    assert!(!events.is_empty(), "watched nets must toggle");

    let vcd = run.sim.write_vcd().expect("trace attached");
    let doc = parse_vcd(&vcd).expect("writer output parses");

    // Every watched net appears with its declared width.
    assert_eq!(doc.signals.len(), signals.len());
    for (name, width) in &signals {
        let id = doc.id_of(name).unwrap_or_else(|| panic!("no VCD var {name}"));
        let sig = doc.signals.iter().find(|s| s.id == id).unwrap();
        assert_eq!(sig.width, *width, "width of {name}");
    }

    // Transition-exact: per signal, the parsed (time, value) sequence equals
    // the ring's (cycle, value) sequence.
    for (watch, (name, _)) in signals.iter().enumerate() {
        let id = doc.id_of(name).unwrap();
        let parsed: Vec<(u64, u64)> = doc.changes_of(id);
        let ring: Vec<(u64, u64)> = events
            .iter()
            .filter(|e| e.watch == watch)
            .map(|e| (e.cycle, e.value))
            .collect();
        assert_eq!(parsed, ring, "transitions of {name}");
    }

    // The total event count matches what the counters claim.
    assert_eq!(events.len() as u64, run.stats.events_recorded);
}

//! Dense row-major matrices of exact rationals.

use std::fmt;
use std::ops::{Add, Index, IndexMut, Mul, Neg, Sub};

use crate::Frac;

/// A dense, row-major matrix of exact rationals ([`Frac`]).
///
/// `Mat` is sized at construction; all arithmetic is exact. Matrices in STT
/// analysis are tiny (at most a handful of rows/columns), so the
/// implementation favours clarity over asymptotics.
///
/// # Examples
///
/// ```
/// use tensorlib_linalg::Mat;
///
/// let a = Mat::from_i64(&[&[1, 2], &[3, 4]]);
/// let b = Mat::identity(2);
/// assert_eq!(&a * &b, a);
/// assert_eq!(a.rank(), 2);
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Mat {
    rows: usize,
    cols: usize,
    data: Vec<Frac>,
}

/// Error returned when constructing a [`Mat`] from malformed input.
///
/// # Examples
///
/// ```
/// use tensorlib_linalg::{Mat, Frac};
///
/// let ragged = vec![vec![Frac::ONE], vec![Frac::ONE, Frac::ZERO]];
/// assert!(Mat::from_rows(ragged).is_err());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MatShapeError {
    expected: usize,
    got: usize,
    row: usize,
}

impl fmt::Display for MatShapeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "ragged matrix rows: row {} has {} entries, expected {}",
            self.row, self.got, self.expected
        )
    }
}

impl std::error::Error for MatShapeError {}

impl Mat {
    /// Creates a `rows × cols` zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Mat {
        Mat {
            rows,
            cols,
            data: vec![Frac::ZERO; rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix.
    ///
    /// # Examples
    ///
    /// ```
    /// use tensorlib_linalg::Mat;
    /// let i = Mat::identity(3);
    /// assert_eq!(&i * &i, i);
    /// ```
    pub fn identity(n: usize) -> Mat {
        let mut m = Mat::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = Frac::ONE;
        }
        m
    }

    /// Creates a matrix from owned rows.
    ///
    /// # Errors
    ///
    /// Returns [`MatShapeError`] if the rows have differing lengths.
    pub fn from_rows(rows: Vec<Vec<Frac>>) -> Result<Mat, MatShapeError> {
        let ncols = rows.first().map_or(0, Vec::len);
        for (i, r) in rows.iter().enumerate() {
            if r.len() != ncols {
                return Err(MatShapeError {
                    expected: ncols,
                    got: r.len(),
                    row: i,
                });
            }
        }
        Ok(Mat {
            rows: rows.len(),
            cols: ncols,
            data: rows.into_iter().flatten().collect(),
        })
    }

    /// Creates a matrix from integer row slices. Convenient for literals.
    ///
    /// # Panics
    ///
    /// Panics if the rows have differing lengths.
    ///
    /// # Examples
    ///
    /// ```
    /// use tensorlib_linalg::Mat;
    /// let m = Mat::from_i64(&[&[1, 0, 0], &[0, 0, 1]]);
    /// assert_eq!((m.rows(), m.cols()), (2, 3));
    /// ```
    pub fn from_i64(rows: &[&[i64]]) -> Mat {
        let frac_rows = rows
            .iter()
            .map(|r| r.iter().map(|&v| Frac::from(v)).collect())
            .collect();
        Mat::from_rows(frac_rows).expect("rows of equal length")
    }

    /// Creates a single-column matrix from integers.
    pub fn col_from_i64(col: &[i64]) -> Mat {
        Mat {
            rows: col.len(),
            cols: 1,
            data: col.iter().map(|&v| Frac::from(v)).collect(),
        }
    }

    /// Creates a single-column matrix from fractions.
    pub fn col_from_fracs(col: &[Frac]) -> Mat {
        Mat {
            rows: col.len(),
            cols: 1,
            data: col.to_vec(),
        }
    }

    /// Builds a matrix by evaluating `f(row, col)` at each position.
    pub fn from_fn<F: FnMut(usize, usize) -> Frac>(rows: usize, cols: usize, mut f: F) -> Mat {
        let mut m = Mat::zeros(rows, cols);
        for i in 0..rows {
            for j in 0..cols {
                m[(i, j)] = f(i, j);
            }
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Returns `true` if the matrix is square.
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Returns `true` if every entry is zero.
    pub fn is_zero(&self) -> bool {
        self.data.iter().all(|f| f.is_zero())
    }

    /// Returns `true` if every entry is an integer.
    pub fn is_integer(&self) -> bool {
        self.data.iter().all(|f| f.is_integer())
    }

    /// A copy of row `i` as a vector.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn row(&self, i: usize) -> Vec<Frac> {
        assert!(i < self.rows, "row index {i} out of bounds");
        self.data[i * self.cols..(i + 1) * self.cols].to_vec()
    }

    /// A copy of column `j` as a vector.
    ///
    /// # Panics
    ///
    /// Panics if `j` is out of bounds.
    pub fn col(&self, j: usize) -> Vec<Frac> {
        assert!(j < self.cols, "column index {j} out of bounds");
        (0..self.rows).map(|i| self[(i, j)]).collect()
    }

    /// The transpose.
    pub fn transpose(&self) -> Mat {
        Mat::from_fn(self.cols, self.rows, |i, j| self[(j, i)])
    }

    /// Horizontally concatenates `self | other`.
    ///
    /// # Panics
    ///
    /// Panics if the row counts differ.
    pub fn hstack(&self, other: &Mat) -> Mat {
        assert_eq!(self.rows, other.rows, "hstack requires equal row counts");
        Mat::from_fn(self.rows, self.cols + other.cols, |i, j| {
            if j < self.cols {
                self[(i, j)]
            } else {
                other[(i, j - self.cols)]
            }
        })
    }

    /// Vertically concatenates `self` on top of `other`.
    ///
    /// # Panics
    ///
    /// Panics if the column counts differ.
    pub fn vstack(&self, other: &Mat) -> Mat {
        assert_eq!(self.cols, other.cols, "vstack requires equal column counts");
        Mat::from_fn(self.rows + other.rows, self.cols, |i, j| {
            if i < self.rows {
                self[(i, j)]
            } else {
                other[(i - self.rows, j)]
            }
        })
    }

    /// Returns the submatrix formed by the given column indices, in order.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn select_cols(&self, idx: &[usize]) -> Mat {
        Mat::from_fn(self.rows, idx.len(), |i, j| self[(i, idx[j])])
    }

    /// Applies `f` to every entry, producing a new matrix.
    pub fn map<F: FnMut(Frac) -> Frac>(&self, mut f: F) -> Mat {
        Mat {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&v| f(v)).collect(),
        }
    }

    /// Multiplies every entry by a scalar.
    pub fn scale(&self, s: Frac) -> Mat {
        self.map(|v| v * s)
    }

    /// Extracts a single-column matrix as integers, if every entry is integral.
    ///
    /// Returns `None` if the matrix is not a column or contains non-integers
    /// that do not fit `i64`.
    pub fn col_to_i64(&self) -> Option<Vec<i64>> {
        if self.cols != 1 {
            return None;
        }
        self.data
            .iter()
            .map(|f| f.to_integer().and_then(|v| i64::try_from(v).ok()))
            .collect()
    }

    /// Iterates over all entries in row-major order.
    pub fn iter(&self) -> impl Iterator<Item = Frac> + '_ {
        self.data.iter().copied()
    }
}

impl Index<(usize, usize)> for Mat {
    type Output = Frac;
    fn index(&self, (i, j): (usize, usize)) -> &Frac {
        assert!(i < self.rows && j < self.cols, "index ({i},{j}) out of bounds");
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Mat {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut Frac {
        assert!(i < self.rows && j < self.cols, "index ({i},{j}) out of bounds");
        &mut self.data[i * self.cols + j]
    }
}

impl fmt::Debug for Mat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Mat {}x{} [", self.rows, self.cols)?;
        for i in 0..self.rows {
            write!(f, "  [")?;
            for j in 0..self.cols {
                if j > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{}", self[(i, j)])?;
            }
            writeln!(f, "]")?;
        }
        write!(f, "]")
    }
}

impl fmt::Display for Mat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl Add for &Mat {
    type Output = Mat;
    fn add(self, rhs: &Mat) -> Mat {
        assert_eq!(
            (self.rows, self.cols),
            (rhs.rows, rhs.cols),
            "matrix addition requires equal shapes"
        );
        Mat::from_fn(self.rows, self.cols, |i, j| self[(i, j)] + rhs[(i, j)])
    }
}

impl Sub for &Mat {
    type Output = Mat;
    fn sub(self, rhs: &Mat) -> Mat {
        assert_eq!(
            (self.rows, self.cols),
            (rhs.rows, rhs.cols),
            "matrix subtraction requires equal shapes"
        );
        Mat::from_fn(self.rows, self.cols, |i, j| self[(i, j)] - rhs[(i, j)])
    }
}

impl Neg for &Mat {
    type Output = Mat;
    fn neg(self) -> Mat {
        self.map(|v| -v)
    }
}

impl Mul for &Mat {
    type Output = Mat;
    fn mul(self, rhs: &Mat) -> Mat {
        assert_eq!(
            self.cols, rhs.rows,
            "matrix product dimension mismatch: {}x{} * {}x{}",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        Mat::from_fn(self.rows, rhs.cols, |i, j| {
            (0..self.cols).map(|k| self[(i, k)] * rhs[(k, j)]).sum()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_indexing() {
        let m = Mat::from_i64(&[&[1, 2, 3], &[4, 5, 6]]);
        assert_eq!(m[(0, 2)], Frac::from(3i64));
        assert_eq!(m[(1, 0)], Frac::from(4i64));
        assert_eq!(m.row(1), vec![4.into(), 5.into(), 6.into()]);
        assert_eq!(m.col(1), vec![2.into(), 5.into()]);
    }

    #[test]
    fn ragged_rows_error() {
        let err = Mat::from_rows(vec![vec![Frac::ONE], vec![Frac::ONE, Frac::ZERO]]).unwrap_err();
        assert!(err.to_string().contains("ragged"));
    }

    #[test]
    fn arithmetic_identities() {
        let a = Mat::from_i64(&[&[1, 2], &[3, 4]]);
        let i = Mat::identity(2);
        let z = Mat::zeros(2, 2);
        assert_eq!(&a * &i, a);
        assert_eq!(&i * &a, a);
        assert_eq!(&a + &z, a);
        assert_eq!(&a - &a, z);
        assert_eq!(&(-&a) + &a, z);
    }

    #[test]
    fn product_values() {
        let a = Mat::from_i64(&[&[1, 2], &[3, 4]]);
        let b = Mat::from_i64(&[&[5, 6], &[7, 8]]);
        assert_eq!(&a * &b, Mat::from_i64(&[&[19, 22], &[43, 50]]));
    }

    #[test]
    fn transpose_involution() {
        let a = Mat::from_i64(&[&[1, 2, 3], &[4, 5, 6]]);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose()[(2, 1)], Frac::from(6i64));
    }

    #[test]
    fn stacking() {
        let a = Mat::from_i64(&[&[1], &[2]]);
        let b = Mat::from_i64(&[&[3], &[4]]);
        assert_eq!(a.hstack(&b), Mat::from_i64(&[&[1, 3], &[2, 4]]));
        assert_eq!(a.vstack(&b), Mat::from_i64(&[&[1], &[2], &[3], &[4]]));
    }

    #[test]
    fn select_cols_reorders() {
        let a = Mat::from_i64(&[&[1, 2, 3], &[4, 5, 6]]);
        assert_eq!(a.select_cols(&[2, 0]), Mat::from_i64(&[&[3, 1], &[6, 4]]));
    }

    #[test]
    fn col_to_i64_round_trip() {
        let c = Mat::col_from_i64(&[7, -3, 0]);
        assert_eq!(c.col_to_i64().unwrap(), vec![7, -3, 0]);
        let half = Mat::col_from_fracs(&[Frac::new(1, 2)]);
        assert!(half.col_to_i64().is_none());
        let wide = Mat::identity(2);
        assert!(wide.col_to_i64().is_none());
    }

    #[test]
    fn predicates() {
        assert!(Mat::zeros(2, 3).is_zero());
        assert!(Mat::identity(2).is_integer());
        assert!(Mat::identity(2).is_square());
        assert!(!Mat::zeros(2, 3).is_square());
        let half = Mat::col_from_fracs(&[Frac::new(1, 2)]);
        assert!(!half.is_integer());
    }

    #[test]
    fn debug_format_contains_entries() {
        let s = format!("{:?}", Mat::from_i64(&[&[1, 2]]));
        assert!(s.contains("1, 2"));
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn product_shape_mismatch_panics() {
        let a = Mat::zeros(2, 3);
        let b = Mat::zeros(2, 3);
        let _ = &a * &b;
    }
}

//! Round-trip battery for the netlist interchange formats.
//!
//! Every design below must survive `parse(emit(design))` in both the
//! textual format (`tensorlib::hw::text`) and the Yosys-JSON format
//! (`tensorlib::hw::yosys`) with three witnesses:
//!
//! 1. structural identity — the parsed [`NetlistDoc`] is `==` the original;
//! 2. byte identity — re-emitting the parsed document reproduces the first
//!    emission byte-for-byte (the emitters are deterministic and the
//!    parsers lossless);
//! 3. semantic identity — both documents compile to byte-identical
//!    bytecode ([`tensorlib::hw::interp::bytecode_dump`]).
//!
//! The corpus: the six Figure 3 PE templates, the banked 4×4
//! output-stationary GEMM design, and 200 seeds of the netlist fuzzer
//! (hierarchical modules, registers with enables and resets, hostile
//! names). A 1000-seed acceptance sweep rides behind `#[ignore]` — run it
//! with `cargo test --test interchange_roundtrip -- --ignored`.

use tensorlib::hw::fuzz::{
    check_text_roundtrip, check_yosys_roundtrip, gen_netlist, NetlistFuzzConfig,
};
use tensorlib::hw::interp::{bytecode_dump, elaborate};
use tensorlib::hw::pe::{build_pe, PeIoKind, PeSpec, PeTensorSpec};
use tensorlib::hw::text::{emit_text, parse_text, NetlistDoc};
use tensorlib::hw::yosys::{emit_yosys, parse_yosys};
use tensorlib::ir::DataType;
use tensorlib_dataflow::{Dataflow, LoopSelection, Stt};
use tensorlib_hw::design::{generate, HwConfig};
use tensorlib_hw::ArrayConfig;
use tensorlib_ir::workloads;

fn pe_spec(kinds: &[(&str, PeIoKind)]) -> PeSpec {
    PeSpec {
        name: "pe".into(),
        datatype: DataType::Int16,
        tensors: kinds
            .iter()
            .map(|(n, k)| PeTensorSpec {
                tensor: n.to_string(),
                kind: *k,
                delay: 1,
            })
            .collect(),
    }
}

/// Full round-trip contract on a document that may carry memory banks
/// (which the fuzz oracles, generating bankless netlists, never exercise).
fn assert_doc_round_trips(doc: &NetlistDoc, what: &str) {
    doc.validate().expect("document validates");
    let flat = elaborate(&doc.modules, &doc.banks, &doc.top).expect("original elaborates");
    let reference = bytecode_dump(&flat);

    let text = emit_text(doc);
    let parsed = parse_text(&text)
        .unwrap_or_else(|e| panic!("{what}: emitted text does not parse: {e}"));
    assert_eq!(&parsed, doc, "{what}: text round trip changed the document");
    assert_eq!(emit_text(&parsed), text, "{what}: text re-emission differs");
    let rt = elaborate(&parsed.modules, &parsed.banks, &parsed.top)
        .expect("text round trip elaborates");
    assert_eq!(bytecode_dump(&rt), reference, "{what}: text bytecode differs");

    let json = emit_yosys(doc);
    let parsed = parse_yosys(&json)
        .unwrap_or_else(|e| panic!("{what}: emitted yosys-json does not parse: {e}"));
    assert_eq!(&parsed, doc, "{what}: yosys round trip changed the document");
    assert_eq!(emit_yosys(&parsed), json, "{what}: yosys re-emission differs");
    let rt = elaborate(&parsed.modules, &parsed.banks, &parsed.top)
        .expect("yosys round trip elaborates");
    assert_eq!(bytecode_dump(&rt), reference, "{what}: yosys bytecode differs");
}

#[test]
fn figure3_pe_templates_round_trip_in_both_formats() {
    let templates: &[(&str, &[(&str, PeIoKind)])] = &[
        ("systolic_in", &[("a", PeIoKind::SystolicIn), ("c", PeIoKind::ReduceOut)]),
        ("systolic_out", &[("a", PeIoKind::DirectIn), ("c", PeIoKind::SystolicOut)]),
        ("stationary_in", &[("a", PeIoKind::StationaryIn), ("c", PeIoKind::ReduceOut)]),
        (
            "stationary_out",
            &[
                ("a", PeIoKind::DirectIn),
                ("b", PeIoKind::DirectIn),
                ("c", PeIoKind::StationaryOut),
            ],
        ),
        (
            "direct_in",
            &[
                ("a", PeIoKind::DirectIn),
                ("b", PeIoKind::DirectIn),
                ("c", PeIoKind::ReduceOut),
            ],
        ),
        ("reduce_out", &[("a", PeIoKind::DirectIn), ("c", PeIoKind::ReduceOut)]),
    ];
    for (name, kinds) in templates {
        let m = build_pe(&pe_spec(kinds));
        m.validate().expect("PE validates");
        let doc = NetlistDoc::from_modules(&[m], "pe");
        assert_doc_round_trips(&doc, name);
    }
}

#[test]
fn os_gemm_4x4_design_with_banks_round_trips() {
    let gemm = workloads::gemm(4, 4, 4);
    let sel = LoopSelection::by_names(&gemm, ["m", "n", "k"]).unwrap();
    let df = Dataflow::analyze(&gemm, sel, Stt::output_stationary()).unwrap();
    let design = generate(
        &df,
        &HwConfig {
            array: ArrayConfig::square(4),
            ..HwConfig::default()
        },
    )
    .unwrap();
    let doc = NetlistDoc::from_design(&design);
    assert!(!doc.banks.is_empty(), "the GEMM design should carry banks");
    assert_doc_round_trips(&doc, "os_gemm_4x4");
}

#[test]
fn two_hundred_fuzz_seeds_round_trip_in_both_formats() {
    let cfg = NetlistFuzzConfig::default();
    for seed in 0..200 {
        let (modules, top) = gen_netlist(seed, &cfg);
        if let Err(f) = check_text_roundtrip(&modules, &top)
            .and_then(|()| check_yosys_roundtrip(&modules, &top))
        {
            panic!("seed {seed}: {}: {}", f.kind.label(), f.detail);
        }
    }
}

/// The acceptance sweep: 1000 generator seeds through both interchange
/// oracles. Slower than the committed 200-seed battery, so it rides behind
/// `--ignored`.
#[test]
#[ignore = "acceptance sweep; run with -- --ignored"]
fn thousand_fuzz_seeds_round_trip_in_both_formats() {
    let cfg = NetlistFuzzConfig::default();
    for seed in 0..1000 {
        let (modules, top) = gen_netlist(seed, &cfg);
        if let Err(f) = check_text_roundtrip(&modules, &top)
            .and_then(|()| check_yosys_roundtrip(&modules, &top))
        {
            panic!("seed {seed}: {}: {}", f.kind.label(), f.detail);
        }
    }
}

#[test]
fn text_parser_pins_its_error_messages() {
    let m = build_pe(&pe_spec(&[("a", PeIoKind::DirectIn), ("c", PeIoKind::ReduceOut)]));
    let doc = NetlistDoc::from_modules(&[m], "pe");
    let text = emit_text(&doc);

    // Truncation anywhere after the header is an "end of input" error, not
    // a panic or a silently shorter design.
    for cut in [text.len() / 3, text.len() / 2, text.len() - 2] {
        let err = parse_text(&text[..cut]).expect_err("truncated input must not parse");
        assert!(err.line > 0, "cut at {cut}: error must carry a location");
        assert!(
            err.msg.contains("end of input")
                || err.msg.contains("unterminated string")
                || err.msg.contains("missing `top`"),
            "cut at {cut}: unexpected error {err}"
        );
    }

    // Each corruption is pinned to a located, descriptive message.
    let cases: &[(&str, &str, &str)] = &[
        ("input %1 \"a_in\" 16", "input %1 \"a_in\" 0", "bad net width"),
        (
            "input %1 \"a_in\" 16",
            "input %0 \"a_in\" 16",
            "duplicate or out-of-order net index",
        ),
        ("sext(%1, 32)", "sext(%9, 32)", "unknown net %9"),
        ("top \"pe\"", "", "missing `top` declaration"),
    ];
    for (needle, replacement, expected) in cases {
        assert!(text.contains(needle), "fixture drift: {needle:?} not found");
        let bad = text.replacen(needle, replacement, 1);
        let err = parse_text(&bad).expect_err("corrupted input must not parse");
        assert!(err.line > 0, "error must carry a location: {err}");
        assert!(
            err.msg.contains(expected),
            "expected {expected:?} in {err}"
        );
    }

    // An instance wired to a nonexistent port parses (the grammar is local)
    // but fails cross-module validation.
    let mut doc2 = doc.clone();
    doc2.top = "missing".into();
    let err = doc2.validate().expect_err("bad top must not validate");
    assert!(err.contains("is not defined"), "{err}");
}

//! The paper's headline experimental claims, asserted as tests.
//!
//! Each test names the section of the paper it reproduces. Absolute numbers
//! are model outputs; the *shape* of every claim (who wins, roughly by how
//! much, where the cliffs are) is what is asserted.

use tensorlib::cost::{fpga_cost, FpgaDevice};
use tensorlib::dataflow::dse::{find_named, DseConfig};
use tensorlib::explore::{explore, ExploreOptions};
use tensorlib::hw::design::{generate, HwConfig};
use tensorlib::hw::ArrayConfig;
use tensorlib::ir::{workloads, DataType};
use tensorlib::sim::perf;
use tensorlib::SimConfig;
use tensorlib_baselines::{BaselineGenerator, BaselineKind};

fn cycles(kernel: &tensorlib::Kernel, name: &str) -> u64 {
    let df = find_named(kernel, name, &DseConfig::default())
        .unwrap_or_else(|e| panic!("{name}: {e}"));
    let design = generate(&df, &HwConfig::default()).unwrap();
    perf::estimate(&design, kernel, &SimConfig::paper_default()).total_cycles
}

#[test]
fn s6a_gemm_multicast_beats_systolic() {
    // "the performance of multicast dataflows (MTM) is better than systolic
    // dataflow (STS) because multicast dataflows have a smaller pipeline
    // overhead".
    let gemm = workloads::gemm(256, 256, 256);
    let mtm = cycles(&gemm, "MNK-MTM");
    let sts = cycles(&gemm, "MNK-STS");
    assert!(mtm < sts, "MTM {mtm} !< STS {sts}");
}

#[test]
fn s6a_unicast_dataflows_lose_on_mttkrp_and_ttmc() {
    // "the unicast dataflows (e.g. IKL-UBBB and IJK-BBBU) perform worse than
    // others because ... bandwidth becomes insufficient".
    let sim = SimConfig::paper_default();
    let hw = HwConfig::default();
    for (kernel, unicast_name) in [
        (workloads::mttkrp(64, 64, 64, 64), "IKL-UBBB"),
        (workloads::ttmc(32, 32, 32, 32, 32), "IJK-BBBU"),
    ] {
        let uni = find_named(&kernel, unicast_name, &DseConfig::default()).unwrap();
        let uni_perf = perf::estimate(
            &generate(&uni, &hw).unwrap(),
            &kernel,
            &sim,
        );
        assert!(uni_perf.stall_cycles > 0, "{unicast_name} must stall");
        // The best reuse-only design beats it by a wide margin.
        let best = explore(&kernel, &ExploreOptions::default())
            .into_iter()
            .find(|p| p.dataflow.is_reuse_only())
            .expect("reuse-only designs exist");
        assert!(
            best.performance.total_cycles * 3 < uni_perf.total_cycles,
            "{}: best reuse {} vs unicast {}",
            kernel.name(),
            best.performance.total_cycles,
            uni_perf.total_cycles
        );
    }
}

#[test]
fn s6a_batched_gemv_is_unicast_only() {
    // "Batched-GEMV can only use unicast dataflow because the tensor A is
    // only accessed once".
    use tensorlib::FlowClass;
    let kernel = workloads::batched_gemv(32, 32, 32);
    let space = tensorlib::dataflow::dse::design_space(&kernel, &DseConfig::default());
    assert!(!space.is_empty());
    for d in &space {
        assert!(
            matches!(d.tensor_flow("A").unwrap().class, FlowClass::Unicast),
            "{} reuses A",
            d.name()
        );
    }
}

#[test]
fn s6a_conv2d_kcx_beats_small_loop_selections() {
    // "selecting KCX iterations can deliver better performance because it
    // becomes standard GEMM operation with large loop bounds", while XYP
    // selections idle PEs (p = 3).
    let l2 = workloads::resnet_layer2();
    let kcx = cycles(&l2, "KCX-SST");
    let xyp = cycles(&l2, "XYP-MMT");
    assert!(kcx * 2 < xyp, "KCX {kcx} should be >2x faster than XYP {xyp}");
}

#[test]
fn s6a_resnet_layer5_utilization_is_worse_than_layer2() {
    // "The performance of ResNet-Layer5 is even lower because X and Y loops
    // are also small (x = y = 7)".
    let sim = SimConfig::paper_default();
    let hw = HwConfig::default();
    let perf_of = |kernel: &tensorlib::Kernel, name: &str| {
        let df = find_named(kernel, name, &DseConfig::default()).unwrap();
        perf::estimate(&generate(&df, &hw).unwrap(), kernel, &sim).normalized_perf
    };
    let l2 = workloads::resnet_layer2();
    let l5 = workloads::resnet_layer5();
    assert!(perf_of(&l5, "XYP-MMT") < perf_of(&l2, "XYP-MMT"));
    assert!(perf_of(&l5, "KCX-SST") < perf_of(&l2, "KCX-SST"));
}

#[test]
fn s6b_energy_spread_dwarfs_area_spread_on_gemm() {
    // "The energy variation of GEMM ... shows 1.8X difference, while the
    // area has only 1.16X difference."
    let points = explore(&workloads::gemm(64, 64, 64), &ExploreOptions::default());
    let pmax = points.iter().map(|p| p.asic.power_mw).fold(0.0, f64::max);
    let pmin = points
        .iter()
        .map(|p| p.asic.power_mw)
        .fold(f64::MAX, f64::min);
    let amax = points.iter().map(|p| p.asic.area_mm2).fold(0.0, f64::max);
    let amin = points
        .iter()
        .map(|p| p.asic.area_mm2)
        .fold(f64::MAX, f64::min);
    let p_ratio = pmax / pmin;
    let a_ratio = amax / amin;
    assert!(
        (1.5..2.3).contains(&p_ratio),
        "power ratio {p_ratio} vs paper 1.8x"
    );
    assert!(
        (1.05..1.35).contains(&a_ratio),
        "area ratio {a_ratio} vs paper 1.16x"
    );
    assert!(p_ratio > a_ratio);
    // Paper's absolute envelope: 35..63 mW.
    assert!(pmin > 25.0 && pmax < 85.0, "power {pmin}..{pmax} mW");
}

#[test]
fn s6b_double_multicast_dataflows_cost_the_most_energy() {
    // "dataflow with two multicast input (MMT, MMS) consumes more energy".
    let points = explore(&workloads::gemm(64, 64, 64), &ExploreOptions::default());
    let mean = |sel: Vec<f64>| sel.iter().sum::<f64>() / sel.len().max(1) as f64;
    let mm = mean(
        points
            .iter()
            .filter(|p| p.letters.starts_with("MM"))
            .map(|p| p.asic.power_mw)
            .collect(),
    );
    let others = mean(
        points
            .iter()
            .filter(|p| !p.letters.starts_with("MM"))
            .map(|p| p.asic.power_mw)
            .collect(),
    );
    assert!(mm > others, "MM* mean {mm} !> others {others}");
}

#[test]
fn s6c_tensorlib_beats_systolic_baselines_by_about_21_percent() {
    let gemm = workloads::gemm(640, 640, 640);
    let df = find_named(&gemm, "MNK-STS", &DseConfig::default()).unwrap();
    let tl_design = generate(
        &df,
        &HwConfig {
            array: ArrayConfig { rows: 10, cols: 16 },
            datatype: DataType::Fp32,
            vectorize: 8,
            ..HwConfig::default()
        },
    )
    .unwrap();
    let tl = fpga_cost(&tl_design, &FpgaDevice::vu9p(), false);
    assert!((tl.peak_gops - 673.0).abs() < 45.0, "TL {}", tl.peak_gops);

    let mut best_baseline: f64 = 0.0;
    for kind in [BaselineKind::PolySa, BaselineKind::Susy] {
        let gen = BaselineGenerator::new(kind);
        let design = gen.generate(&gemm).unwrap();
        best_baseline = best_baseline.max(gen.fpga_report(&design).peak_gops);
    }
    let gain = tl.peak_gops / best_baseline - 1.0;
    assert!(
        (0.10..0.35).contains(&gain),
        "gain {:.0}% vs paper 21%",
        100.0 * gain
    );
}

#[test]
fn s6c_baselines_cannot_build_depthwise_or_batched_gemv() {
    for kind in [BaselineKind::PolySa, BaselineKind::Susy] {
        let gen = BaselineGenerator::new(kind);
        assert!(gen
            .find_dataflow(&workloads::depthwise_conv(16, 14, 14, 3, 3))
            .is_err());
        assert!(gen
            .find_dataflow(&workloads::batched_gemv(16, 16, 16))
            .is_err());
        // But TensorLib builds both.
        for kernel in [
            workloads::depthwise_conv(16, 14, 14, 3, 3),
            workloads::batched_gemv(16, 16, 16),
        ] {
            let points = explore(
                &kernel,
                &ExploreOptions {
                    dse: DseConfig {
                        max_designs: 200,
                        ..DseConfig::default()
                    },
                    ..ExploreOptions::default()
                },
            );
            assert!(!points.is_empty(), "{}", kernel.name());
        }
    }
}

#[test]
fn s6c_placement_optimization_reaches_328_mhz() {
    let gemm = workloads::gemm(640, 640, 640);
    let df = find_named(&gemm, "MNK-STS", &DseConfig::default()).unwrap();
    let design = generate(
        &df,
        &HwConfig {
            array: ArrayConfig { rows: 10, cols: 16 },
            datatype: DataType::Fp32,
            vectorize: 8,
            ..HwConfig::default()
        },
    )
    .unwrap();
    let base = fpga_cost(&design, &FpgaDevice::vu9p(), false);
    let opt = fpga_cost(&design, &FpgaDevice::vu9p(), true);
    assert!((base.freq_mhz - 263.0).abs() < 15.0, "{}", base.freq_mhz);
    assert!((opt.freq_mhz - 328.0).abs() < 20.0, "{}", opt.freq_mhz);
}

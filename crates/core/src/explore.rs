//! Design-space exploration: sweep every dataflow, score each design.

use std::fmt;

use serde::Serialize;
use tensorlib_cost::{asic_cost, Activity, AsicReport};
use tensorlib_dataflow::dse::{design_space, DseConfig};
use tensorlib_dataflow::Dataflow;
use tensorlib_hw::design::{generate, HwConfig};
use tensorlib_hw::fault::Hardening;
use tensorlib_ir::Kernel;
use tensorlib_linalg::par::par_map_catch;
use tensorlib_sim::{functional, perf, SimConfig, SimError, SimReport};

/// One scored point of the design space.
#[derive(Debug, Clone, Serialize)]
pub struct DesignPoint {
    /// Paper-style dataflow name (e.g. `KCX-SST`), with the hardening
    /// suffix appended for hardened variants (e.g. `KCX-SST+tmr+par`).
    pub name: String,
    /// Per-tensor letters.
    pub letters: String,
    /// The analyzed dataflow.
    pub dataflow: Dataflow,
    /// Fault-tolerance hardening this variant carries (its area/power
    /// overhead is already priced into [`DesignPoint::asic`]).
    pub hardening: Hardening,
    /// Cycle/throughput estimate.
    pub performance: SimReport,
    /// ASIC area/power at synthesis activity.
    pub asic: AsicReport,
}

/// Options for [`explore`].
#[derive(Debug, Clone)]
pub struct ExploreOptions {
    /// Enumeration configuration (selections, coefficient range, caps).
    pub dse: DseConfig,
    /// Hardware configuration for every candidate.
    pub hw: HwConfig,
    /// System configuration for the cycle model.
    pub sim: SimConfig,
    /// Evaluate power at synthesis-style full activity (`true`, the Figure 6
    /// methodology) or at the workload's achieved utilization (`false`).
    pub synthesis_activity: bool,
    /// Worker threads used to score candidates (`0` = one per available
    /// core, `1` = fully serial). Results are identical for every worker
    /// count — see [`explore`].
    pub workers: usize,
    /// Per-design-point simulated-cycle budget. A candidate whose estimated
    /// runtime exceeds this becomes an [`PointError::BudgetExceeded`] in
    /// [`ExploreOutcome::errors`] instead of a scored point; with
    /// [`ExploreOptions::functional_verify`] the same ceiling gates the
    /// functional simulation up front (see
    /// [`tensorlib_sim::simulate_budgeted`]). `None` disables the check.
    pub cycle_budget: Option<u64>,
    /// Additionally run the bit-exact functional simulator on every scored
    /// candidate (budgeted by [`ExploreOptions::cycle_budget`]). Expensive —
    /// off by default; sweeps that want end-to-end confidence opt in.
    pub functional_verify: bool,
    /// Hardening variants to score for every candidate dataflow. Empty (the
    /// default) scores only [`ExploreOptions::hw`]'s own hardening; a
    /// non-empty list expands the design space to candidates × variants, so
    /// resilience shows up as explicit points (with their priced overhead)
    /// in the Figure 6-style scatter.
    pub hardening_variants: Vec<Hardening>,
    /// Test-only chaos hook: candidates whose dataflow name is listed here
    /// panic during scoring, exercising the per-point panic isolation. Leave
    /// empty in real sweeps.
    #[doc(hidden)]
    pub chaos_panic_names: Vec<String>,
}

impl Default for ExploreOptions {
    fn default() -> ExploreOptions {
        ExploreOptions {
            dse: DseConfig::default(),
            hw: HwConfig::default(),
            sim: SimConfig::default(),
            synthesis_activity: true,
            workers: 0,
            cycle_budget: Some(1_000_000_000),
            functional_verify: false,
            hardening_variants: Vec::new(),
            chaos_panic_names: Vec::new(),
        }
    }
}

/// Why one candidate produced no [`DesignPoint`] (enumeration order is
/// preserved in [`ExploreOutcome::errors`]).
#[derive(Debug, Clone, PartialEq, Serialize)]
pub enum PointError {
    /// Scoring the candidate panicked; the panic was caught and isolated, so
    /// the rest of the sweep is unaffected.
    Panicked {
        /// Dataflow name of the candidate.
        name: String,
        /// The panic message.
        message: String,
    },
    /// The candidate's estimated (or functionally required) cycle count
    /// blew the per-point budget.
    BudgetExceeded {
        /// Dataflow name of the candidate.
        name: String,
        /// The configured ceiling.
        budget: u64,
        /// Cycles the point would need.
        needed: u64,
    },
    /// The functional simulator rejected the candidate (coverage gap or
    /// output mismatch — a generator bug surfaced by verification).
    Functional {
        /// Dataflow name of the candidate.
        name: String,
        /// The simulator's error, rendered.
        message: String,
    },
}

impl fmt::Display for PointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PointError::Panicked { name, message } => {
                write!(f, "{name}: scoring panicked: {message}")
            }
            PointError::BudgetExceeded {
                name,
                budget,
                needed,
            } => write!(
                f,
                "{name}: needs {needed} cycles, over the {budget}-cycle point budget"
            ),
            PointError::Functional { name, message } => {
                write!(f, "{name}: functional verification failed: {message}")
            }
        }
    }
}

/// Everything a sweep produced: scored points plus typed per-candidate
/// failures. [`explore`] returns just the points; callers that must account
/// for every candidate (CI sweeps, reports) use [`explore_outcome`].
#[derive(Debug, Clone, Serialize)]
pub struct ExploreOutcome {
    /// Scored designs, sorted by total cycles (fastest first).
    pub points: Vec<DesignPoint>,
    /// Candidates that failed to score, in enumeration order.
    pub errors: Vec<PointError>,
    /// Candidates skipped because their reuse pattern is not implementable
    /// by the hardware templates (expected, not an error).
    pub skipped: usize,
}

/// Enumerates the kernel's dataflow design space, generates hardware for
/// every *implementable* candidate (non-neighbour reuse vectors are skipped —
/// the same designs the paper's templates cannot wire), and scores each with
/// the cycle model and the ASIC cost model.
///
/// Candidates are scored on a scoped worker pool
/// ([`ExploreOptions::workers`] threads; the work is embarrassingly
/// parallel). The parallel map preserves enumeration order before the final
/// stable sort, so the returned points — names, ordering, every field — are
/// identical for any worker count.
///
/// Results are sorted by total cycles, fastest first.
///
/// # Examples
///
/// ```
/// use tensorlib::explore::{explore, ExploreOptions};
/// use tensorlib_ir::workloads;
///
/// let points = explore(&workloads::gemm(32, 32, 32), &ExploreOptions::default());
/// assert!(points.len() > 100);
/// // The fastest design beats the slowest by a wide margin.
/// let best = &points.first().unwrap().performance;
/// let worst = &points.last().unwrap().performance;
/// assert!(best.total_cycles < worst.total_cycles);
/// ```
pub fn explore(kernel: &Kernel, opts: &ExploreOptions) -> Vec<DesignPoint> {
    explore_outcome(kernel, opts).points
}

/// [`explore`], but with full accounting: every enumerated candidate ends up
/// either in `points`, in `errors` (typed — panic, budget, functional), or
/// in the `skipped` count. A panicking or budget-blowing candidate never
/// takes the sweep down and never steals another candidate's slot: scoring
/// runs under per-point panic isolation
/// ([`tensorlib_linalg::par::par_map_catch`]) and both `points` and `errors`
/// are byte-identical for any worker count.
pub fn explore_outcome(kernel: &Kernel, opts: &ExploreOptions) -> ExploreOutcome {
    let _span = tensorlib_obs::span("explore");
    let candidates = design_space(kernel, &opts.dse);
    // An empty variant list means "whatever the base config carries";
    // otherwise every candidate is scored once per hardening variant.
    let variants: Vec<Hardening> = if opts.hardening_variants.is_empty() {
        vec![opts.hw.hardening]
    } else {
        opts.hardening_variants.clone()
    };
    let jobs: Vec<(&Dataflow, Hardening)> = candidates
        .iter()
        .flat_map(|df| variants.iter().map(move |&h| (df, h)))
        .collect();
    // Scoring a candidate (hardware generation + cycle model + cost model)
    // is orders of magnitude heavier than the queue bookkeeping, so small
    // chunks keep the pool balanced.
    tensorlib_obs::counter_add("explore.jobs", jobs.len() as u64);
    let scored = par_map_catch(&jobs, opts.workers, 4, |_, &(df, h)| {
        let _point_span = tensorlib_obs::span("explore.point");
        let t0 = tensorlib_obs::is_enabled().then(tensorlib_obs::now_micros);
        let result = score(kernel, opts, df, h);
        if let Some(t0) = t0 {
            tensorlib_obs::hist_record(
                "explore.point_us",
                tensorlib_obs::now_micros().saturating_sub(t0),
            );
        }
        result
    });
    let mut points = Vec::new();
    let mut errors = Vec::new();
    let mut skipped = 0usize;
    for (result, (df, h)) in scored.into_iter().zip(&jobs) {
        match result {
            Ok(Some(Ok(point))) => points.push(point),
            Ok(Some(Err(e))) => errors.push(e),
            Ok(None) => skipped += 1,
            Err(message) => errors.push(PointError::Panicked {
                name: point_name(df, *h),
                message,
            }),
        }
    }
    tensorlib_obs::counter_add("explore.points", points.len() as u64);
    tensorlib_obs::counter_add("explore.errors", errors.len() as u64);
    tensorlib_obs::counter_add("explore.skipped", skipped as u64);
    // `scored` is in enumeration order, so this stable sort reproduces the
    // serial implementation's output exactly, ties and all.
    points.sort_by(|a, b| {
        a.performance
            .total_cycles
            .cmp(&b.performance.total_cycles)
            .then_with(|| a.name.cmp(&b.name))
    });
    ExploreOutcome {
        points,
        errors,
        skipped,
    }
}

/// The display name of one (dataflow, hardening) design point.
fn point_name(df: &Dataflow, hardening: Hardening) -> String {
    format!("{}{}", df.name(), hardening.suffix())
}

/// Scores one candidate dataflow under one hardening variant: `None` if its
/// reuse pattern is not implementable by the hardware templates (an expected
/// skip), `Some(Err)` for typed per-point failures.
fn score(
    kernel: &Kernel,
    opts: &ExploreOptions,
    df: &Dataflow,
    hardening: Hardening,
) -> Option<Result<DesignPoint, PointError>> {
    if opts.chaos_panic_names.iter().any(|n| *n == df.name()) {
        panic!("chaos hook tripped for {}", df.name());
    }
    let hw = HwConfig {
        hardening,
        ..opts.hw
    };
    let design = generate(df, &hw).ok()?;
    let performance = perf::estimate(&design, kernel, &opts.sim);
    if let Some(budget) = opts.cycle_budget {
        if performance.total_cycles > budget {
            return Some(Err(PointError::BudgetExceeded {
                name: point_name(df, hardening),
                budget,
                needed: performance.total_cycles,
            }));
        }
    }
    if opts.functional_verify {
        match functional::simulate_budgeted(&design, kernel, 42, opts.cycle_budget) {
            Ok(_) => {}
            Err(SimError::CycleBudgetExceeded { budget, needed }) => {
                return Some(Err(PointError::BudgetExceeded {
                    name: point_name(df, hardening),
                    budget,
                    needed,
                }))
            }
            Err(e) => {
                return Some(Err(PointError::Functional {
                    name: point_name(df, hardening),
                    message: e.to_string(),
                }))
            }
        }
    }
    let activity = if opts.synthesis_activity {
        Activity {
            utilization: 1.0,
            freq_mhz: opts.sim.freq_mhz,
        }
    } else {
        Activity {
            utilization: performance.normalized_perf,
            freq_mhz: opts.sim.freq_mhz,
        }
    };
    let asic = asic_cost(&design, &activity);
    Some(Ok(DesignPoint {
        name: point_name(df, hardening),
        letters: df.letters(),
        dataflow: df.clone(),
        hardening,
        performance,
        asic,
    }))
}

/// Returns the Pareto frontier of `points` in the (power, area) plane —
/// the view Figure 6 plots.
pub fn pareto_power_area(points: &[DesignPoint]) -> Vec<&DesignPoint> {
    let mut frontier: Vec<&DesignPoint> = Vec::new();
    for p in points {
        let dominated = points.iter().any(|q| {
            (q.asic.power_mw < p.asic.power_mw && q.asic.area_mm2 <= p.asic.area_mm2)
                || (q.asic.power_mw <= p.asic.power_mw && q.asic.area_mm2 < p.asic.area_mm2)
        });
        if !dominated {
            frontier.push(p);
        }
    }
    frontier
}

#[cfg(test)]
mod tests {
    use super::*;
    use tensorlib_ir::workloads;

    #[test]
    fn explore_gemm_covers_classics() {
        let points = explore(&workloads::gemm(32, 32, 32), &ExploreOptions::default());
        assert!(points.len() > 100);
        for want in ["SST", "STS", "MTM"] {
            assert!(
                points.iter().any(|p| p.letters == want),
                "missing {want} in explored space"
            );
        }
        // Sorted fastest-first.
        for w in points.windows(2) {
            assert!(w[0].performance.total_cycles <= w[1].performance.total_cycles);
        }
    }

    #[test]
    fn pareto_frontier_is_nonempty_and_undominated() {
        let points = explore(&workloads::gemm(16, 16, 16), &ExploreOptions::default());
        let frontier = pareto_power_area(&points);
        assert!(!frontier.is_empty());
        assert!(frontier.len() < points.len());
        for f in &frontier {
            for q in &points {
                assert!(
                    !(q.asic.power_mw < f.asic.power_mw && q.asic.area_mm2 < f.asic.area_mm2),
                    "{} dominates frontier point {}",
                    q.name,
                    f.name
                );
            }
        }
    }

    #[test]
    fn hardening_variants_are_explorable_design_points() {
        let k = workloads::gemm(16, 16, 16);
        let opts = ExploreOptions {
            hardening_variants: vec![Hardening::none(), Hardening::full()],
            ..ExploreOptions::default()
        };
        let points = explore(&k, &opts);
        let base = points
            .iter()
            .find(|p| p.letters == "SST" && !p.hardening.is_any())
            .expect("unhardened SST point");
        let hard = points
            .iter()
            .find(|p| p.name == format!("{}+tmr+par+abft", base.name))
            .expect("hardened twin of the SST point");
        // The hardened variant pays real area/power for its protection and
        // is a distinct scatter point with the same schedule.
        assert!(hard.asic.area_mm2 > base.asic.area_mm2);
        assert!(hard.asic.power_mw > base.asic.power_mw);
        assert_eq!(
            hard.performance.total_cycles,
            base.performance.total_cycles
        );
        assert!(hard.hardening.abft);
        // Exactly two variants per implementable candidate.
        assert_eq!(points.len() % 2, 0);
        assert_eq!(
            points.iter().filter(|p| p.hardening.is_any()).count(),
            points.len() / 2
        );
    }

    #[test]
    fn workload_activity_lowers_power() {
        let k = workloads::batched_gemv(16, 16, 16);
        let synth = explore(&k, &ExploreOptions::default());
        let real = explore(
            &k,
            &ExploreOptions {
                synthesis_activity: false,
                ..ExploreOptions::default()
            },
        );
        // Batched-GEMV stalls on bandwidth, so achieved-utilization power is
        // lower than synthesis-activity power for the same design.
        let s = synth.iter().find(|p| p.letters == "UTS");
        let r = real.iter().find(|p| p.letters == "UTS");
        if let (Some(s), Some(r)) = (s, r) {
            assert!(r.asic.power_mw < s.asic.power_mw);
        }
    }
}

//! Offline stand-in for `criterion`.
//!
//! Implements the benchmark-harness surface this workspace's `benches/` use:
//! [`Criterion::benchmark_group`], `bench_function`, `bench_with_input`,
//! [`BenchmarkId`], [`Bencher::iter`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros. Measurement is a simple
//! warmup-then-sample wall-clock loop printing mean time per iteration —
//! no statistics engine, no HTML reports, but enough to compare runs by eye
//! and to keep `cargo bench` runnable offline.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Top-level harness handle.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        let name = name.into();
        println!("group {name}");
        BenchmarkGroup {
            name,
            sample_size: 20,
        }
    }

    /// Runs a single benchmark outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, f: F) {
        run_bench(&id.to_string(), 20, f);
    }
}

/// A named set of benchmarks sharing a sample size.
#[derive(Debug)]
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup {
    /// Sets the number of measured samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, f: F) {
        run_bench(&format!("{}/{}", self.name, id), self.sample_size, f);
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) {
        run_bench(&format!("{}/{}", self.name, id), self.sample_size, |b| {
            f(b, input)
        });
    }

    /// Ends the group (upstream flushes reports here; the stub only marks the
    /// boundary in the output).
    pub fn finish(self) {
        println!("group {} done", self.name);
    }
}

/// A `function_name/parameter` benchmark label.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a parameter value.
    pub fn new(function: impl Display, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            function: function.to_string(),
            parameter: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", self.function, self.parameter)
    }
}

/// Drives the measured routine.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine`, accumulating per-iteration wall-clock cost.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed += start.elapsed();
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(label: &str, samples: usize, mut f: F) {
    // Warmup + calibration: find an iteration count that takes ~10ms.
    let mut iters = 1u64;
    loop {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        if b.elapsed >= Duration::from_millis(10) || iters >= 1 << 20 {
            break;
        }
        iters *= 2;
    }
    let mut total = Duration::ZERO;
    let mut total_iters = 0u64;
    for _ in 0..samples.max(1) {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        total += b.elapsed;
        total_iters += iters;
    }
    let per_iter = total.as_nanos() as f64 / total_iters.max(1) as f64;
    println!("bench {label}: {:.1} ns/iter ({total_iters} iters)", per_iter);
}

/// Bundles benchmark functions into one named runner, like upstream.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Emits `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_runs_and_times() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("t");
        group.sample_size(2);
        let mut ran = 0u64;
        group.bench_function("noop", |b| {
            b.iter(|| std::hint::black_box(1 + 1));
            ran += 1;
        });
        group.bench_with_input(BenchmarkId::new("sq", 3), &3u64, |b, &x| {
            b.iter(|| x * x)
        });
        group.finish();
        assert!(ran >= 2, "calibration plus samples each invoke the closure");
    }
}

//! Selecting three loops for space-time mapping.

use std::fmt;

use serde::{Deserialize, Serialize};
use tensorlib_ir::Kernel;

use crate::DataflowError;

/// The choice of three loop iterators mapped to `(p1, p2, t)`; all remaining
/// loops execute sequentially outside the space-time tile.
///
/// The order matters: the first selected iterator is the first coordinate of
/// the vector `x` the STT matrix multiplies.
///
/// # Examples
///
/// ```
/// use tensorlib_dataflow::LoopSelection;
/// use tensorlib_ir::workloads;
///
/// let conv = workloads::conv2d(8, 8, 8, 8, 3, 3);
/// let sel = LoopSelection::by_names(&conv, ["k", "c", "x"])?;
/// assert_eq!(sel.tag(), "KCX");
/// assert_eq!(sel.outer_indices(&conv).len(), 3); // y, p, q stay sequential
/// # Ok::<(), tensorlib_dataflow::DataflowError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct LoopSelection {
    names: [String; 3],
    indices: [usize; 3],
}

impl LoopSelection {
    /// Selects three loops by name, in `(x1, x2, x3)` order.
    ///
    /// # Errors
    ///
    /// Returns [`DataflowError`] if the kernel has fewer than three loops, a
    /// name is unknown, or a name repeats.
    pub fn by_names(
        kernel: &Kernel,
        names: [&str; 3],
    ) -> Result<LoopSelection, DataflowError> {
        if kernel.loop_nest().len() < 3 {
            return Err(DataflowError::TooFewLoops {
                available: kernel.loop_nest().len(),
            });
        }
        let mut indices = [0usize; 3];
        for (i, name) in names.iter().enumerate() {
            indices[i] = kernel
                .loop_nest()
                .index_of(name)
                .ok_or_else(|| DataflowError::UnknownLoop(name.to_string()))?;
            if names[..i].contains(name) {
                return Err(DataflowError::DuplicateLoop(name.to_string()));
            }
        }
        Ok(LoopSelection {
            names: names.map(str::to_string),
            indices,
        })
    }

    /// Selects three loops by nest position, in `(x1, x2, x3)` order.
    ///
    /// # Errors
    ///
    /// Returns [`DataflowError`] on out-of-range or repeated indices.
    pub fn by_indices(kernel: &Kernel, indices: [usize; 3]) -> Result<LoopSelection, DataflowError> {
        let nest = kernel.loop_nest();
        if nest.len() < 3 {
            return Err(DataflowError::TooFewLoops {
                available: nest.len(),
            });
        }
        let mut names: [String; 3] = Default::default();
        for (i, &idx) in indices.iter().enumerate() {
            let it = nest
                .iters()
                .get(idx)
                .ok_or_else(|| DataflowError::UnknownLoop(format!("#{idx}")))?;
            if indices[..i].contains(&idx) {
                return Err(DataflowError::DuplicateLoop(it.name().to_string()));
            }
            names[i] = it.name().to_string();
        }
        Ok(LoopSelection { names, indices })
    }

    /// The selected iterator names in `(x1, x2, x3)` order.
    pub fn names(&self) -> [&str; 3] {
        [&self.names[0], &self.names[1], &self.names[2]]
    }

    /// The selected nest indices in `(x1, x2, x3)` order.
    pub fn indices(&self) -> [usize; 3] {
        self.indices
    }

    /// The extents of the selected loops.
    pub fn extents(&self, kernel: &Kernel) -> [u64; 3] {
        let e = kernel.loop_nest().extents();
        [
            e[self.indices[0]],
            e[self.indices[1]],
            e[self.indices[2]],
        ]
    }

    /// Nest indices of the loops *not* selected (the sequential outer loops),
    /// in nest order.
    pub fn outer_indices(&self, kernel: &Kernel) -> Vec<usize> {
        (0..kernel.loop_nest().len())
            .filter(|i| !self.indices.contains(i))
            .collect()
    }

    /// The paper-style selection tag: first letter of each selected iterator,
    /// uppercased — e.g. `KCX` for loops `(k, c, x)`.
    pub fn tag(&self) -> String {
        self.names
            .iter()
            .map(|n| {
                n.chars()
                    .next()
                    .expect("nonempty iterator name")
                    .to_ascii_uppercase()
            })
            .collect()
    }
}

impl fmt::Display for LoopSelection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.tag())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tensorlib_ir::workloads;

    #[test]
    fn selection_by_names() {
        let k = workloads::gemm(4, 4, 4);
        let sel = LoopSelection::by_names(&k, ["n", "k", "m"]).unwrap();
        assert_eq!(sel.names(), ["n", "k", "m"]);
        assert_eq!(sel.indices(), [1, 2, 0]);
        assert_eq!(sel.tag(), "NKM");
        assert_eq!(sel.extents(&k), [4, 4, 4]);
        assert!(sel.outer_indices(&k).is_empty());
    }

    #[test]
    fn selection_by_indices() {
        let k = workloads::conv2d(2, 3, 4, 5, 3, 3);
        let sel = LoopSelection::by_indices(&k, [0, 1, 3]).unwrap();
        assert_eq!(sel.names(), ["k", "c", "x"]);
        assert_eq!(sel.outer_indices(&k), vec![2, 4, 5]);
        assert_eq!(sel.extents(&k), [2, 3, 5]);
    }

    #[test]
    fn selection_errors() {
        let k = workloads::gemm(4, 4, 4);
        assert!(matches!(
            LoopSelection::by_names(&k, ["m", "n", "z"]).unwrap_err(),
            DataflowError::UnknownLoop(_)
        ));
        assert!(matches!(
            LoopSelection::by_names(&k, ["m", "m", "k"]).unwrap_err(),
            DataflowError::DuplicateLoop(_)
        ));
        assert!(matches!(
            LoopSelection::by_indices(&k, [0, 1, 9]).unwrap_err(),
            DataflowError::UnknownLoop(_)
        ));
        assert!(matches!(
            LoopSelection::by_indices(&k, [0, 0, 1]).unwrap_err(),
            DataflowError::DuplicateLoop(_)
        ));
    }

    #[test]
    fn display_is_tag() {
        let k = workloads::conv2d(2, 3, 4, 5, 3, 3);
        let sel = LoopSelection::by_names(&k, ["x", "y", "p"]).unwrap();
        assert_eq!(sel.to_string(), "XYP");
    }
}

//! Simulation configuration and reports.

use serde::{Deserialize, Serialize};

/// System-level simulation parameters.
///
/// Defaults match the paper's §VI-A evaluation: 320 MHz, 32 GB/s between the
/// PE array and the scratchpad (= 100 bytes per cycle).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Clock frequency in MHz (used only to convert cycles to wall time).
    pub freq_mhz: f64,
    /// Array ↔ scratchpad bandwidth in bytes per cycle.
    pub bytes_per_cycle: f64,
}

impl SimConfig {
    /// The paper's evaluation setup: 320 MHz, 32 GB/s.
    pub fn paper_default() -> SimConfig {
        SimConfig {
            freq_mhz: 320.0,
            bytes_per_cycle: 32.0e9 / 320.0e6,
        }
    }
}

impl Default for SimConfig {
    fn default() -> SimConfig {
        SimConfig::paper_default()
    }
}

/// The analytical cycle model's output for one (design, kernel) pair.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimReport {
    /// Total execution cycles, all overheads included.
    pub total_cycles: u64,
    /// Cycles spent in compute phases (before bandwidth stalls).
    pub compute_cycles: u64,
    /// Extra cycles lost to scratchpad bandwidth stalls.
    pub stall_cycles: u64,
    /// Load cycles not hidden by double buffering.
    pub exposed_load_cycles: u64,
    /// Drain cycles (stationary-output writeback and pipeline drain).
    pub drain_cycles: u64,
    /// Number of space-time tiles executed (outer loops included).
    pub tiles: u64,
    /// Multiply-accumulate operations performed.
    pub macs: u64,
    /// Achieved MACs per cycle.
    pub macs_per_cycle: f64,
    /// Fraction of peak (PE count × cycles) actually used — the paper's
    /// Figure 5 normalized-performance metric.
    pub normalized_perf: f64,
    /// Wall-clock runtime in microseconds at the configured frequency.
    pub runtime_us: f64,
    /// Achieved throughput in 10⁹ operations per second (2 ops per MAC).
    pub gops: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_bandwidth() {
        let c = SimConfig::paper_default();
        assert!((c.bytes_per_cycle - 100.0).abs() < 1e-9);
        assert_eq!(c.freq_mhz, 320.0);
        assert_eq!(SimConfig::default(), c);
    }
}

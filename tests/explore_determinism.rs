//! Determinism of the parallel design-space exploration: [`explore`] must
//! return the *identical* result list — same designs, same ordering, same
//! scores — no matter how many worker threads score the candidates.
//!
//! The worker pool maps candidates in enumeration order and the final sort is
//! stable with a total tie-break, so this holds by construction; the test
//! pins it against regressions (e.g. a future unordered work queue).

use tensorlib::explore::{explore, ExploreOptions};
use tensorlib::ir::workloads;

fn with_workers(workers: usize) -> ExploreOptions {
    ExploreOptions {
        workers,
        ..ExploreOptions::default()
    }
}

#[test]
fn explore_results_are_identical_for_any_worker_count() {
    let kernel = workloads::gemm(16, 16, 16);
    let serial = explore(&kernel, &with_workers(1));
    assert!(!serial.is_empty());

    for workers in [2, 3, 8, 0] {
        let parallel = explore(&kernel, &with_workers(workers));
        assert_eq!(
            serial.len(),
            parallel.len(),
            "{workers} workers changed the number of designs"
        );
        for (i, (a, b)) in serial.iter().zip(&parallel).enumerate() {
            assert_eq!(a.name, b.name, "name mismatch at rank {i} ({workers} workers)");
            assert_eq!(
                a.letters, b.letters,
                "letters mismatch at rank {i} ({workers} workers)"
            );
            assert_eq!(
                a.performance.total_cycles, b.performance.total_cycles,
                "cycle count mismatch at rank {i} ({workers} workers)"
            );
            assert_eq!(
                a.asic.area_mm2, b.asic.area_mm2,
                "area mismatch at rank {i} ({workers} workers)"
            );
        }
    }
}

#[test]
fn design_space_dedup_is_identical_for_any_worker_count() {
    use tensorlib::dataflow::dse::{design_space, DseConfig};

    let kernel = workloads::gemm(8, 8, 8);
    let serial = design_space(
        &kernel,
        &DseConfig {
            workers: 1,
            ..DseConfig::default()
        },
    );
    let parallel = design_space(
        &kernel,
        &DseConfig {
            workers: 4,
            ..DseConfig::default()
        },
    );
    assert_eq!(serial.len(), parallel.len());
    for (a, b) in serial.iter().zip(&parallel) {
        assert_eq!(a.name(), b.name());
        assert_eq!(a.signature(), b.signature());
    }
}

//! Golden size pins for the optimizer over the committed reference designs.
//!
//! For each of the six Figure 3 PE templates and the 4×4 output-stationary
//! GEMM design, this pins the pre/post net counts, the flat compiled
//! bytecode op counts, and the worst combinational depth. Any optimizer or
//! generator change that moves these numbers must update the table — the
//! diff review then *is* the size/depth regression review.

use tensorlib::hw::interp::{elaborate, elaborate_design, flat_op_count};
use tensorlib::hw::opt::{netlist_stats, optimize_netlist, OptOptions};
use tensorlib::hw::pe::{build_pe, PeIoKind, PeSpec, PeTensorSpec};
use tensorlib::ir::DataType;
use tensorlib_dataflow::{Dataflow, LoopSelection, Stt};
use tensorlib_hw::design::{generate, HwConfig};
use tensorlib_hw::fault::Hardening;
use tensorlib_hw::ArrayConfig;
use tensorlib_ir::workloads;

/// (pre nets, post nets, pre depth, post depth, pre flat ops, post flat ops).
type Pin = (usize, usize, u32, u32, usize, usize);

fn pe_spec(kinds: &[(&str, PeIoKind)]) -> PeSpec {
    PeSpec {
        name: "pe".into(),
        datatype: DataType::Int16,
        tensors: kinds
            .iter()
            .map(|(n, k)| PeTensorSpec {
                tensor: n.to_string(),
                kind: *k,
                delay: 1,
            })
            .collect(),
    }
}

fn measure(modules: Vec<tensorlib::hw::netlist::Module>, top: &str) -> Pin {
    let pre = netlist_stats(&modules);
    let pre_ops = flat_op_count(&elaborate(&modules, &[], top).expect("pre elaborates"));
    let (optimized, stats) = optimize_netlist(&modules, top, &OptOptions::default());
    let post = netlist_stats(&optimized);
    let post_ops = flat_op_count(&elaborate(&optimized, &[], top).expect("post elaborates"));
    assert_eq!(stats.pre, pre, "optimize_netlist pre census disagrees");
    assert_eq!(stats.post, post, "optimize_netlist post census disagrees");
    (
        pre.nets,
        post.nets,
        pre.critical_path_depth,
        post.critical_path_depth,
        pre_ops,
        post_ops,
    )
}

#[test]
fn figure3_pe_templates_pin_their_optimized_sizes() {
    type Template<'a> = (&'a str, &'a [(&'a str, PeIoKind)], Pin);
    let templates: &[Template] = &[
        (
            "systolic_in",
            &[("a", PeIoKind::SystolicIn), ("c", PeIoKind::ReduceOut)],
            (6, 6, 0, 0, 3, 3),
        ),
        (
            "systolic_out",
            &[("a", PeIoKind::DirectIn), ("c", PeIoKind::SystolicOut)],
            (6, 6, 1, 1, 5, 5),
        ),
        (
            "stationary_in",
            &[("a", PeIoKind::StationaryIn), ("c", PeIoKind::ReduceOut)],
            (10, 10, 2, 2, 14, 14),
        ),
        (
            "stationary_out",
            &[
                ("a", PeIoKind::DirectIn),
                ("b", PeIoKind::DirectIn),
                ("c", PeIoKind::StationaryOut),
            ],
            (10, 10, 3, 3, 13, 13),
        ),
        (
            "direct_in",
            &[
                ("a", PeIoKind::DirectIn),
                ("b", PeIoKind::DirectIn),
                ("c", PeIoKind::ReduceOut),
            ],
            (5, 5, 1, 1, 4, 4),
        ),
        (
            "reduce_out",
            &[("a", PeIoKind::DirectIn), ("c", PeIoKind::ReduceOut)],
            (4, 4, 0, 0, 2, 2),
        ),
    ];
    let mut moved = Vec::new();
    for (name, kinds, expected) in templates {
        let m = build_pe(&pe_spec(kinds));
        m.validate().expect("PE validates");
        let got = measure(vec![m], "pe");
        if got != *expected {
            moved.push(format!("{name}: expected {expected:?}, got {got:?}"));
        }
    }
    assert!(moved.is_empty(), "size pins moved:\n{}", moved.join("\n"));
}

#[test]
fn os_gemm_4x4_pins_its_optimized_size() {
    let gemm = workloads::gemm(4, 4, 4);
    let sel = LoopSelection::by_names(&gemm, ["m", "n", "k"]).unwrap();
    let df = Dataflow::analyze(&gemm, sel, Stt::output_stationary()).unwrap();
    let design = generate(
        &df,
        &HwConfig {
            array: ArrayConfig::square(4),
            ..HwConfig::default()
        },
    )
    .unwrap();
    let mut opt_design = design.clone();
    let stats = opt_design.optimize(&OptOptions::default());
    let pre = netlist_stats(design.modules());
    let post = netlist_stats(opt_design.modules());
    assert_eq!(stats.pre, pre, "optimize pre census disagrees");
    assert_eq!(stats.post, post, "optimize post census disagrees");
    let pre_ops = flat_op_count(&elaborate_design(&design, design.top()).unwrap());
    let post_ops =
        flat_op_count(&elaborate_design(&opt_design, opt_design.top()).unwrap());
    let got: Pin = (
        pre.nets,
        post.nets,
        pre.critical_path_depth,
        post.critical_path_depth,
        pre_ops,
        post_ops,
    );
    assert_eq!(got, (175, 180, 5, 5, 343, 314), "4x4 OS GEMM size pin moved");
}

/// The TMR-hardened 4×4 GEMM — the fault-campaign reference — is where the
/// pipeline earns its keep: the controller is replicated three times, so the
/// sharing the optimizer finds in one replica lands three times over. This
/// is the design the performance gate's `opt` section holds to the ≥10%
/// op-reduction bar (the plain design above is already tight: the generator
/// emits no redundant PE logic, and 8.5% is all the controller has to give).
#[test]
fn tmr_hardened_gemm_clears_the_ten_percent_bar() {
    let gemm = workloads::gemm(4, 4, 4);
    let sel = LoopSelection::by_names(&gemm, ["m", "n", "k"]).unwrap();
    let df = Dataflow::analyze(&gemm, sel, Stt::output_stationary()).unwrap();
    let design = generate(
        &df,
        &HwConfig {
            array: ArrayConfig::square(4),
            hardening: Hardening {
                tmr_ctrl: true,
                ..Hardening::none()
            },
            ..HwConfig::default()
        },
    )
    .unwrap();
    let mut opt_design = design.clone();
    let stats = opt_design.optimize(&OptOptions::default());
    let pre_ops = flat_op_count(&elaborate_design(&design, design.top()).unwrap());
    let post_ops =
        flat_op_count(&elaborate_design(&opt_design, opt_design.top()).unwrap());
    let got: Pin = (
        stats.pre.nets,
        stats.post.nets,
        stats.pre.critical_path_depth,
        stats.post.critical_path_depth,
        pre_ops,
        post_ops,
    );
    assert_eq!(got, (202, 207, 7, 5, 601, 514), "TMR GEMM size pin moved");
    assert!(
        (post_ops as f64) <= 0.9 * pre_ops as f64,
        "op reduction below 10% on the hardened reference: {pre_ops} -> {post_ops}"
    );
}

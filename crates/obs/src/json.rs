//! A minimal JSON parser for report validation.
//!
//! The vendored `serde_json` stub only *writes* JSON, so schema checks and
//! trace well-formedness tests need a reader. This is a small recursive
//! descent parser: full JSON syntax, objects kept in document order,
//! numbers as `f64` (plus a lossless `u64` view for integer fields). It is
//! a validator for our own reports, not a general-purpose library.

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (integers up to 2^53 survive exactly).
    Num(f64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, entries in document order.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Looks up `key` in an object value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a finite `f64`, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is one exactly.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if it is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The object entries in document order, if it is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Obj(entries) => Some(entries),
            _ => None,
        }
    }
}

/// Parses a complete JSON document; trailing whitespace allowed, trailing
/// garbage is an error.
pub fn parse(input: &str) -> Result<Value, String> {
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing garbage at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(Value::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_literal(bytes, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Value::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", Value::Null),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(bytes, pos),
        Some(c) => Err(format!("unexpected byte {c:#x} at {pos}", pos = *pos)),
    }
}

fn parse_literal(
    bytes: &[u8],
    pos: &mut usize,
    literal: &str,
    value: Value,
) -> Result<Value, String> {
    if bytes[*pos..].starts_with(literal.as_bytes()) {
        *pos += literal.len();
        Ok(value)
    } else {
        Err(format!("expected `{literal}` at byte {pos}", pos = *pos))
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    *pos += 1; // consume '{'
    let mut entries = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Value::Obj(entries));
    }
    loop {
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b'"') {
            return Err(format!("expected object key at byte {pos}", pos = *pos));
        }
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return Err(format!("expected `:` at byte {pos}", pos = *pos));
        }
        *pos += 1;
        let value = parse_value(bytes, pos)?;
        entries.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Value::Obj(entries));
            }
            _ => return Err(format!("expected `,` or `}}` at byte {pos}", pos = *pos)),
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    *pos += 1; // consume '['
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Value::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Value::Arr(items));
            }
            _ => return Err(format!("expected `,` or `]` at byte {pos}", pos = *pos)),
        }
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    *pos += 1; // consume opening quote
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")?;
                        let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                        let code = u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
                        // Surrogate pairs are not needed for our reports;
                        // map lone surrogates to the replacement character.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    other => return Err(format!("bad escape {other:?}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Copy the maximal run of unescaped bytes in one go. The
                // delimiters are ASCII and UTF-8 continuation bytes are
                // ≥ 0x80, so stopping on `"` or `\` never splits a scalar,
                // and the run is valid UTF-8 (the input is a &str).
                let start = *pos;
                while *pos < bytes.len() && !matches!(bytes[*pos], b'"' | b'\\') {
                    *pos += 1;
                }
                let run = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
                out.push_str(run);
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
    text.parse::<f64>()
        .map(Value::Num)
        .map_err(|_| format!("bad number `{text}` at byte {start}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let doc = parse(
            r#"{"a": [1, 2.5, -3], "b": {"c": "hi\n", "d": true, "e": null}, "f": "x"}"#,
        )
        .unwrap();
        assert_eq!(
            doc.get("a").and_then(Value::as_array).map(<[Value]>::len),
            Some(3)
        );
        assert_eq!(doc.get("a").unwrap().as_array().unwrap()[0].as_u64(), Some(1));
        assert_eq!(
            doc.get("b").and_then(|b| b.get("c")).and_then(Value::as_str),
            Some("hi\n")
        );
        assert_eq!(doc.get("b").and_then(|b| b.get("e")), Some(&Value::Null));
        assert_eq!(doc.get("missing"), None);
    }

    #[test]
    fn object_order_is_preserved() {
        let doc = parse(r#"{"z": 1, "a": 2}"#).unwrap();
        let keys: Vec<&str> = doc
            .as_object()
            .unwrap()
            .iter()
            .map(|(k, _)| k.as_str())
            .collect();
        assert_eq!(keys, ["z", "a"]);
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(parse("{").is_err());
        assert!(parse("[1, 2").is_err());
        assert!(parse("{\"a\" 1}").is_err());
        assert!(parse("{} trailing").is_err());
        assert!(parse("\"unterminated").is_err());
        assert!(parse("01a").is_err());
    }

    #[test]
    fn round_trips_vendored_serializer_output() {
        use std::collections::BTreeMap;
        let mut m: BTreeMap<String, Vec<u64>> = BTreeMap::new();
        m.insert("xs".to_string(), vec![1, 2, 3]);
        let s = serde_json::to_string(&m).unwrap();
        let doc = parse(&s).unwrap();
        let xs = doc.get("xs").and_then(Value::as_array).unwrap();
        let back: Vec<u64> = xs.iter().map(|v| v.as_u64().unwrap()).collect();
        assert_eq!(back, [1, 2, 3]);
    }

    #[test]
    fn as_u64_bounds() {
        assert_eq!(parse("0").unwrap().as_u64(), Some(0));
        assert_eq!(parse("-1").unwrap().as_u64(), None);
        assert_eq!(parse("1.5").unwrap().as_u64(), None);
    }
}

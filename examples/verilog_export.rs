//! Export generated RTL: an Eyeriss-style diagonal-multicast Conv2D design.
//!
//! Picks a dataflow with a diagonal multicast for the input feature map (the
//! interconnect pattern of paper Figure 4(c)), generates the full design, and
//! writes the Verilog to `reports/eyeriss_style.v`.
//!
//! Run with: `cargo run --release --example verilog_export`

use std::fs;

use tensorlib::dataflow::dse::{design_space, DseConfig};
use tensorlib::hw::design::{generate, HwConfig};
use tensorlib::hw::verilog::emit_design;
use tensorlib::hw::ArrayConfig;
use tensorlib::ir::workloads;
use tensorlib::FlowClass;

fn main() {
    let kernel = workloads::conv2d(8, 8, 14, 14, 3, 3);
    // Hunt the space for a diagonal multicast on the activations — Eyeriss'
    // signature row-stationary trick.
    let space = design_space(&kernel, &DseConfig::default());
    let eyeriss_like = space
        .iter()
        .find(|d| {
            // A diagonally-multicast activation, and every reuse vector a
            // wireable nearest-neighbour step.
            d.tensor_flow("A").is_some_and(|f| {
                matches!(
                    f.class,
                    FlowClass::Multicast { dp } if dp[0].abs() == 1 && dp[1].abs() == 1
                )
            }) && generate(d, &HwConfig::default()).is_ok()
        })
        .expect("conv2d admits diagonal multicast dataflows");
    println!("selected dataflow:\n{eyeriss_like}\n");

    let design = generate(
        eyeriss_like,
        &HwConfig {
            array: ArrayConfig::square(8),
            ..HwConfig::default()
        },
    )
    .expect("wireable");
    design.validate().expect("structurally sound");

    let verilog = emit_design(&design);
    let dir = std::path::Path::new("reports");
    fs::create_dir_all(dir).expect("reports dir");
    let path = dir.join("eyeriss_style.v");
    fs::write(&path, &verilog).expect("file is writable");
    println!(
        "wrote {} ({} lines, {} modules + {} bank templates; top = {})",
        path.display(),
        verilog.lines().count(),
        design.modules().len(),
        design.mem_banks().len(),
        design.top(),
    );
    let s = design.summary();
    println!(
        "resources: {} PEs, {} multipliers, {} tree adders, {} reg bits, {} banks ({} bits)",
        s.pes,
        s.multipliers,
        s.tree_adders,
        s.total_reg_bits(),
        s.mem_banks,
        s.mem_bits
    );
}

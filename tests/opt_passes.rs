//! Per-pass property battery for the netlist optimizer.
//!
//! Each rewrite pass runs *in isolation* (`OptOptions { <pass>: true,
//! ..OptOptions::none() }`) over 200 fuzz-generator seeds, and every
//! optimized netlist is proven bit-identical to the original by the
//! three-engine lock-step oracle (compiled reference on the unoptimized
//! netlist, compiled + tree-walking on the optimized one, then the 64-lane
//! batch engine). On top of equivalence, each pass carries its own
//! structural invariant:
//!
//! * fold leaves no fully-constant operator application behind,
//! * GC leaves no unreferenced net behind,
//! * rebalancing bounds reduction-chain depth by `⌈log₂ n⌉`,
//! * CSE never increases the compiled-bytecode cost estimate.

use tensorlib_hw::fuzz::{check_opt_netlist_with, gen_netlist, NetlistFuzzConfig};
use tensorlib_hw::netlist::{Expr, Module};
use tensorlib_hw::opt::{
    critical_path_depth, module_lowered_ops, optimize_netlist, OptOptions,
};

const SEEDS: u64 = 200;
const ORACLE_LANES: usize = 2;

/// Runs one pass configuration over the seed window, checking equivalence
/// and a per-module invariant on the optimized output.
fn battery(opts: OptOptions, label: &str, invariant: impl Fn(&Module)) {
    let cfg = NetlistFuzzConfig::default();
    for seed in 0..SEEDS {
        let (modules, top) = gen_netlist(seed, &cfg);
        check_opt_netlist_with(&modules, &top, seed, cfg.cycles, ORACLE_LANES, &opts)
            .unwrap_or_else(|f| panic!("{label}: seed {seed} diverged: {f:?}"));
        let (optimized, _) = optimize_netlist(&modules, &top, &opts);
        for m in &optimized {
            invariant(m);
        }
    }
}

fn each_expr(m: &Module, mut f: impl FnMut(&Expr)) {
    fn walk(e: &Expr, f: &mut impl FnMut(&Expr)) {
        f(e);
        match e {
            Expr::Const { .. } | Expr::Net(_) => {}
            Expr::Not(a) | Expr::Resize(a, _) | Expr::SignExtend(a, _) => walk(a, f),
            Expr::Bin(_, a, b) => {
                walk(a, f);
                walk(b, f);
            }
            Expr::Mux {
                sel,
                on_true,
                on_false,
            } => {
                walk(sel, f);
                walk(on_true, f);
                walk(on_false, f);
            }
        }
    }
    for (_, e) in m.assigns() {
        walk(e, &mut f);
    }
    for r in m.regs() {
        walk(&r.next, &mut f);
        if let Some(en) = &r.enable {
            walk(en, &mut f);
        }
    }
}

/// Constant folding in isolation: equivalent, and no operator application
/// whose operands are all literals survives (those are exactly the shapes
/// the fold rules erase unconditionally).
#[test]
fn fold_is_equivalent_and_leaves_no_constant_operations() {
    let opts = OptOptions {
        fold: true,
        ..OptOptions::none()
    };
    battery(opts, "fold", |m| {
        each_expr(m, |e| {
            let is_const = |x: &Expr| matches!(x, Expr::Const { .. });
            let leftover = match e {
                Expr::Not(a) | Expr::Resize(a, _) | Expr::SignExtend(a, _) => is_const(a),
                Expr::Bin(_, a, b) => is_const(a) && is_const(b),
                _ => false,
            };
            assert!(
                !leftover,
                "module {:?} kept a foldable constant expression: {e:?}",
                m.name()
            );
        });
    });
}

/// Peepholes in isolation: equivalent, and no mux with identical branches
/// survives (the one peephole that needs no masking precondition).
#[test]
fn peephole_is_equivalent_and_collapses_trivial_muxes() {
    let opts = OptOptions {
        peephole: true,
        ..OptOptions::none()
    };
    battery(opts, "peephole", |m| {
        each_expr(m, |e| {
            if let Expr::Mux {
                on_true, on_false, ..
            } = e
            {
                assert!(
                    on_true != on_false,
                    "module {:?} kept mux(s, x, x): {e:?}",
                    m.name()
                );
            }
        });
    });
}

/// Rebalancing in isolation over the fuzz corpus: pure equivalence (the
/// depth bound is proven on explicit chains below, where `n` is known).
#[test]
fn rebalance_is_equivalent_on_fuzzed_netlists() {
    let opts = OptOptions {
        rebalance: true,
        ..OptOptions::none()
    };
    battery(opts, "rebalance", |_| {});
}

/// CSE in isolation: equivalent, and the compiled-bytecode cost estimate
/// never goes up (every hoist is gated on that exact model).
#[test]
fn cse_is_equivalent_and_never_costs_ops() {
    let opts = OptOptions {
        cse: true,
        ..OptOptions::none()
    };
    let cfg = NetlistFuzzConfig::default();
    for seed in 0..SEEDS {
        let (modules, top) = gen_netlist(seed, &cfg);
        check_opt_netlist_with(&modules, &top, seed, cfg.cycles, ORACLE_LANES, &opts)
            .unwrap_or_else(|f| panic!("cse: seed {seed} diverged: {f:?}"));
        let (optimized, _) = optimize_netlist(&modules, &top, &opts);
        for (pre, post) in modules.iter().zip(&optimized) {
            assert!(
                module_lowered_ops(post) <= module_lowered_ops(pre),
                "cse raised the op estimate in {:?} on seed {seed}: {} -> {}",
                pre.name(),
                module_lowered_ops(pre),
                module_lowered_ops(post)
            );
        }
    }
}

/// GC in isolation: equivalent, and every surviving net is referenced — as
/// a port, a driven target, a read, a register, or an instance connection.
#[test]
fn gc_is_equivalent_and_leaves_no_unreferenced_nets() {
    let opts = OptOptions {
        gc: true,
        ..OptOptions::none()
    };
    battery(opts, "gc", |m| {
        let mut referenced = vec![false; m.nets().len()];
        let mut reads = Vec::new();
        for (id, _) in m.ports() {
            referenced[*id] = true;
        }
        for (target, e) in m.assigns() {
            referenced[*target] = true;
            e.collect_reads(&mut reads);
        }
        for r in m.regs() {
            referenced[r.target] = true;
            r.next.collect_reads(&mut reads);
            if let Some(en) = &r.enable {
                en.collect_reads(&mut reads);
            }
        }
        for id in reads {
            referenced[id] = true;
        }
        for inst in m.instances() {
            for (_, id) in &inst.connections {
                referenced[*id] = true;
            }
        }
        for (id, is_ref) in referenced.iter().enumerate() {
            assert!(
                is_ref,
                "module {:?} kept unreferenced net {:?}",
                m.name(),
                m.nets()[id].name
            );
        }
    });
}

/// The full default pipeline is also equivalent over the same window — the
/// composed passes must not interfere with each other.
#[test]
fn full_pipeline_is_equivalent_over_the_seed_window() {
    battery(OptOptions::default(), "full", |_| {});
}

/// The depth bound the rebalancer promises: an `n`-leaf same-width chain
/// optimizes to depth `⌈log₂ n⌉` for every shape from 2 to 33 leaves, for
/// an associative operator (`xor`) and a width-uniform modular one (`add`).
#[test]
fn rebalanced_chains_meet_the_log2_depth_bound() {
    for op in ["xor", "add"] {
        for n in 2usize..=33 {
            let mut m = Module::new("chain");
            let inputs: Vec<_> = (0..n)
                .map(|i| m.input(format!("i{i}"), 8))
                .collect();
            let y = m.output("y", 8);
            let mut acc = Expr::net(inputs[0]);
            for &id in &inputs[1..] {
                acc = match op {
                    "xor" => Expr::Bin(
                        tensorlib_hw::netlist::BinOp::Xor,
                        Box::new(acc),
                        Box::new(Expr::net(id)),
                    ),
                    _ => acc.add(Expr::net(id)),
                };
            }
            m.assign(y, acc);
            assert_eq!(critical_path_depth(&m), (n - 1) as u32);
            let opts = OptOptions {
                rebalance: true,
                ..OptOptions::none()
            };
            let (optimized, _) = optimize_netlist(&[m.clone()], "chain", &opts);
            let depth = critical_path_depth(&optimized[0]);
            let bound = (n as f64).log2().ceil() as u32;
            assert!(
                depth <= bound,
                "{op} chain of {n} leaves rebalanced to depth {depth}, bound {bound}"
            );
            tensorlib_hw::fuzz::assert_engines_agree(&optimized, "chain", n as u64, 8);
        }
    }
}

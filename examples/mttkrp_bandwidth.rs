//! Why reuse matters: measured scratchpad traffic for MTTKRP dataflows.
//!
//! Runs the bit-exact functional simulator (which charges each tensor element
//! to its first delivery into the array) on a reuse-rich dataflow and on the
//! unicast IKL dataflow the paper calls out as bandwidth-bound, then shows the
//! cycle model agreeing that the unicast design stalls at 32 GB/s.
//!
//! Run with: `cargo run --release --example mttkrp_bandwidth`

use tensorlib::dataflow::dse::{find_named, DseConfig};
use tensorlib::hw::design::{generate, HwConfig};
use tensorlib::hw::ArrayConfig;
use tensorlib::ir::workloads;
use tensorlib::sim::{functional, perf};
use tensorlib::SimConfig;

fn main() {
    // Small instance so the functional simulator's exact traffic accounting
    // runs in milliseconds; the conclusions scale with the kernel.
    let kernel = workloads::mttkrp(16, 16, 16, 16);
    let hw = HwConfig {
        array: ArrayConfig::square(8),
        ..HwConfig::default()
    };
    let sim = SimConfig::paper_default();
    let dse = DseConfig::default();

    for name in ["IJK-MMBT", "IKL-UBBB"] {
        let df = find_named(&kernel, name, &dse).expect("dataflow exists");
        let design = generate(&df, &hw).expect("wireable");
        let run = functional::simulate(&design, &kernel, 9).expect("matches reference");
        let est = perf::estimate(&design, &kernel, &sim);
        println!("{name}:");
        for f in df.flows() {
            println!("    {f}");
        }
        println!(
            "    measured: {:.2} new words/cycle from scratchpad (peak {} in a cycle)",
            run.avg_new_words_per_cycle, run.peak_new_words_per_cycle
        );
        println!(
            "    modeled : {} total cycles, {} stall cycles, {:.1}% of peak\n",
            est.total_cycles,
            est.stall_cycles,
            100.0 * est.normalized_perf
        );
    }
    println!(
        "The unicast dataflow must deliver a fresh element of A to every PE\n\
         every cycle; at 32 GB/s that demand cannot be met and the design\n\
         stalls — the paper's explanation for MTTKRP/TTMc in Figure 5."
    );
}

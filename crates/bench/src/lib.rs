//! Shared plumbing for the experiment-reproduction binaries.
//!
//! Each binary in `src/bin/` regenerates one table or figure of the paper
//! (see `DESIGN.md` §4 for the index). This library holds the text-table
//! formatter and the JSON report dump they share.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Write as _;
use std::path::PathBuf;

/// A simple fixed-width text table.
///
/// # Examples
///
/// ```
/// use tensorlib_bench::TextTable;
/// let mut t = TextTable::new(vec!["dataflow", "cycles"]);
/// t.row(vec!["MNK-SST".into(), "1504".into()]);
/// let s = t.to_string();
/// assert!(s.contains("MNK-SST"));
/// assert!(s.contains("cycles"));
/// ```
#[derive(Debug, Clone)]
pub struct TextTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> TextTable {
        TextTable {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row (must match the header count).
    ///
    /// # Panics
    ///
    /// Panics if the column count differs from the headers.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "column count mismatch");
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` if the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

impl std::fmt::Display for TextTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut line = String::new();
        for (i, h) in self.headers.iter().enumerate() {
            let _ = write!(line, "{:<w$}  ", h, w = widths[i]);
        }
        writeln!(f, "{}", line.trim_end())?;
        writeln!(f, "{}", "-".repeat(line.trim_end().len()))?;
        for row in &self.rows {
            let mut line = String::new();
            for (i, c) in row.iter().enumerate() {
                let _ = write!(line, "{:<w$}  ", c, w = widths[i]);
            }
            writeln!(f, "{}", line.trim_end())?;
        }
        Ok(())
    }
}

/// Where experiment binaries drop machine-readable results
/// (`<workspace>/reports/`). Created on demand.
pub fn reports_dir() -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("reports");
    std::fs::create_dir_all(&dir).expect("reports directory is creatable");
    dir
}

/// Serializes `value` as pretty JSON into `reports/<name>.json` and returns
/// the path.
pub fn dump_json<T: serde::Serialize>(name: &str, value: &T) -> PathBuf {
    let path = reports_dir().join(format!("{name}.json"));
    let json = serde_json::to_string_pretty(value).expect("report serializes");
    // Atomic (tmp + fsync + rename): a crash mid-dump never leaves a
    // truncated report where a previous run's good one stood.
    tensorlib_obs::atomic_write(&path, json.as_bytes()).expect("report file is writable");
    path
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_formatting_aligns() {
        let mut t = TextTable::new(vec!["a", "long-header"]);
        t.row(vec!["xxxxxxxx".into(), "1".into()]);
        t.row(vec!["y".into(), "2".into()]);
        let s = t.to_string();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("a "));
        assert!(lines[1].starts_with("---"));
        assert!(!t.is_empty());
        assert_eq!(t.len(), 2);
    }

    #[test]
    #[should_panic(expected = "column count")]
    fn ragged_row_panics() {
        let mut t = TextTable::new(vec!["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn json_dump_round_trips() {
        let path = dump_json("selftest", &vec![1, 2, 3]);
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains('2'));
        std::fs::remove_file(path).ok();
    }
}

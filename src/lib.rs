//! Umbrella crate for the TensorLib reproduction workspace.
//!
//! This crate exists to anchor the workspace-level integration tests in
//! `tests/` and the runnable examples in `examples/`. The public API lives in
//! the [`tensorlib`] facade crate; see the README for a tour.

pub use tensorlib;

//! The unified error type for the facade API.

use std::fmt;

use tensorlib_dataflow::DataflowError;
use tensorlib_hw::HwError;
use tensorlib_ir::KernelError;
use tensorlib_sim::SimError;

/// Any failure the high-level TensorLib API can produce.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// Kernel construction or execution failed.
    Kernel(KernelError),
    /// Dataflow analysis failed (bad STT, bad selection, bad name).
    Dataflow(DataflowError),
    /// Hardware generation failed (unwireable reuse vector).
    Hardware(HwError),
    /// Simulation failed (coverage gap or output mismatch).
    Simulation(SimError),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Kernel(e) => write!(f, "kernel error: {e}"),
            Error::Dataflow(e) => write!(f, "dataflow error: {e}"),
            Error::Hardware(e) => write!(f, "hardware error: {e}"),
            Error::Simulation(e) => write!(f, "simulation error: {e}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Kernel(e) => Some(e),
            Error::Dataflow(e) => Some(e),
            Error::Hardware(e) => Some(e),
            Error::Simulation(e) => Some(e),
        }
    }
}

impl From<KernelError> for Error {
    fn from(e: KernelError) -> Error {
        Error::Kernel(e)
    }
}

impl From<DataflowError> for Error {
    fn from(e: DataflowError) -> Error {
        Error::Dataflow(e)
    }
}

impl From<HwError> for Error {
    fn from(e: HwError) -> Error {
        Error::Hardware(e)
    }
}

impl From<SimError> for Error {
    fn from(e: SimError) -> Error {
        Error::Simulation(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: Error = DataflowError::SingularStt.into();
        assert!(matches!(e, Error::Dataflow(_)));
        assert!(e.to_string().contains("dataflow"));
        let e: Error = HwError::EmptyArray.into();
        assert!(e.to_string().contains("hardware"));
        let e: Error = KernelError::MissingOutput.into();
        assert!(e.to_string().contains("kernel"));
        let e: Error = SimError::CoverageGap {
            expected: 1,
            executed: 0,
        }
        .into();
        assert!(e.to_string().contains("simulation"));
        use std::error::Error as _;
        assert!(e.source().is_some());
    }
}

//! Space-Time Transformation matrices.

use std::fmt;

use serde::{Deserialize, Serialize};
use tensorlib_linalg::{Frac, Mat};

use crate::DataflowError;

/// A validated 3×3 integer Space-Time Transformation matrix.
///
/// Rows 0 and 1 produce the two PE-array coordinates; row 2 produces the
/// cycle number: `[p1, p2, t]ᵀ = T · [x1, x2, x3]ᵀ` where `x` is the vector
/// of the three *selected* loop iterators.
///
/// Construction rejects singular matrices — the paper requires `T` to be full
/// rank so that each PE performs at most one operation per cycle.
///
/// # Examples
///
/// ```
/// use tensorlib_dataflow::Stt;
///
/// let t = Stt::from_rows([[1, 0, 0], [0, 1, 0], [1, 1, 1]])?;
/// assert_eq!(t.apply(&[1, 2, 3]), [1, 2, 6]);           // the paper's example
/// assert_eq!(t.unapply(&[1, 2, 6]), Some([1, 2, 3]));
/// assert_eq!(t.det().abs(), 1);
/// # Ok::<(), tensorlib_dataflow::DataflowError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Stt {
    rows: [[i64; 3]; 3],
    det: i64,
}

impl Stt {
    /// Creates an STT matrix from integer rows.
    ///
    /// # Errors
    ///
    /// Returns [`DataflowError::SingularStt`] if the matrix has determinant
    /// zero.
    pub fn from_rows(rows: [[i64; 3]; 3]) -> Result<Stt, DataflowError> {
        let det = det3(&rows);
        if det == 0 {
            return Err(DataflowError::SingularStt);
        }
        Ok(Stt { rows, det })
    }

    /// The identity transformation (`p1 = x1`, `p2 = x2`, `t = x3`).
    pub fn identity() -> Stt {
        Stt {
            rows: [[1, 0, 0], [0, 1, 0], [0, 0, 1]],
            det: 1,
        }
    }

    /// The classic output-stationary systolic transformation
    /// `p = (x1, x2)`, `t = x1 + x2 + x3`.
    pub fn output_stationary() -> Stt {
        Stt {
            rows: [[1, 0, 0], [0, 1, 0], [1, 1, 1]],
            det: 1,
        }
    }

    /// The raw integer rows.
    pub fn rows(&self) -> &[[i64; 3]; 3] {
        &self.rows
    }

    /// The determinant (never zero).
    pub fn det(&self) -> i64 {
        self.det
    }

    /// `true` if `|det| == 1`, i.e. the mapping is a bijection of the integer
    /// lattice. Non-unimodular transformations leave (PE, cycle) slots unused.
    pub fn is_unimodular(&self) -> bool {
        self.det.abs() == 1
    }

    /// Maps a selected-loop point to `[p1, p2, t]`.
    pub fn apply(&self, x: &[i64; 3]) -> [i64; 3] {
        let mut out = [0i64; 3];
        for (r, row) in self.rows.iter().enumerate() {
            out[r] = row[0] * x[0] + row[1] * x[1] + row[2] * x[2];
        }
        out
    }

    /// Maps a space-time point back to the loop point, if one exists on the
    /// integer lattice.
    ///
    /// For unimodular matrices this always succeeds; otherwise some
    /// space-time slots have no preimage and yield `None`.
    pub fn unapply(&self, st: &[i64; 3]) -> Option<[i64; 3]> {
        // Cramer's rule over integers: x_i = det(T with column i replaced) / det(T).
        let mut x = [0i64; 3];
        for i in 0..3 {
            let mut m = self.rows;
            for (r, row) in m.iter_mut().enumerate() {
                row[i] = st[r];
            }
            let d = det3(&m);
            if d % self.det != 0 {
                return None;
            }
            x[i] = d / self.det;
        }
        Some(x)
    }

    /// The matrix as an exact rational [`Mat`].
    pub fn to_mat(&self) -> Mat {
        Mat::from_fn(3, 3, |i, j| Frac::from(self.rows[i][j]))
    }

    /// The exact inverse `T⁻¹` as a rational matrix.
    pub fn inverse_mat(&self) -> Mat {
        self.to_mat()
            .inverse()
            .expect("validated STT matrices are invertible")
    }

    /// The inclusive range of each space-time coordinate when the selected
    /// loops have the given extents: returns `[(min, max); 3]` for
    /// `(p1, p2, t)`.
    ///
    /// Because the map is linear and the domain is a box, each coordinate's
    /// extrema are attained at box corners, computed per-term.
    pub fn space_time_bounds(&self, extents: &[u64; 3]) -> [(i64, i64); 3] {
        let mut out = [(0i64, 0i64); 3];
        for (r, row) in self.rows.iter().enumerate() {
            let mut lo = 0i64;
            let mut hi = 0i64;
            for (j, &c) in row.iter().enumerate() {
                let e = extents[j] as i64 - 1;
                if c >= 0 {
                    hi += c * e;
                } else {
                    lo += c * e;
                }
            }
            out[r] = (lo, hi);
        }
        out
    }
}

impl fmt::Display for Stt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{:?}; {:?}; {:?}]",
            self.rows[0], self.rows[1], self.rows[2]
        )
    }
}

fn det3(m: &[[i64; 3]; 3]) -> i64 {
    m[0][0] * (m[1][1] * m[2][2] - m[1][2] * m[2][1])
        - m[0][1] * (m[1][0] * m[2][2] - m[1][2] * m[2][0])
        + m[0][2] * (m[1][0] * m[2][1] - m[1][1] * m[2][0])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_singular() {
        assert_eq!(
            Stt::from_rows([[1, 0, 0], [2, 0, 0], [0, 0, 1]]).unwrap_err(),
            DataflowError::SingularStt
        );
    }

    #[test]
    fn paper_running_example() {
        // Figure 1(b): i=1, j=2, k=3 executes at PE (1,2) at cycle 6.
        let t = Stt::output_stationary();
        assert_eq!(t.apply(&[1, 2, 3]), [1, 2, 6]);
    }

    #[test]
    fn apply_unapply_round_trip() {
        let t = Stt::from_rows([[0, 0, 1], [0, 1, 0], [1, 1, 1]]).unwrap();
        for x in [[0, 0, 0], [1, 2, 3], [5, 0, 7], [3, 3, 3]] {
            let st = t.apply(&x);
            assert_eq!(t.unapply(&st), Some(x));
        }
    }

    #[test]
    fn non_unimodular_has_gaps() {
        let t = Stt::from_rows([[2, 0, 0], [0, 1, 0], [0, 0, 1]]).unwrap();
        assert_eq!(t.det(), 2);
        assert!(!t.is_unimodular());
        // (1, 0, 0) has no integer preimage: x1 = 1/2.
        assert_eq!(t.unapply(&[1, 0, 0]), None);
        assert_eq!(t.unapply(&[2, 0, 0]), Some([1, 0, 0]));
    }

    #[test]
    fn inverse_mat_is_exact() {
        let t = Stt::output_stationary();
        let prod = &t.to_mat() * &t.inverse_mat();
        assert_eq!(prod, Mat::identity(3));
    }

    #[test]
    fn bounds_cover_negative_coefficients() {
        let t = Stt::from_rows([[1, -1, 0], [0, 1, 0], [0, 0, 1]]).unwrap();
        let b = t.space_time_bounds(&[4, 4, 2]);
        assert_eq!(b[0], (-3, 3));
        assert_eq!(b[1], (0, 3));
        assert_eq!(b[2], (0, 1));
    }

    #[test]
    fn display_and_identity() {
        assert_eq!(Stt::identity().apply(&[4, 5, 6]), [4, 5, 6]);
        assert!(Stt::identity().to_string().contains("[1, 0, 0]"));
    }
}

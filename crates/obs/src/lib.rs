//! Framework-level observability for the TensorLib generation pipeline.
//!
//! While `tensorlib_hw::trace` makes the *simulated hardware* observable
//! (per-PE counters, event traces, VCD), this crate makes the *generator
//! itself* observable: where wall-time goes between STT enumeration,
//! classification, elaboration, bytecode compilation, simulation, and cost
//! evaluation, and how well a parallel sweep scales.
//!
//! Three pieces:
//!
//! - **Span tracing** ([`span`]): hierarchical RAII spans over a process-wide
//!   monotonic clock, kept on thread-local stacks. Exported as Chrome Trace
//!   Event JSON (loadable in `chrome://tracing` and Perfetto) and as folded
//!   flamegraph stacks ([`Session::to_chrome_trace`],
//!   [`Session::to_folded`]).
//! - **Metrics** ([`counter_add`], [`gauge_max`], [`hist_record`]):
//!   counters, high-watermark gauges, and log2-bucketed histograms. Updates
//!   touch only thread-local state (no locks, no atomics on the hot path);
//!   per-thread shards are merged with commutative operations (sum, max,
//!   bucket-wise sum), so the merged snapshot is identical for any worker
//!   count and any interleaving.
//! - **Run provenance** ([`Provenance`]): a schema-versioned manifest
//!   (seeds, config echo, per-phase wall times, worker count, package
//!   version) embedded in every JSON report the CLI writes.
//!
//! Two further pieces serve long-running campaigns:
//!
//! - **Campaign telemetry** ([`events`]): the append-only `events.jsonl`
//!   event log and atomically-replaced `status.json` snapshot written into
//!   a campaign directory, with wall-clock fields quarantined under
//!   `timing` sub-objects so report byte-determinism is untouched.
//! - **Cross-run history** ([`history`]): the `history.jsonl` index of
//!   completed runs (key metrics + config hash + machine shape) that backs
//!   `tensorlib history --check` regression comparisons.
//!
//! # Zero cost when disabled
//!
//! Recording is off by default. Every entry point first checks one relaxed
//! atomic load and returns immediately when disabled — no thread-local
//! access, no allocation, no clock read. `scripts/perfgate.sh` gates the
//! disabled-mode overhead of the instrumented pipeline under the same <3%
//! ceiling used for the hardware trace and fault layers.
//!
//! # Determinism discipline
//!
//! Traces are meant to be diffable in tests. Three rules make a profiled run
//! reproducible *modulo timestamps* for a fixed worker count:
//!
//! 1. **Stable thread naming**: worker threads are labelled (`w00`, `w01`,
//!    …) by pool slot, never by OS thread id ([`set_thread_context`]).
//! 2. **Deterministic scheduling while profiled**:
//!    `tensorlib_linalg::par` switches from its atomic work-stealing cursor
//!    to round-robin chunk assignment when recording is enabled, so the
//!    span→thread assignment stops depending on scheduler timing.
//! 3. **Sorted emission**: [`Session`] spans are sorted by
//!    `(thread, pool generation, per-thread sequence number)` — a key that
//!    contains no timestamps — before export.
//!
//! Scrub the `ts`/`dur` fields (see [`Session::scrub_timestamps`]) and two
//! traces of the same run compare byte-for-byte.
//!
//! # Examples
//!
//! ```
//! tensorlib_obs::enable();
//! {
//!     let _outer = tensorlib_obs::span("enumerate");
//!     let _inner = tensorlib_obs::span("classify");
//!     tensorlib_obs::counter_add("designs", 3);
//!     tensorlib_obs::hist_record("point_us", 120);
//! }
//! let session = tensorlib_obs::drain();
//! tensorlib_obs::disable();
//! assert_eq!(session.spans.len(), 2);
//! assert_eq!(session.metrics.counters["designs"], 3);
//! let trace = session.to_chrome_trace(None);
//! assert!(trace.contains("\"traceEvents\""));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod clock;
pub mod events;
pub mod fs;
pub mod history;
pub mod json;
mod manifest;
mod metrics;
mod session;
mod span;

pub use clock::now_micros;
pub use fs::atomic_write;
pub use manifest::{
    check_schema_version, extract_schema_version, JournalProvenance, Provenance, SchemaError,
    SCHEMA_VERSION,
};
pub use metrics::{Histogram, MetricsSnapshot, HIST_BUCKETS};
pub use session::{FinishedSpan, Session};
pub use span::{
    counter_add, disable, drain, enable, flush_thread, gauge_max, hist_record, is_enabled,
    set_thread_context, snapshot, span, SpanGuard,
};

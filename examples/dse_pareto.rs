//! Design-space exploration with a Pareto view — the Figure 6 workflow.
//!
//! Sweeps every implementable Depthwise-Conv dataflow (the kernel that
//! systolic-only generators cannot build at all), scores cycles / power /
//! area, and prints the power-area Pareto frontier plus the
//! fastest-per-watt picks.
//!
//! Run with: `cargo run --release --example dse_pareto`

use tensorlib::explore::{explore, pareto_power_area, ExploreOptions};
use tensorlib::ir::workloads;

fn main() {
    let kernel = workloads::depthwise_conv(64, 56, 56, 3, 3);
    let points = explore(&kernel, &ExploreOptions::default());
    println!(
        "Depthwise-Conv: {} implementable dataflow designs explored",
        points.len()
    );

    // Fastest designs (distinct names: several signatures can share one).
    println!("\nfastest five:");
    let mut seen = std::collections::HashSet::new();
    for p in points.iter().filter(|p| seen.insert(p.name.clone())).take(5) {
        println!(
            "  {:12} {:>9} cycles  {:5.1} mW  {:.3} mm2",
            p.name, p.performance.total_cycles, p.asic.power_mw, p.asic.area_mm2
        );
    }

    // Power/area Pareto frontier.
    let mut frontier = pareto_power_area(&points);
    frontier.sort_by(|a, b| a.asic.power_mw.partial_cmp(&b.asic.power_mw).unwrap());
    frontier.dedup_by(|a, b| a.name == b.name);
    println!("\npower/area Pareto frontier ({} points):", frontier.len());
    for p in frontier.iter().take(10) {
        println!(
            "  {:12} {:5.1} mW  {:.3} mm2  ({} cycles)",
            p.name, p.asic.power_mw, p.asic.area_mm2, p.performance.total_cycles
        );
    }

    // Best performance-per-watt.
    let best_eff = points
        .iter()
        .max_by(|a, b| {
            let ea = a.performance.gops / a.asic.power_mw;
            let eb = b.performance.gops / b.asic.power_mw;
            ea.partial_cmp(&eb).unwrap()
        })
        .expect("nonempty space");
    println!(
        "\nbest Gop/s-per-watt: {} at {:.1} Gop/s / {:.1} mW = {:.2} Gop/s/W",
        best_eff.name,
        best_eff.performance.gops,
        best_eff.asic.power_mw,
        1000.0 * best_eff.performance.gops / best_eff.asic.power_mw
    );
}

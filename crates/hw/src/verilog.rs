//! Verilog emission: turns a generated design into synthesizable RTL text.
//!
//! Every module gets implicit `clk`/`rst` ports (registers use synchronous
//! reset); memory banks are emitted from a behavioural template. The output
//! is deterministic — identical designs emit byte-identical Verilog.

use std::collections::{HashMap, HashSet};
use std::fmt::Write as _;

use crate::design::AcceleratorDesign;
use crate::mem::MemBank;
use crate::netlist::{BinOp, Dir, Expr, Module};

/// The IEEE 1800-2017 reserved words (Annex B), sorted for binary search.
/// Any net/module/instance/port name on this list — or with characters a
/// simple identifier cannot carry — must be emitted as an escaped
/// identifier, or the output is not legal Verilog.
const VERILOG_KEYWORDS: &[&str] = &[
    "accept_on",
    "alias",
    "always",
    "always_comb",
    "always_ff",
    "always_latch",
    "and",
    "assert",
    "assign",
    "assume",
    "automatic",
    "before",
    "begin",
    "bind",
    "bins",
    "binsof",
    "bit",
    "break",
    "buf",
    "bufif0",
    "bufif1",
    "byte",
    "case",
    "casex",
    "casez",
    "cell",
    "chandle",
    "checker",
    "class",
    "clocking",
    "cmos",
    "config",
    "const",
    "constraint",
    "context",
    "continue",
    "cover",
    "covergroup",
    "coverpoint",
    "cross",
    "deassign",
    "default",
    "defparam",
    "design",
    "disable",
    "dist",
    "do",
    "edge",
    "else",
    "end",
    "endcase",
    "endchecker",
    "endclass",
    "endclocking",
    "endconfig",
    "endfunction",
    "endgenerate",
    "endgroup",
    "endinterface",
    "endmodule",
    "endpackage",
    "endprimitive",
    "endprogram",
    "endproperty",
    "endsequence",
    "endspecify",
    "endtable",
    "endtask",
    "enum",
    "event",
    "eventually",
    "expect",
    "export",
    "extends",
    "extern",
    "final",
    "first_match",
    "for",
    "force",
    "foreach",
    "forever",
    "fork",
    "forkjoin",
    "function",
    "generate",
    "genvar",
    "global",
    "highz0",
    "highz1",
    "if",
    "iff",
    "ifnone",
    "ignore_bins",
    "illegal_bins",
    "implements",
    "implies",
    "import",
    "incdir",
    "include",
    "initial",
    "inout",
    "input",
    "inside",
    "instance",
    "int",
    "integer",
    "interconnect",
    "interface",
    "intersect",
    "join",
    "join_any",
    "join_none",
    "large",
    "let",
    "liblist",
    "library",
    "local",
    "localparam",
    "logic",
    "longint",
    "macromodule",
    "matches",
    "medium",
    "modport",
    "module",
    "nand",
    "negedge",
    "nettype",
    "new",
    "nexttime",
    "nmos",
    "nor",
    "noshowcancelled",
    "not",
    "notif0",
    "notif1",
    "null",
    "or",
    "output",
    "package",
    "packed",
    "parameter",
    "pmos",
    "posedge",
    "primitive",
    "priority",
    "program",
    "property",
    "protected",
    "pull0",
    "pull1",
    "pulldown",
    "pullup",
    "pulsestyle_ondetect",
    "pulsestyle_onevent",
    "pure",
    "rand",
    "randc",
    "randcase",
    "randsequence",
    "rcmos",
    "real",
    "realtime",
    "ref",
    "reg",
    "reject_on",
    "release",
    "repeat",
    "restrict",
    "return",
    "rnmos",
    "rpmos",
    "rtran",
    "rtranif0",
    "rtranif1",
    "s_always",
    "s_eventually",
    "s_nexttime",
    "s_until",
    "s_until_with",
    "scalared",
    "sequence",
    "shortint",
    "shortreal",
    "showcancelled",
    "signed",
    "small",
    "soft",
    "solve",
    "specify",
    "specparam",
    "static",
    "string",
    "strong",
    "strong0",
    "strong1",
    "struct",
    "super",
    "supply0",
    "supply1",
    "sync_accept_on",
    "sync_reject_on",
    "table",
    "tagged",
    "task",
    "this",
    "throughout",
    "time",
    "timeprecision",
    "timeunit",
    "tran",
    "tranif0",
    "tranif1",
    "tri",
    "tri0",
    "tri1",
    "triand",
    "trior",
    "trireg",
    "type",
    "typedef",
    "union",
    "unique",
    "unique0",
    "unsigned",
    "until",
    "until_with",
    "untyped",
    "use",
    "uwire",
    "var",
    "vectored",
    "virtual",
    "void",
    "wait",
    "wait_order",
    "wand",
    "weak",
    "weak0",
    "weak1",
    "while",
    "wildcard",
    "wire",
    "with",
    "within",
    "wor",
    "xnor",
    "xor",
];

/// Renders a name as a legal Verilog identifier. Simple identifiers
/// (`[A-Za-z_][A-Za-z0-9_$]*`, not reserved) pass through verbatim; every
/// other name — keywords, empty names, names with hostile characters —
/// becomes an escaped identifier (`\name`, terminated by the mandatory
/// trailing space). Inside the escaped form, printable ASCII is kept
/// verbatim except `$`, which doubles to `$$`; whitespace, control, and
/// non-ASCII characters become `$uXXXX`. The encoding is injective, so
/// distinct source names never merge into one emitted identifier, and it
/// is deterministic, so emission stays byte-reproducible.
fn vl_ident(name: &str) -> String {
    let simple = !name.is_empty()
        && name
            .chars()
            .next()
            .is_some_and(|c| c.is_ascii_alphabetic() || c == '_')
        && name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '$')
        && VERILOG_KEYWORDS.binary_search(&name).is_err();
    if simple {
        return name.to_string();
    }
    let mut out = String::with_capacity(name.len() + 2);
    out.push('\\');
    if name.is_empty() {
        out.push_str("$empty");
    }
    for c in name.chars() {
        match c {
            '$' => out.push_str("$$"),
            c if (0x21..=0x7e).contains(&(c as u32)) => out.push(c),
            c => {
                let _ = write!(out, "$u{:04x}", c as u32);
            }
        }
    }
    out.push(' ');
    out
}

/// Collects intermediate wires for expressions that Verilog cannot
/// part-select directly. `(a + b)[7:0]` is illegal — a part-select operand
/// must be a simple identifier — so narrowing `Resize`/`SignExtend` of a
/// compound expression hoists the operand into a named wire first. Naming is
/// deterministic (`rsz_0`, `rsz_1`, … in discovery order, skipping any name
/// the module already uses) and identical subexpressions share one wire, so
/// emission stays byte-reproducible.
struct Hoister {
    used: HashSet<String>,
    decls: Vec<(String, u32)>,
    assigns: Vec<(String, String)>,
    memo: HashMap<(u32, String), String>,
    counter: usize,
}

impl Hoister {
    fn new(m: &Module) -> Hoister {
        Hoister {
            used: m.nets().iter().map(|n| n.name.clone()).collect(),
            decls: Vec::new(),
            assigns: Vec::new(),
            memo: HashMap::new(),
            counter: 0,
        }
    }

    fn hoist(&mut self, rhs: String, width: u32) -> String {
        if let Some(name) = self.memo.get(&(width, rhs.clone())) {
            return name.clone();
        }
        let name = loop {
            let candidate = format!("rsz_{}", self.counter);
            self.counter += 1;
            if !self.used.contains(&candidate) {
                break candidate;
            }
        };
        self.used.insert(name.clone());
        self.decls.push((name.clone(), width));
        self.assigns.push((name.clone(), rhs.clone()));
        self.memo.insert((width, rhs), name.clone());
        name
    }
}

/// Emits one module as Verilog.
///
/// # Examples
///
/// ```
/// use tensorlib_hw::netlist::{Expr, Module};
/// use tensorlib_hw::verilog::emit_module;
///
/// let mut m = Module::new("inc");
/// let a = m.input("a", 8);
/// let y = m.output("y", 8);
/// m.assign(y, Expr::net(a).add(Expr::lit(1, 8)).resize(8));
/// let v = emit_module(&m);
/// assert!(v.contains("module inc"));
/// assert!(v.contains("assign y"));
/// ```
pub fn emit_module(m: &Module) -> String {
    let mut s = String::new();
    let has_regs = !m.regs().is_empty() || !m.instances().is_empty();
    let mut port_names: Vec<String> = Vec::new();
    if has_regs {
        port_names.push("clk".into());
        port_names.push("rst".into());
    }
    for (id, _) in m.ports() {
        port_names.push(vl_ident(&m.nets()[*id].name));
    }
    let _ = writeln!(s, "module {} (", vl_ident(m.name()));
    let _ = writeln!(s, "  {}", port_names.join(",\n  "));
    let _ = writeln!(s, ");");
    if has_regs {
        let _ = writeln!(s, "  input wire clk;");
        let _ = writeln!(s, "  input wire rst;");
    }
    // Port declarations.
    let reg_targets: Vec<usize> = m.regs().iter().map(|r| r.target).collect();
    for (id, dir) in m.ports() {
        let n = &m.nets()[*id];
        let d = match dir {
            Dir::Input => "input wire",
            Dir::Output => {
                if reg_targets.contains(id) {
                    "output reg"
                } else {
                    "output wire"
                }
            }
        };
        let _ = writeln!(s, "  {}{}{};", d, width_decl(n.width), vl_ident(&n.name));
    }
    // Internal nets.
    let port_ids: Vec<usize> = m.ports().iter().map(|(id, _)| *id).collect();
    for (id, n) in m.nets().iter().enumerate() {
        if port_ids.contains(&id) {
            continue;
        }
        let kw = if reg_targets.contains(&id) { "reg" } else { "wire" };
        let _ = writeln!(s, "  {}{}{};", kw, width_decl(n.width), vl_ident(&n.name));
    }
    // The body is emitted into a scratch buffer first so hoisted wires
    // (discovered while emitting expressions) can be declared up front.
    let mut h = Hoister::new(m);
    let mut body = String::new();
    // Combinational assigns.
    for (target, expr) in m.assigns() {
        let _ = writeln!(
            body,
            "  assign {} = {};",
            vl_ident(&m.nets()[*target].name),
            emit_expr(expr, m, &mut h)
        );
    }
    // Registers.
    for r in m.regs() {
        let name = &vl_ident(&m.nets()[r.target].name);
        let _ = writeln!(body, "  always @(posedge clk) begin");
        let _ = writeln!(
            body,
            "    if (rst) {} <= {}'d{};",
            name,
            m.nets()[r.target].width,
            r.init
        );
        match &r.enable {
            Some(e) => {
                let _ = writeln!(
                    body,
                    "    else if ({}) {} <= {};",
                    emit_expr(e, m, &mut h),
                    name,
                    emit_expr(&r.next, m, &mut h)
                );
            }
            None => {
                let _ = writeln!(body, "    else {} <= {};", name, emit_expr(&r.next, m, &mut h));
            }
        }
        let _ = writeln!(body, "  end");
    }
    // Instances.
    for inst in m.instances() {
        let mut conns: Vec<String> =
            vec!["    .clk(clk)".into(), "    .rst(rst)".into()];
        for (port, net) in &inst.connections {
            conns.push(format!(
                "    .{}({})",
                vl_ident(port),
                vl_ident(&m.nets()[*net].name)
            ));
        }
        let _ = writeln!(
            body,
            "  {} {} (",
            vl_ident(&inst.module),
            vl_ident(&inst.name)
        );
        let _ = writeln!(body, "{}", conns.join(",\n"));
        let _ = writeln!(body, "  );");
    }
    for (name, width) in &h.decls {
        let _ = writeln!(s, "  wire{}{};", width_decl(*width), name);
    }
    s.push('\n');
    for (name, rhs) in &h.assigns {
        let _ = writeln!(s, "  assign {name} = {rhs};");
    }
    s.push_str(&body);
    let _ = writeln!(s, "endmodule");
    s
}

fn width_decl(width: u32) -> String {
    if width == 1 {
        " ".into()
    } else {
        format!(" [{}:0] ", width - 1)
    }
}

fn bits(width: u32) -> u64 {
    if width >= 64 {
        u64::MAX
    } else {
        (1u64 << width) - 1
    }
}

/// Emits `expr` with `width` part-selectable: nets pass through, constants
/// fold to a truncated literal (literals cannot be part-selected either),
/// anything compound is hoisted into a named wire.
fn selectable(inner: &Expr, m: &Module, h: &mut Hoister) -> String {
    match inner {
        Expr::Net(_) => emit_expr(inner, m, h),
        Expr::Const { value, width } => format!("{width}'d{}", value & bits(*width)),
        _ => {
            let rhs = emit_expr(inner, m, h);
            h.hoist(rhs, inner.width(m.nets()))
        }
    }
}

fn emit_expr(expr: &Expr, m: &Module, h: &mut Hoister) -> String {
    match expr {
        Expr::Const { value, width } => format!("{width}'d{value}"),
        Expr::Net(id) => vl_ident(&m.nets()[*id].name),
        Expr::Not(e) => format!("(~{})", emit_expr(e, m, h)),
        Expr::Bin(op, a, b) => {
            let o = match op {
                BinOp::Add => "+",
                BinOp::Sub => "-",
                BinOp::Mul => "*",
                BinOp::And => "&",
                BinOp::Or => "|",
                BinOp::Xor => "^",
                BinOp::Eq => "==",
                BinOp::Lt => "<",
            };
            format!("({} {} {})", emit_expr(a, m, h), o, emit_expr(b, m, h))
        }
        Expr::Mux {
            sel,
            on_true,
            on_false,
        } => format!(
            "({} ? {} : {})",
            emit_expr(sel, m, h),
            emit_expr(on_true, m, h),
            emit_expr(on_false, m, h)
        ),
        Expr::Resize(inner, w) => {
            let iw = inner.width(m.nets());
            if *w == iw {
                emit_expr(inner, m, h)
            } else if *w < iw {
                // Part-select needs an identifier, so narrow via a hoisted
                // wire (or fold a constant).
                if let Expr::Const { value, .. } = inner.as_ref() {
                    format!("{w}'d{}", value & bits(*w))
                } else {
                    format!("{}[{}:0]", selectable(inner, m, h), w - 1)
                }
            } else {
                format!("{{{{{}{{1'b0}}}}, {}}}", w - iw, emit_expr(inner, m, h))
            }
        }
        Expr::SignExtend(inner, w) => {
            let iw = inner.width(m.nets());
            if *w == iw {
                emit_expr(inner, m, h)
            } else if *w < iw {
                if let Expr::Const { value, .. } = inner.as_ref() {
                    format!("{w}'d{}", value & bits(*w))
                } else {
                    format!("{}[{}:0]", selectable(inner, m, h), w - 1)
                }
            } else if let Expr::Const { value, width } = inner.as_ref() {
                // Fold: the MSB replication below needs a part-select.
                let v = value & bits(*width);
                let ext = if *width > 0 && (v >> (width - 1)) & 1 == 1 {
                    (v | !bits(*width)) & bits(*w)
                } else {
                    v
                };
                format!("{w}'d{ext}")
            } else {
                let name = selectable(inner, m, h);
                format!("{{{{{}{{{name}[{}]}}}}, {name}}}", w - iw, iw - 1)
            }
        }
    }
}

/// Emits the behavioural Verilog for a memory bank template.
pub fn emit_mem_bank(bank: &MemBank) -> String {
    let mut s = String::new();
    let w = bank.width();
    let depth = bank.words();
    let ab = bank.addr_bits();
    let db = bank.is_double_buffered();
    let _ = writeln!(s, "module {} (", bank.module_name());
    let mut ports = vec!["clk", "rst", "en", "wen", "wdata", "rdata"];
    if db {
        ports.push("buf_sel");
    }
    let _ = writeln!(s, "  {}", ports.join(",\n  "));
    let _ = writeln!(s, ");");
    let _ = writeln!(s, "  input wire clk;");
    let _ = writeln!(s, "  input wire rst;");
    let _ = writeln!(s, "  input wire en;");
    let _ = writeln!(s, "  input wire wen;");
    let _ = writeln!(s, "  input wire{}wdata;", width_decl(w));
    let _ = writeln!(s, "  output reg{}rdata;", width_decl(w));
    if db {
        let _ = writeln!(s, "  input wire buf_sel;");
    }
    let total = if db { depth * 2 } else { depth };
    let _ = writeln!(s, "  reg{}mem [0:{}];", width_decl(w), total - 1);
    let _ = writeln!(s, "  reg [{}:0] raddr;", ab);
    let _ = writeln!(s, "  reg [{}:0] waddr;", ab);
    let base_r = if db {
        format!("{{(~buf_sel), raddr[{}:0]}}", ab - 1)
    } else {
        "raddr".to_string()
    };
    let base_w = if db {
        format!("{{buf_sel, waddr[{}:0]}}", ab - 1)
    } else {
        "waddr".to_string()
    };
    let _ = writeln!(s, "  always @(posedge clk) begin");
    let _ = writeln!(s, "    if (rst) begin raddr <= 0; waddr <= 0; rdata <= 0; end");
    let _ = writeln!(s, "    else begin");
    let _ = writeln!(
        s,
        "      if (en) begin rdata <= mem[{base_r}]; raddr <= raddr + 1; end"
    );
    let _ = writeln!(
        s,
        "      if (wen) begin mem[{base_w}] <= wdata; waddr <= waddr + 1; end"
    );
    let _ = writeln!(s, "    end");
    let _ = writeln!(s, "  end");
    let _ = writeln!(s, "endmodule");
    s
}

/// Emits the entire design — bank templates first, then all netlist modules
/// bottom-up (PE, trees, controller, array, top).
///
/// # Examples
///
/// ```
/// use tensorlib_dataflow::{Dataflow, LoopSelection, Stt};
/// use tensorlib_hw::design::{generate, HwConfig};
/// use tensorlib_hw::verilog::emit_design;
/// use tensorlib_ir::workloads;
///
/// let gemm = workloads::gemm(32, 32, 32);
/// let sel = LoopSelection::by_names(&gemm, ["m", "n", "k"])?;
/// let df = Dataflow::analyze(&gemm, sel, Stt::output_stationary())?;
/// let design = generate(&df, &HwConfig::default()).expect("generates");
/// let v = emit_design(&design);
/// assert!(v.contains("endmodule"));
/// # Ok::<(), tensorlib_dataflow::DataflowError>(())
/// ```
pub fn emit_design(design: &AcceleratorDesign) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "// Generated by tensorlib-hw for dataflow {}",
        design.dataflow().name()
    );
    let _ = writeln!(s, "// Top module: {}\n", design.top());
    for bank in design.mem_banks() {
        s.push_str(&emit_mem_bank(bank));
        s.push('\n');
    }
    for m in design.modules() {
        s.push_str(&emit_module(m));
        s.push('\n');
    }
    s
}

/// Emits a self-checking-ish Verilog testbench for the design's top module:
/// clock/reset generation, a fill phase that streams stimulus into every
/// input bank, a `start` pulse, and a wait-for-`done` with result dumping.
///
/// The testbench is simulator-agnostic (plain `initial`/`always` blocks,
/// `$display`/`$finish`) so the emitted design can be sanity-run under any
/// event-driven simulator; bit-exact checking against the reference executor
/// is done natively by `tensorlib-sim` and the netlist interpreter.
pub fn emit_testbench(design: &AcceleratorDesign) -> String {
    let mut s = String::new();
    let top = design.top();
    let _ = writeln!(s, "// Testbench for {top} (generated)");
    let _ = writeln!(s, "`timescale 1ns/1ps");
    let _ = writeln!(s, "module tb_{top};");
    let _ = writeln!(s, "  reg clk = 0; always #5 clk = ~clk;");
    let _ = writeln!(s, "  reg rst = 1;");
    let _ = writeln!(s, "  reg start = 0;");
    let _ = writeln!(s, "  reg fill_en = 0;");
    let _ = writeln!(s, "  wire done;");
    // Per-binding stimulus/readback nets.
    let mut conns: Vec<String> = vec![
        ".clk(clk)".into(),
        ".rst(rst)".into(),
        ".start(start)".into(),
        ".fill_en(fill_en)".into(),
        ".done(done)".into(),
    ];
    let mut fill_regs = Vec::new();
    let mut result_wires = Vec::new();
    for (bi, binding) in design.bank_bindings().iter().enumerate() {
        let w = binding.port.width;
        if binding.port.kind.is_input() {
            let _ = writeln!(s, "  reg{}fill_{bi} = 0;", width_decl(w));
            conns.push(format!(".fill_{bi}(fill_{bi})"));
            fill_regs.push(bi);
        } else {
            let _ = writeln!(s, "  wire{}result_{bi};", width_decl(w));
            let _ = writeln!(s, "  reg readback_{bi} = 0;");
            conns.push(format!(".result_{bi}(result_{bi})"));
            conns.push(format!(".readback_{bi}(readback_{bi})"));
            result_wires.push(bi);
        }
    }
    let _ = writeln!(s, "  {top} dut (");
    let _ = writeln!(
        s,
        "    {}",
        conns
            .iter()
            .map(|c| c.as_str())
            .collect::<Vec<_>>()
            .join(",\n    ")
    );
    let _ = writeln!(s, "  );");
    let fill_words = design
        .phases()
        .compute_cycles
        .min(256);
    let _ = writeln!(s, "  integer i;");
    let _ = writeln!(s, "  initial begin");
    let _ = writeln!(s, "    repeat (4) @(posedge clk); rst = 0;");
    let _ = writeln!(s, "    // Fill phase: pseudo-random stimulus.");
    let _ = writeln!(s, "    fill_en = 1;");
    let _ = writeln!(s, "    for (i = 0; i < {fill_words}; i = i + 1) begin");
    for bi in &fill_regs {
        let _ = writeln!(s, "      fill_{bi} = $random;");
    }
    let _ = writeln!(s, "      @(posedge clk);");
    let _ = writeln!(s, "    end");
    let _ = writeln!(s, "    fill_en = 0;");
    let _ = writeln!(s, "    start = 1; @(posedge clk); start = 0;");
    let _ = writeln!(s, "    wait (done);");
    for bi in &result_wires {
        let _ = writeln!(s, "    readback_{bi} = 1;");
    }
    let _ = writeln!(s, "    repeat (4) @(posedge clk);");
    for bi in &result_wires {
        let _ = writeln!(
            s,
            "    $display(\"result_{bi} = %0d\", result_{bi});"
        );
    }
    let _ = writeln!(s, "    $display(\"done at %0t\", $time);");
    let _ = writeln!(s, "    $finish;");
    let _ = writeln!(s, "  end");
    let _ = writeln!(s, "  initial begin #1000000 $display(\"TIMEOUT\"); $finish; end");
    let _ = writeln!(s, "endmodule");
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::Expr;

    #[test]
    fn simple_module_emission() {
        let mut m = Module::new("inc");
        let a = m.input("a", 8);
        let y = m.output("y", 8);
        m.assign(y, Expr::net(a).add(Expr::lit(1, 8)).resize(8));
        let v = emit_module(&m);
        assert!(v.contains("module inc"));
        assert!(!v.contains("clk"), "combinational module needs no clock");
        assert!(v.contains("assign y = (a + 8'd1)"));
        assert!(v.ends_with("endmodule\n"));
    }

    #[test]
    fn register_gets_clock_and_reset() {
        let mut m = Module::new("cnt");
        let en = m.input("en", 1);
        let q = m.output("q", 4);
        m.reg(q, Expr::net(q).add(Expr::lit(1, 4)), Some(Expr::net(en)), 0);
        let v = emit_module(&m);
        assert!(v.contains("input wire clk"));
        assert!(v.contains("output reg [3:0] q"));
        assert!(v.contains("always @(posedge clk)"));
        assert!(v.contains("if (rst) q <= 4'd0;"));
        assert!(v.contains("else if (en) q <= (q + 4'd1);"));
    }

    #[test]
    fn resize_emission() {
        let mut m = Module::new("rs");
        let a = m.input("a", 8);
        let wide = m.output("wide", 12);
        let narrow = m.output("narrow", 4);
        m.assign(wide, Expr::net(a).resize(12));
        m.assign(narrow, Expr::net(a).resize(4));
        let v = emit_module(&m);
        assert!(v.contains("{{4{1'b0}}, a}"), "zero extension: {v}");
        assert!(v.contains("a[3:0]"), "truncation: {v}");
    }

    #[test]
    fn narrowing_a_compound_operand_hoists_a_wire() {
        // `(a + b)[3:0]` is illegal Verilog: part-select operands must be
        // identifiers. The emitter must route the sum through a named wire.
        let mut m = Module::new("nar");
        let a = m.input("a", 8);
        let b = m.input("b", 8);
        let y = m.output("y", 4);
        m.assign(y, Expr::net(a).add(Expr::net(b)).resize(4));
        let v = emit_module(&m);
        assert!(!v.contains(")["), "no part-select of a parenthesized expr: {v}");
        assert!(v.contains("wire [7:0] rsz_0;"), "hoisted wire declared: {v}");
        assert!(v.contains("assign rsz_0 = (a + b);"), "hoisted assign: {v}");
        assert!(v.contains("assign y = rsz_0[3:0];"), "narrow via the wire: {v}");
    }

    #[test]
    fn sign_extending_a_mux_operand_hoists_a_wire() {
        let mut m = Module::new("sx");
        let s = m.input("s", 1);
        let a = m.input("a", 8);
        let b = m.input("b", 8);
        let y = m.output("y", 12);
        m.assign(y, Expr::mux(Expr::net(s), Expr::net(a), Expr::net(b)).sext(12));
        let v = emit_module(&m);
        assert!(!v.contains(")["), "no part-select of a parenthesized expr: {v}");
        assert!(v.contains("assign rsz_0 = (s ? a : b);"), "hoisted mux: {v}");
        // MSB replication and the concatenated value both use the wire.
        assert!(v.contains("{{4{rsz_0[7]}}, rsz_0}"), "sign extension: {v}");
    }

    #[test]
    fn narrowing_sign_extend_of_a_bin_operand_hoists_a_wire() {
        let mut m = Module::new("nsx");
        let a = m.input("a", 8);
        let y = m.output("y", 4);
        m.assign(y, Expr::net(a).add(Expr::net(a)).sext(4));
        let v = emit_module(&m);
        assert!(v.contains("assign rsz_0 = (a + a);"), "{v}");
        assert!(v.contains("assign y = rsz_0[3:0];"), "{v}");
    }

    #[test]
    fn identical_hoisted_subexpressions_share_one_wire() {
        let mut m = Module::new("share");
        let a = m.input("a", 8);
        let y = m.output("y", 4);
        let z = m.output("z", 4);
        m.assign(y, Expr::net(a).add(Expr::lit(1, 8)).resize(4));
        m.assign(z, Expr::net(a).add(Expr::lit(1, 8)).resize(4));
        let v = emit_module(&m);
        assert_eq!(v.matches("assign rsz_0 = ").count(), 1, "{v}");
        assert!(!v.contains("rsz_1"), "memoized, not duplicated: {v}");
    }

    #[test]
    fn hoist_names_skip_existing_nets() {
        let mut m = Module::new("clash");
        let a = m.input("a", 8);
        let taken = m.net("rsz_0", 8);
        m.assign(taken, Expr::net(a));
        let y = m.output("y", 4);
        m.assign(y, Expr::net(a).add(Expr::net(a)).resize(4));
        let v = emit_module(&m);
        assert!(v.contains("assign rsz_1 = (a + a);"), "{v}");
    }

    #[test]
    fn constant_resizes_fold_instead_of_part_selecting() {
        // `8'd200[3:0]` is just as illegal as `(a+b)[3:0]`.
        let mut m = Module::new("cf");
        let y = m.output("y", 4);
        let z = m.output("z", 8);
        m.assign(y, Expr::lit(200, 8).resize(4));
        // 4'b1001 sign-extended to 8 bits = 8'd249.
        m.assign(z, Expr::lit(9, 4).sext(8));
        let v = emit_module(&m);
        assert!(v.contains("assign y = 4'd8;"), "200 & 0xF == 8: {v}");
        assert!(v.contains("assign z = 8'd249;"), "sign-extended literal: {v}");
    }

    #[test]
    fn mem_bank_emission() {
        let bank = MemBank::new(64, 16, true);
        let v = emit_mem_bank(&bank);
        assert!(v.contains("module bank_w16_d64_db"));
        assert!(v.contains("mem [0:127]"), "double buffer doubles depth: {v}");
        assert!(v.contains("buf_sel"));
        let single = emit_mem_bank(&MemBank::new(64, 16, false));
        assert!(single.contains("mem [0:63]"));
        assert!(!single.contains("buf_sel"));
    }

    #[test]
    fn instances_connect_clock() {
        let mut m = Module::new("wrap");
        let a = m.input("a", 8);
        let y = m.output("y", 8);
        m.instance(
            "child",
            "c0",
            vec![("in".into(), a), ("out".into(), y)],
        );
        let v = emit_module(&m);
        assert!(v.contains(".clk(clk)"));
        assert!(v.contains(".in(a)"));
        assert!(v.contains("child c0 ("));
    }

    #[test]
    fn testbench_targets_top_and_waits_for_done() {
        use crate::design::{generate, HwConfig};
        use tensorlib_dataflow::{Dataflow, LoopSelection, Stt};
        use tensorlib_ir::workloads;
        let gemm = workloads::gemm(16, 16, 16);
        let sel = LoopSelection::by_names(&gemm, ["m", "n", "k"]).unwrap();
        let df = Dataflow::analyze(&gemm, sel, Stt::output_stationary()).unwrap();
        let design = generate(&df, &HwConfig::default()).unwrap();
        let tb = emit_testbench(&design);
        assert!(tb.contains(&format!("module tb_{}", design.top())));
        assert!(tb.contains("wait (done);"));
        assert!(tb.contains("$finish"));
        // Every input bank gets a stimulus register.
        let fills = design
            .bank_bindings()
            .iter()
            .filter(|b| b.port.kind.is_input())
            .count();
        assert_eq!(tb.matches("= $random;").count(), fills);
    }

    #[test]
    fn keyword_list_is_sorted_and_unique() {
        // vl_ident binary-searches the list, so order is load-bearing.
        for w in VERILOG_KEYWORDS.windows(2) {
            assert!(w[0] < w[1], "out of order: {:?} !< {:?}", w[0], w[1]);
        }
    }

    #[test]
    fn every_keyword_escapes() {
        for kw in VERILOG_KEYWORDS {
            assert_eq!(
                vl_ident(kw),
                format!("\\{kw} "),
                "keyword {kw:?} must emit escaped"
            );
        }
    }

    #[test]
    fn valid_identifiers_pass_through() {
        for name in ["a", "_x", "pe_0_0", "acc$shadow", "Reg", "wires", "end_"] {
            assert_eq!(vl_ident(name), name, "{name:?} is a legal identifier");
        }
    }

    #[test]
    fn hostile_identifiers_escape_injectively() {
        assert_eq!(vl_ident(""), "\\$empty ");
        assert_eq!(vl_ident("0net"), "\\0net ");
        assert_eq!(vl_ident("a b"), "\\a$u0020b ");
        assert_eq!(vl_ident("a\nb"), "\\a$u000ab ");
        assert_eq!(vl_ident("naïve"), "\\na$u00efve ");
        // `$` doubles, so a literal `a$u0020b` cannot collide with the
        // escape of `a b` (and being a simple identifier it passes through).
        assert_eq!(vl_ident("a$u0020b"), "a$u0020b");
        assert_ne!(vl_ident("a b"), vl_ident("a$u0020b"));
    }

    #[test]
    fn keyword_named_nets_emit_escaped() {
        let mut m = Module::new("module");
        let a = m.input("reg", 8);
        let y = m.output("output", 8);
        m.assign(y, Expr::net(a).add(Expr::lit(1, 8)));
        let v = emit_module(&m);
        assert!(v.contains("module \\module  ("), "module name escaped: {v}");
        assert!(
            v.contains("  input wire [7:0] \\reg ;"),
            "port decl escaped: {v}"
        );
        assert!(
            v.contains("assign \\output  = (\\reg  + 8'd1);"),
            "assign with escaped operands: {v}"
        );
    }

    #[test]
    fn keyword_named_instance_ports_emit_escaped() {
        let mut m = Module::new("wrap2");
        let a = m.input("in", 8);
        m.instance("wire", "always", vec![("case".into(), a)]);
        let v = emit_module(&m);
        assert!(v.contains("\\wire  \\always  ("), "instance line escaped: {v}");
        assert!(v.contains(".\\case (in)"), "connection port escaped: {v}");
    }

    #[test]
    fn emission_is_deterministic() {
        let build = || {
            let mut m = Module::new("d");
            let a = m.input("a", 8);
            let y = m.output("y", 8);
            m.assign(y, Expr::net(a));
            emit_module(&m)
        };
        assert_eq!(build(), build());
    }
}

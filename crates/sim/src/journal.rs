//! Crash-safe campaign journaling: deterministic chunking, append-only
//! checkpoint records, and exact resume.
//!
//! Every campaign in the workspace (resilience fault sweeps, fuzz seed
//! sweeps, explore design-point sweeps) is byte-deterministic: the same
//! config produces the same report for any `--workers`×`--lanes`. That
//! contract makes *exact* crash/resume possible — if the campaign is split
//! into deterministic work units and each unit's result is persisted as it
//! completes, a restarted run can replay the finished units and recompute
//! only the missing ones, producing a report byte-identical to an
//! uninterrupted run.
//!
//! # Journal format
//!
//! One file, `campaign.journal`, inside the `--resume` directory:
//!
//! ```text
//! header (24 bytes):
//!   magic        8 bytes  b"TLJRNL01"
//!   version      u32 LE   currently 1
//!   config_hash  u64 LE   FNV-1a of the canonicalized campaign config
//!   total_chunks u32 LE   number of work units in this campaign
//! record (repeated):
//!   chunk_index  u32 LE
//!   payload_len  u32 LE
//!   checksum     u64 LE   FNV-1a of the payload bytes
//!   payload      payload_len bytes (compact JSON of the chunk result)
//! ```
//!
//! Records are appended with an fsync each, so a completed chunk survives
//! `kill -9`. On open, the reader walks the records and truncates the file
//! at the first torn or corrupt one (short header, short record, checksum
//! mismatch, out-of-range index, non-UTF-8 payload) — a crash mid-append
//! costs exactly the chunk that was being written, never the journal.
//!
//! # Chunk keying
//!
//! The header's `config_hash` covers the campaign kind, the chunk size, the
//! total chunk count, and a canonical serialization of the config with
//! run-irrelevant knobs (worker count) zeroed. Resuming with a config whose
//! hash differs — different seed, different design, different `--lanes`
//! (lane width determines chunk boundaries) — fails loudly with
//! [`JournalError::ConfigMismatch`] rather than silently restarting or,
//! worse, splicing chunks from two different campaigns into one report.

use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::io::{Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Journal file name inside the `--resume` directory.
pub const JOURNAL_FILE: &str = "campaign.journal";

const MAGIC: &[u8; 8] = b"TLJRNL01";
const VERSION: u32 = 1;
const HEADER_LEN: usize = 24;
const RECORD_HEADER_LEN: usize = 16;

/// FNV-1a 64-bit hash — the checksum for journal records and the campaign
/// config fingerprint. Stable across platforms and releases by definition.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Fingerprints a campaign for journal compatibility: the campaign kind
/// (`"faults"`, `"fuzz"`, `"explore"`), the chunk geometry, and a canonical
/// config serialization with run-irrelevant knobs (worker count) zeroed.
/// Two configs share a journal iff they would produce identical chunk
/// results at identical chunk indices.
pub fn config_hash(kind: &str, chunk_size: usize, total_chunks: usize, canonical: &str) -> u64 {
    let input = format!("{kind}|v{VERSION}|chunk={chunk_size}|total={total_chunks}|{canonical}");
    fnv1a64(input.as_bytes())
}

/// A journal open/append failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JournalError {
    /// Filesystem failure reading or writing the journal.
    Io(String),
    /// The file at the journal path is not a campaign journal.
    BadMagic,
    /// The journal was written by an incompatible format version.
    BadVersion {
        /// Version found in the header.
        found: u32,
    },
    /// A journaled chunk payload that passed its checksum failed to decode
    /// back into typed results — version drift between the writer and this
    /// reader.
    Decode(String),
    /// The journal belongs to a different campaign configuration. Resuming
    /// it would splice results from two different campaigns into one
    /// report, so this is a hard error — never a silent restart.
    ConfigMismatch {
        /// Hash of the current campaign config.
        expected_hash: u64,
        /// Hash stored in the journal header.
        found_hash: u64,
        /// Chunk count of the current campaign.
        expected_chunks: u32,
        /// Chunk count stored in the journal header.
        found_chunks: u32,
    },
}

impl std::fmt::Display for JournalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JournalError::Io(e) => write!(f, "journal I/O error: {e}"),
            JournalError::Decode(e) => write!(
                f,
                "journal record failed to decode ({e}); the journal was likely \
                 written by a different build — pass a fresh --resume directory"
            ),
            JournalError::BadMagic => write!(
                f,
                "resume directory holds a file that is not a campaign journal \
                 (bad magic); pass a fresh directory"
            ),
            JournalError::BadVersion { found } => write!(
                f,
                "journal format version {found} is not supported by this build \
                 (expected {VERSION})"
            ),
            JournalError::ConfigMismatch {
                expected_hash,
                found_hash,
                expected_chunks,
                found_chunks,
            } => write!(
                f,
                "journal was written for a different campaign config \
                 (journal hash {found_hash:#018x} over {found_chunks} chunks, current \
                 config hash {expected_hash:#018x} over {expected_chunks} chunks); \
                 refusing to resume — rerun with the original arguments or pass a \
                 fresh --resume directory"
            ),
        }
    }
}

impl std::error::Error for JournalError {}

fn io_err(e: std::io::Error) -> JournalError {
    JournalError::Io(e.to_string())
}

/// An open campaign journal: the chunk results recovered from disk plus an
/// append handle for new ones.
#[derive(Debug)]
pub struct Journal {
    file: File,
    entries: BTreeMap<u32, String>,
}

impl Journal {
    /// Opens (or creates) the journal in `dir` for a campaign with the
    /// given config fingerprint and chunk count.
    ///
    /// A fresh or torn-header file is initialized in place. An existing
    /// journal is validated (magic, version, config hash, chunk count) and
    /// its records are scanned; a torn or corrupt tail is truncated so the
    /// journal ends at the last intact record.
    ///
    /// # Errors
    ///
    /// [`JournalError::ConfigMismatch`] when the journal belongs to a
    /// different campaign; [`JournalError::BadMagic`] /
    /// [`JournalError::BadVersion`] for foreign files; [`JournalError::Io`]
    /// for filesystem failures.
    pub fn open(dir: &Path, config_hash: u64, total_chunks: u32) -> Result<Journal, JournalError> {
        std::fs::create_dir_all(dir).map_err(io_err)?;
        let path = dir.join(JOURNAL_FILE);
        let existing = match std::fs::read(&path) {
            Ok(bytes) => bytes,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
            Err(e) => return Err(io_err(e)),
        };
        // A file shorter than the header can only be a crash during initial
        // creation (the header is written with one fsynced write); treat it
        // as fresh. Anything longer must carry our magic.
        let fresh = existing.len() < HEADER_LEN;
        let mut entries = BTreeMap::new();
        let mut good_len = HEADER_LEN;
        if !fresh {
            if &existing[0..8] != MAGIC {
                return Err(JournalError::BadMagic);
            }
            let version = u32::from_le_bytes(existing[8..12].try_into().unwrap());
            if version != VERSION {
                return Err(JournalError::BadVersion { found: version });
            }
            let found_hash = u64::from_le_bytes(existing[12..20].try_into().unwrap());
            let found_chunks = u32::from_le_bytes(existing[20..24].try_into().unwrap());
            if found_hash != config_hash || found_chunks != total_chunks {
                return Err(JournalError::ConfigMismatch {
                    expected_hash: config_hash,
                    found_hash,
                    expected_chunks: total_chunks,
                    found_chunks,
                });
            }
            let mut off = HEADER_LEN;
            while off + RECORD_HEADER_LEN <= existing.len() {
                let idx = u32::from_le_bytes(existing[off..off + 4].try_into().unwrap());
                let len =
                    u32::from_le_bytes(existing[off + 4..off + 8].try_into().unwrap()) as usize;
                let sum = u64::from_le_bytes(existing[off + 8..off + 16].try_into().unwrap());
                let start = off + RECORD_HEADER_LEN;
                let Some(end) = start.checked_add(len) else {
                    break;
                };
                if end > existing.len() || idx >= total_chunks {
                    break;
                }
                let payload = &existing[start..end];
                if fnv1a64(payload) != sum {
                    break;
                }
                let Ok(text) = std::str::from_utf8(payload) else {
                    break;
                };
                entries.insert(idx, text.to_string());
                off = end;
                good_len = off;
            }
        }
        let mut file = OpenOptions::new()
            .create(true)
            .read(true)
            .write(true)
            .truncate(false)
            .open(&path)
            .map_err(io_err)?;
        if fresh {
            file.set_len(0).map_err(io_err)?;
            let mut header = Vec::with_capacity(HEADER_LEN);
            header.extend_from_slice(MAGIC);
            header.extend_from_slice(&VERSION.to_le_bytes());
            header.extend_from_slice(&config_hash.to_le_bytes());
            header.extend_from_slice(&total_chunks.to_le_bytes());
            file.write_all(&header).map_err(io_err)?;
            file.sync_all().map_err(io_err)?;
        } else if good_len < existing.len() {
            file.set_len(good_len as u64).map_err(io_err)?;
            file.sync_all().map_err(io_err)?;
        }
        file.seek(SeekFrom::Start(good_len as u64)).map_err(io_err)?;
        Ok(Journal { file, entries })
    }

    /// The chunk results recovered from disk, keyed by chunk index.
    pub fn entries(&self) -> &BTreeMap<u32, String> {
        &self.entries
    }

    /// Appends a completed chunk's payload and fsyncs, so the record
    /// survives an immediate `kill -9`.
    ///
    /// # Errors
    ///
    /// [`JournalError::Io`] if the write or sync fails.
    pub fn append(&mut self, chunk_index: u32, payload: &str) -> Result<(), JournalError> {
        let bytes = payload.as_bytes();
        let mut record = Vec::with_capacity(RECORD_HEADER_LEN + bytes.len());
        record.extend_from_slice(&chunk_index.to_le_bytes());
        record.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
        record.extend_from_slice(&fnv1a64(bytes).to_le_bytes());
        record.extend_from_slice(bytes);
        self.file.write_all(&record).map_err(io_err)?;
        self.file.sync_data().map_err(io_err)?;
        self.entries.insert(chunk_index, payload.to_string());
        Ok(())
    }
}

/// Durability knobs threaded through every campaign entry point. The
/// default value is *inert*: no journal, no watchdog, default chunk
/// geometry, one panic retry, SIGINT latch consulted via the process-wide
/// flag — campaigns behave exactly as they did before this subsystem
/// existed.
#[derive(Clone, Default)]
pub struct DurabilityOptions {
    /// Journal directory (`--resume <dir>`). `None` disables journaling.
    pub dir: Option<PathBuf>,
    /// Per-chunk wall-clock watchdog (`--chunk-timeout`). Work items not
    /// yet started when a chunk's deadline passes are demoted to a typed
    /// `Degraded` outcome instead of stalling the campaign.
    pub chunk_timeout: Option<Duration>,
    /// Override the campaign's default chunk size (work items per journal
    /// record). Tests use small chunks to exercise record boundaries.
    pub chunk_size: Option<usize>,
    /// How many times a panicking work item is retried serially before
    /// being quarantined with its panic payload captured in the report.
    /// `0` (the inert default) means one attempt, no retries.
    pub panic_retries: usize,
    /// Interrupt latch. `None` uses the process-wide SIGINT flag
    /// ([`crate::interrupt::interrupted`]); tests install a local flag so
    /// parallel tests never race on the global one.
    pub interrupt: Option<Arc<AtomicBool>>,
    /// Test-only chaos hook: work items whose identity string contains one
    /// of these substrings panic before running, exercising the quarantine
    /// path deterministically.
    pub chaos_panic_targets: Vec<String>,
    /// Disables the campaign telemetry layer (`events.jsonl` /
    /// `status.json`) for journaled runs. Off by default — journaled
    /// campaigns stream telemetry unless the caller opts out (the perfgate
    /// uses this to A/B the telemetry overhead). Deliberately *not* part of
    /// [`DurabilityOptions::is_inert`]: telemetry only ever activates when a
    /// journal directory is set, so the knob cannot drag an otherwise inert
    /// run off the legacy path.
    pub telemetry_off: bool,
}

impl DurabilityOptions {
    /// Inert options plus one non-default knob commonly set together.
    pub fn with_dir(dir: impl Into<PathBuf>) -> DurabilityOptions {
        DurabilityOptions {
            dir: Some(dir.into()),
            ..DurabilityOptions::default()
        }
    }

    /// True when every knob is at its inert default, i.e. the campaign can
    /// take its legacy non-chunked path with identical behaviour.
    pub fn is_inert(&self) -> bool {
        self.dir.is_none()
            && self.chunk_timeout.is_none()
            && self.chunk_size.is_none()
            && self.interrupt.is_none()
            && self.chaos_panic_targets.is_empty()
    }

    /// Panics if `identity` matches a chaos target. Call at the top of each
    /// work item; a no-op unless the test configured chaos.
    pub fn chaos_check(&self, identity: &str) {
        if self
            .chaos_panic_targets
            .iter()
            .any(|t| identity.contains(t.as_str()))
        {
            panic!("chaos hook tripped for {identity}");
        }
    }

    /// True once the run should stop starting new chunks: the local latch
    /// if one is installed, else the process-wide SIGINT flag.
    pub fn interrupted(&self) -> bool {
        match &self.interrupt {
            Some(flag) => flag.load(Ordering::SeqCst),
            None => crate::interrupt::interrupted(),
        }
    }

    /// The watchdog deadline for a chunk starting now, if one is set.
    pub fn chunk_deadline(&self) -> Option<Instant> {
        self.chunk_timeout.map(|t| Instant::now() + t)
    }

    /// Retry budget for panicking work items, clamped to at least the one
    /// initial attempt.
    pub fn panic_attempts(&self) -> usize {
        1 + self.panic_retries
    }
}

/// Replay/execution accounting for a chunked campaign run. Feeds the
/// `journal` provenance block — never the report body, because replay
/// counts legitimately differ between a clean run and a resumed run whose
/// results are byte-identical.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RunStats {
    /// Work units the campaign was chunked into.
    pub chunks_total: usize,
    /// Chunks recovered from the journal instead of recomputed.
    pub chunks_replayed: usize,
    /// Chunks executed (and journaled, when a journal is open) by this run.
    pub chunks_executed: usize,
    /// True when the run stopped early on an interrupt; the report built
    /// from the returned slots is partial and resumable.
    pub interrupted: bool,
}

/// Runs a campaign as `total_chunks` deterministic work units with
/// journaled checkpoint/resume.
///
/// Chunks already present in the journal are replayed without calling
/// `exec`. Missing chunks run in ascending index order; each result is
/// appended (and fsynced) to the journal before the next chunk starts. The
/// interrupt latch is checked *between* chunks — an in-flight chunk always
/// drains to completion — so an interrupted run returns a prefix-complete
/// set of slots plus `interrupted: true`, and a later resume picks up at
/// the first missing chunk.
///
/// `exec` receives the chunk index and returns the chunk's canonical JSON
/// payload; determinism of `exec` is what makes a resumed report
/// byte-identical to an uninterrupted one.
///
/// # Errors
///
/// Journal open/append failures ([`JournalError`]); `dir: None` runs the
/// same chunked loop without persistence and cannot fail.
pub fn run_chunked<F>(
    opts: &DurabilityOptions,
    config_hash: u64,
    total_chunks: usize,
    exec: F,
) -> Result<(Vec<Option<String>>, RunStats), JournalError>
where
    F: FnMut(usize) -> String,
{
    run_chunked_observed(opts, config_hash, total_chunks, None, exec)
}

/// How a campaign's chunk payloads translate into telemetry: the campaign
/// kind plus a payload → per-outcome-counter function. Each campaign module
/// owns its payload schema, so it supplies the counter; the journal layer
/// owns the chunk loop, so it owns *when* events fire.
pub struct TelemetrySpec<'a> {
    /// Campaign kind: `"faults"`, `"fuzz"`, or `"explore"`.
    pub kind: &'a str,
    /// Counts outcomes in one chunk's canonical JSON payload (e.g.
    /// `{"masked": 12, "sdc": 1}`). Must be a pure function of the payload —
    /// it also runs over *replayed* payloads on resume so status counters
    /// cover the whole campaign, not just this process's share.
    pub count_outcomes: &'a dyn Fn(&str) -> BTreeMap<String, u64>,
}

/// [`run_chunked`] plus streaming telemetry. When a journal directory is
/// set, telemetry is on (a `spec` was supplied, `opts.telemetry_off` is
/// false), the run additionally maintains `events.jsonl` and `status.json`
/// in the campaign directory — see [`tensorlib_obs::events`].
///
/// Telemetry is observational only and strictly best-effort: every
/// telemetry write failure is swallowed, the chunk loop and its journal
/// durability guarantees are identical with telemetry on, off, or failing,
/// and no wall-clock data ever reaches the returned slots (the report
/// inputs) — it lives only in the telemetry files, quarantined under
/// `timing` sub-objects.
pub fn run_chunked_observed<F>(
    opts: &DurabilityOptions,
    config_hash: u64,
    total_chunks: usize,
    telemetry: Option<&TelemetrySpec<'_>>,
    mut exec: F,
) -> Result<(Vec<Option<String>>, RunStats), JournalError>
where
    F: FnMut(usize) -> String,
{
    let mut journal = match &opts.dir {
        Some(dir) => Some(Journal::open(dir, config_hash, total_chunks as u32)?),
        None => None,
    };
    let mut slots: Vec<Option<String>> = vec![None; total_chunks];
    let mut stats = RunStats {
        chunks_total: total_chunks,
        ..RunStats::default()
    };
    if let Some(j) = &journal {
        for (&idx, payload) in j.entries() {
            slots[idx as usize] = Some(payload.clone());
            stats.chunks_replayed += 1;
        }
    }
    let mut telemetry = match (&opts.dir, telemetry) {
        (Some(dir), Some(spec)) if !opts.telemetry_off => {
            Telemetry::begin(dir, spec, config_hash, total_chunks, &slots)
        }
        _ => None,
    };
    for (i, slot) in slots.iter_mut().enumerate() {
        if slot.is_some() {
            continue;
        }
        if opts.interrupted() {
            stats.interrupted = true;
            break;
        }
        let chunk_started = Instant::now();
        let payload = exec(i);
        if let Some(j) = &mut journal {
            j.append(i as u32, &payload)?;
        }
        if let Some(t) = &mut telemetry {
            t.chunk_completed(i, &payload, chunk_started.elapsed());
        }
        *slot = Some(payload);
        stats.chunks_executed += 1;
    }
    if let Some(t) = &mut telemetry {
        t.finish(stats.interrupted);
    }
    Ok((slots, stats))
}

/// Live telemetry state for one journaled campaign run: the open event log
/// plus the running counters behind `status.json`. All writes are
/// best-effort; a telemetry I/O failure never fails the campaign.
struct Telemetry<'a> {
    spec: &'a TelemetrySpec<'a>,
    dir: PathBuf,
    log: tensorlib_obs::events::EventLog,
    config_hash: String,
    chunks_total: usize,
    chunks_replayed: usize,
    chunks_executed: usize,
    outcomes: BTreeMap<String, u64>,
    started: Instant,
    /// EWMA of executed-chunk wall time in ms (α = 0.3); 0 until the first
    /// chunk completes.
    ewma_chunk_ms: f64,
}

impl<'a> Telemetry<'a> {
    fn begin(
        dir: &Path,
        spec: &'a TelemetrySpec<'a>,
        config_hash: u64,
        chunks_total: usize,
        replayed_slots: &[Option<String>],
    ) -> Option<Telemetry<'a>> {
        use tensorlib_obs::events::{Event, EventLog};
        let mut log = EventLog::open(dir).ok()?;
        let mut outcomes = BTreeMap::new();
        let mut chunks_replayed = 0usize;
        for payload in replayed_slots.iter().flatten() {
            merge_counts(&mut outcomes, &(spec.count_outcomes)(payload));
            chunks_replayed += 1;
        }
        let _ = log.append(
            Event::new("campaign_started")
                .str("kind", spec.kind)
                .str("config_hash", &format!("{config_hash:016x}"))
                .u64("total_chunks", chunks_total as u64)
                .u64("chunks_replayed", chunks_replayed as u64)
                .u64("pid", std::process::id() as u64)
                .timing(&[]),
        );
        let t = Telemetry {
            spec,
            dir: dir.to_path_buf(),
            log,
            config_hash: format!("{config_hash:016x}"),
            chunks_total,
            chunks_replayed,
            chunks_executed: 0,
            outcomes,
            started: Instant::now(),
            ewma_chunk_ms: 0.0,
        };
        t.write_status("running");
        Some(t)
    }

    fn chunk_completed(&mut self, index: usize, payload: &str, wall: Duration) {
        use tensorlib_obs::events::Event;
        let counts = (self.spec.count_outcomes)(payload);
        merge_counts(&mut self.outcomes, &counts);
        self.chunks_executed += 1;
        let wall_ms = wall.as_secs_f64() * 1e3;
        self.ewma_chunk_ms = if self.chunks_executed == 1 {
            wall_ms
        } else {
            0.3 * wall_ms + 0.7 * self.ewma_chunk_ms
        };
        let _ = self.log.append(
            Event::new("chunk_completed")
                .u64("chunk", index as u64)
                .counts("outcomes", &counts)
                .timing(&[("chunk_wall_ms", wall_ms)]),
        );
        if let Some(&n) = counts.get("degraded").filter(|&&n| n > 0) {
            let _ = self.log.append(
                Event::new("chunk_degraded")
                    .u64("chunk", index as u64)
                    .u64("degraded", n)
                    .timing(&[]),
            );
        }
        if let Some(&n) = counts.get("panicked").filter(|&&n| n > 0) {
            let _ = self.log.append(
                Event::new("panic_retry")
                    .u64("chunk", index as u64)
                    .u64("panicked", n)
                    .timing(&[]),
            );
        }
        self.write_status("running");
    }

    fn finish(&mut self, interrupted: bool) {
        use tensorlib_obs::events::Event;
        let (event, state) = if interrupted {
            ("campaign_interrupted", "interrupted")
        } else {
            ("campaign_finished", "finished")
        };
        let _ = self.log.append(
            Event::new(event)
                .u64("chunks_done", (self.chunks_replayed + self.chunks_executed) as u64)
                .u64("total_chunks", self.chunks_total as u64)
                .counts("outcomes", &self.outcomes)
                .timing(&[("elapsed_ms", self.started.elapsed().as_secs_f64() * 1e3)]),
        );
        self.write_status(state);
    }

    fn write_status(&self, state: &str) {
        use tensorlib_obs::events::{unix_ms, StatusSnapshot, StatusTiming};
        let done = self.chunks_replayed + self.chunks_executed;
        let remaining = self.chunks_total.saturating_sub(done);
        let eta_ms = if state == "running" && self.ewma_chunk_ms > 0.0 {
            (remaining as f64 * self.ewma_chunk_ms) as u64
        } else {
            0
        };
        let snapshot = StatusSnapshot {
            kind: self.spec.kind.to_string(),
            state: state.to_string(),
            pid: std::process::id(),
            config_hash: self.config_hash.clone(),
            chunks_total: self.chunks_total as u64,
            chunks_done: done as u64,
            chunks_replayed: self.chunks_replayed as u64,
            chunks_executed: self.chunks_executed as u64,
            outcomes: self.outcomes.clone(),
            timing: StatusTiming {
                updated_unix_ms: unix_ms(),
                elapsed_ms: self.started.elapsed().as_millis() as u64,
                ewma_chunk_ms: self.ewma_chunk_ms,
                throughput_chunks_per_s: if self.ewma_chunk_ms > 0.0 {
                    1e3 / self.ewma_chunk_ms
                } else {
                    0.0
                },
                eta_ms,
            },
        };
        let _ = snapshot.write(&self.dir);
    }
}

fn merge_counts(into: &mut BTreeMap<String, u64>, from: &BTreeMap<String, u64>) {
    for (k, v) in from {
        *into.entry(k.clone()).or_insert(0) += v;
    }
}

// ---------------------------------------------------------------------------
// Replay decode helpers.
//
// The vendored serde stack only *writes* JSON (its `Deserialize` is a marker
// trait), so journal replay decodes chunk payloads with the observability
// crate's recursive-descent parser and hand-reconstructs the typed results.
// These helpers give the campaign modules uniform field access with
// descriptive errors; every decoded chunk is re-serialized through the normal
// serde path, which is what makes a resumed report byte-identical.
// ---------------------------------------------------------------------------

use tensorlib_obs::json::Value;

/// Looks up `key` in a JSON object, with a descriptive error.
pub fn field<'a>(v: &'a Value, key: &str) -> Result<&'a Value, String> {
    v.get(key).ok_or_else(|| format!("missing field `{key}`"))
}

/// Decodes object field `key` as an unsigned integer.
pub fn field_u64(v: &Value, key: &str) -> Result<u64, String> {
    field(v, key)?
        .as_u64()
        .ok_or_else(|| format!("field `{key}` is not an unsigned integer"))
}

/// Decodes object field `key` as a float.
pub fn field_f64(v: &Value, key: &str) -> Result<f64, String> {
    field(v, key)?
        .as_f64()
        .ok_or_else(|| format!("field `{key}` is not a number"))
}

/// Decodes object field `key` as a bool.
pub fn field_bool(v: &Value, key: &str) -> Result<bool, String> {
    match field(v, key)? {
        Value::Bool(b) => Ok(*b),
        _ => Err(format!("field `{key}` is not a bool")),
    }
}

/// Decodes object field `key` as a string slice.
pub fn field_str<'a>(v: &'a Value, key: &str) -> Result<&'a str, String> {
    field(v, key)?
        .as_str()
        .ok_or_else(|| format!("field `{key}` is not a string"))
}

/// Decodes object field `key` as an optional string (`null` → `None`).
pub fn field_opt_string(v: &Value, key: &str) -> Result<Option<String>, String> {
    match field(v, key)? {
        Value::Null => Ok(None),
        Value::Str(s) => Ok(Some(s.clone())),
        _ => Err(format!("field `{key}` is neither null nor a string")),
    }
}

/// Decodes object field `key` as an array slice.
pub fn field_array<'a>(v: &'a Value, key: &str) -> Result<&'a [Value], String> {
    field(v, key)?
        .as_array()
        .ok_or_else(|| format!("field `{key}` is not an array"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("tl_journal_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn fnv_matches_reference_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn journal_round_trips_and_resumes() {
        let dir = tmpdir("roundtrip");
        let hash = config_hash("faults", 4, 3, "cfg");
        {
            let mut j = Journal::open(&dir, hash, 3).unwrap();
            assert!(j.entries().is_empty());
            j.append(0, "{\"a\":1}").unwrap();
            j.append(1, "{\"b\":2}").unwrap();
        }
        let j = Journal::open(&dir, hash, 3).unwrap();
        assert_eq!(j.entries().len(), 2);
        assert_eq!(j.entries()[&0], "{\"a\":1}");
        assert_eq!(j.entries()[&1], "{\"b\":2}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_is_truncated_at_every_offset() {
        let dir = tmpdir("torn");
        let hash = config_hash("faults", 4, 2, "cfg");
        {
            let mut j = Journal::open(&dir, hash, 2).unwrap();
            j.append(0, "{\"first\":true}").unwrap();
            j.append(1, "{\"second\":true}").unwrap();
        }
        let path = dir.join(JOURNAL_FILE);
        let full = std::fs::read(&path).unwrap();
        let first_end =
            HEADER_LEN + RECORD_HEADER_LEN + "{\"first\":true}".len();
        // Truncate at every byte offset inside the second record: the first
        // record must always survive, the torn second must always be dropped.
        for cut in first_end..full.len() {
            std::fs::write(&path, &full[..cut]).unwrap();
            let j = Journal::open(&dir, hash, 2).unwrap();
            assert_eq!(j.entries().len(), 1, "cut={cut}");
            assert_eq!(j.entries()[&0], "{\"first\":true}");
            assert_eq!(
                std::fs::metadata(&path).unwrap().len(),
                first_end as u64,
                "cut={cut}"
            );
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_checksum_drops_the_tail() {
        let dir = tmpdir("cksum");
        let hash = config_hash("fuzz", 8, 2, "cfg");
        {
            let mut j = Journal::open(&dir, hash, 2).unwrap();
            j.append(0, "payload-zero").unwrap();
            j.append(1, "payload-one").unwrap();
        }
        let path = dir.join(JOURNAL_FILE);
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff;
        std::fs::write(&path, &bytes).unwrap();
        let j = Journal::open(&dir, hash, 2).unwrap();
        assert_eq!(j.entries().len(), 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn config_mismatch_is_loud() {
        let dir = tmpdir("mismatch");
        let hash = config_hash("faults", 4, 3, "cfg-a");
        Journal::open(&dir, hash, 3).unwrap();
        let other = config_hash("faults", 4, 3, "cfg-b");
        let err = Journal::open(&dir, other, 3).unwrap_err();
        assert!(matches!(err, JournalError::ConfigMismatch { .. }));
        assert!(err.to_string().contains("refusing to resume"));
        // Different chunk count with the same hash input is also a mismatch.
        let err = Journal::open(&dir, hash, 4).unwrap_err();
        assert!(matches!(err, JournalError::ConfigMismatch { .. }));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn foreign_file_is_rejected() {
        let dir = tmpdir("foreign");
        std::fs::write(dir.join(JOURNAL_FILE), b"this is not a journal, sorry!").unwrap();
        let err = Journal::open(&dir, 1, 1).unwrap_err();
        assert_eq!(err, JournalError::BadMagic);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn run_chunked_replays_and_drains_on_interrupt() {
        let dir = tmpdir("chunked");
        let hash = config_hash("faults", 1, 4, "cfg");
        let flag = Arc::new(AtomicBool::new(false));
        let opts = DurabilityOptions {
            dir: Some(dir.clone()),
            interrupt: Some(flag.clone()),
            ..DurabilityOptions::default()
        };
        // First run: interrupt after chunk 1 executes.
        let flag2 = flag.clone();
        let (slots, stats) = run_chunked(&opts, hash, 4, |i| {
            if i == 1 {
                flag2.store(true, Ordering::SeqCst);
            }
            format!("chunk-{i}")
        })
        .unwrap();
        assert_eq!(slots[0].as_deref(), Some("chunk-0"));
        assert_eq!(slots[1].as_deref(), Some("chunk-1"));
        assert_eq!(slots[2], None);
        assert!(stats.interrupted);
        assert_eq!(stats.chunks_executed, 2);
        // Resume: chunks 0/1 replay, 2/3 execute, nothing re-runs.
        flag.store(false, Ordering::SeqCst);
        let mut ran = Vec::new();
        let (slots, stats) = run_chunked(&opts, hash, 4, |i| {
            ran.push(i);
            format!("chunk-{i}")
        })
        .unwrap();
        assert_eq!(ran, vec![2, 3]);
        assert_eq!(stats.chunks_replayed, 2);
        assert_eq!(stats.chunks_executed, 2);
        assert!(!stats.interrupted);
        assert!(slots.iter().all(|s| s.is_some()));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    fn count_marks(payload: &str) -> BTreeMap<String, u64> {
        let mut counts = BTreeMap::new();
        counts.insert("done".to_string(), 1);
        if payload.contains("degraded") {
            counts.insert("degraded".to_string(), 1);
        }
        counts
    }

    fn marks_spec() -> TelemetrySpec<'static> {
        TelemetrySpec {
            kind: "faults",
            count_outcomes: &count_marks,
        }
    }

    #[test]
    fn telemetry_writes_events_and_status() {
        use tensorlib_obs::events::{read_events, StatusSnapshot};
        let dir = tmpdir("telemetry");
        let hash = config_hash("faults", 1, 3, "cfg");
        let opts = DurabilityOptions::with_dir(&dir);
        let spec = marks_spec();
        let (slots, stats) = run_chunked_observed(&opts, hash, 3, Some(&spec), |i| {
            if i == 2 {
                format!("chunk-{i}-degraded")
            } else {
                format!("chunk-{i}")
            }
        })
        .unwrap();
        assert!(slots.iter().all(|s| s.is_some()));
        assert!(!stats.interrupted);
        let events = read_events(&dir).unwrap();
        let names: Vec<&str> = events
            .iter()
            .map(|e| e.get("event").and_then(Value::as_str).unwrap())
            .collect();
        assert_eq!(
            names,
            [
                "campaign_started",
                "chunk_completed",
                "chunk_completed",
                "chunk_completed",
                "chunk_degraded",
                "campaign_finished"
            ]
        );
        // Wall-clock data only under `timing`.
        for e in &events {
            assert!(e.get("timing").is_some());
        }
        let status = StatusSnapshot::read(&dir).unwrap();
        assert_eq!(status.state, "finished");
        assert_eq!(status.kind, "faults");
        assert_eq!(status.config_hash, format!("{hash:016x}"));
        assert_eq!(status.chunks_total, 3);
        assert_eq!(status.chunks_done, 3);
        assert_eq!(status.chunks_executed, 3);
        assert_eq!(status.outcomes["done"], 3);
        assert_eq!(status.outcomes["degraded"], 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn telemetry_counts_replayed_chunks_on_resume() {
        use tensorlib_obs::events::{read_events, StatusSnapshot};
        let dir = tmpdir("telemetry_resume");
        let hash = config_hash("faults", 1, 4, "cfg");
        let flag = Arc::new(AtomicBool::new(false));
        let opts = DurabilityOptions {
            dir: Some(dir.clone()),
            interrupt: Some(flag.clone()),
            ..DurabilityOptions::default()
        };
        let spec = marks_spec();
        let flag2 = flag.clone();
        let (_, stats) = run_chunked_observed(&opts, hash, 4, Some(&spec), |i| {
            if i == 1 {
                flag2.store(true, Ordering::SeqCst);
            }
            format!("chunk-{i}")
        })
        .unwrap();
        assert!(stats.interrupted);
        let status = StatusSnapshot::read(&dir).unwrap();
        assert_eq!(status.state, "interrupted");
        assert_eq!(status.chunks_done, 2);
        // Resume: replayed chunks count into the snapshot via the same
        // outcome counter, so the totals cover the whole campaign.
        flag.store(false, Ordering::SeqCst);
        let (_, stats) =
            run_chunked_observed(&opts, hash, 4, Some(&spec), |i| format!("chunk-{i}")).unwrap();
        assert_eq!(stats.chunks_replayed, 2);
        let status = StatusSnapshot::read(&dir).unwrap();
        assert_eq!(status.state, "finished");
        assert_eq!(status.chunks_done, 4);
        assert_eq!(status.chunks_replayed, 2);
        assert_eq!(status.chunks_executed, 2);
        assert_eq!(status.outcomes["done"], 4);
        // events.jsonl is append-only across resumes: both lifecycles are
        // recorded in order.
        let names: Vec<String> = read_events(&dir)
            .unwrap()
            .iter()
            .map(|e| e.get("event").and_then(Value::as_str).unwrap().to_string())
            .collect();
        assert_eq!(
            names,
            [
                "campaign_started",
                "chunk_completed",
                "chunk_completed",
                "campaign_interrupted",
                "campaign_started",
                "chunk_completed",
                "chunk_completed",
                "campaign_finished"
            ]
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn telemetry_off_writes_no_telemetry_files() {
        use tensorlib_obs::events::{EVENTS_FILE, STATUS_FILE};
        let dir = tmpdir("telemetry_off");
        let hash = config_hash("faults", 1, 2, "cfg");
        let opts = DurabilityOptions {
            telemetry_off: true,
            ..DurabilityOptions::with_dir(&dir)
        };
        let spec = marks_spec();
        run_chunked_observed(&opts, hash, 2, Some(&spec), |i| format!("chunk-{i}")).unwrap();
        assert!(!dir.join(EVENTS_FILE).exists());
        assert!(!dir.join(STATUS_FILE).exists());
        // The knob does not drag inert options off the legacy path.
        let inert = DurabilityOptions {
            telemetry_off: true,
            ..DurabilityOptions::default()
        };
        assert!(inert.is_inert());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn run_chunked_without_dir_still_chunks() {
        let opts = DurabilityOptions::default();
        let (slots, stats) = run_chunked(&opts, 0, 3, |i| i.to_string()).unwrap();
        assert_eq!(slots.len(), 3);
        assert_eq!(stats.chunks_executed, 3);
        assert_eq!(stats.chunks_replayed, 0);
    }

    #[test]
    fn durability_options_inertness() {
        assert!(DurabilityOptions::default().is_inert());
        assert!(!DurabilityOptions::with_dir("/tmp/x").is_inert());
        let timed = DurabilityOptions {
            chunk_timeout: Some(Duration::from_secs(1)),
            ..DurabilityOptions::default()
        };
        assert!(!timed.is_inert());
        assert_eq!(DurabilityOptions::default().panic_attempts(), 1);
    }

    #[test]
    fn file_handle_is_positioned_at_tail() {
        let dir = tmpdir("tail");
        let hash = config_hash("explore", 2, 2, "cfg");
        let mut j = Journal::open(&dir, hash, 2).unwrap();
        j.append(0, "x").unwrap();
        let len = std::fs::metadata(dir.join(JOURNAL_FILE)).unwrap().len();
        assert_eq!(len as usize, HEADER_LEN + RECORD_HEADER_LEN + 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

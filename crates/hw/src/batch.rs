//! Lane-batched simulation: N independent runs of one [`FlatDesign`] per
//! bytecode pass.
//!
//! [`BatchSim`] executes the same compiled instruction streams as the scalar
//! [`Interpreter`], but every net value, register, bank address, and bank
//! word is a *lane vector*: a struct-of-arrays row of `lanes` u64 values,
//! one per independent simulation. Each instruction dispatch then performs
//! its operation across all lanes in a tight inner loop, so dispatch cost —
//! the dominant cost of the scalar interpreter — is amortized `lanes`-fold
//! and the lane loops autovectorize.
//!
//! Per-lane divergence is the point of the engine:
//!
//! - [`BatchSim::attach_lane_faults`] attaches a *different* fault set to
//!   each lane, so one pass retires up to `lanes` fault-campaign sites.
//! - [`BatchSim::poke_lanes`] / [`BatchSim::load_bank_lane`] drive each lane
//!   with its own stimulus, so fuzz and measured-stats campaigns evaluate
//!   `lanes` seeds at once.
//!
//! **Determinism contract:** lane `l` of a batched run is bit-identical —
//! every net, every cycle, every bank word, every parity counter — to a
//! scalar [`Interpreter`] run given the same initial state, stimulus, and
//! fault set. The engine shares the scalar path's compiled bytecode
//! ([`Compiled::build`]), fault resolution, masking rules, and commit
//! ordering, and the fuzz oracle (`crate::fuzz::check_batch_netlist`)
//! re-proves the contract over random netlists on every campaign. Batched
//! campaign reports are therefore byte-identical to scalar ones for any
//! lane width.
//!
//! The batch engine carries no observability layer (attach a trace to a
//! scalar interpreter for waveforms) and always runs compiled.

use std::collections::HashMap;

use crate::array::HwError;
use crate::fault::{BankWordFlip, FaultSpec, RegHold, SlotFlip, StuckForce};
use crate::interp::{
    mask, resolve_fault_spec, sign_extend, Compiled, FlatDesign, Instr, Interpreter, ResolvedFault,
};
use crate::netlist::{BinOp, NetId};

/// A stuck-at force scoped to one lane.
#[derive(Debug, Clone, Copy)]
struct LaneStuck {
    lane: u32,
    force: StuckForce,
}

/// A register-bit flip scoped to one lane.
#[derive(Debug, Clone, Copy)]
struct LaneFlip {
    lane: u32,
    flip: SlotFlip,
}

/// A bank-word flip scoped to one lane.
#[derive(Debug, Clone, Copy)]
struct LaneBankFlip {
    lane: u32,
    flip: BankWordFlip,
}

/// A dropped register transition scoped to one lane.
#[derive(Debug, Clone, Copy)]
struct LaneHold {
    lane: u32,
    hold: RegHold,
}

/// Per-lane fault state. Mirrors [`crate::fault::FaultState`] with every
/// entry tagged by its lane; the cycle counter is shared (all lanes attach
/// at the same instant).
#[derive(Debug, Default)]
struct BatchFaultState {
    stuck: Vec<LaneStuck>,
    flips: Vec<LaneFlip>,
    bank_flips: Vec<LaneBankFlip>,
    holds: Vec<LaneHold>,
    cycle: u64,
}

/// Lane-batched interpreter over a [`FlatDesign`]. See the module docs for
/// the lane layout and determinism contract.
#[derive(Debug)]
pub struct BatchSim {
    flat: FlatDesign,
    compiled: Compiled,
    lanes: usize,
    /// Net values, lane-major per net: net `n`'s lane `l` lives at
    /// `values[n * lanes + l]`.
    values: Vec<u64>,
    /// Operand stack of lane frames (each frame is `lanes` words).
    stack: Vec<u64>,
    /// Register sample buffer: reg `r`'s lanes at `[r * lanes, (r+1) * lanes)`.
    next_regs: Vec<u64>,
    /// Per bank: word-major lane rows (`word * lanes + l`), both buffers for
    /// double-buffered banks.
    bank_mem: Vec<Vec<u64>>,
    /// Per bank × lane sequential read/write addresses and latched rdata.
    bank_raddr: Vec<u64>,
    bank_waddr: Vec<u64>,
    bank_rdata: Vec<u64>,
    /// Sampled bank port activity, per bank × lane (bits 0..=2: read, write;
    /// wdata and buf_sel in their own rows). Reused across steps.
    bank_op_read: Vec<u64>,
    bank_op_write: Vec<u64>,
    bank_op_wdata: Vec<u64>,
    bank_op_bufsel: Vec<u64>,
    /// Parity bookkeeping per bank (same lane layout as `bank_mem`).
    bank_parity: Vec<Option<Vec<u8>>>,
    /// Sticky parity-mismatch counters, per bank × lane.
    parity_errors: Vec<u64>,
    net_by_name: HashMap<String, NetId>,
    port_by_name: HashMap<String, NetId>,
    dirty: bool,
    faults: Option<Box<BatchFaultState>>,
}

/// Applies one binary operator across lane frames, with the operator match
/// hoisted out of the lane loop so each arm is a straight-line
/// autovectorizable loop. Masking rules are identical to the scalar
/// `bin_eval`.
#[inline]
fn bin_eval_lanes(op: BinOp, a: &mut [u64], b: &[u64], mask: u64) {
    match op {
        BinOp::Add => {
            for (x, y) in a.iter_mut().zip(b) {
                *x = x.wrapping_add(*y) & mask;
            }
        }
        BinOp::Sub => {
            for (x, y) in a.iter_mut().zip(b) {
                *x = x.wrapping_sub(*y) & mask;
            }
        }
        BinOp::Mul => {
            for (x, y) in a.iter_mut().zip(b) {
                *x = x.wrapping_mul(*y) & mask;
            }
        }
        BinOp::And => {
            for (x, y) in a.iter_mut().zip(b) {
                *x &= *y;
            }
        }
        BinOp::Or => {
            for (x, y) in a.iter_mut().zip(b) {
                *x |= *y;
            }
        }
        BinOp::Xor => {
            for (x, y) in a.iter_mut().zip(b) {
                *x ^= *y;
            }
        }
        BinOp::Eq => {
            for (x, y) in a.iter_mut().zip(b) {
                *x = u64::from(*x == *y);
            }
        }
        BinOp::Lt => {
            for (x, y) in a.iter_mut().zip(b) {
                *x = u64::from(*x < *y);
            }
        }
    }
}

/// Re-applies lane-scoped stuck-at forces to `slot` after a store clobbered
/// its row. Linear scan, mirroring the scalar `reforce`.
#[inline]
fn reforce_lanes(forced: &[LaneStuck], slot: u32, lanes: usize, values: &mut [u64]) {
    for s in forced {
        if s.force.slot == slot {
            let idx = slot as usize * lanes + s.lane as usize;
            values[idx] = (values[idx] | s.force.or_mask) & s.force.and_mask;
        }
    }
}

/// Executes one bytecode stream over the lane-major value array. Exactly
/// the scalar `exec_stream_impl` semantics, instruction for instruction,
/// with every value operation widened to a lane loop. `FORCED` monomorphizes
/// fault re-forcing away on the clean path, as in the scalar engine.
fn exec_stream_lanes<const FORCED: bool>(
    code: &[Instr],
    lanes: usize,
    values: &mut [u64],
    stack: &mut Vec<u64>,
    next_regs: &mut Vec<u64>,
    forced: &[LaneStuck],
) {
    stack.clear();
    for ins in code {
        match *ins {
            Instr::Const(v) => {
                let base = stack.len();
                stack.resize(base + lanes, v);
            }
            Instr::Load(n) => {
                let row = n as usize * lanes;
                stack.extend_from_slice(&values[row..row + lanes]);
            }
            Instr::Not { mask } => {
                let base = stack.len() - lanes;
                for a in &mut stack[base..] {
                    *a = !*a & mask;
                }
            }
            Instr::Bin { op, mask } => {
                let split = stack.len() - lanes;
                let (head, b) = stack.split_at_mut(split);
                let a = &mut head[split - lanes..];
                bin_eval_lanes(op, a, b, mask);
                stack.truncate(split);
            }
            Instr::Mux => {
                let len = stack.len();
                let (head, f) = stack.split_at_mut(len - lanes);
                let (head, t) = head.split_at_mut(len - 2 * lanes);
                let sel = &mut head[len - 3 * lanes..];
                for ((s, &tv), &fv) in sel.iter_mut().zip(t.iter()).zip(f.iter()) {
                    let m = (*s & 1).wrapping_neg();
                    *s = (tv & m) | (fv & !m);
                }
                stack.truncate(len - 2 * lanes);
            }
            Instr::Resize { mask } => {
                let base = stack.len() - lanes;
                for a in &mut stack[base..] {
                    *a &= mask;
                }
            }
            Instr::SignExt {
                from_mask,
                sign_bit,
                ext_bits,
                to_mask,
            } => {
                let base = stack.len() - lanes;
                for a in &mut stack[base..] {
                    let v = *a & from_mask;
                    let m = u64::from(v & sign_bit != 0).wrapping_neg();
                    *a = (v | (ext_bits & m)) & to_mask;
                }
            }
            Instr::Store { net, mask } => {
                let base = stack.len() - lanes;
                let row = net as usize * lanes;
                for (dst, &s) in values[row..row + lanes].iter_mut().zip(&stack[base..]) {
                    *dst = s & mask;
                }
                stack.truncate(base);
                if FORCED {
                    reforce_lanes(forced, net, lanes, values);
                }
            }
            Instr::Copy { src, dst, mask } => {
                let s = src as usize * lanes;
                let d = dst as usize * lanes;
                // Rows of distinct nets never overlap, so split at the later
                // row to get disjoint src/dst slices the loop can vectorize.
                if s < d {
                    let (lo, hi) = values.split_at_mut(d);
                    for (dv, &sv) in hi[..lanes].iter_mut().zip(&lo[s..s + lanes]) {
                        *dv = sv & mask;
                    }
                } else if d < s {
                    let (lo, hi) = values.split_at_mut(s);
                    for (dv, &sv) in lo[d..d + lanes].iter_mut().zip(&hi[..lanes]) {
                        *dv = sv & mask;
                    }
                } else {
                    for v in &mut values[d..d + lanes] {
                        *v &= mask;
                    }
                }
                if FORCED {
                    reforce_lanes(forced, dst, lanes, values);
                }
            }
            Instr::StoreConst { dst, value } => {
                let row = dst as usize * lanes;
                for v in &mut values[row..row + lanes] {
                    *v = value;
                }
                if FORCED {
                    reforce_lanes(forced, dst, lanes, values);
                }
            }
            Instr::SampleReg { mask, target } => {
                let len = stack.len();
                let en = len - 2 * lanes;
                let row = target as usize * lanes;
                let base = next_regs.len();
                next_regs.resize(base + lanes, 0);
                let dst = &mut next_regs[base..];
                let (en_s, next_s) = stack[en..].split_at(lanes);
                let cur = &values[row..row + lanes];
                for l in 0..lanes {
                    let m = (en_s[l] & 1).wrapping_neg();
                    dst[l] = (next_s[l] & mask & m) | (cur[l] & !m);
                }
                stack.truncate(en);
            }
            Instr::SampleRegAlways { mask } => {
                let from = stack.len() - lanes;
                let base = next_regs.len();
                next_regs.resize(base + lanes, 0);
                for (d, &s) in next_regs[base..].iter_mut().zip(&stack[from..]) {
                    *d = s & mask;
                }
                stack.truncate(from);
            }
            Instr::Bin2 { op, a, b, mask } => {
                let ra = a as usize * lanes;
                let rb = b as usize * lanes;
                let base = stack.len();
                stack.extend_from_slice(&values[ra..ra + lanes]);
                bin_eval_lanes(op, &mut stack[base..], &values[rb..rb + lanes], mask);
            }
            Instr::LoadSext {
                net,
                from_mask,
                sign_bit,
                ext_bits,
                to_mask,
            } => {
                let row = net as usize * lanes;
                let base = stack.len();
                stack.resize(base + lanes, 0);
                for (d, &raw) in stack[base..].iter_mut().zip(&values[row..row + lanes]) {
                    let v = raw & from_mask;
                    let m = u64::from(v & sign_bit != 0).wrapping_neg();
                    *d = (v | (ext_bits & m)) & to_mask;
                }
            }
            Instr::LoadMasked { net, mask } => {
                let row = net as usize * lanes;
                let base = stack.len();
                stack.resize(base + lanes, 0);
                for (d, &v) in stack[base..].iter_mut().zip(&values[row..row + lanes]) {
                    *d = v & mask;
                }
            }
            Instr::NotNet { net, mask } => {
                let row = net as usize * lanes;
                let base = stack.len();
                stack.resize(base + lanes, 0);
                for (d, &v) in stack[base..].iter_mut().zip(&values[row..row + lanes]) {
                    *d = !v & mask;
                }
            }
            Instr::Mux3 { sel, t, f } => {
                let rs = sel as usize * lanes;
                let rt = t as usize * lanes;
                let rf = f as usize * lanes;
                let base = stack.len();
                stack.resize(base + lanes, 0);
                let dst = &mut stack[base..];
                let sel_s = &values[rs..rs + lanes];
                let t_s = &values[rt..rt + lanes];
                let f_s = &values[rf..rf + lanes];
                for l in 0..lanes {
                    let m = (sel_s[l] & 1).wrapping_neg();
                    dst[l] = (t_s[l] & m) | (f_s[l] & !m);
                }
            }
            Instr::SampleRegNets {
                en,
                next,
                mask,
                target,
            } => {
                let re = en as usize * lanes;
                let rn = next as usize * lanes;
                let rt = target as usize * lanes;
                let base = next_regs.len();
                next_regs.resize(base + lanes, 0);
                let dst = &mut next_regs[base..];
                let en_s = &values[re..re + lanes];
                let n_s = &values[rn..rn + lanes];
                let t_s = &values[rt..rt + lanes];
                for l in 0..lanes {
                    let m = (en_s[l] & 1).wrapping_neg();
                    dst[l] = (n_s[l] & mask & m) | (t_s[l] & !m);
                }
            }
            Instr::SampleRegAlwaysNet { net, mask } => {
                let row = net as usize * lanes;
                let base = next_regs.len();
                next_regs.resize(base + lanes, 0);
                for (d, &v) in next_regs[base..].iter_mut().zip(&values[row..row + lanes]) {
                    *d = v & mask;
                }
            }
        }
    }
}

impl BatchSim {
    /// Creates a batched interpreter with every lane at the reset state
    /// (registers at their init values, banks zeroed).
    ///
    /// # Panics
    ///
    /// Panics if `lanes` is zero.
    pub fn new(flat: FlatDesign, lanes: usize) -> BatchSim {
        assert!(lanes >= 1, "a batch needs at least one lane");
        let _span = tensorlib_obs::span("hw.batch_compile");
        let compiled = Compiled::build(&flat);
        let n_nets = flat.nets.len();
        let n_banks = flat.banks.len();
        let bank_mem: Vec<Vec<u64>> = flat
            .banks
            .iter()
            .map(|b| {
                let mult = if b.spec.is_double_buffered() { 2 } else { 1 };
                vec![0u64; (b.spec.words() * mult) as usize * lanes]
            })
            .collect();
        let bank_parity = flat
            .banks
            .iter()
            .map(|b| {
                let mult = if b.spec.is_double_buffered() { 2 } else { 1 };
                b.spec
                    .has_parity()
                    .then(|| vec![0u8; (b.spec.words() * mult) as usize * lanes])
            })
            .collect();
        let mut net_by_name = HashMap::with_capacity(n_nets);
        for (id, net) in flat.nets.iter().enumerate() {
            net_by_name.entry(net.name.clone()).or_insert(id);
        }
        let mut port_by_name = HashMap::with_capacity(flat.ports.len());
        for &(id, _) in &flat.ports {
            port_by_name.entry(flat.nets[id].name.clone()).or_insert(id);
        }
        let n_regs = flat.regs.len();
        let mut sim = BatchSim {
            values: vec![0; n_nets * lanes],
            stack: Vec::with_capacity(16 * lanes),
            next_regs: Vec::with_capacity(n_regs * lanes),
            bank_mem,
            bank_raddr: vec![0; n_banks * lanes],
            bank_waddr: vec![0; n_banks * lanes],
            bank_rdata: vec![0; n_banks * lanes],
            bank_op_read: vec![0; n_banks * lanes],
            bank_op_write: vec![0; n_banks * lanes],
            bank_op_wdata: vec![0; n_banks * lanes],
            bank_op_bufsel: vec![0; n_banks * lanes],
            bank_parity,
            parity_errors: vec![0; n_banks * lanes],
            net_by_name,
            port_by_name,
            dirty: true,
            faults: None,
            flat,
            compiled,
            lanes,
        };
        for r in &sim.flat.regs {
            let init = mask(r.init, sim.flat.nets[r.target].width);
            sim.values[r.target * lanes..(r.target + 1) * lanes].fill(init);
        }
        sim.settle();
        sim
    }

    /// Creates a batch whose every lane starts from `base`'s current
    /// architectural state — values, bank contents, bank address counters,
    /// parity bookkeeping. This is how campaigns broadcast a preloaded
    /// golden base across lanes before diverging them with per-lane faults
    /// or stimulus.
    ///
    /// # Panics
    ///
    /// Panics if `lanes` is zero or `base` has faults attached (a faulty
    /// scalar state has no meaningful lane broadcast).
    pub fn from_scalar(base: &Interpreter, lanes: usize) -> BatchSim {
        assert!(
            base.faults.is_none(),
            "broadcast requires a fault-free scalar base"
        );
        let mut sim = BatchSim::new(base.flat.clone(), lanes);
        for (n, &v) in base.values.iter().enumerate() {
            sim.values[n * lanes..(n + 1) * lanes].fill(v);
        }
        for (i, mem) in base.bank_mem.iter().enumerate() {
            for (w, &word) in mem.iter().enumerate() {
                sim.bank_mem[i][w * lanes..(w + 1) * lanes].fill(word);
            }
        }
        let n_banks = base.flat.banks.len();
        for i in 0..n_banks {
            sim.bank_raddr[i * lanes..(i + 1) * lanes].fill(base.bank_raddr[i]);
            sim.bank_waddr[i * lanes..(i + 1) * lanes].fill(base.bank_waddr[i]);
            sim.bank_rdata[i * lanes..(i + 1) * lanes].fill(base.bank_rdata[i]);
            sim.parity_errors[i * lanes..(i + 1) * lanes].fill(base.parity_errors[i]);
            if let (Some(dst), Some(src)) = (&mut sim.bank_parity[i], &base.bank_parity[i]) {
                for (w, &p) in src.iter().enumerate() {
                    dst[w * lanes..(w + 1) * lanes].fill(p);
                }
            }
        }
        sim.dirty = true;
        sim.settle();
        sim
    }

    /// The lane count this batch was built with.
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// The flattened design under simulation.
    pub fn flat(&self) -> &FlatDesign {
        &self.flat
    }

    fn net_id(&self, name: &str) -> NetId {
        *self
            .net_by_name
            .get(name)
            .unwrap_or_else(|| panic!("no net {name:?}"))
    }

    fn port_id(&self, port: &str) -> NetId {
        *self
            .port_by_name
            .get(port)
            .unwrap_or_else(|| panic!("no port {port:?}"))
    }

    /// Drives a top-level input port with the same value on every lane and
    /// resettles.
    ///
    /// # Panics
    ///
    /// Panics if no such port exists.
    pub fn poke(&mut self, port: &str, value: u64) {
        let id = self.port_id(port);
        let v = mask(value, self.flat.nets[id].width);
        self.values[id * self.lanes..(id + 1) * self.lanes].fill(v);
        self.dirty = true;
        self.settle();
    }

    /// Drives a batch of ports, each broadcast across all lanes, settling
    /// once at the end.
    ///
    /// # Panics
    ///
    /// Panics if any named port does not exist.
    pub fn poke_many<'a>(&mut self, pokes: impl IntoIterator<Item = (&'a str, u64)>) {
        for (port, value) in pokes {
            let id = self.port_id(port);
            let v = mask(value, self.flat.nets[id].width);
            self.values[id * self.lanes..(id + 1) * self.lanes].fill(v);
        }
        self.dirty = true;
        self.settle();
    }

    /// Drives a top-level input port with a distinct value per lane
    /// (`values.len()` must equal [`BatchSim::lanes`]) and resettles.
    ///
    /// # Panics
    ///
    /// Panics if no such port exists or the value count is not the lane
    /// count.
    pub fn poke_lanes(&mut self, port: &str, values: &[u64]) {
        assert_eq!(values.len(), self.lanes, "one value per lane");
        let id = self.port_id(port);
        let w = self.flat.nets[id].width;
        for (l, &v) in values.iter().enumerate() {
            self.values[id * self.lanes + l] = mask(v, w);
        }
        self.dirty = true;
        self.settle();
    }

    /// Drives a batch of ports, each with a distinct value per lane,
    /// settling once at the end — the batched analogue of
    /// [`BatchSim::poke_many`], and the call stimulus drivers should use:
    /// poking ports one [`BatchSim::poke_lanes`] call at a time re-settles
    /// the whole design per port.
    ///
    /// # Panics
    ///
    /// Panics if any named port does not exist or any value slice is not
    /// one value per lane.
    pub fn poke_lanes_many<'a>(
        &mut self,
        pokes: impl IntoIterator<Item = (&'a str, &'a [u64])>,
    ) {
        for (port, values) in pokes {
            assert_eq!(values.len(), self.lanes, "one value per lane");
            let id = self.port_id(port);
            let w = self.flat.nets[id].width;
            let row = &mut self.values[id * self.lanes..(id + 1) * self.lanes];
            for (dst, &v) in row.iter_mut().zip(values) {
                *dst = mask(v, w);
            }
        }
        self.dirty = true;
        self.settle();
    }

    /// Drives a top-level input port on one lane only and resettles.
    ///
    /// # Panics
    ///
    /// Panics if no such port exists or `lane` is out of range.
    pub fn poke_lane(&mut self, port: &str, lane: usize, value: u64) {
        assert!(lane < self.lanes, "lane out of range");
        let id = self.port_id(port);
        self.values[id * self.lanes + lane] = mask(value, self.flat.nets[id].width);
        self.dirty = true;
        self.settle();
    }

    /// Reads any net by hierarchical name on one lane (alias-resolved, like
    /// the scalar compiled engine's peek).
    ///
    /// # Panics
    ///
    /// Panics if no such net exists or `lane` is out of range.
    pub fn peek_lane(&self, name: &str, lane: usize) -> u64 {
        assert!(lane < self.lanes, "lane out of range");
        let slot = self.compiled.resolve[self.net_id(name)] as usize;
        self.values[slot * self.lanes + lane]
    }

    /// Reads a net on one lane as a signed value of its declared width.
    pub fn peek_signed_lane(&self, name: &str, lane: usize) -> i64 {
        let id = self.net_id(name);
        let w = self.flat.nets[id].width;
        let slot = self.compiled.resolve[id] as usize;
        sign_extend(self.values[slot * self.lanes + lane], w, 64) as i64
    }

    /// Preloads a bank's memory with the same words on every lane.
    ///
    /// # Errors
    ///
    /// Same contract as the scalar [`Interpreter::load_bank`].
    pub fn load_bank(&mut self, bank: usize, words: &[u64]) -> Result<(), HwError> {
        self.check_bank(bank, words.len())?;
        for (w, &word) in words.iter().enumerate() {
            self.bank_mem[bank][w * self.lanes..(w + 1) * self.lanes].fill(word);
        }
        if let Some(p) = &mut self.bank_parity[bank] {
            for (w, &word) in words.iter().enumerate() {
                let parity = (word.count_ones() & 1) as u8;
                p[w * self.lanes..(w + 1) * self.lanes].fill(parity);
            }
        }
        Ok(())
    }

    /// Preloads a bank's memory on one lane only.
    ///
    /// # Errors
    ///
    /// Same contract as the scalar [`Interpreter::load_bank`].
    ///
    /// # Panics
    ///
    /// Panics if `lane` is out of range.
    pub fn load_bank_lane(&mut self, bank: usize, lane: usize, words: &[u64]) -> Result<(), HwError> {
        assert!(lane < self.lanes, "lane out of range");
        self.check_bank(bank, words.len())?;
        for (w, &word) in words.iter().enumerate() {
            self.bank_mem[bank][w * self.lanes + lane] = word;
        }
        if let Some(p) = &mut self.bank_parity[bank] {
            for (w, &word) in words.iter().enumerate() {
                p[w * self.lanes + lane] = (word.count_ones() & 1) as u8;
            }
        }
        Ok(())
    }

    fn check_bank(&self, bank: usize, given: usize) -> Result<(), HwError> {
        let banks = self.bank_mem.len();
        if bank >= banks {
            return Err(HwError::NoSuchBank { bank, banks });
        }
        let capacity = self.bank_mem[bank].len() / self.lanes;
        if given > capacity {
            return Err(HwError::BankOverflow {
                bank,
                capacity,
                given,
            });
        }
        Ok(())
    }

    /// Sticky parity-mismatch total for one lane (sum over banks).
    ///
    /// # Panics
    ///
    /// Panics if `lane` is out of range.
    pub fn parity_error_count_lane(&self, lane: usize) -> u64 {
        assert!(lane < self.lanes, "lane out of range");
        (0..self.flat.banks.len())
            .map(|i| self.parity_errors[i * self.lanes + lane])
            .sum()
    }

    /// One lane's view of a bank's storage (both buffers for a
    /// double-buffered bank), for differential comparison against a scalar
    /// run.
    pub fn bank_words_lane(&self, bank: usize, lane: usize) -> Vec<u64> {
        assert!(lane < self.lanes, "lane out of range");
        let capacity = self.bank_mem[bank].len() / self.lanes;
        (0..capacity)
            .map(|w| self.bank_mem[bank][w * self.lanes + lane])
            .collect()
    }

    /// Attaches a different fault set to each lane (`per_lane[l]` is lane
    /// `l`'s spec list; lanes beyond `per_lane.len()` run fault-free). Specs
    /// resolve through exactly the scalar engine's resolution — alias
    /// canonicalization for stuck-ats, register/bank validation — and the
    /// fault cycle counter restarts: the next [`BatchSim::step`] is fault
    /// cycle 1 on every lane.
    ///
    /// Returns one `Result` per entry of `per_lane`. A lane whose spec list
    /// fails to resolve gets *no* faults attached (it runs clean) and
    /// reports the error in its slot — other lanes are unaffected, mirroring
    /// the scalar campaign behaviour where an attach failure skips that
    /// fault's run.
    ///
    /// # Panics
    ///
    /// Panics if `per_lane` has more entries than lanes.
    pub fn attach_lane_faults(&mut self, per_lane: &[Vec<FaultSpec>]) -> Vec<Result<(), HwError>> {
        assert!(
            per_lane.len() <= self.lanes,
            "more fault sets ({}) than lanes ({})",
            per_lane.len(),
            self.lanes
        );
        let mut state = BatchFaultState::default();
        let mut results = Vec::with_capacity(per_lane.len());
        for (lane, specs) in per_lane.iter().enumerate() {
            let lane = lane as u32;
            let mut resolved = Vec::with_capacity(specs.len());
            let mut outcome = Ok(());
            for spec in specs {
                match resolve_fault_spec(
                    spec,
                    &self.flat,
                    Some(&self.compiled.resolve),
                    &self.net_by_name,
                ) {
                    Ok(r) => resolved.push(r),
                    Err(e) => {
                        outcome = Err(e);
                        break;
                    }
                }
            }
            if outcome.is_ok() {
                for r in resolved {
                    match r {
                        ResolvedFault::Stuck(force) => state.stuck.push(LaneStuck { lane, force }),
                        ResolvedFault::Flip(flip) => state.flips.push(LaneFlip { lane, flip }),
                        ResolvedFault::Bank(flip) => {
                            state.bank_flips.push(LaneBankFlip { lane, flip });
                        }
                        ResolvedFault::Hold(hold) => state.holds.push(LaneHold { lane, hold }),
                    }
                }
            }
            results.push(outcome);
        }
        let empty = state.stuck.is_empty()
            && state.flips.is_empty()
            && state.bank_flips.is_empty()
            && state.holds.is_empty();
        self.faults = (!empty).then(|| Box::new(state));
        // Resettle so stuck-at forces are visible before the next step.
        self.dirty = true;
        self.settle();
        results
    }

    /// Removes every lane's faults and resettles (state already corrupted
    /// by past transients stays corrupted, as in the scalar engine).
    pub fn detach_faults(&mut self) {
        if self.faults.take().is_some() {
            self.dirty = true;
            self.settle();
        }
    }

    /// Settles combinational logic on every lane (no-op when already
    /// settled). Mirrors the scalar settle: bank read data first, then the
    /// compiled settle stream, with the stuck-at prologue + per-store
    /// re-forcing on the faulty path.
    fn settle(&mut self) {
        if !self.dirty {
            return;
        }
        self.dirty = false;
        let lanes = self.lanes;
        for (i, b) in self.flat.banks.iter().enumerate() {
            let w = self.flat.nets[b.rdata].width;
            let row = b.rdata * lanes;
            for l in 0..lanes {
                self.values[row + l] = mask(self.bank_rdata[i * lanes + l], w);
            }
        }
        match &self.faults {
            // No stuck-ats anywhere (transients/holds only): re-forcing is a
            // no-op by construction, so run the clean stream — same shortcut
            // as the scalar settle.
            Some(f) if f.stuck.is_empty() => {
                exec_stream_lanes::<false>(
                    &self.compiled.settle_code,
                    lanes,
                    &mut self.values,
                    &mut self.stack,
                    &mut self.next_regs,
                    &[],
                );
            }
            Some(f) => {
                for s in &f.stuck {
                    let idx = s.force.slot as usize * lanes + s.lane as usize;
                    self.values[idx] = (self.values[idx] | s.force.or_mask) & s.force.and_mask;
                }
                exec_stream_lanes::<true>(
                    &self.compiled.settle_code,
                    lanes,
                    &mut self.values,
                    &mut self.stack,
                    &mut self.next_regs,
                    &f.stuck,
                );
            }
            None => {
                exec_stream_lanes::<false>(
                    &self.compiled.settle_code,
                    lanes,
                    &mut self.values,
                    &mut self.stack,
                    &mut self.next_regs,
                    &[],
                );
            }
        }
    }

    /// Advances one clock on every lane: sample registers and bank ports,
    /// commit simultaneously, apply scheduled faults, resettle. The ordering
    /// is the scalar [`Interpreter::step`]'s, stage for stage.
    pub fn step(&mut self) {
        self.settle();
        let lanes = self.lanes;
        // Sample registers (reg streams contain no stores, so no forcing —
        // same as the scalar path).
        self.next_regs.clear();
        exec_stream_lanes::<false>(
            &self.compiled.reg_code,
            lanes,
            &mut self.values,
            &mut self.stack,
            &mut self.next_regs,
            &[],
        );
        // Pre-commit holds: a dropped transition overwrites the sampled next
        // value with the register's current value on its lane.
        if let Some(f) = &self.faults {
            let now = f.cycle + 1;
            for h in &f.holds {
                if h.hold.cycle == now {
                    self.next_regs[h.hold.reg * lanes + h.lane as usize] =
                        self.values[h.hold.target * lanes + h.lane as usize];
                }
            }
        }
        // Sample bank port activity through the alias-resolved port nets,
        // then commit registers.
        for (i, b) in self.compiled.bank_nets.iter().enumerate() {
            let (re, rw, rd) = (
                b.en as usize * lanes,
                b.wen as usize * lanes,
                b.wdata as usize * lanes,
            );
            let o = i * lanes;
            for l in 0..lanes {
                self.bank_op_read[o + l] = self.values[re + l] & 1;
                self.bank_op_write[o + l] = self.values[rw + l] & 1;
                self.bank_op_wdata[o + l] = self.values[rd + l];
            }
            match b.buf_sel {
                Some(n) => {
                    let rs = n as usize * lanes;
                    for l in 0..lanes {
                        self.bank_op_bufsel[o + l] = self.values[rs + l] & 1;
                    }
                }
                None => self.bank_op_bufsel[o..o + lanes].fill(0),
            }
        }
        for (r, &t) in self.compiled.reg_targets.iter().enumerate() {
            let row = t as usize * lanes;
            self.values[row..row + lanes].copy_from_slice(&self.next_regs[r * lanes..(r + 1) * lanes]);
        }
        // Commit banks: read the inactive buffer, write the active one,
        // per-lane addresses and parity.
        for (i, b) in self.flat.banks.iter().enumerate() {
            let words = b.spec.words();
            let dbuf = b.spec.is_double_buffered();
            let width = b.spec.width();
            for l in 0..lanes {
                let o = i * lanes + l;
                if self.bank_op_read[o] == 1 {
                    let base = if dbuf {
                        (1 - self.bank_op_bufsel[o]) * words
                    } else {
                        0
                    };
                    let addr = (base + self.bank_raddr[o] % words) as usize;
                    let widx = addr * lanes + l;
                    self.bank_rdata[o] = self.bank_mem[i][widx];
                    self.bank_raddr[o] = (self.bank_raddr[o] + 1) % words;
                    if let Some(p) = &self.bank_parity[i] {
                        if (self.bank_mem[i][widx].count_ones() & 1) as u8 != p[widx] {
                            self.parity_errors[o] += 1;
                        }
                    }
                }
                if self.bank_op_write[o] == 1 {
                    let base = if dbuf {
                        self.bank_op_bufsel[o] * words
                    } else {
                        0
                    };
                    let addr = (base + self.bank_waddr[o] % words) as usize;
                    let widx = addr * lanes + l;
                    self.bank_mem[i][widx] = mask(self.bank_op_wdata[o], width);
                    self.bank_waddr[o] = (self.bank_waddr[o] + 1) % words;
                    if let Some(p) = &mut self.bank_parity[i] {
                        p[widx] = (self.bank_mem[i][widx].count_ones() & 1) as u8;
                    }
                }
            }
        }
        // Post-commit faults: transient flips corrupt just-committed state
        // on their lanes without touching parity bookkeeping.
        if let Some(f) = &mut self.faults {
            f.cycle += 1;
            let now = f.cycle;
            for fl in &f.flips {
                if fl.flip.cycle == now {
                    self.values[fl.flip.slot * lanes + fl.lane as usize] ^= fl.flip.xor;
                }
            }
            for bf in &f.bank_flips {
                if bf.flip.cycle == now {
                    self.bank_mem[bf.flip.bank][bf.flip.word * lanes + bf.lane as usize] ^=
                        bf.flip.xor;
                }
            }
        }
        self.dirty = true;
        self.settle();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::elaborate;
    use crate::netlist::{Expr, Module};

    fn counter_flat() -> FlatDesign {
        let mut m = Module::new("cnt");
        let en = m.input("en", 1);
        let q = m.output("q", 8);
        m.reg(q, Expr::net(q).add(Expr::lit(1, 8)), Some(Expr::net(en)), 0);
        elaborate(&[m], &[], "cnt").unwrap()
    }

    #[test]
    fn lanes_diverge_under_per_lane_stimulus() {
        let mut sim = BatchSim::new(counter_flat(), 4);
        // Lanes 0 and 2 enabled, 1 and 3 idle.
        sim.poke_lanes("en", &[1, 0, 1, 0]);
        for _ in 0..5 {
            sim.step();
        }
        assert_eq!(sim.peek_lane("q", 0), 5);
        assert_eq!(sim.peek_lane("q", 1), 0);
        assert_eq!(sim.peek_lane("q", 2), 5);
        assert_eq!(sim.peek_lane("q", 3), 0);
    }

    #[test]
    fn lane_matches_scalar_interpreter() {
        let flat = counter_flat();
        let mut scalar = Interpreter::new(flat.clone());
        let mut batch = BatchSim::new(flat, 8);
        scalar.poke("en", 1);
        batch.poke("en", 1);
        for _ in 0..7 {
            scalar.step();
            batch.step();
        }
        for l in 0..8 {
            assert_eq!(batch.peek_lane("q", l), scalar.peek("q"));
        }
    }

    #[test]
    fn per_lane_faults_hit_only_their_lane() {
        let flat = counter_flat();
        let mut faulty = Interpreter::new(flat.clone());
        faulty.poke("en", 1);
        faulty
            .attach_faults(&[FaultSpec::stuck_at("q", 0, false)])
            .unwrap();
        let mut clean = Interpreter::new(flat.clone());
        clean.poke("en", 1);
        let mut sim = BatchSim::new(flat, 3);
        sim.poke("en", 1);
        // Lane 1 gets q stuck at bit 0 = 0; others run clean.
        let results =
            sim.attach_lane_faults(&[vec![], vec![FaultSpec::stuck_at("q", 0, false)]]);
        assert!(results.iter().all(Result::is_ok));
        for _ in 0..3 {
            sim.step();
            faulty.step();
            clean.step();
        }
        assert_eq!(sim.peek_lane("q", 0), clean.peek("q"));
        assert_eq!(sim.peek_lane("q", 1), faulty.peek("q"));
        assert_eq!(sim.peek_lane("q", 2), clean.peek("q"));
        assert_ne!(clean.peek("q"), faulty.peek("q"), "fault must be visible");
    }

    #[test]
    fn bad_lane_spec_reports_error_and_leaves_other_lanes_armed() {
        let flat = counter_flat();
        let mut faulty = Interpreter::new(flat.clone());
        faulty.poke("en", 1);
        faulty
            .attach_faults(&[FaultSpec::stuck_at("q", 0, true)])
            .unwrap();
        let mut clean = Interpreter::new(flat.clone());
        clean.poke("en", 1);
        let mut sim = BatchSim::new(flat, 2);
        sim.poke("en", 1);
        let results = sim.attach_lane_faults(&[
            vec![FaultSpec::stuck_at("no_such_net", 0, true)],
            vec![FaultSpec::stuck_at("q", 0, true)],
        ]);
        assert!(results[0].is_err());
        assert!(results[1].is_ok());
        for _ in 0..3 {
            sim.step();
            faulty.step();
            clean.step();
        }
        assert_eq!(sim.peek_lane("q", 0), clean.peek("q"), "errored lane runs clean");
        assert_eq!(sim.peek_lane("q", 1), faulty.peek("q"));
    }
}

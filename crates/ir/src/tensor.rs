//! Dense tensors and exact integer storage for reference execution.

use std::fmt;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// A dense row-major tensor of `i64` elements.
///
/// The reference executor works over exact integers (think INT16 inputs with
/// a wide accumulator, which is what the paper's ASIC evaluation uses); this
/// lets generated-hardware validation demand bit-exact equality instead of a
/// floating-point tolerance.
///
/// # Examples
///
/// ```
/// use tensorlib_ir::DenseTensor;
/// let mut t = DenseTensor::zeros(&[2, 3]);
/// t.set(&[1, 2], 7);
/// assert_eq!(t.get(&[1, 2]), 7);
/// assert_eq!(t.len(), 6);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct DenseTensor {
    dims: Vec<usize>,
    strides: Vec<usize>,
    data: Vec<i64>,
}

impl DenseTensor {
    /// Creates a zero-filled tensor with the given dimensions.
    ///
    /// # Panics
    ///
    /// Panics if `dims` is empty or any dimension is zero.
    pub fn zeros(dims: &[usize]) -> DenseTensor {
        assert!(!dims.is_empty(), "tensor must have at least one dimension");
        assert!(dims.iter().all(|&d| d > 0), "tensor dimensions must be positive");
        let mut strides = vec![1usize; dims.len()];
        for d in (0..dims.len().saturating_sub(1)).rev() {
            strides[d] = strides[d + 1] * dims[d + 1];
        }
        DenseTensor {
            strides,
            data: vec![0; dims.iter().product()],
            dims: dims.to_vec(),
        }
    }

    /// Creates a tensor filled with small pseudo-random values from a seeded
    /// generator. Deterministic for a given seed.
    ///
    /// Values are drawn from `-8..=8` — small enough that even triple-product
    /// kernels (MTTKRP, TTMc) with long reductions stay far from `i64`
    /// overflow.
    pub fn random(dims: &[usize], seed: u64) -> DenseTensor {
        let mut t = DenseTensor::zeros(dims);
        let mut rng = SmallRng::seed_from_u64(seed);
        for v in &mut t.data {
            *v = rng.gen_range(-8..=8);
        }
        t
    }

    /// The tensor's dimensions.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` if the tensor has no elements (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The flattened row-major offset of an index vector.
    ///
    /// # Panics
    ///
    /// Panics if `idx` has the wrong arity or is out of bounds.
    pub fn offset(&self, idx: &[i64]) -> usize {
        assert_eq!(idx.len(), self.dims.len(), "index arity mismatch");
        let mut off = 0usize;
        for (d, &i) in idx.iter().enumerate() {
            assert!(
                i >= 0 && (i as usize) < self.dims[d],
                "index {i} out of bounds for dim {d} (extent {})",
                self.dims[d]
            );
            off += i as usize * self.strides[d];
        }
        off
    }

    /// Reads the element at `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of bounds.
    pub fn get(&self, idx: &[i64]) -> i64 {
        self.data[self.offset(idx)]
    }

    /// Writes the element at `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of bounds.
    pub fn set(&mut self, idx: &[i64], value: i64) {
        let off = self.offset(idx);
        self.data[off] = value;
    }

    /// Adds `value` into the element at `idx` (the accumulation primitive).
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of bounds.
    pub fn accumulate(&mut self, idx: &[i64], value: i64) {
        let off = self.offset(idx);
        self.data[off] += value;
    }

    /// A view of the flat row-major data.
    pub fn as_slice(&self) -> &[i64] {
        &self.data
    }
}

impl fmt::Display for DenseTensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "DenseTensor{:?} ({} elems)", self.dims, self.data.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_strides() {
        let t = DenseTensor::zeros(&[2, 3, 4]);
        assert_eq!(t.len(), 24);
        assert_eq!(t.dims(), &[2, 3, 4]);
        assert_eq!(t.offset(&[0, 0, 0]), 0);
        assert_eq!(t.offset(&[1, 0, 0]), 12);
        assert_eq!(t.offset(&[0, 1, 0]), 4);
        assert_eq!(t.offset(&[1, 2, 3]), 23);
        assert!(!t.is_empty());
    }

    #[test]
    fn get_set_accumulate() {
        let mut t = DenseTensor::zeros(&[3, 3]);
        t.set(&[2, 1], 5);
        t.accumulate(&[2, 1], 3);
        assert_eq!(t.get(&[2, 1]), 8);
        assert_eq!(t.get(&[0, 0]), 0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_panics() {
        let t = DenseTensor::zeros(&[2, 2]);
        let _ = t.get(&[2, 0]);
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn wrong_arity_panics() {
        let t = DenseTensor::zeros(&[2, 2]);
        let _ = t.get(&[0]);
    }

    #[test]
    fn random_is_deterministic_and_bounded() {
        let a = DenseTensor::random(&[4, 4], 7);
        let b = DenseTensor::random(&[4, 4], 7);
        let c = DenseTensor::random(&[4, 4], 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert!(a.as_slice().iter().all(|&v| (-8..=8).contains(&v)));
    }

    #[test]
    fn display_mentions_shape() {
        let t = DenseTensor::zeros(&[2, 5]);
        assert!(t.to_string().contains("[2, 5]"));
    }
}

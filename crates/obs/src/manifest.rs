//! Run-provenance manifests and report schema versioning.

use std::collections::BTreeMap;

use serde::Serialize;

use crate::json;

/// Current report schema version. Bump when the JSON report layout changes
/// incompatibly; readers reject anything newer than what they know.
pub const SCHEMA_VERSION: u32 = 1;

/// A schema-version check failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SchemaError {
    /// The document carries no `schema_version` field (pre-provenance report
    /// or not a report at all).
    Missing,
    /// The document was written by a newer tool than this reader.
    TooNew {
        /// Version found in the document.
        found: u32,
        /// Newest version this reader understands.
        supported: u32,
    },
}

impl std::fmt::Display for SchemaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SchemaError::Missing => write!(f, "report has no schema_version field"),
            SchemaError::TooNew { found, supported } => write!(
                f,
                "report schema_version {found} is newer than supported {supported}; \
                 upgrade the reader"
            ),
        }
    }
}

/// Journal/resume provenance for a durably-run campaign: which journal the
/// run wrote, and how much of the work was replayed from a previous run
/// versus executed fresh. Lives in [`Provenance`] — never in the report
/// body — because replay counts legitimately differ between a clean run and
/// a crash/resume run whose *results* are byte-identical.
#[derive(Debug, Clone, Default, PartialEq, Serialize)]
pub struct JournalProvenance {
    /// Directory holding the campaign journal (`--resume <dir>`).
    pub dir: String,
    /// Deterministic work units the campaign was chunked into.
    pub chunks_total: usize,
    /// Chunks whose results were replayed from the journal.
    pub chunks_replayed: usize,
    /// Chunks executed (and appended to the journal) by this run.
    pub chunks_executed: usize,
}

/// The manifest embedded in every JSON report the CLI writes: enough to
/// reproduce the run and to account for where its wall time went.
#[derive(Debug, Clone, Default, PartialEq, Serialize)]
pub struct Provenance {
    /// Tool name, always `tensorlib`.
    pub generator: String,
    /// Cargo package version of the writing binary.
    pub pkg_version: String,
    /// The command line that produced the report (program name elided).
    pub command: String,
    /// Every RNG seed the run consumed, in consumption order.
    pub seeds: Vec<u64>,
    /// Worker threads requested (0 = auto).
    pub workers: usize,
    /// Host parallelism available at run time.
    pub host_cores: usize,
    /// Batched-simulation lanes the run used (0 = not applicable). Together
    /// with `workers` and `host_cores` this is the run's *machine shape*;
    /// history comparisons refuse to compare runs across different shapes.
    pub lanes: usize,
    /// Journal/resume accounting for durably-run campaigns (`null` for
    /// ordinary runs). Like `phase_wall_times_us`, this block is the
    /// legitimately run-dependent part of an otherwise byte-deterministic
    /// report, so byte-comparisons strip it.
    pub journal: Option<JournalProvenance>,
    /// Inclusive wall time per instrumented phase, microseconds.
    pub phase_wall_times_us: BTreeMap<String, u64>,
}

impl Provenance {
    /// A manifest for the given command echo, stamped with this build's
    /// package version and the host's core count.
    pub fn new(command: &str) -> Provenance {
        Provenance {
            generator: "tensorlib".to_string(),
            pkg_version: env!("CARGO_PKG_VERSION").to_string(),
            command: command.to_string(),
            seeds: Vec::new(),
            workers: 0,
            host_cores: std::thread::available_parallelism().map_or(1, usize::from),
            lanes: 0,
            journal: None,
            phase_wall_times_us: BTreeMap::new(),
        }
    }
}

/// Pulls the top-level `schema_version` out of a JSON report, if present.
pub fn extract_schema_version(report_json: &str) -> Option<u32> {
    let doc = json::parse(report_json).ok()?;
    let v = doc.get("schema_version")?.as_u64()?;
    u32::try_from(v).ok()
}

/// Validates that a JSON report's schema version is one this build can
/// read. Reports from the future are rejected rather than misread.
pub fn check_schema_version(report_json: &str) -> Result<u32, SchemaError> {
    let found = extract_schema_version(report_json).ok_or(SchemaError::Missing)?;
    if found > SCHEMA_VERSION {
        Err(SchemaError::TooNew {
            found,
            supported: SCHEMA_VERSION,
        })
    } else {
        Ok(found)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn current_schema_is_accepted() {
        let doc = format!("{{\"schema_version\": {SCHEMA_VERSION}, \"x\": 1}}");
        assert_eq!(check_schema_version(&doc), Ok(SCHEMA_VERSION));
    }

    #[test]
    fn future_schema_is_rejected() {
        let doc = format!("{{\"schema_version\": {}}}", SCHEMA_VERSION + 1);
        assert_eq!(
            check_schema_version(&doc),
            Err(SchemaError::TooNew {
                found: SCHEMA_VERSION + 1,
                supported: SCHEMA_VERSION,
            })
        );
    }

    #[test]
    fn missing_schema_is_flagged() {
        assert_eq!(check_schema_version("{\"x\": 1}"), Err(SchemaError::Missing));
        assert_eq!(check_schema_version("not json"), Err(SchemaError::Missing));
    }

    #[test]
    fn provenance_serializes_with_ordered_fields() {
        let mut p = Provenance::new("explore gemm --top 3");
        p.seeds = vec![42];
        p.workers = 2;
        p.phase_wall_times_us.insert("explore".to_string(), 1234);
        let s = serde_json::to_string(&p).expect("serialize");
        assert!(s.contains("\"generator\":\"tensorlib\""));
        assert!(s.contains("\"command\":\"explore gemm --top 3\""));
        assert!(s.contains("\"seeds\":[42]"));
        assert!(s.contains("\"explore\":1234"));
        // Byte-stable: same manifest serializes identically every time.
        assert_eq!(s, serde_json::to_string(&p).unwrap());
    }
}

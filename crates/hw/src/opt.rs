//! Semantics-preserving netlist optimization passes.
//!
//! The generated templates go for structural clarity, not minimality: the
//! controller repeats the same state/counter comparisons across a dozen
//! expressions, PE accumulators re-derive sums the drain path also needs,
//! and fuzz-generated netlists carry arbitrary dead logic. This module is
//! the rewrite pipeline between generation and every consumer (the
//! interpreter engines compile the optimized netlist, the Verilog emitter
//! prints it, the cost model reports pre/post deltas):
//!
//! 1. **Expression simplification** ([`OptOptions::fold`] /
//!    [`OptOptions::peephole`]): constant folding through every operator —
//!    including `Resize`/`SignExtend` narrowing — plus identity and
//!    mux/resize peepholes. Every rewrite preserves the expression's exact
//!    evaluated value *and* its static width, because downstream masking
//!    depends on both.
//! 2. **Reduction rebalancing** ([`OptOptions::rebalance`]): same-operator
//!    chains are re-treed into balanced form, cutting combinational depth
//!    from `n-1` to `⌈log₂ n⌉`. Only provably associative shapes qualify:
//!    bitwise ops always, `Add`/`Mul` only when every chain leaf has the
//!    same static width (uniform modular masks compose associatively).
//! 3. **Common-subexpression sharing** ([`OptOptions::cse`]): width-aware
//!    structural hashing hoists repeated well-masked subexpressions into
//!    fresh nets. Each hoist is gated on the compiled-bytecode cost model
//!    (the same lowering and fusion rules the interpreter uses), so sharing
//!    that would defeat a fused superinstruction is rejected.
//! 4. **Dead-logic GC** ([`OptOptions::gc`]): assignments no live net
//!    transitively reads are dropped, then unreferenced nets and
//!    unreachable child modules are collected. This is the shared GC the
//!    fuzz shrinker also uses ([`crate::fuzz::shrink_netlist`]); the
//!    optimizer runs it in a port-and-register-preserving mode.
//!
//! **Preservation contract.** The optimizer never renames a net, never
//! removes or reorders a port, register, or instance connection, and never
//! changes a register's width or reset value. Trace counters resolve nets
//! by name, fault campaigns enumerate registers by position, and testbench
//! harnesses poke/peek ports — all of those observe identical designs with
//! optimization on or off.
//!
//! **Equivalence contract.** Every pass is validated by the differential
//! battery in `hw::fuzz`: [`crate::fuzz::check_opt_netlist`] runs the
//! optimized netlist lock-step against the unoptimized one on both scalar
//! engines and the lane-batched engine, comparing every top-level output
//! every cycle, for every fuzz seed.

use std::collections::{HashMap, HashSet};

use serde::Serialize;

use crate::interp::{lower_onto, mask, peephole, sign_extend, width_mask, Instr};
use crate::netlist::{BinOp, Dir, Expr, Module, Net, NetId, RegDef};

/// Per-pass enable switches for [`optimize_module`] / [`optimize_netlist`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct OptOptions {
    /// Constant folding (including through `Resize`/`SignExtend`) and
    /// algebraic identities (`x+0`, `x*1`, `x&0`, …).
    pub fold: bool,
    /// Structural peepholes: redundant resize/sign-extend elision, nested
    /// narrowing collapse, `mux(s,a,a)`, `mux(!s,a,b)` → `mux(s,b,a)`,
    /// double negation.
    pub peephole: bool,
    /// Balanced re-association of same-operator reduction chains.
    pub rebalance: bool,
    /// Cost-gated common-subexpression sharing.
    pub cse: bool,
    /// Dead-assign elimination plus unreferenced-net and dead-child-module
    /// collection.
    pub gc: bool,
}

impl Default for OptOptions {
    fn default() -> OptOptions {
        OptOptions {
            fold: true,
            peephole: true,
            rebalance: true,
            cse: true,
            gc: true,
        }
    }
}

impl OptOptions {
    /// Every pass disabled — the identity pipeline. Useful as a base for
    /// single-pass property tests: `OptOptions { fold: true, ..OptOptions::none() }`.
    pub fn none() -> OptOptions {
        OptOptions {
            fold: false,
            peephole: false,
            rebalance: false,
            cse: false,
            gc: false,
        }
    }
}

/// Size census of a module list, reported pre/post optimization.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct NetlistStats {
    /// Modules in the list.
    pub modules: usize,
    /// Total nets across all modules.
    pub nets: usize,
    /// Total combinational assignments.
    pub assigns: usize,
    /// Total registers.
    pub regs: usize,
    /// Total expression-tree nodes (assign right-hand sides plus register
    /// next/enable expressions).
    pub expr_nodes: usize,
    /// Estimated compiled-bytecode instruction count: the same lowering and
    /// peephole-fusion rules [`crate::interp::Interpreter`] applies, summed
    /// per module (cross-module alias elimination happens at elaboration,
    /// so the flat count can only be lower).
    pub lowered_ops: usize,
    /// Worst per-module combinational depth (see [`critical_path_depth`]).
    pub critical_path_depth: u32,
}

/// Pre/post optimization census, as threaded into cost reports and the
/// performance gate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct OptStats {
    /// Census before any pass ran.
    pub pre: NetlistStats,
    /// Census of the optimized netlist.
    pub post: NetlistStats,
}

impl OptStats {
    /// Percentage of estimated bytecode instructions the pipeline removed.
    pub fn op_reduction_pct(&self) -> f64 {
        if self.pre.lowered_ops == 0 {
            0.0
        } else {
            100.0 * (self.pre.lowered_ops.saturating_sub(self.post.lowered_ops)) as f64
                / self.pre.lowered_ops as f64
        }
    }
}

// ---------------------------------------------------------------------------
// Editable module decomposition (shared with the fuzz shrinker)
// ---------------------------------------------------------------------------

/// `(child module, instance name, connections)` — an editable
/// [`crate::netlist::Instance`].
pub(crate) type InstParts = (String, String, Vec<(String, NetId)>);

/// An editable decomposition of a [`Module`] (the builder API is
/// append-only, so rewriting reconstructs modules from parts).
#[derive(Clone)]
pub(crate) struct Parts {
    pub(crate) name: String,
    pub(crate) nets: Vec<Net>,
    pub(crate) ports: Vec<(NetId, Dir)>,
    pub(crate) assigns: Vec<(NetId, Expr)>,
    pub(crate) regs: Vec<RegDef>,
    pub(crate) instances: Vec<InstParts>,
}

pub(crate) fn to_parts(m: &Module) -> Parts {
    Parts {
        name: m.name().to_string(),
        nets: m.nets().to_vec(),
        ports: m.ports().to_vec(),
        assigns: m.assigns().to_vec(),
        regs: m.regs().to_vec(),
        instances: m
            .instances()
            .iter()
            .map(|i| (i.module.clone(), i.name.clone(), i.connections.clone()))
            .collect(),
    }
}

pub(crate) fn from_parts(p: &Parts) -> Module {
    let mut m = Module::new(&p.name);
    for (id, net) in p.nets.iter().enumerate() {
        let port = p.ports.iter().find(|(pid, _)| *pid == id).map(|&(_, d)| d);
        let got = match port {
            Some(Dir::Input) => m.input(&net.name, net.width),
            Some(Dir::Output) => m.output(&net.name, net.width),
            None => m.net(&net.name, net.width),
        };
        debug_assert_eq!(got, id);
    }
    for (target, expr) in &p.assigns {
        m.assign(*target, expr.clone());
    }
    for r in &p.regs {
        m.reg(r.target, r.next.clone(), r.enable.clone(), r.init);
    }
    for (module, name, conns) in &p.instances {
        m.instance(module.clone(), name.clone(), conns.clone());
    }
    m
}

pub(crate) fn remap_expr(e: &Expr, map: &[Option<NetId>]) -> Expr {
    match e {
        Expr::Const { value, width } => Expr::Const {
            value: *value,
            width: *width,
        },
        Expr::Net(id) => Expr::Net(map[*id].expect("read net survives gc")),
        Expr::Not(x) => Expr::Not(Box::new(remap_expr(x, map))),
        Expr::Bin(op, a, b) => Expr::Bin(
            *op,
            Box::new(remap_expr(a, map)),
            Box::new(remap_expr(b, map)),
        ),
        Expr::Mux {
            sel,
            on_true,
            on_false,
        } => Expr::Mux {
            sel: Box::new(remap_expr(sel, map)),
            on_true: Box::new(remap_expr(on_true, map)),
            on_false: Box::new(remap_expr(on_false, map)),
        },
        Expr::Resize(x, w) => Expr::Resize(Box::new(remap_expr(x, map)), *w),
        Expr::SignExtend(x, w) => Expr::SignExtend(Box::new(remap_expr(x, map)), *w),
    }
}

/// How [`gc_nets`] treats port nets nothing else references.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum GcPorts {
    /// Drop input ports no expression reads (the shrinker's mode: smaller
    /// repros beat interface stability).
    PruneUnreadInputs,
    /// Keep every port regardless of use (the optimizer's mode: the
    /// module's interface is part of the preservation contract).
    PreservePorts,
}

/// Deletes nets nothing references any more and renumbers the survivors.
/// This is the shared dead-net GC: the fuzz shrinker runs it in
/// [`GcPorts::PruneUnreadInputs`] mode after every candidate deletion, the
/// optimizer in [`GcPorts::PreservePorts`] mode after dead-assign removal.
pub(crate) fn gc_nets(p: &mut Parts, ports: GcPorts) {
    let mut used = vec![false; p.nets.len()];
    let mut read_somewhere = vec![false; p.nets.len()];
    for (target, expr) in &p.assigns {
        used[*target] = true;
        let mut reads = Vec::new();
        expr.collect_reads(&mut reads);
        for r in reads {
            used[r] = true;
            read_somewhere[r] = true;
        }
    }
    for r in &p.regs {
        used[r.target] = true;
        let mut reads = Vec::new();
        r.next.collect_reads(&mut reads);
        if let Some(e) = &r.enable {
            e.collect_reads(&mut reads);
        }
        for x in reads {
            used[x] = true;
            read_somewhere[x] = true;
        }
    }
    for (_, _, conns) in &p.instances {
        for (_, n) in conns {
            used[*n] = true;
            read_somewhere[*n] = true;
        }
    }
    match ports {
        GcPorts::PruneUnreadInputs => {
            // Output ports keep their nets only while something drives them
            // (their driver marked them used above). Input ports survive
            // only if read.
            for &(id, dir) in &p.ports {
                if dir == Dir::Input && !read_somewhere[id] {
                    used[id] = false;
                }
            }
        }
        GcPorts::PreservePorts => {
            for &(id, _) in &p.ports {
                used[id] = true;
            }
        }
    }
    let mut map: Vec<Option<NetId>> = vec![None; p.nets.len()];
    let mut next = 0usize;
    for (id, &u) in used.iter().enumerate() {
        if u {
            map[id] = Some(next);
            next += 1;
        }
    }
    p.nets = p
        .nets
        .iter()
        .enumerate()
        .filter(|(id, _)| used[*id])
        .map(|(_, n)| n.clone())
        .collect();
    p.ports = p
        .ports
        .iter()
        .filter(|(id, _)| used[*id])
        .map(|&(id, d)| (map[id].unwrap(), d))
        .collect();
    for (target, expr) in &mut p.assigns {
        *target = map[*target].expect("assign target survives gc");
        *expr = remap_expr(expr, &map);
    }
    for r in &mut p.regs {
        r.target = map[r.target].expect("reg target survives gc");
        r.next = remap_expr(&r.next, &map);
        r.enable = r.enable.as_ref().map(|e| remap_expr(e, &map));
    }
    for (_, _, conns) in &mut p.instances {
        for (_, n) in conns {
            *n = map[*n].expect("instance net survives gc");
        }
    }
}

/// Drops child modules no surviving instance references.
pub(crate) fn gc_children(modules: &mut Vec<Parts>, top: &str) {
    let referenced: HashSet<String> = modules
        .iter()
        .flat_map(|p| p.instances.iter().map(|(m, _, _)| m.clone()))
        .collect();
    modules.retain(|p| p.name == top || referenced.contains(&p.name));
}

// ---------------------------------------------------------------------------
// Width/masking analysis
// ---------------------------------------------------------------------------

/// True when the expression's evaluated value always fits its static width.
///
/// Both engines store net values masked to the net width, and every
/// operator except the raw-bitwise trio and `Mux` masks its own result —
/// but a `Mux` returns the selected branch's value *unmasked*, so a mux
/// whose `on_false` branch is statically wider than `on_true` can produce
/// a value exceeding its static width. Rewrites that add or remove a
/// masking point (resize elision, CSE hoisting into a net) are only sound
/// on well-masked operands.
fn well_masked(e: &Expr, nets: &[Net]) -> bool {
    match e {
        Expr::Const { .. }
        | Expr::Net(_)
        | Expr::Not(_)
        | Expr::Resize(..)
        | Expr::SignExtend(..) => true,
        Expr::Bin(op, a, b) => match op {
            BinOp::And | BinOp::Or | BinOp::Xor => well_masked(a, nets) && well_masked(b, nets),
            _ => true,
        },
        Expr::Mux {
            on_true, on_false, ..
        } => {
            on_false.width(nets) <= on_true.width(nets)
                && well_masked(on_true, nets)
                && well_masked(on_false, nets)
        }
    }
}

fn expr_nodes(e: &Expr) -> usize {
    match e {
        Expr::Const { .. } | Expr::Net(_) => 1,
        Expr::Not(x) | Expr::Resize(x, _) | Expr::SignExtend(x, _) => 1 + expr_nodes(x),
        Expr::Bin(_, a, b) => 1 + expr_nodes(a) + expr_nodes(b),
        Expr::Mux {
            sel,
            on_true,
            on_false,
        } => 1 + expr_nodes(sel) + expr_nodes(on_true) + expr_nodes(on_false),
    }
}

// ---------------------------------------------------------------------------
// Constant folding and peepholes
// ---------------------------------------------------------------------------

fn const_of(e: &Expr) -> Option<(u64, u32)> {
    match e {
        Expr::Const { value, width } => Some((mask(*value, *width), *width)),
        _ => None,
    }
}

/// One local rewrite attempt at the root of `e` (children are already
/// simplified). Returns the replacement, or `None` when no rule applies.
/// Every rule preserves the exact evaluated value and the static width.
fn rule_step(e: &Expr, nets: &[Net], opts: &OptOptions) -> Option<Expr> {
    match e {
        Expr::Not(x) => {
            if opts.fold {
                if let Some((v, w)) = const_of(x) {
                    return Some(Expr::Const {
                        value: mask(!v, w),
                        width: w,
                    });
                }
            }
            if opts.peephole {
                // !!x == x when x's value fits its width (both nots mask
                // to that same width).
                if let Expr::Not(inner) = x.as_ref() {
                    if well_masked(inner, nets) {
                        return Some(inner.as_ref().clone());
                    }
                }
            }
            None
        }
        Expr::Bin(op, a, b) => {
            if !opts.fold {
                return None;
            }
            let (aw, bw) = (a.width(nets), b.width(nets));
            if let (Some((va, _)), Some((vb, _))) = (const_of(a), const_of(b)) {
                let w = aw.max(bw);
                let (value, width) = match op {
                    BinOp::Add => (mask(va.wrapping_add(vb), w), w),
                    BinOp::Sub => (mask(va.wrapping_sub(vb), w), w),
                    BinOp::Mul => (mask(va.wrapping_mul(vb), w), w),
                    BinOp::And => (va & vb, w),
                    BinOp::Or => (va | vb, w),
                    BinOp::Xor => (va ^ vb, w),
                    BinOp::Eq => ((va == vb) as u64, 1),
                    BinOp::Lt => ((va < vb) as u64, 1),
                };
                return Some(Expr::Const { value, width });
            }
            // Algebraic identities. Replacing the node with one operand
            // must keep the static width (constant no wider than the kept
            // side) and, for the masking ops, the exact value (kept side
            // well-masked, since the op's own mask disappears).
            let zero_a = const_of(a).is_some_and(|(v, _)| v == 0);
            let zero_b = const_of(b).is_some_and(|(v, _)| v == 0);
            match op {
                BinOp::Add => {
                    if zero_b && bw <= aw && well_masked(a, nets) {
                        return Some(a.as_ref().clone());
                    }
                    if zero_a && aw <= bw && well_masked(b, nets) {
                        return Some(b.as_ref().clone());
                    }
                }
                BinOp::Sub => {
                    if zero_b && bw <= aw && well_masked(a, nets) {
                        return Some(a.as_ref().clone());
                    }
                }
                BinOp::Mul => {
                    if zero_a || zero_b {
                        return Some(Expr::Const {
                            value: 0,
                            width: aw.max(bw),
                        });
                    }
                    if const_of(b).is_some_and(|(v, _)| v == 1) && bw <= aw && well_masked(a, nets)
                    {
                        return Some(a.as_ref().clone());
                    }
                    if const_of(a).is_some_and(|(v, _)| v == 1) && aw <= bw && well_masked(b, nets)
                    {
                        return Some(b.as_ref().clone());
                    }
                }
                BinOp::And => {
                    if zero_a || zero_b {
                        return Some(Expr::Const {
                            value: 0,
                            width: aw.max(bw),
                        });
                    }
                    // x & ones(xw) == x for in-range x.
                    if const_of(b).is_some_and(|(v, _)| v == width_mask(aw))
                        && bw == aw
                        && well_masked(a, nets)
                    {
                        return Some(a.as_ref().clone());
                    }
                    if const_of(a).is_some_and(|(v, _)| v == width_mask(bw))
                        && aw == bw
                        && well_masked(b, nets)
                    {
                        return Some(b.as_ref().clone());
                    }
                }
                BinOp::Or | BinOp::Xor => {
                    // Raw bitwise identity: no masks involved on either
                    // side of the rewrite.
                    if zero_b && bw <= aw {
                        return Some(a.as_ref().clone());
                    }
                    if zero_a && aw <= bw {
                        return Some(b.as_ref().clone());
                    }
                }
                BinOp::Eq | BinOp::Lt => {}
            }
            None
        }
        Expr::Mux {
            sel,
            on_true,
            on_false,
        } => {
            let (tw, fw) = (on_true.width(nets), on_false.width(nets));
            if opts.fold {
                if let Some((v, _)) = const_of(sel) {
                    if v & 1 == 1 {
                        return Some(on_true.as_ref().clone());
                    }
                    // The false branch only substitutes width-neutrally.
                    if fw == tw {
                        return Some(on_false.as_ref().clone());
                    }
                }
            }
            if opts.peephole {
                if on_true == on_false {
                    return Some(on_true.as_ref().clone());
                }
                if let Expr::Not(inner) = sel.as_ref() {
                    // `!s` flips bit 0 (the mux test bit), so swapping the
                    // branches preserves the selection. Width-neutral only
                    // when the branches agree.
                    if tw == fw {
                        return Some(Expr::Mux {
                            sel: inner.clone(),
                            on_true: on_false.clone(),
                            on_false: on_true.clone(),
                        });
                    }
                }
            }
            None
        }
        Expr::Resize(x, w) => {
            if opts.fold {
                if let Some((v, _)) = const_of(x) {
                    return Some(Expr::Const {
                        value: mask(v, *w),
                        width: *w,
                    });
                }
            }
            if opts.peephole {
                if x.width(nets) == *w && well_masked(x, nets) {
                    return Some(x.as_ref().clone());
                }
                if let Expr::Resize(inner, a) = x.as_ref() {
                    // mask(mask(v,a),w) == mask(v,w) whenever w <= a.
                    if *w <= *a {
                        return Some(Expr::Resize(inner.clone(), *w));
                    }
                }
            }
            None
        }
        Expr::SignExtend(x, w) => {
            let xw = x.width(nets);
            if opts.fold {
                if let Some((v, _)) = const_of(x) {
                    return Some(Expr::Const {
                        value: sign_extend(v, xw, *w),
                        width: *w,
                    });
                }
            }
            if opts.peephole {
                // A non-widening sign-extension is a plain truncation/mask.
                if *w <= xw {
                    return Some(Expr::Resize(x.clone(), *w));
                }
                if let Expr::SignExtend(inner, a) = x.as_ref() {
                    // Extending an already sign-extended value re-extends
                    // the same original sign bit.
                    if inner.width(nets) <= *a {
                        return Some(Expr::SignExtend(inner.clone(), *w));
                    }
                }
            }
            None
        }
        Expr::Const { .. } | Expr::Net(_) => None,
    }
}

/// Bottom-up simplification: children first, then root rules to a local
/// fixpoint. Terminates because every rule shrinks the node count or
/// removes a `SignExtend` without adding one.
fn simplify(e: &Expr, nets: &[Net], opts: &OptOptions, changed: &mut bool) -> Expr {
    let mut cur = match e {
        Expr::Const { .. } | Expr::Net(_) => e.clone(),
        Expr::Not(x) => Expr::Not(Box::new(simplify(x, nets, opts, changed))),
        Expr::Bin(op, a, b) => Expr::Bin(
            *op,
            Box::new(simplify(a, nets, opts, changed)),
            Box::new(simplify(b, nets, opts, changed)),
        ),
        Expr::Mux {
            sel,
            on_true,
            on_false,
        } => Expr::Mux {
            sel: Box::new(simplify(sel, nets, opts, changed)),
            on_true: Box::new(simplify(on_true, nets, opts, changed)),
            on_false: Box::new(simplify(on_false, nets, opts, changed)),
        },
        Expr::Resize(x, w) => Expr::Resize(Box::new(simplify(x, nets, opts, changed)), *w),
        Expr::SignExtend(x, w) => Expr::SignExtend(Box::new(simplify(x, nets, opts, changed)), *w),
    };
    while let Some(next) = rule_step(&cur, nets, opts) {
        *changed = true;
        cur = next;
    }
    cur
}

// ---------------------------------------------------------------------------
// Reduction rebalancing
// ---------------------------------------------------------------------------

fn assoc_candidate(op: BinOp) -> bool {
    matches!(
        op,
        BinOp::And | BinOp::Or | BinOp::Xor | BinOp::Add | BinOp::Mul
    )
}

fn collect_chain(e: &Expr, op: BinOp, leaves: &mut Vec<Expr>) {
    if let Expr::Bin(o, a, b) = e {
        if *o == op {
            collect_chain(a, op, leaves);
            collect_chain(b, op, leaves);
            return;
        }
    }
    leaves.push(e.clone());
}

fn balanced(op: BinOp, leaves: &[Expr]) -> Expr {
    if leaves.len() == 1 {
        return leaves[0].clone();
    }
    let mid = leaves.len().div_ceil(2);
    Expr::Bin(
        op,
        Box::new(balanced(op, &leaves[..mid])),
        Box::new(balanced(op, &leaves[mid..])),
    )
}

/// Re-trees same-operator chains into balanced form. Bitwise chains are
/// raw-value associative under any grouping; `Add`/`Mul` chains qualify
/// only when every leaf has the same static width, so every intermediate
/// node masks modulo the same `2^W` and grouping cannot change the result.
fn rebalance_expr(e: &Expr, nets: &[Net], changed: &mut bool) -> Expr {
    match e {
        Expr::Bin(op, a, b) if assoc_candidate(*op) => {
            let mut leaves = Vec::new();
            collect_chain(e, *op, &mut leaves);
            let leaves: Vec<Expr> = leaves
                .iter()
                .map(|l| rebalance_expr(l, nets, changed))
                .collect();
            let ok = match op {
                BinOp::And | BinOp::Or | BinOp::Xor => true,
                _ => {
                    let w0 = leaves[0].width(nets);
                    leaves.iter().all(|l| l.width(nets) == w0)
                }
            };
            if ok && leaves.len() >= 3 {
                let tree = balanced(*op, &leaves);
                if tree != *e {
                    *changed = true;
                }
                tree
            } else {
                Expr::Bin(
                    *op,
                    Box::new(rebalance_expr(a, nets, changed)),
                    Box::new(rebalance_expr(b, nets, changed)),
                )
            }
        }
        Expr::Const { .. } | Expr::Net(_) => e.clone(),
        Expr::Not(x) => Expr::Not(Box::new(rebalance_expr(x, nets, changed))),
        Expr::Bin(op, a, b) => Expr::Bin(
            *op,
            Box::new(rebalance_expr(a, nets, changed)),
            Box::new(rebalance_expr(b, nets, changed)),
        ),
        Expr::Mux {
            sel,
            on_true,
            on_false,
        } => Expr::Mux {
            sel: Box::new(rebalance_expr(sel, nets, changed)),
            on_true: Box::new(rebalance_expr(on_true, nets, changed)),
            on_false: Box::new(rebalance_expr(on_false, nets, changed)),
        },
        Expr::Resize(x, w) => Expr::Resize(Box::new(rebalance_expr(x, nets, changed)), *w),
        Expr::SignExtend(x, w) => {
            Expr::SignExtend(Box::new(rebalance_expr(x, nets, changed)), *w)
        }
    }
}

// ---------------------------------------------------------------------------
// Compiled-cost model (mirrors interp.rs lowering + fusion exactly)
// ---------------------------------------------------------------------------

fn lowered_segment(e: &Expr, nets: &[Net], identity: &[u32]) -> Vec<Instr> {
    let mut seg = Vec::new();
    lower_onto(e, nets, identity, &mut seg);
    peephole(&mut seg);
    seg
}

fn assign_cost(nets: &[Net], identity: &[u32], target: NetId, e: &Expr) -> usize {
    // Alias elimination: a non-truncating copy compiles to nothing.
    if let Expr::Net(src) = e {
        if nets[*src].width <= nets[target].width {
            return 0;
        }
    }
    let seg = lowered_segment(e, nets, identity);
    match seg[..] {
        [Instr::Load(_)] | [Instr::Const(_)] => 1,
        _ => seg.len() + 1,
    }
}

fn reg_cost(nets: &[Net], identity: &[u32], r: &RegDef) -> usize {
    match &r.enable {
        Some(en) => {
            let mut seg = Vec::new();
            lower_onto(en, nets, identity, &mut seg);
            lower_onto(&r.next, nets, identity, &mut seg);
            peephole(&mut seg);
            if matches!(seg[..], [Instr::Load(_), Instr::Load(_)]) {
                1
            } else {
                seg.len() + 1
            }
        }
        None => {
            let seg = lowered_segment(&r.next, nets, identity);
            if matches!(seg[..], [Instr::Load(_)]) {
                1
            } else {
                seg.len() + 1
            }
        }
    }
}

fn parts_cost(p: &Parts) -> usize {
    let identity: Vec<u32> = (0..p.nets.len() as u32).collect();
    let mut total = 0usize;
    for (t, e) in &p.assigns {
        total += assign_cost(&p.nets, &identity, *t, e);
    }
    for r in &p.regs {
        total += reg_cost(&p.nets, &identity, r);
    }
    total
}

/// Estimated compiled-bytecode instruction count for one module, using the
/// interpreter's own lowering and fusion rules (alias copies cost zero).
pub fn module_lowered_ops(m: &Module) -> usize {
    parts_cost(&to_parts(m))
}

// ---------------------------------------------------------------------------
// Common-subexpression sharing
// ---------------------------------------------------------------------------

/// Width-aware structural key: net identities, constant value *and* width,
/// and resize/extend targets all participate, so two textually identical
/// trees over different widths never collide.
fn expr_key(e: &Expr) -> String {
    match e {
        Expr::Const { value, width } => format!("c{value}w{width}"),
        Expr::Net(id) => format!("n{id}"),
        Expr::Not(x) => format!("!({})", expr_key(x)),
        Expr::Bin(op, a, b) => format!("({} {op:?} {})", expr_key(a), expr_key(b)),
        Expr::Mux {
            sel,
            on_true,
            on_false,
        } => format!(
            "({}?{}:{})",
            expr_key(sel),
            expr_key(on_true),
            expr_key(on_false)
        ),
        Expr::Resize(x, w) => format!("rz{w}({})", expr_key(x)),
        Expr::SignExtend(x, w) => format!("sx{w}({})", expr_key(x)),
    }
}

fn scan_subexprs(e: &Expr, nets: &[Net], counts: &mut HashMap<String, (usize, Expr)>) {
    match e {
        Expr::Const { .. } | Expr::Net(_) => return,
        _ => {
            if well_masked(e, nets) {
                let entry = counts
                    .entry(expr_key(e))
                    .or_insert_with(|| (0, e.clone()));
                entry.0 += 1;
            }
        }
    }
    match e {
        Expr::Const { .. } | Expr::Net(_) => {}
        Expr::Not(x) | Expr::Resize(x, _) | Expr::SignExtend(x, _) => {
            scan_subexprs(x, nets, counts)
        }
        Expr::Bin(_, a, b) => {
            scan_subexprs(a, nets, counts);
            scan_subexprs(b, nets, counts);
        }
        Expr::Mux {
            sel,
            on_true,
            on_false,
        } => {
            scan_subexprs(sel, nets, counts);
            scan_subexprs(on_true, nets, counts);
            scan_subexprs(on_false, nets, counts);
        }
    }
}

fn replace_subexpr(e: &Expr, what: &Expr, with: NetId) -> Expr {
    if e == what {
        return Expr::Net(with);
    }
    match e {
        Expr::Const { .. } | Expr::Net(_) => e.clone(),
        Expr::Not(x) => Expr::Not(Box::new(replace_subexpr(x, what, with))),
        Expr::Bin(op, a, b) => Expr::Bin(
            *op,
            Box::new(replace_subexpr(a, what, with)),
            Box::new(replace_subexpr(b, what, with)),
        ),
        Expr::Mux {
            sel,
            on_true,
            on_false,
        } => Expr::Mux {
            sel: Box::new(replace_subexpr(sel, what, with)),
            on_true: Box::new(replace_subexpr(on_true, what, with)),
            on_false: Box::new(replace_subexpr(on_false, what, with)),
        },
        Expr::Resize(x, w) => Expr::Resize(Box::new(replace_subexpr(x, what, with)), *w),
        Expr::SignExtend(x, w) => {
            Expr::SignExtend(Box::new(replace_subexpr(x, what, with)), *w)
        }
    }
}

fn apply_cse(p: &mut Parts, e: &Expr, counter: &mut usize) {
    let width = e.width(&p.nets);
    let used: HashSet<String> = p.nets.iter().map(|n| n.name.clone()).collect();
    let name = loop {
        let candidate = format!("cse_{}", *counter);
        *counter += 1;
        if !used.contains(&candidate) {
            break candidate;
        }
    };
    p.nets.push(Net { name, width });
    let id = p.nets.len() - 1;
    for (_, a) in &mut p.assigns {
        *a = replace_subexpr(a, e, id);
    }
    for r in &mut p.regs {
        r.next = replace_subexpr(&r.next, e, id);
        r.enable = r.enable.as_ref().map(|en| replace_subexpr(en, e, id));
    }
    // Define the shared net *after* rewriting, so the defining right-hand
    // side is not rewritten into a self-reference.
    p.assigns.push((id, e.clone()));
}

/// Whether `e` contains `what` as a subexpression (including `e == what`).
fn contains_subexpr(e: &Expr, what: &Expr) -> bool {
    if e == what {
        return true;
    }
    match e {
        Expr::Const { .. } | Expr::Net(_) => false,
        Expr::Not(x) | Expr::Resize(x, _) | Expr::SignExtend(x, _) => {
            contains_subexpr(x, what)
        }
        Expr::Bin(_, a, b) => contains_subexpr(a, what) || contains_subexpr(b, what),
        Expr::Mux {
            sel,
            on_true,
            on_false,
        } => {
            contains_subexpr(sel, what)
                || contains_subexpr(on_true, what)
                || contains_subexpr(on_false, what)
        }
    }
}

/// Cost-gated CSE: hoists the cheapest profitable candidate, recounts, and
/// repeats. A hoist only lands when the module's estimated bytecode cost
/// strictly drops — sharing a subexpression that a fused superinstruction
/// already evaluates for free is rejected by construction.
///
/// The gate is evaluated *incrementally*: every settle assign and register
/// sample is costed as its own independent bytecode segment (exactly how
/// [`parts_cost`] sums them), so a candidate's effect is the cost delta over
/// the items that actually contain it plus the new defining assign. This is
/// bit-for-bit the same accept/reject decision as re-costing a cloned
/// module, an order of magnitude cheaper — the pipeline runs inside the
/// compile path, so its own wall time is part of the perf gate.
fn cse_parts(p: &mut Parts) {
    let mut counter = 0usize;
    for _round in 0..256 {
        let mut counts: HashMap<String, (usize, Expr)> = HashMap::new();
        for (_, e) in &p.assigns {
            scan_subexprs(e, &p.nets, &mut counts);
        }
        for r in &p.regs {
            scan_subexprs(&r.next, &p.nets, &mut counts);
            if let Some(en) = &r.enable {
                scan_subexprs(en, &p.nets, &mut counts);
            }
        }
        let mut cands: Vec<(usize, String, Expr)> = counts
            .into_iter()
            .filter(|(_, (count, _))| *count >= 2)
            .map(|(key, (_, e))| (expr_nodes(&e), key, e))
            .collect();
        cands.sort_by(|a, b| (a.0, &a.1).cmp(&(b.0, &b.1)));
        // Per-item base costs, shared across every candidate this round. The
        // identity map and the net table carry one extra slot for the
        // hypothetical shared net (id = nets.len()).
        let id = p.nets.len();
        let identity: Vec<u32> = (0..=id as u32).collect();
        let mut nets_ext = p.nets.clone();
        nets_ext.push(Net {
            name: String::new(),
            width: 1,
        });
        let assign_costs: Vec<usize> = p
            .assigns
            .iter()
            .map(|(t, e)| assign_cost(&nets_ext, &identity, *t, e))
            .collect();
        let reg_costs: Vec<usize> = p
            .regs
            .iter()
            .map(|r| reg_cost(&nets_ext, &identity, r))
            .collect();
        let mut applied = false;
        for (_, _, e) in &cands {
            nets_ext[id].width = e.width(&p.nets);
            let mut delta = assign_cost(&nets_ext, &identity, id, e) as isize;
            for (i, (t, old)) in p.assigns.iter().enumerate() {
                if contains_subexpr(old, e) {
                    let new = replace_subexpr(old, e, id);
                    delta += assign_cost(&nets_ext, &identity, *t, &new) as isize
                        - assign_costs[i] as isize;
                }
            }
            for (j, r) in p.regs.iter().enumerate() {
                let touches = contains_subexpr(&r.next, e)
                    || r.enable.as_ref().is_some_and(|en| contains_subexpr(en, e));
                if touches {
                    let rewritten = RegDef {
                        target: r.target,
                        next: replace_subexpr(&r.next, e, id),
                        enable: r.enable.as_ref().map(|en| replace_subexpr(en, e, id)),
                        init: r.init,
                    };
                    delta += reg_cost(&nets_ext, &identity, &rewritten) as isize
                        - reg_costs[j] as isize;
                }
            }
            if delta < 0 {
                apply_cse(p, e, &mut counter);
                applied = true;
                break;
            }
        }
        if !applied {
            break;
        }
    }
}

// ---------------------------------------------------------------------------
// Dead-logic GC (optimizer mode)
// ---------------------------------------------------------------------------

/// Drops assignments whose targets no live net transitively needs. Roots:
/// every port, every instance connection, and every register (registers are
/// never deleted — fault campaigns enumerate them by position).
fn drop_dead_assigns(p: &mut Parts) -> bool {
    let mut live = vec![false; p.nets.len()];
    for &(id, _) in &p.ports {
        live[id] = true;
    }
    for (_, _, conns) in &p.instances {
        for (_, n) in conns {
            live[*n] = true;
        }
    }
    for r in &p.regs {
        live[r.target] = true;
        let mut reads = Vec::new();
        r.next.collect_reads(&mut reads);
        if let Some(e) = &r.enable {
            e.collect_reads(&mut reads);
        }
        for x in reads {
            live[x] = true;
        }
    }
    loop {
        let mut grew = false;
        for (t, e) in &p.assigns {
            if live[*t] {
                let mut reads = Vec::new();
                e.collect_reads(&mut reads);
                for r in reads {
                    if !live[r] {
                        live[r] = true;
                        grew = true;
                    }
                }
            }
        }
        if !grew {
            break;
        }
    }
    let before = p.assigns.len();
    p.assigns.retain(|(t, _)| live[*t]);
    before != p.assigns.len()
}

// ---------------------------------------------------------------------------
// Depth + census
// ---------------------------------------------------------------------------

/// Longest combinational operator path inside one module, in gate levels:
/// `Not`/`Bin`/`Mux` count one level, `Resize`/`SignExtend` are wiring,
/// and paths start at inputs, constants, register outputs, and
/// instance-driven nets. Register next/enable expressions terminate paths
/// (they end at a flop), so the result is the classic register-to-register
/// critical depth restricted to this module.
pub fn critical_path_depth(m: &Module) -> u32 {
    let nets = m.nets();
    let driver: HashMap<NetId, &Expr> = m.assigns().iter().map(|(t, e)| (*t, e)).collect();
    let mut memo: Vec<Option<u32>> = vec![None; nets.len()];
    fn net_depth(
        id: NetId,
        driver: &HashMap<NetId, &Expr>,
        memo: &mut Vec<Option<u32>>,
        regs: &HashSet<NetId>,
    ) -> u32 {
        if let Some(d) = memo[id] {
            return d;
        }
        // Mark as in-progress: combinational cycles (impossible in
        // validated modules) and register feedback terminate at zero.
        memo[id] = Some(0);
        let d = if regs.contains(&id) {
            0
        } else {
            match driver.get(&id) {
                Some(e) => expr_depth(e, driver, memo, regs),
                None => 0,
            }
        };
        memo[id] = Some(d);
        d
    }
    fn expr_depth(
        e: &Expr,
        driver: &HashMap<NetId, &Expr>,
        memo: &mut Vec<Option<u32>>,
        regs: &HashSet<NetId>,
    ) -> u32 {
        match e {
            Expr::Const { .. } => 0,
            Expr::Net(id) => net_depth(*id, driver, memo, regs),
            Expr::Not(x) => 1 + expr_depth(x, driver, memo, regs),
            Expr::Bin(_, a, b) => {
                1 + expr_depth(a, driver, memo, regs).max(expr_depth(b, driver, memo, regs))
            }
            Expr::Mux {
                sel,
                on_true,
                on_false,
            } => {
                1 + expr_depth(sel, driver, memo, regs)
                    .max(expr_depth(on_true, driver, memo, regs))
                    .max(expr_depth(on_false, driver, memo, regs))
            }
            Expr::Resize(x, _) | Expr::SignExtend(x, _) => expr_depth(x, driver, memo, regs),
        }
    }
    let regs: HashSet<NetId> = m.regs().iter().map(|r| r.target).collect();
    let mut worst = 0u32;
    for (t, _) in m.assigns() {
        worst = worst.max(net_depth(*t, &driver, &mut memo, &regs));
    }
    for r in m.regs() {
        worst = worst.max(expr_depth(&r.next, &driver, &mut memo, &regs));
        if let Some(e) = &r.enable {
            worst = worst.max(expr_depth(e, &driver, &mut memo, &regs));
        }
    }
    worst
}

/// Census of a module list: sizes, expression nodes, the estimated
/// compiled-bytecode instruction count, and the worst per-module
/// combinational depth.
pub fn netlist_stats(modules: &[Module]) -> NetlistStats {
    let mut s = NetlistStats {
        modules: modules.len(),
        ..NetlistStats::default()
    };
    for m in modules {
        s.nets += m.nets().len();
        s.assigns += m.assigns().len();
        s.regs += m.regs().len();
        for (_, e) in m.assigns() {
            s.expr_nodes += expr_nodes(e);
        }
        for r in m.regs() {
            s.expr_nodes += expr_nodes(&r.next);
            if let Some(e) = &r.enable {
                s.expr_nodes += expr_nodes(e);
            }
        }
        s.lowered_ops += module_lowered_ops(m);
        s.critical_path_depth = s.critical_path_depth.max(critical_path_depth(m));
    }
    s
}

// ---------------------------------------------------------------------------
// Pipeline entry points
// ---------------------------------------------------------------------------

/// Runs the enabled passes over one module. Pass order: expression
/// simplification and rebalancing to a fixpoint (each iteration applies
/// fold/peephole rules bottom-up, then re-trees reduction chains), then
/// cost-gated CSE, then dead-logic GC. Ports, registers, instances, and
/// net names are preserved (see the module docs' preservation contract).
pub fn optimize_module(m: &Module, opts: &OptOptions) -> Module {
    let mut p = to_parts(m);
    if opts.fold || opts.peephole || opts.rebalance {
        for _ in 0..8 {
            let mut changed = false;
            let nets = p.nets.clone();
            let rewrite = |e: &Expr, changed: &mut bool| -> Expr {
                let mut cur = simplify(e, &nets, opts, changed);
                if opts.rebalance {
                    cur = rebalance_expr(&cur, &nets, changed);
                }
                cur
            };
            for (_, e) in &mut p.assigns {
                *e = rewrite(e, &mut changed);
            }
            for r in &mut p.regs {
                r.next = rewrite(&r.next, &mut changed);
                r.enable = r.enable.as_ref().map(|e| rewrite(e, &mut changed));
            }
            if !changed {
                break;
            }
        }
    }
    if opts.cse {
        cse_parts(&mut p);
    }
    if opts.gc {
        drop_dead_assigns(&mut p);
        gc_nets(&mut p, GcPorts::PreservePorts);
    }
    from_parts(&p)
}

/// Optimizes a whole module list and collects unreachable child modules
/// (when [`OptOptions::gc`] is on). Returns the optimized list plus the
/// pre/post census. Module order is preserved for the survivors.
pub fn optimize_netlist(
    modules: &[Module],
    top: &str,
    opts: &OptOptions,
) -> (Vec<Module>, OptStats) {
    let pre = netlist_stats(modules);
    let mut out: Vec<Module> = modules.iter().map(|m| optimize_module(m, opts)).collect();
    if opts.gc && out.iter().any(|m| m.name() == top) {
        // Transitive reachability from the top module over instances.
        let by_name: HashMap<&str, &Module> =
            out.iter().map(|m| (m.name(), m)).collect();
        let mut reachable: HashSet<String> = HashSet::new();
        let mut stack = vec![top.to_string()];
        while let Some(name) = stack.pop() {
            if !reachable.insert(name.clone()) {
                continue;
            }
            if let Some(m) = by_name.get(name.as_str()) {
                for inst in m.instances() {
                    stack.push(inst.module.clone());
                }
            }
        }
        out.retain(|m| reachable.contains(m.name()));
    }
    let post = netlist_stats(&out);
    (out, OptStats { pre, post })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fuzz::assert_engines_agree;

    fn w(e: &Expr) -> u32 {
        e.width(&[])
    }

    #[test]
    fn folds_constants_through_every_operator() {
        let opts = OptOptions::default();
        let mut ch = false;
        let nets: Vec<Net> = Vec::new();
        let e = Expr::lit(200, 8).add(Expr::lit(100, 8));
        let f = simplify(&e, &nets, &opts, &mut ch);
        assert_eq!(f, Expr::Const { value: 44, width: 8 }, "wrapping add");
        let e = Expr::lit(9, 4).sext(8);
        let f = simplify(&e, &nets, &opts, &mut ch);
        assert_eq!(f, Expr::Const { value: 249, width: 8 }, "sign extension");
        let e = Expr::lit(200, 8).resize(4);
        let f = simplify(&e, &nets, &opts, &mut ch);
        assert_eq!(f, Expr::Const { value: 8, width: 4 }, "narrowing resize");
        let e = Expr::mux(Expr::lit(1, 1), Expr::lit(3, 4), Expr::lit(5, 4));
        let f = simplify(&e, &nets, &opts, &mut ch);
        assert_eq!(f, Expr::Const { value: 3, width: 4 });
        assert_eq!(w(&f), 4);
    }

    #[test]
    fn width_changing_identities_are_refused() {
        // x(4) + 0(8) has static width 8; substituting x would shrink it.
        let mut m = Module::new("t");
        let x = m.input("x", 4);
        let opts = OptOptions::default();
        let mut ch = false;
        let e = Expr::net(x).add(Expr::lit(0, 8));
        let f = simplify(&e, m.nets(), &opts, &mut ch);
        assert_eq!(f.width(m.nets()), 8, "width must be preserved: {f:?}");
        // Same addend at width 4 is a true identity.
        let e = Expr::net(x).add(Expr::lit(0, 4));
        let f = simplify(&e, m.nets(), &opts, &mut ch);
        assert_eq!(f, Expr::net(x));
    }

    #[test]
    fn mux_with_wider_false_branch_is_not_well_masked() {
        let mut m = Module::new("t");
        let s = m.input("s", 1);
        let a = m.input("a", 4);
        let b = m.input("b", 8);
        let e = Expr::Mux {
            sel: Box::new(Expr::net(s)),
            on_true: Box::new(Expr::net(a)),
            on_false: Box::new(Expr::net(b)),
        };
        assert!(!well_masked(&e, m.nets()));
        // And therefore the enclosing resize must not be elided.
        let opts = OptOptions::default();
        let mut ch = false;
        let f = simplify(&Expr::Resize(Box::new(e.clone()), 4), m.nets(), &opts, &mut ch);
        assert!(matches!(f, Expr::Resize(..)), "mask kept: {f:?}");
    }

    #[test]
    fn rebalanced_chain_has_log_depth_and_same_value() {
        let mut m = Module::new("chain");
        let ins: Vec<NetId> = (0..9).map(|i| m.input(format!("i{i}"), 8)).collect();
        let y = m.output("y", 8);
        let mut e = Expr::net(ins[0]);
        for &i in &ins[1..] {
            e = e.add(Expr::net(i));
        }
        let mut ch = false;
        let t = rebalance_expr(&e, m.nets(), &mut ch);
        assert!(ch);
        fn depth(e: &Expr) -> u32 {
            match e {
                Expr::Bin(_, a, b) => 1 + depth(a).max(depth(b)),
                _ => 0,
            }
        }
        assert_eq!(depth(&e), 8);
        assert!(depth(&t) <= 4, "depth {} > ceil(log2 9)", depth(&t));
        m.assign(y, e);
        let opt = optimize_module(&m, &OptOptions::default());
        assert_engines_agree(
            &[m.clone()],
            "chain",
            11,
            16,
        );
        assert_engines_agree(&[opt], "chain", 11, 16);
    }

    #[test]
    fn mixed_width_add_chains_are_left_alone() {
        let mut m = Module::new("mx");
        let a = m.input("a", 4);
        let b = m.input("b", 8);
        let c = m.input("c", 4);
        let d = m.input("d", 4);
        let e = Expr::net(a)
            .add(Expr::net(b))
            .add(Expr::net(c))
            .add(Expr::net(d));
        let mut ch = false;
        let t = rebalance_expr(&e, m.nets(), &mut ch);
        assert_eq!(t, e, "mixed-width arithmetic must keep its grouping");
    }

    #[test]
    fn cse_shares_repeats_and_is_cost_gated() {
        let mut m = Module::new("cse");
        let a = m.input("a", 8);
        let b = m.input("b", 8);
        let x = m.output("x", 8);
        let y = m.output("y", 8);
        let z = m.output("z", 8);
        // (a+b)&3 appears three times inside larger expressions.
        let shared = || Expr::net(a).add(Expr::net(b)).resize(8);
        m.assign(x, shared().mul(Expr::net(a)).resize(8));
        m.assign(y, shared().mul(Expr::net(b)).resize(8));
        m.assign(z, shared().add(Expr::lit(1, 8)).resize(8));
        let before = module_lowered_ops(&m);
        let opt = optimize_module(&m, &OptOptions::default());
        let after = module_lowered_ops(&opt);
        assert!(after < before, "no sharing happened: {before} -> {after}");
        assert!(
            opt.nets().iter().any(|n| n.name.starts_with("cse_")),
            "shared net expected"
        );
        assert_engines_agree(&[m], "cse", 5, 16);
        assert_engines_agree(&[opt], "cse", 5, 16);
    }

    #[test]
    fn gc_drops_dead_logic_but_keeps_ports_and_regs() {
        let mut m = Module::new("gc");
        let a = m.input("a", 8);
        let unused_in = m.input("unused_in", 8);
        let y = m.output("y", 8);
        let dead = m.net("dead", 8);
        let dead_reg = m.net("dead_reg", 8);
        m.assign(dead, Expr::net(a).add(Expr::lit(1, 8)));
        m.reg(dead_reg, Expr::net(dead_reg).add(Expr::lit(1, 8)), None, 0);
        m.assign(y, Expr::net(a));
        let opt = optimize_module(&m, &OptOptions::default());
        assert!(opt.port_dir("unused_in").is_some(), "ports preserved");
        assert_eq!(opt.regs().len(), 1, "registers preserved");
        assert!(
            opt.nets().iter().all(|n| n.name != "dead"),
            "dead assign collected: {:?}",
            opt.nets()
        );
        let _ = unused_in;
        // Every surviving net is referenced: a port, a reg target, read
        // somewhere, or instance-connected.
        let p = to_parts(&opt);
        let mut referenced = vec![false; p.nets.len()];
        for &(id, _) in &p.ports {
            referenced[id] = true;
        }
        for r in &p.regs {
            referenced[r.target] = true;
        }
        for (t, e) in &p.assigns {
            referenced[*t] = true;
            let mut reads = Vec::new();
            e.collect_reads(&mut reads);
            for x in reads {
                referenced[x] = true;
            }
        }
        assert!(referenced.iter().all(|&x| x), "unreferenced net survived");
    }

    #[test]
    fn optimize_netlist_collects_dead_children() {
        let mut child = Module::new("live_child");
        let ci = child.input("ci", 4);
        let co = child.output("co", 4);
        child.assign(co, Expr::net(ci));
        let dead = Module::new("dead_child");
        let mut top = Module::new("t");
        let x = top.input("x", 4);
        let y = top.output("y", 4);
        top.instance("live_child", "u0", vec![("ci".into(), x), ("co".into(), y)]);
        let (out, stats) =
            optimize_netlist(&[child, dead, top], "t", &OptOptions::default());
        assert_eq!(out.len(), 2, "dead child collected");
        assert!(out.iter().all(|m| m.name() != "dead_child"));
        assert!(stats.post.nets <= stats.pre.nets);
    }

    #[test]
    fn optimization_is_deterministic() {
        let cfg = crate::fuzz::NetlistFuzzConfig::default();
        for seed in [3u64, 17, 40] {
            let (modules, top) = crate::fuzz::gen_netlist(seed, &cfg);
            let (a, sa) = optimize_netlist(&modules, &top, &OptOptions::default());
            let (b, sb) = optimize_netlist(&modules, &top, &OptOptions::default());
            assert_eq!(a, b);
            assert_eq!(sa, sb);
        }
    }

    #[test]
    fn disabled_pipeline_is_identity() {
        let cfg = crate::fuzz::NetlistFuzzConfig::default();
        let (modules, top) = crate::fuzz::gen_netlist(12, &cfg);
        let (out, stats) = optimize_netlist(&modules, &top, &OptOptions::none());
        assert_eq!(out, modules);
        assert_eq!(stats.pre, stats.post);
    }

    #[test]
    fn critical_path_depth_counts_operator_levels() {
        let mut m = Module::new("d");
        let a = m.input("a", 8);
        let b = m.input("b", 8);
        let mid = m.net("mid", 8);
        let y = m.output("y", 8);
        m.assign(mid, Expr::net(a).add(Expr::net(b)).resize(8));
        m.assign(y, Expr::net(mid).mul(Expr::net(a)).resize(8));
        // add (1) -> resize (0) -> mul (1) = 2 levels.
        assert_eq!(critical_path_depth(&m), 2);
        // A register breaks the path.
        let mut r = Module::new("r");
        let a = r.input("a", 8);
        let q = r.net("q", 8);
        let y = r.output("y", 8);
        r.reg(q, Expr::net(a).add(Expr::net(q)).resize(8), None, 0);
        r.assign(y, Expr::net(q).mul(Expr::net(a)).resize(8));
        assert_eq!(critical_path_depth(&r), 1);
    }
}

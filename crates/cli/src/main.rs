//! The `tensorlib` command-line tool. See [`tensorlib_cli`] for the
//! commands; `tensorlib --help` (or any bad usage) prints the usage text.

use std::process::ExitCode;

use tensorlib_cli::{parse_invocation, run_invocation_coded, wants_interrupt_latch};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().is_some_and(|a| a == "--help" || a == "-h") {
        println!("{}", tensorlib_cli::USAGE);
        return ExitCode::SUCCESS;
    }
    let inv = match parse_invocation(&args) {
        Ok(inv) => inv,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    // Journaled campaigns turn the first Ctrl-C into a drain-and-flush (the
    // partial report is still written, marked interrupted); a second Ctrl-C
    // falls back to the default handler and kills the process.
    if wants_interrupt_latch(&inv.command) {
        tensorlib_cli::interrupt::install();
    }
    match run_invocation_coded(inv) {
        Ok((out, code)) => {
            print!("{out}");
            if code == 0 && tensorlib_cli::interrupt::interrupted() {
                // Conventional "terminated by SIGINT" code, so scripts can
                // tell a drained partial run from a clean completion.
                ExitCode::from(130)
            } else {
                // Command-specific codes: status 2 running / 3 interrupted,
                // watch 3 interrupted, history --check 4 on a flagged
                // regression; 0 otherwise.
                ExitCode::from(code)
            }
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

//! On-chip scratchpad generation: one streaming bank per PE reuse group.
//!
//! The paper assigns each group of PEs that reuse the same tensor indexes a
//! private memory bank and double-buffers stationary data. Banks here are
//! autonomous streamers: an internal address counter advances on `en`, so the
//! controller only gates enables — matching the fixed access patterns STT
//! schedules produce.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::netlist::Module;

/// A scratchpad bank template (one Verilog module; possibly instantiated many
/// times).
///
/// # Examples
///
/// ```
/// use tensorlib_hw::mem::MemBank;
/// let b = MemBank::new(1024, 16, true);
/// assert_eq!(b.addr_bits(), 10);
/// assert_eq!(b.bits(), 2 * 1024 * 16); // double buffered
/// assert!(b.module_name().contains("w16"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MemBank {
    words: u64,
    width: u32,
    double_buffered: bool,
    /// One parity bit per stored word, checked on every read (see
    /// [`crate::fault::Hardening::parity_banks`]).
    parity: bool,
}

impl MemBank {
    /// Creates a bank of `words` entries of `width` bits; `double_buffered`
    /// doubles the storage so loads overlap compute.
    ///
    /// # Panics
    ///
    /// Panics if `words == 0` or `width == 0`.
    pub fn new(words: u64, width: u32, double_buffered: bool) -> MemBank {
        assert!(words > 0 && width > 0, "bank must have positive capacity");
        MemBank {
            words,
            width,
            double_buffered,
            parity: false,
        }
    }

    /// Returns this bank hardened with one parity bit per word. Parity is
    /// checked behaviourally on every read by the interpreter (sticky
    /// per-bank error counters); storage grows by one bit per word, which
    /// [`MemBank::bits`] accounts so the cost models price it.
    pub fn with_parity(mut self) -> MemBank {
        self.parity = true;
        self
    }

    /// `true` if the bank carries per-word parity.
    pub fn has_parity(&self) -> bool {
        self.parity
    }

    /// Storage depth in words (per buffer).
    pub fn words(&self) -> u64 {
        self.words
    }

    /// Word width in bits.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// `true` if the bank is double-buffered.
    pub fn is_double_buffered(&self) -> bool {
        self.double_buffered
    }

    /// Address width in bits.
    pub fn addr_bits(&self) -> u32 {
        (64 - (self.words - 1).leading_zeros()).max(1)
    }

    /// Total storage bits (both buffers if double-buffered; parity bits
    /// included).
    pub fn bits(&self) -> u64 {
        let word_bits = self.width as u64 + u64::from(self.parity);
        let base = self.words * word_bits;
        if self.double_buffered {
            2 * base
        } else {
            base
        }
    }

    /// The deterministic module name for this template, e.g.
    /// `bank_w16_d1024_db` (`_par` appended for parity-protected banks).
    pub fn module_name(&self) -> String {
        format!(
            "bank_w{}_d{}{}{}",
            self.width,
            self.words,
            if self.double_buffered { "_db" } else { "" },
            if self.parity { "_par" } else { "" }
        )
    }

    /// A ports-only interface module (for cross-module validation; the body
    /// is emitted behaviourally by [`crate::verilog`]).
    pub fn interface_module(&self) -> Module {
        let mut m = Module::new(self.module_name());
        m.input("en", 1);
        m.input("wen", 1);
        m.input("wdata", self.width);
        m.output("rdata", self.width);
        if self.double_buffered {
            m.input("buf_sel", 1);
        }
        m
    }
}

impl fmt::Display for MemBank {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({} x {}b{})",
            self.module_name(),
            self.words,
            self.width,
            if self.double_buffered {
                ", double-buffered"
            } else {
                ""
            }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::Dir;

    #[test]
    fn addr_bits_rounding() {
        assert_eq!(MemBank::new(1, 8, false).addr_bits(), 1);
        assert_eq!(MemBank::new(2, 8, false).addr_bits(), 1);
        assert_eq!(MemBank::new(3, 8, false).addr_bits(), 2);
        assert_eq!(MemBank::new(1024, 8, false).addr_bits(), 10);
        assert_eq!(MemBank::new(1025, 8, false).addr_bits(), 11);
    }

    #[test]
    fn bits_accounting() {
        assert_eq!(MemBank::new(256, 16, false).bits(), 4096);
        assert_eq!(MemBank::new(256, 16, true).bits(), 8192);
    }

    #[test]
    fn interface_ports() {
        let m = MemBank::new(64, 16, true).interface_module();
        assert_eq!(m.port_dir("en"), Some(Dir::Input));
        assert_eq!(m.port_dir("rdata"), Some(Dir::Output));
        assert_eq!(m.port_dir("buf_sel"), Some(Dir::Input));
        let s = MemBank::new(64, 16, false).interface_module();
        assert_eq!(s.port_dir("buf_sel"), None);
    }

    #[test]
    #[should_panic(expected = "positive capacity")]
    fn zero_words_panics() {
        let _ = MemBank::new(0, 8, false);
    }

    #[test]
    fn display_and_names() {
        let b = MemBank::new(128, 32, true);
        assert_eq!(b.module_name(), "bank_w32_d128_db");
        assert!(b.to_string().contains("double-buffered"));
    }
}

//! Conv2D dataflow shoot-out on the paper's two ResNet layers.
//!
//! Demonstrates the §VI-A narrative: selecting the `(k, c, x)` loops turns
//! convolution into a large GEMM and wins; mapping the tiny `p` (kernel) or
//! `x = y = 7` (late-layer) loops onto the array craters utilization.
//!
//! Run with: `cargo run --release --example conv2d_resnet`

use tensorlib::dataflow::dse::{find_named, DseConfig};
use tensorlib::hw::design::{generate, HwConfig};
use tensorlib::ir::workloads;
use tensorlib::sim::perf;
use tensorlib::SimConfig;

fn main() {
    let dataflows = ["KCX-SST", "KCX-STS", "XYP-MMT", "XYP-MST", "KPX-MST"];
    let hw = HwConfig::default();
    let sim = SimConfig::paper_default();

    for (label, kernel) in [
        ("ResNet layer 2 (56x56 feature map)", workloads::resnet_layer2()),
        ("ResNet layer 5 (7x7 feature map)", workloads::resnet_layer5()),
    ] {
        println!("{label}: {} MACs", kernel.macs());
        for name in dataflows {
            let Ok(df) = find_named(&kernel, name, &DseConfig::default()) else {
                println!("  {name:8}  (not realizable on this kernel)");
                continue;
            };
            let Ok(design) = generate(&df, &hw) else {
                println!("  {name:8}  (reuse vectors not wireable)");
                continue;
            };
            let r = perf::estimate(&design, &kernel, &sim);
            // Explain the utilization through the tiling.
            let t = design.tiling();
            println!(
                "  {name:8}  {:>10} cycles  {:>5.1}% of peak  (tile {}x{} PEs, {} tiles)",
                r.total_cycles,
                100.0 * r.normalized_perf,
                t.space_size[0],
                t.space_size[1],
                r.tiles,
            );
        }
        println!();
    }
    println!(
        "Takeaway: KCX selections keep all 16 rows busy; XYP/KPX map a loop of\n\
         extent 3 (or 7) onto a 16-wide dimension and idle the rest, exactly\n\
         as Figure 5 of the paper shows."
    );
}

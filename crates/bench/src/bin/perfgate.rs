//! Performance gate for the evaluation hot path.
//!
//! Times (a) netlist-interpreter throughput — compiled bytecode vs the
//! tree-walking reference — stepping a 4×4 output-stationary GEMM array, and
//! (b) full [`explore`] wall-time on GEMM-32, serial vs the worker pool.
//! Writes `BENCH_perfgate.json` at the repository root.
//!
//! With `--check-against <path>` the run additionally compares its compiled
//! interpreter throughput to the baseline report at `<path>` and exits
//! non-zero on a regression of more than 20% — see `scripts/perfgate.sh`.

use std::path::PathBuf;
use std::time::{Duration, Instant};

use serde::Serialize;
use tensorlib::dataflow::{Dataflow, LoopSelection, Stt};
use tensorlib::explore::{explore, ExploreOptions};
use tensorlib::hw::design::{generate, HwConfig};
use tensorlib::hw::interp::{elaborate_design, FlatDesign, Interpreter};
use tensorlib::hw::ArrayConfig;
use tensorlib::ir::workloads;
use tensorlib::TraceConfig;
use tensorlib_bench::TextTable;

/// Regression threshold for `--check-against`: fail if compiled throughput
/// drops below 80% of the baseline.
const REGRESSION_FLOOR: f64 = 0.8;

/// Observability must be pay-for-use: with tracing disabled the interpreter
/// may cost at most this much relative to one without the hooks.
const TRACE_OFF_OVERHEAD_CEILING_PCT: f64 = 3.0;

/// Fault injection must be pay-for-use too. With no faults attached the hot
/// path is the `FORCED = false` monomorphization — bit-identical code to the
/// pre-fault-engine interpreter plus one pointer test per step — so the gate
/// measures the strictly stronger condition: even with a fault *armed* (a
/// transient flip scheduled for a cycle the run never reaches), overhead
/// must stay under this ceiling.
const FAULT_ARMED_OVERHEAD_CEILING_PCT: f64 = 3.0;

/// Framework observability (`tensorlib_obs`) must be pay-for-use as well:
/// with recording disabled, the instrumentation left in the pipeline may
/// cost at most this much of a sweep's wall-time.
const OBS_DISABLED_OVERHEAD_CEILING_PCT: f64 = 3.0;

#[derive(Serialize)]
struct PerfGateReport {
    schema_version: u32,
    host_cores: usize,
    interpreter: InterpReport,
    trace_overhead: TraceOverheadReport,
    fault_overhead: FaultOverheadReport,
    obs_overhead: ObsOverheadReport,
    explore: ExploreReport,
}

#[derive(Serialize)]
struct ObsOverheadReport {
    scenario: String,
    /// Cost of one disabled [`tensorlib_obs::span`] call in nanoseconds —
    /// the per-hook price every instrumented function pays when recording
    /// is off (one relaxed atomic load).
    disabled_span_ns: f64,
    /// Spans a profiled run of the scenario records — i.e. how many times
    /// the disabled-mode check actually runs per sweep.
    spans_recorded: usize,
    /// Sweep wall-time with recording disabled (the normal configuration).
    disabled_seconds: f64,
    /// Sweep wall-time with recording enabled (spans + metrics captured).
    enabled_seconds: f64,
    /// Measured slowdown of the enabled sweep vs disabled (informational —
    /// enabling tracing is allowed to cost something).
    enabled_overhead_pct: f64,
    /// Estimated disabled-mode overhead, gated at
    /// [`OBS_DISABLED_OVERHEAD_CEILING_PCT`]: `spans_recorded ×
    /// disabled_span_ns` as a share of the disabled wall-time. A direct
    /// A/B against an uninstrumented build is impossible (the hooks are
    /// compiled in), so the gate bounds the total time spent in hooks.
    disabled_estimated_overhead_pct: f64,
}

#[derive(Serialize)]
struct FaultOverheadReport {
    scenario: String,
    /// Interpreter with the fault layer present but nothing attached (the
    /// injection-disabled configuration every normal run uses).
    off_cycles_per_sec: f64,
    /// One transient flip attached at an unreachable cycle: the per-step
    /// fault bookkeeping runs, no fault ever fires.
    armed_cycles_per_sec: f64,
    /// Slowdown of armed-but-idle vs off, in percent (negative = measured
    /// faster; gated at [`FAULT_ARMED_OVERHEAD_CEILING_PCT`]).
    armed_overhead_pct: f64,
}

#[derive(Serialize)]
struct TraceOverheadReport {
    scenario: String,
    plain_cycles_per_sec: f64,
    trace_off_cycles_per_sec: f64,
    /// Slowdown of the disabled-trace interpreter vs plain, in percent
    /// (negative = measured faster; gated at
    /// [`TRACE_OFF_OVERHEAD_CEILING_PCT`]).
    trace_off_overhead_pct: f64,
    counters_cycles_per_sec: f64,
    /// Slowdown with PE/bank/controller counters accumulating (informational,
    /// not gated).
    counters_overhead_pct: f64,
}

#[derive(Serialize)]
struct InterpReport {
    scenario: String,
    compiled_cycles_per_sec: f64,
    tree_walking_cycles_per_sec: f64,
    speedup: f64,
}

#[derive(Serialize)]
struct ExploreReport {
    workload: String,
    designs: usize,
    serial_seconds: f64,
    parallel_seconds: f64,
    parallel_workers: usize,
    speedup: f64,
}

/// Builds the flattened 4×4 output-stationary (MNK-SST) GEMM array.
fn os_array_4x4() -> FlatDesign {
    let gemm = workloads::gemm(4, 4, 4);
    let sel = LoopSelection::by_names(&gemm, ["m", "n", "k"]).expect("gemm loops");
    let df = Dataflow::analyze(&gemm, sel, Stt::output_stationary()).expect("SST dataflow");
    let design = generate(
        &df,
        &HwConfig {
            array: ArrayConfig { rows: 4, cols: 4 },
            ..HwConfig::default()
        },
    )
    .expect("generate 4x4 array");
    let array_name = design
        .modules()
        .iter()
        .map(|m| m.name().to_string())
        .find(|n| n.ends_with("_array"))
        .expect("array module");
    elaborate_design(&design, &array_name).expect("elaborate array")
}

/// Steps `n_cycles` cycles, driving every feed port with a varying pattern
/// (one batched poke + settle per cycle).
fn run_cycles(sim: &mut Interpreter, feeds: &[usize], n_cycles: u64, salt: u64) {
    for t in 0..n_cycles {
        let pokes = feeds
            .iter()
            .enumerate()
            .map(|(i, &id)| (id, (t.wrapping_mul(31) + i as u64 * 17 + salt) & 0xFF));
        sim.poke_by_id(pokes);
        sim.step();
    }
}

/// Resolves the feed-port ids, drives the enables, and warms the caches.
fn warm_up(sim: &mut Interpreter, feed_names: &[String]) -> Vec<usize> {
    let feeds: Vec<usize> = feed_names.iter().map(|n| sim.input_id(n)).collect();
    sim.poke_many([("en", 1), ("swap", 0), ("drain_en", 0)]);
    run_cycles(sim, &feeds, 256, 0);
    feeds
}

/// Times one measurement window of roughly `ms` milliseconds.
fn rate_window(sim: &mut Interpreter, feeds: &[usize], ms: u64, salt: u64) -> f64 {
    let mut cycles = 0u64;
    let start = Instant::now();
    while start.elapsed() < Duration::from_millis(ms) {
        run_cycles(sim, feeds, 1024, cycles.wrapping_add(salt));
        cycles += 1024;
    }
    cycles as f64 / start.elapsed().as_secs_f64()
}

/// Measures steady-state simulated cycles per second for one interpreter.
fn cycles_per_sec(mut sim: Interpreter, feed_names: &[String]) -> f64 {
    let feeds = warm_up(&mut sim, feed_names);
    let rate = rate_window(&mut sim, &feeds, 600, 0);
    std::hint::black_box(sim.peek("c_drain0"));
    rate
}

fn bench_interpreter() -> InterpReport {
    let flat = os_array_4x4();
    let feeds: Vec<String> = (0..4)
        .map(|i| format!("a_feed{i}"))
        .chain((0..4).map(|j| format!("b_feed{j}")))
        .collect();
    let compiled = cycles_per_sec(Interpreter::new(flat.clone()), &feeds);
    let tree = cycles_per_sec(Interpreter::new_tree_walking(flat), &feeds);
    InterpReport {
        scenario: "4x4 output-stationary GEMM array (MNK-SST)".into(),
        compiled_cycles_per_sec: compiled,
        tree_walking_cycles_per_sec: tree,
        speedup: compiled / tree,
    }
}

/// A/B/C comparison: plain interpreter vs one constructed through
/// [`Interpreter::with_trace`] with tracing disabled (must be free — the
/// hooks reduce to a `None` check) vs counters accumulating. Windows are
/// interleaved and the best rate per configuration is kept, which cancels
/// frequency-scaling and scheduler noise.
fn bench_trace_overhead() -> TraceOverheadReport {
    let flat = os_array_4x4();
    let feed_names: Vec<String> = (0..4)
        .map(|i| format!("a_feed{i}"))
        .chain((0..4).map(|j| format!("b_feed{j}")))
        .collect();
    let mut plain = Interpreter::new(flat.clone());
    let mut off =
        Interpreter::with_trace(flat.clone(), &TraceConfig::disabled()).expect("trace off");
    let mut counters =
        Interpreter::with_trace(flat, &TraceConfig::counters_only()).expect("counters");
    let plain_feeds = warm_up(&mut plain, &feed_names);
    let off_feeds = warm_up(&mut off, &feed_names);
    let counter_feeds = warm_up(&mut counters, &feed_names);
    let (mut best_plain, mut best_off, mut best_counters) = (0.0f64, 0.0f64, 0.0f64);
    for round in 0..5u64 {
        best_plain = best_plain.max(rate_window(&mut plain, &plain_feeds, 150, round));
        best_off = best_off.max(rate_window(&mut off, &off_feeds, 150, round));
        best_counters =
            best_counters.max(rate_window(&mut counters, &counter_feeds, 150, round));
    }
    std::hint::black_box((plain.peek("c_drain0"), off.peek("c_drain0"), counters.peek("c_drain0")));
    TraceOverheadReport {
        scenario: "4x4 output-stationary GEMM array (MNK-SST)".into(),
        plain_cycles_per_sec: best_plain,
        trace_off_cycles_per_sec: best_off,
        trace_off_overhead_pct: (best_plain / best_off - 1.0) * 100.0,
        counters_cycles_per_sec: best_counters,
        counters_overhead_pct: (best_plain / best_counters - 1.0) * 100.0,
    }
}

/// A/B comparison: no faults attached vs one armed-but-never-firing
/// transient flip. Interleaved best-of windows, like the trace benchmark.
fn bench_fault_overhead() -> FaultOverheadReport {
    use tensorlib::hw::fault::FaultSpec;

    let flat = os_array_4x4();
    let acc_net = flat
        .regs()
        .iter()
        .map(|r| flat.nets()[r.target].name.clone())
        .find(|n| n.ends_with("_acc"))
        .expect("array has accumulator registers");
    let feed_names: Vec<String> = (0..4)
        .map(|i| format!("a_feed{i}"))
        .chain((0..4).map(|j| format!("b_feed{j}")))
        .collect();
    let mut off = Interpreter::new(flat.clone());
    let mut armed = Interpreter::new(flat);
    armed
        .attach_faults(&[FaultSpec::flip(acc_net, 0, u64::MAX)])
        .expect("armed flip resolves");
    let off_feeds = warm_up(&mut off, &feed_names);
    let armed_feeds = warm_up(&mut armed, &feed_names);
    let (mut best_off, mut best_armed) = (0.0f64, 0.0f64);
    for round in 0..5u64 {
        best_off = best_off.max(rate_window(&mut off, &off_feeds, 150, round));
        best_armed = best_armed.max(rate_window(&mut armed, &armed_feeds, 150, round));
    }
    std::hint::black_box((off.peek("c_drain0"), armed.peek("c_drain0")));
    FaultOverheadReport {
        scenario: "4x4 output-stationary GEMM array (MNK-SST)".into(),
        off_cycles_per_sec: best_off,
        armed_cycles_per_sec: best_armed,
        armed_overhead_pct: (best_off / best_armed - 1.0) * 100.0,
    }
}

/// Measures the observability hooks both ways: the nanosecond price of one
/// disabled hook (a tight microbenchmark), and a disabled-vs-enabled A/B of
/// a serial GEMM-16 sweep. Runs are interleaved best-of-3, and the enabled
/// runs double as a determinism check: recording must not change results.
fn bench_obs_overhead() -> ObsOverheadReport {
    tensorlib_obs::disable();
    let iters = 4_000_000u64;
    let start = Instant::now();
    for _ in 0..iters {
        let guard = tensorlib_obs::span("perfgate.noop");
        std::hint::black_box(&guard);
    }
    let disabled_span_ns = start.elapsed().as_nanos() as f64 / iters as f64;

    let kernel = workloads::gemm(16, 16, 16);
    let opts = ExploreOptions {
        workers: 1,
        ..ExploreOptions::default()
    };
    let mut disabled_best = f64::INFINITY;
    let mut enabled_best = f64::INFINITY;
    let mut spans_recorded = 0usize;
    for _ in 0..3 {
        let start = Instant::now();
        let plain = explore(&kernel, &opts);
        disabled_best = disabled_best.min(start.elapsed().as_secs_f64());

        tensorlib_obs::enable();
        let start = Instant::now();
        let profiled = explore(&kernel, &opts);
        enabled_best = enabled_best.min(start.elapsed().as_secs_f64());
        let session = tensorlib_obs::drain();
        tensorlib_obs::disable();
        spans_recorded = session.spans.len();

        assert_eq!(plain.len(), profiled.len(), "recording changed results");
        assert!(
            plain.iter().zip(&profiled).all(|(a, b)| {
                a.name == b.name && a.performance.total_cycles == b.performance.total_cycles
            }),
            "recording changed result ordering"
        );
    }
    let hook_seconds = spans_recorded as f64 * disabled_span_ns * 1e-9;
    ObsOverheadReport {
        scenario: "GEMM-16 serial sweep".into(),
        disabled_span_ns,
        spans_recorded,
        disabled_seconds: disabled_best,
        enabled_seconds: enabled_best,
        enabled_overhead_pct: (enabled_best / disabled_best - 1.0) * 100.0,
        disabled_estimated_overhead_pct: hook_seconds / disabled_best * 100.0,
    }
}

fn bench_explore(host_cores: usize) -> ExploreReport {
    let kernel = workloads::gemm(32, 32, 32);
    let serial_opts = ExploreOptions {
        workers: 1,
        ..ExploreOptions::default()
    };
    let start = Instant::now();
    let serial = explore(&kernel, &serial_opts);
    let serial_seconds = start.elapsed().as_secs_f64();

    let parallel_opts = ExploreOptions::default(); // workers = 0 → per-core
    let start = Instant::now();
    let parallel = explore(&kernel, &parallel_opts);
    let parallel_seconds = start.elapsed().as_secs_f64();

    assert_eq!(serial.len(), parallel.len(), "worker count changed results");
    assert!(
        serial
            .iter()
            .zip(&parallel)
            .all(|(a, b)| a.name == b.name && a.performance.total_cycles == b.performance.total_cycles),
        "worker count changed result ordering"
    );
    ExploreReport {
        workload: "GEMM-32 full sweep".into(),
        designs: serial.len(),
        serial_seconds,
        parallel_seconds,
        parallel_workers: host_cores,
        speedup: serial_seconds / parallel_seconds,
    }
}

fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..")
}

/// Extracts `"key": <number>` from a baseline report without a JSON parser.
fn extract_number(json: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let at = json.find(&needle)? + needle.len();
    let rest = json[at..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == 'E' || c == '+'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn main() {
    let mut args = std::env::args().skip(1);
    let mut baseline_path: Option<PathBuf> = None;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--check-against" => {
                let p = args.next().unwrap_or_else(|| {
                    eprintln!("--check-against requires a path");
                    std::process::exit(2);
                });
                baseline_path = Some(PathBuf::from(p));
            }
            other => {
                eprintln!("unknown argument {other:?} (usage: perfgate [--check-against <json>])");
                std::process::exit(2);
            }
        }
    }

    let host_cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let interpreter = bench_interpreter();
    let trace_overhead = bench_trace_overhead();
    let fault_overhead = bench_fault_overhead();
    let obs_overhead = bench_obs_overhead();
    let explore_report = bench_explore(host_cores);

    let mut table = TextTable::new(vec!["metric", "value"]);
    table.row(vec!["host cores".into(), host_cores.to_string()]);
    table.row(vec![
        "interp compiled (cycles/s)".into(),
        format!("{:.0}", interpreter.compiled_cycles_per_sec),
    ]);
    table.row(vec![
        "interp tree-walking (cycles/s)".into(),
        format!("{:.0}", interpreter.tree_walking_cycles_per_sec),
    ]);
    table.row(vec![
        "interp speedup".into(),
        format!("{:.2}x", interpreter.speedup),
    ]);
    table.row(vec![
        "trace off overhead".into(),
        format!("{:+.2}%", trace_overhead.trace_off_overhead_pct),
    ]);
    table.row(vec![
        "trace counters overhead".into(),
        format!("{:+.2}%", trace_overhead.counters_overhead_pct),
    ]);
    table.row(vec![
        "fault armed-idle overhead".into(),
        format!("{:+.2}%", fault_overhead.armed_overhead_pct),
    ]);
    table.row(vec![
        "obs disabled span (ns)".into(),
        format!("{:.2}", obs_overhead.disabled_span_ns),
    ]);
    table.row(vec![
        "obs disabled overhead (est)".into(),
        format!("{:+.3}%", obs_overhead.disabled_estimated_overhead_pct),
    ]);
    table.row(vec![
        "obs enabled overhead".into(),
        format!("{:+.2}%", obs_overhead.enabled_overhead_pct),
    ]);
    table.row(vec![
        "explore serial (s)".into(),
        format!("{:.2}", explore_report.serial_seconds),
    ]);
    table.row(vec![
        format!("explore {} workers (s)", explore_report.parallel_workers),
        format!("{:.2}", explore_report.parallel_seconds),
    ]);
    table.row(vec![
        "explore speedup".into(),
        format!("{:.2}x", explore_report.speedup),
    ]);
    println!("{table}");

    let report = PerfGateReport {
        schema_version: tensorlib_obs::SCHEMA_VERSION,
        host_cores,
        interpreter,
        trace_overhead,
        fault_overhead,
        obs_overhead,
        explore: explore_report,
    };
    let json = serde_json::to_string_pretty(&report).expect("serialize report");
    let out = repo_root().join("BENCH_perfgate.json");
    std::fs::write(&out, json + "\n").expect("write BENCH_perfgate.json");
    println!("wrote {}", out.display());

    let off_pct = report.trace_overhead.trace_off_overhead_pct;
    if off_pct >= TRACE_OFF_OVERHEAD_CEILING_PCT {
        eprintln!(
            "FAIL: disabled tracing costs {off_pct:.2}% (ceiling {TRACE_OFF_OVERHEAD_CEILING_PCT}%)"
        );
        std::process::exit(1);
    }
    println!(
        "trace-off gate passed: {off_pct:+.2}% (ceiling {TRACE_OFF_OVERHEAD_CEILING_PCT}%)"
    );

    let armed_pct = report.fault_overhead.armed_overhead_pct;
    if armed_pct >= FAULT_ARMED_OVERHEAD_CEILING_PCT {
        eprintln!(
            "FAIL: armed-but-idle fault layer costs {armed_pct:.2}% (ceiling {FAULT_ARMED_OVERHEAD_CEILING_PCT}%)"
        );
        std::process::exit(1);
    }
    println!(
        "fault-armed gate passed: {armed_pct:+.2}% (ceiling {FAULT_ARMED_OVERHEAD_CEILING_PCT}%)"
    );

    let obs_pct = report.obs_overhead.disabled_estimated_overhead_pct;
    if obs_pct >= OBS_DISABLED_OVERHEAD_CEILING_PCT {
        eprintln!(
            "FAIL: disabled observability hooks cost ~{obs_pct:.3}% (ceiling {OBS_DISABLED_OVERHEAD_CEILING_PCT}%)"
        );
        std::process::exit(1);
    }
    println!(
        "obs-disabled gate passed: ~{obs_pct:+.3}% (ceiling {OBS_DISABLED_OVERHEAD_CEILING_PCT}%)"
    );

    if let Some(path) = baseline_path {
        let Ok(baseline) = std::fs::read_to_string(&path) else {
            eprintln!(
                "warning: baseline {} not readable; skipping regression gate",
                path.display()
            );
            return;
        };
        // Never compare against a report written by a *newer* schema — the
        // numbers may not mean what this binary thinks they mean. A baseline
        // predating schema stamps is accepted as version 0.
        match tensorlib_obs::check_schema_version(&baseline) {
            Ok(_) | Err(tensorlib_obs::SchemaError::Missing) => {}
            Err(err @ tensorlib_obs::SchemaError::TooNew { .. }) => {
                eprintln!("FAIL: baseline {}: {err}", path.display());
                std::process::exit(1);
            }
        }
        let Some(base_rate) = extract_number(&baseline, "compiled_cycles_per_sec") else {
            eprintln!(
                "warning: baseline {} has no compiled_cycles_per_sec; skipping regression gate",
                path.display()
            );
            return;
        };
        let current = report.interpreter.compiled_cycles_per_sec;
        let ratio = current / base_rate;
        println!(
            "regression gate: current {current:.0} vs baseline {base_rate:.0} cycles/s ({:.1}% of baseline)",
            ratio * 100.0
        );
        if ratio < REGRESSION_FLOOR {
            eprintln!(
                "FAIL: compiled interpreter throughput regressed more than {:.0}% vs baseline",
                (1.0 - REGRESSION_FLOOR) * 100.0
            );
            std::process::exit(1);
        }
        println!("regression gate passed");
    }
}

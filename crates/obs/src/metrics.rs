//! Counters, gauges, and log2-bucketed histograms with deterministic merge.
//!
//! Every metric update in this crate lands in a thread-local shard (see
//! [`crate::span`]); shards are merged into a [`MetricsSnapshot`] with
//! commutative, associative operations only — counter *sum*, gauge *max*,
//! histogram *bucket-wise sum* — so the merged result is identical for any
//! worker count and any flush interleaving.

use std::collections::BTreeMap;

use serde::Serialize;

/// Number of histogram buckets: bucket 0 holds exact zeros, bucket `b ≥ 1`
/// holds values in `[2^(b-1), 2^b)`; bucket 64 holds everything from
/// `2^63` up (including `u64::MAX`).
pub const HIST_BUCKETS: usize = 65;

/// A log2-bucketed latency/size histogram.
///
/// # Examples
///
/// ```
/// use tensorlib_obs::Histogram;
/// let mut h = Histogram::new();
/// h.record(0);
/// h.record(1);
/// h.record(900);
/// assert_eq!(h.count, 3);
/// assert_eq!(h.max, 900);
/// assert!(h.p99() >= 900);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct Histogram {
    /// Bucket counts, [`HIST_BUCKETS`] long.
    pub buckets: Vec<u64>,
    /// Total values recorded.
    pub count: u64,
    /// Sum of recorded values (saturating).
    pub sum: u64,
    /// Smallest recorded value (`u64::MAX` while empty).
    pub min: u64,
    /// Largest recorded value (0 while empty).
    pub max: u64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

/// Maps a value to its log2 bucket: 0 → 0, v → `64 - leading_zeros(v)`.
#[inline]
pub(crate) fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        64 - v.leading_zeros() as usize
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            buckets: vec![0; HIST_BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Records one value.
    pub fn record(&mut self, v: u64) {
        self.buckets[bucket_index(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Merges `other` into `self` bucket-wise. Commutative and associative,
    /// so cross-worker merge order never changes the result.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Mean of recorded values (0.0 while empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Upper bound of the bucket holding quantile `q` in `[0, 1]` — an
    /// upper estimate within one power of two of the true quantile.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (b, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return bucket_upper_bound(b).min(self.max);
            }
        }
        self.max
    }

    /// The p50 upper estimate.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// The p99 upper estimate.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }
}

/// Largest value a bucket can hold: bucket 0 → 0, bucket b → `2^b - 1`.
fn bucket_upper_bound(b: usize) -> u64 {
    if b == 0 {
        0
    } else if b >= 64 {
        u64::MAX
    } else {
        (1u64 << b) - 1
    }
}

/// One thread's unmerged metric shard. All plain integers — updating a
/// metric is a `BTreeMap` upsert on memory only this thread touches.
#[derive(Debug, Default, Clone)]
pub(crate) struct LocalMetrics {
    pub counters: BTreeMap<&'static str, u64>,
    pub gauges: BTreeMap<&'static str, u64>,
    pub hists: BTreeMap<&'static str, Histogram>,
}

impl LocalMetrics {
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.hists.is_empty()
    }
}

/// The merged, worker-count-independent view of all metric shards.
#[derive(Debug, Default, Clone, PartialEq, Serialize)]
pub struct MetricsSnapshot {
    /// Monotonic event counts, summed across threads.
    pub counters: BTreeMap<String, u64>,
    /// High-watermark gauges, maxed across threads.
    pub gauges: BTreeMap<String, u64>,
    /// Histograms, bucket-wise summed across threads.
    pub histograms: BTreeMap<String, Histogram>,
}

impl MetricsSnapshot {
    /// Merges one thread shard into the snapshot.
    pub(crate) fn absorb(&mut self, shard: &LocalMetrics) {
        for (k, v) in &shard.counters {
            *self.counters.entry((*k).to_string()).or_insert(0) += v;
        }
        for (k, v) in &shard.gauges {
            let e = self.gauges.entry((*k).to_string()).or_insert(0);
            *e = (*e).max(*v);
        }
        for (k, h) in &shard.hists {
            self.histograms
                .entry((*k).to_string())
                .or_default()
                .merge(h);
        }
    }

    /// Merges another snapshot (same commutative semantics as
    /// [`MetricsSnapshot::absorb`]).
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, v) in &other.gauges {
            let e = self.gauges.entry(k.clone()).or_insert(0);
            *e = (*e).max(*v);
        }
        for (k, h) in &other.histograms {
            self.histograms
                .entry(k.clone())
                .or_default()
                .merge(h);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The log2 bucket boundaries, pinned exactly: 0 is its own bucket and
    /// every power of two starts a new one.
    #[test]
    fn bucket_boundaries_are_exact_powers_of_two() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(7), 3);
        assert_eq!(bucket_index(8), 4);
        for b in 1..64usize {
            let lo = 1u64 << (b - 1);
            let hi = (1u64 << b) - 1;
            assert_eq!(bucket_index(lo), b, "lower boundary of bucket {b}");
            assert_eq!(bucket_index(hi), b, "upper boundary of bucket {b}");
        }
        assert_eq!(bucket_index(1 << 63), 64);
        assert_eq!(bucket_index(u64::MAX), 64);
        assert!(bucket_index(u64::MAX) < HIST_BUCKETS);
    }

    #[test]
    fn histogram_records_and_summarizes() {
        let mut h = Histogram::new();
        for v in [0u64, 1, 1, 5, 1000] {
            h.record(v);
        }
        assert_eq!(h.count, 5);
        assert_eq!(h.sum, 1007);
        assert_eq!(h.min, 0);
        assert_eq!(h.max, 1000);
        assert_eq!(h.buckets[0], 1);
        assert_eq!(h.buckets[1], 2);
        assert_eq!(h.buckets[3], 1); // 5 ∈ [4, 8)
        assert_eq!(h.buckets[10], 1); // 1000 ∈ [512, 1024)
        // Quantile estimates stay within the recorded range.
        assert!(h.p50() <= h.max);
        assert!(h.p99() <= h.max);
        assert!(h.p99() >= h.p50());
        assert!(h.mean() > 0.0);
    }

    /// Merge is commutative and associative: any split of the same records
    /// across shards produces the identical merged histogram.
    #[test]
    fn histogram_merge_is_deterministic_across_shardings() {
        let values: Vec<u64> = (0..500).map(|i| (i * i * 31) % 10_000).collect();
        let mut whole = Histogram::new();
        for &v in &values {
            whole.record(v);
        }
        for shards in [1usize, 2, 3, 7] {
            let mut parts: Vec<Histogram> = vec![Histogram::new(); shards];
            for (i, &v) in values.iter().enumerate() {
                parts[i % shards].record(v);
            }
            // Merge forwards and backwards; both must equal the unsharded run.
            let mut fwd = Histogram::new();
            for p in &parts {
                fwd.merge(p);
            }
            let mut rev = Histogram::new();
            for p in parts.iter().rev() {
                rev.merge(p);
            }
            assert_eq!(fwd, whole, "{shards} shards, forward merge");
            assert_eq!(rev, whole, "{shards} shards, reverse merge");
        }
    }

    #[test]
    fn snapshot_merge_sums_counters_and_maxes_gauges() {
        let mut a = MetricsSnapshot::default();
        let mut shard1 = LocalMetrics::default();
        shard1.counters.insert("n", 3);
        shard1.gauges.insert("hw", 10);
        let mut shard2 = LocalMetrics::default();
        shard2.counters.insert("n", 4);
        shard2.gauges.insert("hw", 7);
        a.absorb(&shard1);
        a.absorb(&shard2);
        let mut b = MetricsSnapshot::default();
        b.absorb(&shard2);
        b.absorb(&shard1);
        assert_eq!(a, b, "absorb order must not matter");
        assert_eq!(a.counters["n"], 7);
        assert_eq!(a.gauges["hw"], 10);
    }
}

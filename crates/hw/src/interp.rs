//! Netlist elaboration and cycle-level interpretation.
//!
//! [`elaborate`] flattens a module hierarchy into a single netlist (child
//! instances inlined, ports spliced onto parent nets, memory banks kept as
//! behavioural primitives). [`Interpreter`] then executes the flat netlist
//! cycle by cycle: combinational settle in topological order, registered
//! state commits on [`Interpreter::step`].
//!
//! This is how the test suite proves the generated RTL itself computes the
//! kernel — e.g. driving an output-stationary GEMM array's feed ports with
//! the skewed schedule and reading the drained results (see
//! `tests/netlist_execution.rs`).

use std::collections::HashMap;

use crate::mem::MemBank;
use crate::netlist::{BinOp, Dir, Expr, Module, Net, NetId, RegDef};

/// A memory bank instance surviving elaboration as a behavioural primitive.
#[derive(Debug, Clone)]
pub struct FlatBank {
    /// The bank template.
    pub spec: MemBank,
    /// Flat net carrying the stream enable.
    pub en: NetId,
    /// Flat net carrying the write enable.
    pub wen: NetId,
    /// Flat net carrying write data.
    pub wdata: NetId,
    /// Flat net carrying read data (driven by the bank).
    pub rdata: NetId,
    /// Double-buffer select net, if the bank is double-buffered.
    pub buf_sel: Option<NetId>,
}

/// A fully elaborated (flattened) netlist.
#[derive(Debug, Clone)]
pub struct FlatDesign {
    nets: Vec<Net>,
    ports: Vec<(NetId, Dir)>,
    assigns: Vec<(NetId, Expr)>,
    regs: Vec<RegDef>,
    banks: Vec<FlatBank>,
    topo: Vec<usize>,
}

impl FlatDesign {
    /// All flat nets (names are hierarchical, `inst.inst.net`).
    pub fn nets(&self) -> &[Net] {
        &self.nets
    }

    /// Top-level ports.
    pub fn ports(&self) -> &[(NetId, Dir)] {
        &self.ports
    }

    /// The flat net id of the top-level port named `name`.
    pub fn port(&self, name: &str) -> Option<NetId> {
        self.ports
            .iter()
            .find(|(id, _)| self.nets[*id].name == name)
            .map(|&(id, _)| id)
    }

    /// Total registers after flattening.
    pub fn reg_count(&self) -> usize {
        self.regs.len()
    }

    /// Total behavioural banks after flattening.
    pub fn bank_count(&self) -> usize {
        self.banks.len()
    }
}

/// Elaboration failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ElaborateError {
    /// An instance references a module that is neither in `modules` nor a
    /// bank template.
    UnknownModule(String),
    /// An instance connection names a port the child does not have.
    UnknownPort {
        /// The child module.
        module: String,
        /// The missing port.
        port: String,
    },
}

impl std::fmt::Display for ElaborateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ElaborateError::UnknownModule(m) => write!(f, "unknown module {m:?}"),
            ElaborateError::UnknownPort { module, port } => {
                write!(f, "module {module:?} has no port {port:?}")
            }
        }
    }
}

impl std::error::Error for ElaborateError {}

/// Flattens the hierarchy rooted at `top` into a single netlist.
///
/// # Errors
///
/// Returns [`ElaborateError`] if an instance references an unknown module or
/// port.
///
/// # Examples
///
/// ```
/// use tensorlib_hw::interp::{elaborate, Interpreter};
/// use tensorlib_hw::netlist::{Expr, Module};
///
/// let mut m = Module::new("cnt");
/// let en = m.input("en", 1);
/// let q = m.output("q", 8);
/// m.reg(q, Expr::net(q).add(Expr::lit(1, 8)), Some(Expr::net(en)), 0);
/// let flat = elaborate(&[m], &[], "cnt")?;
/// let mut sim = Interpreter::new(flat);
/// sim.poke("en", 1);
/// sim.step();
/// sim.step();
/// assert_eq!(sim.peek("q"), 2);
/// # Ok::<(), tensorlib_hw::interp::ElaborateError>(())
/// ```
pub fn elaborate(
    modules: &[Module],
    banks: &[MemBank],
    top: &str,
) -> Result<FlatDesign, ElaborateError> {
    let by_name: HashMap<&str, &Module> = modules.iter().map(|m| (m.name(), m)).collect();
    let bank_by_name: HashMap<String, &MemBank> =
        banks.iter().map(|b| (b.module_name(), b)).collect();
    let top_module = by_name
        .get(top)
        .ok_or_else(|| ElaborateError::UnknownModule(top.to_string()))?;

    let mut flat = FlatDesign {
        nets: Vec::new(),
        ports: Vec::new(),
        assigns: Vec::new(),
        regs: Vec::new(),
        banks: Vec::new(),
        topo: Vec::new(),
    };

    // Top-level ports become flat nets first so `port()` lookups stay simple.
    let mut top_map: Vec<Option<NetId>> = vec![None; top_module.nets().len()];
    for (id, dir) in top_module.ports() {
        let flat_id = flat.nets.len();
        flat.nets.push(top_module.nets()[*id].clone());
        flat.ports.push((flat_id, *dir));
        top_map[*id] = Some(flat_id);
    }
    inline(
        top_module,
        "",
        top_map,
        &by_name,
        &bank_by_name,
        &mut flat,
    )?;

    // Topological order over combinational assigns.
    flat.topo = topo_order(&flat);
    Ok(flat)
}

/// Convenience: elaborates a complete [`crate::design::AcceleratorDesign`]
/// from the given top module (usually [`crate::design::AcceleratorDesign::top`]
/// or the array module).
pub fn elaborate_design(
    design: &crate::design::AcceleratorDesign,
    top: &str,
) -> Result<FlatDesign, ElaborateError> {
    elaborate(design.modules(), design.mem_banks(), top)
}

fn inline(
    module: &Module,
    prefix: &str,
    // For each child-local net: the flat id it maps to (ports pre-bound by
    // the parent), or None to allocate fresh.
    mut map: Vec<Option<NetId>>,
    by_name: &HashMap<&str, &Module>,
    bank_by_name: &HashMap<String, &MemBank>,
    flat: &mut FlatDesign,
) -> Result<(), ElaborateError> {
    // Allocate fresh flat nets for everything unbound.
    for (id, net) in module.nets().iter().enumerate() {
        if map[id].is_none() {
            let flat_id = flat.nets.len();
            flat.nets.push(Net {
                name: format!("{prefix}{}", net.name),
                width: net.width,
            });
            map[id] = Some(flat_id);
        }
    }
    let remap = |id: NetId| map[id].expect("all nets mapped");
    for (target, expr) in module.assigns() {
        flat.assigns.push((remap(*target), rewrite(expr, &map)));
    }
    for r in module.regs() {
        flat.regs.push(RegDef {
            target: remap(r.target),
            next: rewrite(&r.next, &map),
            enable: r.enable.as_ref().map(|e| rewrite(e, &map)),
            init: r.init,
        });
    }
    for inst in module.instances() {
        let child_prefix = format!("{prefix}{}.", inst.name);
        if let Some(bank) = bank_by_name.get(&inst.module) {
            let find = |port: &str| -> Result<Option<NetId>, ElaborateError> {
                Ok(inst
                    .connections
                    .iter()
                    .find(|(p, _)| p == port)
                    .map(|(_, n)| remap(*n)))
            };
            let req = |port: &str| -> Result<NetId, ElaborateError> {
                find(port)?.ok_or_else(|| ElaborateError::UnknownPort {
                    module: inst.module.clone(),
                    port: port.to_string(),
                })
            };
            flat.banks.push(FlatBank {
                spec: (*bank).clone(),
                en: req("en")?,
                wen: req("wen")?,
                wdata: req("wdata")?,
                rdata: req("rdata")?,
                buf_sel: find("buf_sel")?,
            });
            continue;
        }
        let child = by_name
            .get(inst.module.as_str())
            .ok_or_else(|| ElaborateError::UnknownModule(inst.module.clone()))?;
        let mut child_map: Vec<Option<NetId>> = vec![None; child.nets().len()];
        for (port, parent_net) in &inst.connections {
            let child_net = child
                .ports()
                .iter()
                .find(|(id, _)| child.nets()[*id].name == *port)
                .map(|&(id, _)| id)
                .ok_or_else(|| ElaborateError::UnknownPort {
                    module: inst.module.clone(),
                    port: port.clone(),
                })?;
            child_map[child_net] = Some(remap(*parent_net));
        }
        inline(child, &child_prefix, child_map, by_name, bank_by_name, flat)?;
    }
    Ok(())
}

fn rewrite(expr: &Expr, map: &[Option<NetId>]) -> Expr {
    match expr {
        Expr::Const { value, width } => Expr::Const {
            value: *value,
            width: *width,
        },
        Expr::Net(id) => Expr::Net(map[*id].expect("net mapped")),
        Expr::Not(e) => Expr::Not(Box::new(rewrite(e, map))),
        Expr::Bin(op, a, b) => {
            Expr::Bin(*op, Box::new(rewrite(a, map)), Box::new(rewrite(b, map)))
        }
        Expr::Mux {
            sel,
            on_true,
            on_false,
        } => Expr::Mux {
            sel: Box::new(rewrite(sel, map)),
            on_true: Box::new(rewrite(on_true, map)),
            on_false: Box::new(rewrite(on_false, map)),
        },
        Expr::Resize(e, w) => Expr::Resize(Box::new(rewrite(e, map)), *w),
        Expr::SignExtend(e, w) => Expr::SignExtend(Box::new(rewrite(e, map)), *w),
    }
}

fn topo_order(flat: &FlatDesign) -> Vec<usize> {
    // Map: net -> assign index driving it.
    let mut driver: HashMap<NetId, usize> = HashMap::new();
    for (i, (target, _)) in flat.assigns.iter().enumerate() {
        driver.insert(*target, i);
    }
    let mut order = Vec::with_capacity(flat.assigns.len());
    let mut state = vec![0u8; flat.assigns.len()];
    fn visit(
        i: usize,
        flat: &FlatDesign,
        driver: &HashMap<NetId, usize>,
        state: &mut [u8],
        order: &mut Vec<usize>,
    ) {
        if state[i] != 0 {
            assert!(state[i] == 2, "combinational cycle (validated earlier)");
            return;
        }
        state[i] = 1;
        let mut reads = Vec::new();
        flat.assigns[i].1.collect_reads(&mut reads);
        for r in reads {
            if let Some(&j) = driver.get(&r) {
                if state[j] == 0 {
                    visit(j, flat, driver, state, order);
                }
            }
        }
        state[i] = 2;
        order.push(i);
    }
    for i in 0..flat.assigns.len() {
        visit(i, flat, &driver, &mut state, &mut order);
    }
    order
}

fn mask(value: u64, width: u32) -> u64 {
    if width >= 64 {
        value
    } else {
        value & ((1u64 << width) - 1)
    }
}

fn sign_extend(value: u64, from: u32, to: u32) -> u64 {
    let v = mask(value, from);
    if from == 0 || from >= 64 {
        return mask(v, to);
    }
    let sign_bit = 1u64 << (from - 1);
    let extended = if v & sign_bit != 0 {
        v | !((1u64 << from) - 1)
    } else {
        v
    };
    mask(extended, to)
}

/// Cycle-level interpreter over a [`FlatDesign`].
///
/// Drive inputs with [`Interpreter::poke`], advance one clock with
/// [`Interpreter::step`], observe with [`Interpreter::peek`]. Combinational
/// logic settles automatically before every read and commit.
#[derive(Debug, Clone)]
pub struct Interpreter {
    flat: FlatDesign,
    values: Vec<u64>,
    bank_mem: Vec<Vec<u64>>,
    bank_raddr: Vec<u64>,
    bank_waddr: Vec<u64>,
    bank_rdata: Vec<u64>,
}

impl Interpreter {
    /// Creates an interpreter with all registers at their reset values and
    /// bank memories zeroed.
    pub fn new(flat: FlatDesign) -> Interpreter {
        let values = vec![0; flat.nets.len()];
        let bank_mem = flat
            .banks
            .iter()
            .map(|b| {
                let mult = if b.spec.is_double_buffered() { 2 } else { 1 };
                vec![0u64; (b.spec.words() * mult) as usize]
            })
            .collect();
        let n_banks = flat.banks.len();
        let mut interp = Interpreter {
            flat,
            values,
            bank_mem,
            bank_raddr: vec![0; n_banks],
            bank_waddr: vec![0; n_banks],
            bank_rdata: vec![0; n_banks],
        };
        for r in interp.flat.regs.clone() {
            interp.values[r.target] = mask(r.init, interp.flat.nets[r.target].width);
        }
        interp.settle();
        interp
    }

    /// Sets a top-level input port.
    ///
    /// # Panics
    ///
    /// Panics if no such input port exists.
    pub fn poke(&mut self, port: &str, value: u64) {
        let id = self
            .flat
            .port(port)
            .unwrap_or_else(|| panic!("no port {port:?}"));
        self.values[id] = mask(value, self.flat.nets[id].width);
        self.settle();
    }

    /// Reads any net by (hierarchical) name after settling.
    ///
    /// # Panics
    ///
    /// Panics if no such net exists.
    pub fn peek(&self, name: &str) -> u64 {
        let id = self
            .flat
            .nets
            .iter()
            .position(|n| n.name == name)
            .unwrap_or_else(|| panic!("no net {name:?}"));
        self.values[id]
    }

    /// Reads a net as a signed value of its declared width.
    pub fn peek_signed(&self, name: &str) -> i64 {
        let id = self
            .flat
            .nets
            .iter()
            .position(|n| n.name == name)
            .unwrap_or_else(|| panic!("no net {name:?}"));
        let w = self.flat.nets[id].width;
        sign_extend(self.values[id], w, 64) as i64
    }

    /// Preloads a bank's memory (test convenience; index by elaboration
    /// order).
    ///
    /// # Panics
    ///
    /// Panics if the bank index or address is out of range.
    pub fn load_bank(&mut self, bank: usize, words: &[u64]) {
        for (i, &w) in words.iter().enumerate() {
            self.bank_mem[bank][i] = w;
        }
    }

    /// Number of behavioural banks.
    pub fn bank_count(&self) -> usize {
        self.flat.banks.len()
    }

    /// Settles combinational logic (topological evaluation).
    fn settle(&mut self) {
        // Bank read data drives its net.
        for (i, b) in self.flat.banks.iter().enumerate() {
            self.values[b.rdata] = mask(self.bank_rdata[i], self.flat.nets[b.rdata].width);
        }
        for &i in &self.flat.topo.clone() {
            let (target, expr) = &self.flat.assigns[i];
            let w = self.flat.nets[*target].width;
            self.values[*target] = mask(self.eval(expr), w);
        }
    }

    fn eval(&self, expr: &Expr) -> u64 {
        match expr {
            Expr::Const { value, width } => mask(*value, *width),
            Expr::Net(id) => self.values[*id],
            Expr::Not(e) => {
                let w = e.width(&self.flat.nets);
                mask(!self.eval(e), w)
            }
            Expr::Bin(op, a, b) => {
                let wa = a.width(&self.flat.nets);
                let wb = b.width(&self.flat.nets);
                let w = wa.max(wb);
                let va = self.eval(a);
                let vb = self.eval(b);
                match op {
                    BinOp::Add => mask(va.wrapping_add(vb), w),
                    BinOp::Sub => mask(va.wrapping_sub(vb), w),
                    BinOp::Mul => mask(va.wrapping_mul(vb), w),
                    BinOp::And => va & vb,
                    BinOp::Or => va | vb,
                    BinOp::Xor => va ^ vb,
                    BinOp::Eq => (va == vb) as u64,
                    BinOp::Lt => (va < vb) as u64,
                }
            }
            Expr::Mux {
                sel,
                on_true,
                on_false,
            } => {
                if self.eval(sel) & 1 == 1 {
                    self.eval(on_true)
                } else {
                    self.eval(on_false)
                }
            }
            Expr::Resize(e, w) => mask(self.eval(e), *w),
            Expr::SignExtend(e, w) => sign_extend(self.eval(e), e.width(&self.flat.nets), *w),
        }
    }

    /// Advances one clock: samples every register's next value and every
    /// bank's port activity, commits them simultaneously, and resettles.
    pub fn step(&mut self) {
        self.settle();
        // Sample.
        let mut next_regs = Vec::with_capacity(self.flat.regs.len());
        for r in &self.flat.regs {
            let enabled = r.enable.as_ref().is_none_or(|e| self.eval(e) & 1 == 1);
            let w = self.flat.nets[r.target].width;
            next_regs.push(if enabled {
                Some(mask(self.eval(&r.next), w))
            } else {
                None
            });
        }
        #[derive(Clone, Copy)]
        struct BankOp {
            read: bool,
            write: bool,
            wdata: u64,
            buf_sel: u64,
        }
        let bank_ops: Vec<BankOp> = self
            .flat
            .banks
            .iter()
            .map(|b| BankOp {
                read: self.values[b.en] & 1 == 1,
                write: self.values[b.wen] & 1 == 1,
                wdata: self.values[b.wdata],
                buf_sel: b.buf_sel.map_or(0, |n| self.values[n] & 1),
            })
            .collect();
        // Commit registers.
        for (r, next) in self.flat.regs.clone().iter().zip(next_regs) {
            if let Some(v) = next {
                self.values[r.target] = v;
            }
        }
        // Commit banks: read from the inactive buffer, write to the active
        // one (matching the behavioural Verilog template).
        for (i, (b, op)) in self.flat.banks.clone().iter().zip(bank_ops).enumerate() {
            let words = b.spec.words();
            if op.read {
                let base = if b.spec.is_double_buffered() {
                    (1 - op.buf_sel) * words
                } else {
                    0
                };
                let addr = (base + self.bank_raddr[i] % words) as usize;
                self.bank_rdata[i] = self.bank_mem[i][addr];
                self.bank_raddr[i] = (self.bank_raddr[i] + 1) % words;
            }
            if op.write {
                let base = if b.spec.is_double_buffered() {
                    op.buf_sel * words
                } else {
                    0
                };
                let addr = (base + self.bank_waddr[i] % words) as usize;
                self.bank_mem[i][addr] = mask(op.wdata, b.spec.width());
                self.bank_waddr[i] = (self.bank_waddr[i] + 1) % words;
            }
        }
        self.settle();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pe::{build_pe, PeIoKind, PeSpec, PeTensorSpec};
    use tensorlib_ir::DataType;

    fn as_u16(v: i64) -> u64 {
        (v as u64) & 0xFFFF
    }

    #[test]
    fn counter_counts() {
        let mut m = Module::new("cnt");
        let en = m.input("en", 1);
        let q = m.output("q", 8);
        m.reg(q, Expr::net(q).add(Expr::lit(1, 8)), Some(Expr::net(en)), 0);
        let mut sim = Interpreter::new(elaborate(&[m], &[], "cnt").unwrap());
        sim.poke("en", 1);
        for _ in 0..5 {
            sim.step();
        }
        assert_eq!(sim.peek("q"), 5);
        sim.poke("en", 0);
        sim.step();
        assert_eq!(sim.peek("q"), 5, "enable gates the register");
    }

    #[test]
    fn sign_extension_semantics() {
        assert_eq!(sign_extend(0xFFFF, 16, 32), 0xFFFF_FFFF);
        assert_eq!(sign_extend(0x7FFF, 16, 32), 0x7FFF);
        assert_eq!(sign_extend(0xFFFF_FFFF, 32, 16), 0xFFFF);
        assert_eq!(sign_extend(5, 16, 64) as i64, 5);
        assert_eq!(sign_extend(as_u16(-5), 16, 64) as i64, -5);
    }

    #[test]
    fn hierarchy_flattens_and_runs() {
        // child: y = a + b; parent instantiates it twice in a chain.
        let mut child = Module::new("add1");
        let a = child.input("a", 8);
        let y = child.output("y", 8);
        child.assign(y, Expr::net(a).add(Expr::lit(1, 8)));
        let mut parent = Module::new("top");
        let x = parent.input("x", 8);
        let mid = parent.net("mid", 8);
        let out = parent.output("out", 8);
        parent.instance("add1", "u0", vec![("a".into(), x), ("y".into(), mid)]);
        parent.instance("add1", "u1", vec![("a".into(), mid), ("y".into(), out)]);
        let flat = elaborate(&[child, parent], &[], "top").unwrap();
        assert_eq!(flat.reg_count(), 0);
        let mut sim = Interpreter::new(flat);
        sim.poke("x", 40);
        assert_eq!(sim.peek("out"), 42);
    }

    #[test]
    fn unknown_module_and_port_errors() {
        let mut parent = Module::new("top");
        let x = parent.input("x", 8);
        parent.instance("ghost", "u0", vec![("a".into(), x)]);
        assert!(matches!(
            elaborate(&[parent], &[], "top").unwrap_err(),
            ElaborateError::UnknownModule(_)
        ));
        let mut child = Module::new("c");
        let _ = child.input("a", 8);
        let mut parent = Module::new("top");
        let x = parent.input("x", 8);
        parent.instance("c", "u0", vec![("zz".into(), x)]);
        let err = elaborate(&[child, parent], &[], "top").unwrap_err();
        assert!(matches!(err, ElaborateError::UnknownPort { .. }));
        assert!(err.to_string().contains("zz"));
    }

    #[test]
    fn systolic_pe_computes_and_forwards() {
        // Weight-stationary-ish PE: a systolic, b stationary, c systolic out.
        let spec = PeSpec {
            name: "pe".into(),
            datatype: DataType::Int16,
            tensors: vec![
                PeTensorSpec {
                    tensor: "a".into(),
                    kind: PeIoKind::SystolicIn,
                    delay: 1,
                },
                PeTensorSpec {
                    tensor: "b".into(),
                    kind: PeIoKind::StationaryIn,
                    delay: 1,
                },
                PeTensorSpec {
                    tensor: "c".into(),
                    kind: PeIoKind::SystolicOut,
                    delay: 1,
                },
            ],
        };
        let pe = build_pe(&spec);
        let mut sim = Interpreter::new(elaborate(&[pe], &[], "pe").unwrap());
        // Load weight -3 into buf1 (phase 0 loads the inactive buffer).
        sim.poke("load_en", 1);
        sim.poke("phase", 0);
        sim.poke("b_in", as_u16(-3));
        sim.step();
        sim.poke("load_en", 0);
        // Compute with phase 1 (buf1 active): c_out' = c_in + a_in * (-3).
        sim.poke("phase", 1);
        sim.poke("en", 1);
        sim.poke("a_in", as_u16(7));
        sim.poke("c_in", as_u16(100));
        sim.step();
        assert_eq!(sim.peek_signed("c_out"), 100 + 7 * -3);
        // a is forwarded with one cycle of delay.
        assert_eq!(sim.peek_signed("a_out"), 7);
    }

    #[test]
    fn stationary_output_pe_accumulates_and_drains() {
        let spec = PeSpec {
            name: "pe".into(),
            datatype: DataType::Int16,
            tensors: vec![
                PeTensorSpec {
                    tensor: "a".into(),
                    kind: PeIoKind::DirectIn,
                    delay: 1,
                },
                PeTensorSpec {
                    tensor: "b".into(),
                    kind: PeIoKind::DirectIn,
                    delay: 1,
                },
                PeTensorSpec {
                    tensor: "c".into(),
                    kind: PeIoKind::StationaryOut,
                    delay: 1,
                },
            ],
        };
        let pe = build_pe(&spec);
        let mut sim = Interpreter::new(elaborate(&[pe], &[], "pe").unwrap());
        sim.poke("en", 1);
        sim.poke("swap", 0);
        sim.poke("drain_en", 0);
        sim.poke("c_in", 0);
        // Accumulate 2*3 + 4*5 + (-1)*6. First product enters via swap pulse.
        sim.poke("swap", 1);
        sim.poke("a_in", as_u16(2));
        sim.poke("b_in", as_u16(3));
        sim.step();
        sim.poke("swap", 0);
        sim.poke("a_in", as_u16(4));
        sim.poke("b_in", as_u16(5));
        sim.step();
        sim.poke("a_in", as_u16(-1));
        sim.poke("b_in", as_u16(6));
        sim.step();
        // Swap captures the finished accumulation into the transfer register.
        sim.poke("swap", 1);
        sim.poke("a_in", 0);
        sim.poke("b_in", 0);
        sim.step();
        assert_eq!(sim.peek_signed("c_out"), 2 * 3 + 4 * 5 - 6);
        // Drain shifts the chain input through.
        sim.poke("swap", 0);
        sim.poke("drain_en", 1);
        sim.poke("c_in", as_u16(777));
        sim.step();
        assert_eq!(sim.peek_signed("c_out"), 777);
    }

    #[test]
    fn reduction_tree_sums_with_pipeline_latency() {
        let (tree, _, _) = crate::array::build_reduce_tree("t4", 4, 32);
        let mut sim = Interpreter::new(elaborate(&[tree], &[], "t4").unwrap());
        for (i, v) in [10u64, 20, 30, 40].iter().enumerate() {
            sim.poke(&format!("in{i}"), *v);
        }
        // Two pipeline levels for 4 inputs.
        sim.step();
        sim.step();
        assert_eq!(sim.peek("sum"), 100);
    }

    #[test]
    fn bank_streams_and_captures() {
        let bank = MemBank::new(8, 16, false);
        let mut top = Module::new("top");
        let en = top.input("en", 1);
        let wen = top.input("wen", 1);
        let wdata = top.input("wdata", 16);
        let rdata = top.output("rdata", 16);
        top.instance(
            bank.module_name(),
            "b0",
            vec![
                ("en".into(), en),
                ("wen".into(), wen),
                ("wdata".into(), wdata),
                ("rdata".into(), rdata),
            ],
        );
        let flat = elaborate(&[top], &[bank], "top").unwrap();
        assert_eq!(flat.bank_count(), 1);
        let mut sim = Interpreter::new(flat);
        // Write 3 values.
        sim.poke("wen", 1);
        for v in [11u64, 22, 33] {
            sim.poke("wdata", v);
            sim.step();
        }
        sim.poke("wen", 0);
        // Stream them back.
        sim.poke("en", 1);
        sim.step();
        assert_eq!(sim.peek("rdata"), 11);
        sim.step();
        assert_eq!(sim.peek("rdata"), 22);
        sim.step();
        assert_eq!(sim.peek("rdata"), 33);
    }
}

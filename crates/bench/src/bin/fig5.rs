//! Regenerates **Figure 5**: normalized performance of representative
//! dataflows for each tensor algebra on a 16×16 array at 320 MHz with
//! 32 GB/s of scratchpad bandwidth.
//!
//! For every workload the paper's §VI-A named dataflows are resolved by name
//! (when realizable) and the best/worst implementable designs from a full
//! sweep are appended, so the figure's spread is visible even where the paper
//! names only a few points.

use serde::Serialize;
use tensorlib::dataflow::dse::{design_space, find_named, DseConfig};
use tensorlib::explore::{explore, ExploreOptions};
use tensorlib::hw::design::{generate, HwConfig};
use tensorlib::ir::{workloads, Kernel};
use tensorlib::sim::perf;
use tensorlib::SimConfig;
use tensorlib_bench::{dump_json, TextTable};

#[derive(Serialize)]
struct Fig5Point {
    workload: String,
    dataflow: String,
    letters: String,
    total_cycles: u64,
    normalized_perf: f64,
    source: &'static str,
}

fn main() {
    let cases: Vec<(&str, Kernel, Vec<&str>)> = vec![
        (
            "GEMM",
            workloads::gemm(256, 256, 256),
            vec!["MNK-MTM", "MNK-MMT", "MNK-SST", "MNK-STS", "MNK-TSS"],
        ),
        (
            "Batched-GEMV",
            workloads::batched_gemv(256, 256, 256),
            vec!["MNK-UTS", "MNK-UST", "MNK-UTM"],
        ),
        (
            "Conv2D-ResNet-L2",
            workloads::resnet_layer2(),
            vec![
                "KCX-SST", "KCX-STS", "XYP-MMT", "XYP-MST", "XYP-SMM", "KPX-TMM", "KPX-MST",
            ],
        ),
        (
            "Conv2D-ResNet-L5",
            workloads::resnet_layer5(),
            vec!["KCX-SST", "KCX-STS", "XYP-MMT", "XYP-MST", "XYP-SMM"],
        ),
        (
            "Depthwise-Conv",
            workloads::depthwise_conv(64, 56, 56, 3, 3),
            vec!["KPX-MMM", "XYP-MMM", "KYX-MST", "KYX-SST"],
        ),
        (
            "MTTKRP",
            workloads::mttkrp(64, 64, 64, 64),
            vec!["IKL-UBBB", "IJK-SBST", "IJK-TBSS"],
        ),
        (
            "TTMc",
            workloads::ttmc(32, 32, 32, 32, 32),
            vec!["IJK-BBBU", "ILM-SSBT", "ILM-TSBS"],
        ),
    ];

    let hw = HwConfig::default();
    let sim = SimConfig::paper_default();
    let dse = DseConfig {
        max_designs: 3000,
        ..DseConfig::default()
    };
    let mut all_points = Vec::new();

    println!("Figure 5 — normalized performance of dataflows per tensor algebra");
    println!("(16x16 PEs, 320 MHz, 32 GB/s array<->scratchpad)\n");

    for (label, kernel, names) in cases {
        let mut table = TextTable::new(vec!["dataflow", "cycles", "perf vs peak"]);
        for name in names {
            match find_named(&kernel, name, &dse) {
                Ok(df) => match generate(&df, &hw) {
                    Ok(design) => {
                        let r = perf::estimate(&design, &kernel, &sim);
                        table.row(vec![
                            name.to_string(),
                            r.total_cycles.to_string(),
                            format!("{:.3}", r.normalized_perf),
                        ]);
                        all_points.push(Fig5Point {
                            workload: label.to_string(),
                            dataflow: name.to_string(),
                            letters: df.letters(),
                            total_cycles: r.total_cycles,
                            normalized_perf: r.normalized_perf,
                            source: "named",
                        });
                    }
                    Err(e) => table.row(vec![
                        name.to_string(),
                        "-".into(),
                        format!("(unwireable: {e})"),
                    ]),
                },
                Err(_) => table.row(vec![
                    name.to_string(),
                    "-".into(),
                    "(no such dataflow for this kernel)".into(),
                ]),
            }
        }
        // Sweep extremes.
        let sweep = explore(
            &kernel,
            &ExploreOptions {
                dse: dse.clone(),
                hw,
                sim,
                synthesis_activity: true,
                ..ExploreOptions::default()
            },
        );
        if let (Some(best), Some(worst)) = (sweep.first(), sweep.last()) {
            for (point, tag) in [(best, "best of sweep"), (worst, "worst of sweep")] {
                table.row(vec![
                    format!("{} ({tag})", point.name),
                    point.performance.total_cycles.to_string(),
                    format!("{:.3}", point.performance.normalized_perf),
                ]);
                all_points.push(Fig5Point {
                    workload: label.to_string(),
                    dataflow: point.name.clone(),
                    letters: point.letters.clone(),
                    total_cycles: point.performance.total_cycles,
                    normalized_perf: point.performance.normalized_perf,
                    source: "sweep",
                });
            }
        }
        println!("{label} ({} designs in sweep)", sweep.len());
        println!("{table}");
    }

    // Sweep-free design count note for Batched-GEMV's unicast-only claim.
    let bg = workloads::batched_gemv(64, 64, 64);
    let non_unicast_a = design_space(&bg, &DseConfig::default())
        .iter()
        .filter(|d| {
            d.tensor_flow("A")
                .is_some_and(|f| !matches!(f.class, tensorlib::FlowClass::Unicast))
        })
        .count();
    println!(
        "Batched-GEMV dataflows where A is not unicast: {non_unicast_a} (paper: A can never be reused)"
    );

    let path = dump_json("fig5", &all_points);
    println!("\nwrote {}", path.display());
}

//! Criterion bench for the Table III pipeline: baseline dataflow search,
//! FPGA costing, and the full TensorLib FP32 build.

use criterion::{criterion_group, criterion_main, Criterion};
use tensorlib::cost::{fpga_cost, FpgaDevice};
use tensorlib::dataflow::dse::{find_named, DseConfig};
use tensorlib::hw::design::{generate, HwConfig};
use tensorlib::hw::ArrayConfig;
use tensorlib::ir::{workloads, DataType};
use tensorlib_baselines::{BaselineGenerator, BaselineKind};

fn bench_table3(c: &mut Criterion) {
    let mut group = c.benchmark_group("table3");
    group.sample_size(10);
    let gemm = workloads::gemm(640, 640, 640);

    group.bench_function("polysa_find_dataflow", |b| {
        let gen = BaselineGenerator::new(BaselineKind::PolySa);
        b.iter(|| gen.find_dataflow(std::hint::black_box(&gemm)).expect("systolic exists"))
    });

    let df = find_named(&gemm, "MNK-STS", &DseConfig::default()).expect("exists");
    let cfg = HwConfig {
        array: ArrayConfig { rows: 10, cols: 16 },
        datatype: DataType::Fp32,
        vectorize: 8,
        ..HwConfig::default()
    };
    group.bench_function("tensorlib_fp32_build", |b| {
        b.iter(|| generate(std::hint::black_box(&df), &cfg).expect("wireable"))
    });

    let design = generate(&df, &cfg).expect("wireable");
    let device = FpgaDevice::vu9p();
    group.bench_function("fpga_cost", |b| {
        b.iter(|| fpga_cost(std::hint::black_box(&design), &device, false))
    });
    group.finish();
}

criterion_group!(benches, bench_table3);
criterion_main!(benches);

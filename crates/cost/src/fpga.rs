//! FPGA resource and frequency model (Xilinx VU9P class).

use serde::{Deserialize, Serialize};
use tensorlib_hw::design::AcceleratorDesign;
use tensorlib_ir::DataType;

use crate::calibration::vu9p as k;

/// A target FPGA device's capacities.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FpgaDevice {
    /// Device name (reporting only).
    pub name: &'static str,
    /// LUT capacity.
    pub luts: u64,
    /// DSP slice capacity.
    pub dsps: u64,
    /// BRAM36 capacity.
    pub brams: u64,
}

impl FpgaDevice {
    /// The Xilinx VU9P used by the paper's Table III.
    pub fn vu9p() -> FpgaDevice {
        FpgaDevice {
            name: "VU9P",
            luts: k::DEVICE_LUTS,
            dsps: k::DEVICE_DSPS,
            brams: k::DEVICE_BRAMS,
        }
    }

    /// The Intel Arria-10 (GX1150 class) Susy targets in Table III. Its DSPs
    /// are hard floating-point blocks, so one DSP serves a full FP32 MAC.
    pub fn arria10() -> FpgaDevice {
        FpgaDevice {
            name: "Arria-10",
            luts: 427_200,
            dsps: 1518,
            brams: 2713,
        }
    }
}

/// FPGA synthesis estimate for one design.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FpgaReport {
    /// LUTs used.
    pub luts: u64,
    /// DSP slices used.
    pub dsps: u64,
    /// BRAM36 blocks used.
    pub brams: u64,
    /// LUT utilization of the device, 0–1.
    pub lut_util: f64,
    /// DSP utilization of the device, 0–1.
    pub dsp_util: f64,
    /// BRAM utilization of the device, 0–1.
    pub bram_util: f64,
    /// Estimated achievable frequency, MHz.
    pub freq_mhz: f64,
    /// Peak throughput at that frequency, Gop/s (2 ops per MAC lane).
    pub peak_gops: f64,
}

/// Estimates FPGA resources and frequency for `design` on `device`.
///
/// Set `placement_optimized` to model the paper's §VI-C manual floorplanning
/// experiment (the MM design improves from 263 to 328 MHz).
///
/// # Examples
///
/// ```
/// use tensorlib_cost::{fpga_cost, FpgaDevice};
/// use tensorlib_dataflow::{Dataflow, LoopSelection, Stt};
/// use tensorlib_hw::design::{generate, HwConfig};
/// use tensorlib_hw::ArrayConfig;
/// use tensorlib_ir::{workloads, DataType};
///
/// let gemm = workloads::gemm(640, 640, 640);
/// let sel = LoopSelection::by_names(&gemm, ["m", "n", "k"])?;
/// let df = Dataflow::analyze(&gemm, sel, Stt::from_rows([[0,0,1],[0,1,0],[1,1,1]])?)?;
/// let cfg = HwConfig {
///     array: ArrayConfig { rows: 10, cols: 16 },
///     datatype: DataType::Fp32,
///     vectorize: 8,
///     ..HwConfig::default()
/// };
/// let design = generate(&df, &cfg).expect("wireable");
/// let r = fpga_cost(&design, &FpgaDevice::vu9p(), false);
/// assert!(r.dsp_util > 0.5 && r.dsp_util < 1.0);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn fpga_cost(
    design: &AcceleratorDesign,
    device: &FpgaDevice,
    placement_optimized: bool,
) -> FpgaReport {
    let s = design.summary();
    let dt = design.config().datatype;

    // ---- DSPs ----
    let dsp_per_mac = match dt {
        DataType::Fp32 => k::DSP_PER_FP32_MAC,
        DataType::Int32 => 2,
        _ => k::DSP_PER_INT16_MAC,
    };
    let mac_lanes = s.multipliers; // already scaled by vectorization
    let dsps = mac_lanes * dsp_per_mac;

    // ---- LUTs ----
    let lut_per_mac = if dt.is_float() {
        k::LUT_PER_FP32_MAC
    } else {
        k::LUT_PER_INT16_MAC
    };
    let broadcast_endpoints: u64 = design
        .array_ports()
        .iter()
        .filter(|p| p.fanout > 1)
        .map(|p| p.fanout as u64)
        .sum();
    let luts = mac_lanes * lut_per_mac
        + s.pes * k::LUT_PER_PE
        + ((s.pe_reg_bits + s.tree_reg_bits) as f64 * k::LUT_PER_REG_BIT) as u64
        + (s.mux_bits as f64 * k::LUT_PER_MUX_BIT) as u64
        + broadcast_endpoints * k::LUT_PER_BROADCAST_ENDPOINT
        + k::LUT_TOP_OVERHEAD;

    // ---- BRAMs ----
    // Each bank instance occupies at least one BRAM36 per lane; larger banks
    // take ceil(bits / 36Kb).
    let lanes = design.config().vectorize as u64;
    let mut brams = 0u64;
    for binding in design.bank_bindings() {
        let bank = design
            .mem_banks()
            .iter()
            .find(|b| b.module_name() == binding.bank_module)
            .expect("bank template exists");
        brams += lanes * bank.bits().div_ceil(36 * 1024).max(1) * k::BRAM_DEPTH_FACTOR;
    }

    // ---- Frequency ----
    let mut freq = k::BASE_FREQ_MHZ;
    if s.max_fanout > 1 {
        freq *= 1.0 - k::FANOUT_FREQ_DERATE_PER_LOG2 * (s.max_fanout as f64).log2();
    }
    if dt.is_float() {
        freq *= k::FP32_FREQ_FACTOR;
    }
    if design.config().vectorize > 1 {
        freq *= k::VECTOR_FREQ_BONUS;
    }
    if s.unicast_in_ports > 0 || s.unicast_out_ports > 0 {
        freq *= k::UNICAST_FREQ_FACTOR;
    }
    if placement_optimized {
        freq *= k::PLACEMENT_OPT_FACTOR;
    }

    FpgaReport {
        luts,
        dsps,
        brams,
        lut_util: luts as f64 / device.luts as f64,
        dsp_util: dsps as f64 / device.dsps as f64,
        bram_util: brams as f64 / device.brams as f64,
        freq_mhz: freq,
        peak_gops: 2.0 * mac_lanes as f64 * freq * 1e6 / 1e9,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tensorlib_dataflow::{Dataflow, LoopSelection, Stt};
    use tensorlib_hw::design::{generate, HwConfig};
    use tensorlib_hw::ArrayConfig;
    use tensorlib_ir::workloads;

    fn table3_design() -> AcceleratorDesign {
        // The paper's FPGA build: KCX-STS-like weight-stationary systolic MM,
        // 10×16 array, FP32, vectorization 8.
        let gemm = workloads::gemm(640, 640, 640);
        let sel = LoopSelection::by_names(&gemm, ["m", "n", "k"]).unwrap();
        let df = Dataflow::analyze(
            &gemm,
            sel,
            Stt::from_rows([[0, 0, 1], [0, 1, 0], [1, 1, 1]]).unwrap(),
        )
        .unwrap();
        assert_eq!(df.letters(), "STS");
        generate(
            &df,
            &HwConfig {
                array: ArrayConfig { rows: 10, cols: 16 },
                datatype: DataType::Fp32,
                vectorize: 8,
                ..HwConfig::default()
            },
        )
        .unwrap()
    }

    #[test]
    fn table3_anchor_dsp_and_throughput() {
        let r = fpga_cost(&table3_design(), &FpgaDevice::vu9p(), false);
        // Paper: DSP 75%, 263 MHz, 673 Gop/s.
        assert!(
            (r.dsp_util - 0.75).abs() < 0.02,
            "dsp_util = {}",
            r.dsp_util
        );
        assert!(
            (r.freq_mhz - 263.0).abs() < 15.0,
            "freq = {} MHz",
            r.freq_mhz
        );
        assert!(
            (r.peak_gops - 673.0).abs() < 45.0,
            "gops = {}",
            r.peak_gops
        );
        // LUT utilization in the reported ballpark (68%).
        assert!(
            r.lut_util > 0.5 && r.lut_util < 0.85,
            "lut_util = {}",
            r.lut_util
        );
        assert!(r.bram_util > 0.2 && r.bram_util < 0.9, "bram = {}", r.bram_util);
    }

    #[test]
    fn placement_optimization_reaches_328() {
        let base = fpga_cost(&table3_design(), &FpgaDevice::vu9p(), false);
        let opt = fpga_cost(&table3_design(), &FpgaDevice::vu9p(), true);
        let gain = opt.freq_mhz / base.freq_mhz;
        assert!((gain - 1.247).abs() < 1e-9);
        assert!(
            (opt.freq_mhz - 328.0).abs() < 20.0,
            "optimized freq = {}",
            opt.freq_mhz
        );
    }

    #[test]
    fn multicast_fanout_hurts_frequency() {
        let gemm = workloads::gemm(64, 64, 64);
        let sel = LoopSelection::by_names(&gemm, ["m", "n", "k"]).unwrap();
        let sys = Dataflow::analyze(
            &gemm,
            sel.clone(),
            Stt::output_stationary(),
        )
        .unwrap();
        let mc = Dataflow::analyze(
            &gemm,
            sel,
            Stt::from_rows([[0, 1, 0], [0, 0, 1], [1, 0, 0]]).unwrap(),
        )
        .unwrap();
        let cfg = HwConfig::default();
        let dev = FpgaDevice::vu9p();
        let f_sys = fpga_cost(&generate(&sys, &cfg).unwrap(), &dev, false).freq_mhz;
        let f_mc = fpga_cost(&generate(&mc, &cfg).unwrap(), &dev, false).freq_mhz;
        assert!(f_mc < f_sys, "multicast {f_mc} !< systolic {f_sys}");
    }

    #[test]
    fn int16_uses_fewer_resources_than_fp32() {
        let gemm = workloads::gemm(64, 64, 64);
        let sel = LoopSelection::by_names(&gemm, ["m", "n", "k"]).unwrap();
        let df = Dataflow::analyze(&gemm, sel, Stt::output_stationary()).unwrap();
        let dev = FpgaDevice::vu9p();
        let d16 = generate(&df, &HwConfig::default()).unwrap();
        let d32 = generate(
            &df,
            &HwConfig {
                datatype: DataType::Fp32,
                ..HwConfig::default()
            },
        )
        .unwrap();
        let r16 = fpga_cost(&d16, &dev, false);
        let r32 = fpga_cost(&d32, &dev, false);
        assert!(r16.dsps < r32.dsps);
        assert!(r16.luts < r32.luts);
    }
}

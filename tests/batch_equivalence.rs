//! Lane-vs-scalar equivalence for the batched simulation engine.
//!
//! The determinism contract (DESIGN.md §12): lane `l` of a
//! [`tensorlib::hw::batch::BatchSim`] run is bit-identical — every flat net,
//! every cycle — to a scalar interpreter run given the same stimulus and
//! faults. These tests prove the contract over the fuzz netlist generator
//! (hundreds of random netlists × lane widths 1, 8, and 64) and over real
//! fault campaigns (batched resilience reports byte-identical to the scalar
//! baseline at several lane widths and worker counts).

use tensorlib::hw::fuzz::{check_batch_netlist, gen_netlist, NetlistFuzzConfig};
use tensorlib::sim::resilience::{run_campaign, run_gemm_campaign, CampaignConfig};
use tensorlib_hw::fault::Hardening;

/// The tentpole equivalence sweep: ≥200 generator seeds, every flat net
/// compared against a scalar reference on every lane after every cycle, at
/// lane widths 1 (degenerate batch), 8, and 64. `check_batch_netlist` seeds
/// each lane with its own stimulus stream (lane 0 replays the scalar
/// campaign stream), so wider widths genuinely diversify the state space
/// rather than replicating lane 0.
#[test]
fn batched_engine_matches_scalar_on_fuzzed_netlists() {
    let cfg = NetlistFuzzConfig::default();
    for seed in 0..200 {
        let (modules, top) = gen_netlist(seed, &cfg);
        for lanes in [1, 8, 64] {
            check_batch_netlist(&modules, &top, seed, cfg.cycles, lanes).unwrap_or_else(|f| {
                panic!("seed {seed} lanes {lanes}: {}: {}", f.kind.label(), f.detail)
            });
        }
    }
}

/// Batched GEMM fault campaigns must serialize to the very bytes the scalar
/// campaign produces — for lane widths that divide the fault count, ones
/// that don't (ragged final chunk), widths wider than the campaign, and any
/// worker count.
#[test]
fn batched_gemm_campaign_reports_match_scalar_bytes() {
    let mk = |lanes: usize, workers: usize| {
        let report = run_gemm_campaign(&CampaignConfig {
            faults: 24,
            seed: 7,
            hardening: Hardening::full(),
            workers,
            lanes,
            ..CampaignConfig::default()
        })
        .expect("campaign runs");
        serde_json::to_string(&report).expect("report serializes")
    };
    let scalar = mk(1, 1);
    for (lanes, workers) in [(8, 1), (8, 4), (5, 2), (64, 3)] {
        assert_eq!(
            scalar,
            mk(lanes, workers),
            "lanes={lanes} workers={workers} changed the report bytes"
        );
    }
}

/// Same byte-identity for the generic ramp-stimulus campaign (different
/// harness protocol, different golden signature).
#[test]
fn batched_ramp_campaign_reports_match_scalar_bytes() {
    let mk = |lanes: usize| {
        let report = run_campaign(&CampaignConfig {
            faults: 12,
            seed: 5,
            hardening: Hardening {
                tmr_ctrl: true,
                parity_banks: true,
                abft: false,
            },
            workers: 2,
            lanes,
            ..CampaignConfig::default()
        })
        .expect("campaign runs");
        serde_json::to_string(&report).expect("report serializes")
    };
    assert_eq!(mk(1), mk(8), "lanes=8 changed the ramp campaign report");
}

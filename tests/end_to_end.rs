//! End-to-end pipeline tests: kernel → dataflow → hardware → simulation →
//! cost, across every Table II workload.

use tensorlib::dataflow::dse::{design_space, DseConfig};
use tensorlib::hw::design::generate;
use tensorlib::hw::verilog::emit_design;
use tensorlib::ir::workloads;
use tensorlib::sim::functional;
use tensorlib::{Accelerator, Activity, ArrayConfig, FpgaDevice, HwConfig, Kernel, SimConfig};

fn small_twins() -> Vec<Kernel> {
    vec![
        workloads::gemm(8, 8, 8),
        workloads::batched_gemv(8, 8, 8),
        workloads::conv2d(4, 4, 6, 6, 3, 3),
        workloads::depthwise_conv(4, 6, 6, 3, 3),
        workloads::mttkrp(6, 6, 6, 6),
        workloads::ttmc(4, 4, 4, 4, 4),
    ]
}

#[test]
fn every_workload_has_a_verified_accelerator() {
    for kernel in small_twins() {
        let name = kernel.name().to_string();
        let acc = Accelerator::builder(kernel)
            .array(4, 4)
            .build()
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        let run = acc.verify(11).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert!(run.matches_reference, "{name}");
        assert_eq!(run.macs_executed, acc.kernel().macs(), "{name}");
    }
}

#[test]
fn every_workload_supports_multiple_verified_dataflows() {
    // For each kernel, take several distinct implementable dataflows from the
    // design space and verify each bit-exactly.
    let hw = HwConfig {
        array: ArrayConfig::square(4),
        ..HwConfig::default()
    };
    for kernel in small_twins() {
        let mut verified = 0;
        let mut letters_seen = std::collections::HashSet::new();
        for df in design_space(&kernel, &DseConfig::default()) {
            if verified >= 4 || !letters_seen.insert(df.letters()) {
                continue;
            }
            let Ok(design) = generate(&df, &hw) else {
                continue;
            };
            let run = functional::simulate(&design, &kernel, 5)
                .unwrap_or_else(|e| panic!("{} {}: {e}", kernel.name(), df.name()));
            assert!(run.matches_reference);
            verified += 1;
        }
        assert!(
            verified >= 3,
            "{}: only {verified} distinct dataflows verified",
            kernel.name()
        );
    }
}

#[test]
fn generated_designs_are_structurally_valid_and_emit_verilog() {
    for kernel in small_twins() {
        let name = kernel.name().to_string();
        let acc = Accelerator::builder(kernel).array(4, 4).build().unwrap();
        acc.design()
            .validate()
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        let v = emit_design(acc.design());
        // Every module appears exactly once.
        for m in acc.design().modules() {
            let needle = format!("module {} (", m.name());
            assert_eq!(
                v.matches(&needle).count(),
                1,
                "{name}: module {} not emitted exactly once",
                m.name()
            );
        }
        assert_eq!(
            v.matches("endmodule").count(),
            acc.design().modules().len() + acc.design().mem_banks().len(),
            "{name}"
        );
    }
}

#[test]
fn costs_are_finite_and_positive_for_all_workloads() {
    for kernel in small_twins() {
        let acc = Accelerator::builder(kernel).array(4, 4).build().unwrap();
        let perf = acc.performance(&SimConfig::default());
        assert!(perf.total_cycles > 0);
        assert!(perf.normalized_perf > 0.0 && perf.normalized_perf <= 1.0);
        let asic = acc.asic_cost(&Activity::default());
        assert!(asic.power_mw.is_finite() && asic.power_mw > 0.0);
        assert!(asic.area_mm2.is_finite() && asic.area_mm2 > 0.0);
        let fpga = acc.fpga_cost(&FpgaDevice::vu9p(), false);
        assert!(fpga.freq_mhz > 100.0 && fpga.freq_mhz < 400.0);
        assert!(fpga.dsps > 0);
    }
}

#[test]
fn functional_and_analytical_models_agree_on_compute_cycles() {
    // The analytical model's per-tile compute time must equal the functional
    // simulator's cycles per tile (both come from the tiling's t-extent).
    for kernel in small_twins() {
        let acc = Accelerator::builder(kernel).array(4, 4).build().unwrap();
        let run = acc.verify(3).unwrap();
        let t = acc.design().tiling();
        let outer: u64 = acc
            .dataflow()
            .selection()
            .outer_indices(acc.kernel())
            .iter()
            .map(|&i| acc.kernel().loop_nest().iters()[i].extent())
            .product();
        assert_eq!(
            run.cycles_simulated,
            outer * t.total_tiles() * t.t_extent,
            "{}",
            acc.kernel().name()
        );
    }
}

#[test]
fn different_seeds_and_sizes_still_verify() {
    for seed in [0, 1, 999] {
        let acc = Accelerator::builder(workloads::gemm(12, 20, 28))
            .array(5, 3)
            .build()
            .unwrap();
        assert!(acc.verify(seed).unwrap().matches_reference);
    }
    // Non-square array, non-divisible bounds.
    let acc = Accelerator::builder(workloads::conv2d(5, 3, 9, 7, 3, 3))
        .array(6, 4)
        .build()
        .unwrap();
    assert!(acc.verify(17).unwrap().matches_reference);
}

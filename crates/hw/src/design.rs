//! End-to-end accelerator generation: dataflow in, validated design out.

use std::collections::HashMap;
use std::fmt;

use serde::{Deserialize, Serialize};
use tensorlib_dataflow::{Dataflow, FlowClass};
use tensorlib_ir::DataType;

use crate::array::{build_array, ArrayConfig, ArrayPort, HwError, PortKind};
use crate::ctrl::{build_controller, CtrlPhases};
use crate::fault::{build_tmr_controller, Hardening, TMR_VOTER_GATE_BITS};
use crate::mem::MemBank;
use crate::netlist::{Dir, Expr, Module, NetlistError};
use crate::pe::{build_pe, PeIoKind, PeSpec, PeTensorSpec};
use crate::tiling::{tile_for_array, Tiling};

/// Generation-time configuration for one accelerator instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HwConfig {
    /// PE-array dimensions.
    pub array: ArrayConfig,
    /// Element datatype.
    pub datatype: DataType,
    /// SIMD lanes per PE (the paper's FPGA build uses 8). The netlist is
    /// built for one lane; vectorization scales the resource summary.
    pub vectorize: u32,
    /// Fault-tolerance hardening options (pay-for-use: `Hardening::none()`
    /// generates the identical design as before hardening existed).
    pub hardening: Hardening,
}

impl Default for HwConfig {
    fn default() -> HwConfig {
        HwConfig {
            array: ArrayConfig::default(),
            datatype: DataType::Int16,
            vectorize: 1,
            hardening: Hardening::none(),
        }
    }
}

/// Resource census of a generated design, consumed by the cost models.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct ResourceSummary {
    /// Array rows.
    pub pe_rows: usize,
    /// Array columns.
    pub pe_cols: usize,
    /// SIMD lanes per PE.
    pub vectorize: u32,
    /// Total PEs.
    pub pes: u64,
    /// Multipliers across the array (lanes included).
    pub multipliers: u64,
    /// Adders inside PEs (lanes included).
    pub pe_adders: u64,
    /// Adders in reduction trees (lanes included).
    pub tree_adders: u64,
    /// Register bits inside PEs (lanes included).
    pub pe_reg_bits: u64,
    /// Register bits in reduction trees (lanes included).
    pub tree_reg_bits: u64,
    /// Mux data bits inside PEs (lanes included).
    pub mux_bits: u64,
    /// Number of multicast/broadcast array ports.
    pub multicast_ports: u64,
    /// Largest combinational fanout of any data port.
    pub max_fanout: u64,
    /// Per-PE streaming input ports (unicast inputs).
    pub unicast_in_ports: u64,
    /// Per-PE result ports (unicast outputs).
    pub unicast_out_ports: u64,
    /// Boundary chain feed ports (systolic heads + stationary chain loads).
    pub chain_feed_ports: u64,
    /// Input bits the array consumes per compute cycle (lanes included).
    pub stream_bits_per_cycle: u64,
    /// Output bits the array produces per compute cycle (lanes included).
    pub output_bits_per_cycle: u64,
    /// Scratchpad bank instances.
    pub mem_banks: u64,
    /// Total scratchpad bits.
    pub mem_bits: u64,
    /// Tensors held stationary in PEs.
    pub stationary_tensors: u32,
    /// Distinct control signals fanned across the array.
    pub control_wires: u32,
    /// Register bits in the controller.
    pub ctrl_reg_bits: u64,
    /// Extra scratchpad bits spent on per-word parity (already included in
    /// `mem_bits`; informational).
    pub parity_bits: u64,
    /// Gate-bit equivalent of TMR majority voters (already included in
    /// `mux_bits`; informational).
    pub voter_bits: u64,
    /// Extra checksum-row/column/corner PEs for ABFT (already folded into
    /// the compute censuses; informational).
    pub abft_pes: u64,
}

impl ResourceSummary {
    /// Total adders (PE + tree).
    pub fn total_adders(&self) -> u64 {
        self.pe_adders + self.tree_adders
    }

    /// Total register bits (PE + tree + controller).
    pub fn total_reg_bits(&self) -> u64 {
        self.pe_reg_bits + self.tree_reg_bits + self.ctrl_reg_bits
    }
}

/// One scratchpad bank instance bound to an array port.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BankBinding {
    /// Module name of the bank template.
    pub bank_module: String,
    /// Instance name in the top module.
    pub instance: String,
    /// The array port it serves.
    pub port: ArrayPort,
}

/// A complete generated accelerator: netlist modules, memory plan, tiling,
/// and resource summary.
///
/// # Examples
///
/// ```
/// use tensorlib_dataflow::{Dataflow, LoopSelection, Stt};
/// use tensorlib_hw::design::{generate, HwConfig};
/// use tensorlib_ir::workloads;
///
/// let gemm = workloads::gemm(64, 64, 64);
/// let sel = LoopSelection::by_names(&gemm, ["m", "n", "k"])?;
/// let df = Dataflow::analyze(&gemm, sel, Stt::output_stationary())?;
/// let design = generate(&df, &HwConfig::default()).expect("wireable dataflow");
/// design.validate().expect("structurally sound");
/// assert_eq!(design.summary().pes, 256);
/// # Ok::<(), tensorlib_dataflow::DataflowError>(())
/// ```
#[derive(Debug, Clone)]
pub struct AcceleratorDesign {
    name: String,
    dataflow: Dataflow,
    config: HwConfig,
    tiling: Tiling,
    phases: CtrlPhases,
    modules: Vec<Module>,
    mem_banks: Vec<MemBank>,
    bank_bindings: Vec<BankBinding>,
    array_ports: Vec<ArrayPort>,
    top: String,
    summary: ResourceSummary,
}

impl AcceleratorDesign {
    /// The design's name (derived from the dataflow name).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The dataflow this design implements.
    pub fn dataflow(&self) -> &Dataflow {
        &self.dataflow
    }

    /// The generation configuration.
    pub fn config(&self) -> &HwConfig {
        &self.config
    }

    /// The tile mapping onto the array.
    pub fn tiling(&self) -> &Tiling {
        &self.tiling
    }

    /// The controller phase budget for one tile.
    pub fn phases(&self) -> &CtrlPhases {
        &self.phases
    }

    /// All netlist modules (PE, trees, controller, array, top).
    pub fn modules(&self) -> &[Module] {
        &self.modules
    }

    /// The module named `name`, if present.
    pub fn module(&self, name: &str) -> Option<&Module> {
        self.modules.iter().find(|m| m.name() == name)
    }

    /// Unique memory bank templates.
    pub fn mem_banks(&self) -> &[MemBank] {
        &self.mem_banks
    }

    /// Bank instance bindings (which bank serves which array port).
    pub fn bank_bindings(&self) -> &[BankBinding] {
        &self.bank_bindings
    }

    /// The array's top-level data ports.
    pub fn array_ports(&self) -> &[ArrayPort] {
        &self.array_ports
    }

    /// Name of the top module.
    pub fn top(&self) -> &str {
        &self.top
    }

    /// The resource census.
    pub fn summary(&self) -> &ResourceSummary {
        &self.summary
    }

    /// Runs the [`crate::opt`] rewrite pipeline over every module in place
    /// and returns the pre/post census. Ports, registers, instances, and
    /// net names are preserved (see the optimizer's preservation contract),
    /// so traces, fault campaigns, and testbenches observe an identical
    /// interface; the [`ResourceSummary`] census is computed at generation
    /// time from the template structure and is deliberately left untouched.
    pub fn optimize(&mut self, opts: &crate::opt::OptOptions) -> crate::opt::OptStats {
        let (modules, stats) = crate::opt::optimize_netlist(&self.modules, &self.top, opts);
        self.modules = modules;
        stats
    }

    /// Validates the whole design: per-module structural checks plus
    /// cross-module instance checking (module existence, port existence,
    /// width agreement, and a full driver census including instance outputs).
    ///
    /// # Errors
    ///
    /// Returns the first [`NetlistError`] found.
    pub fn validate(&self) -> Result<(), NetlistError> {
        for m in &self.modules {
            m.validate()?;
        }
        validate_modules(&self.modules, &self.mem_banks)
    }
}

/// Cross-module validation over a bare module list: instance module/port
/// existence, connection width agreement, and the extended driver census in
/// which instance outputs count as drivers. Memory-bank templates in `banks`
/// are referencable by their [`MemBank::module_name`] interface.
///
/// This is the census behind [`AcceleratorDesign::validate`], exposed as a
/// free function so externally parsed documents
/// ([`crate::text::NetlistDoc::validate`]) get the identical checks.
///
/// # Errors
///
/// Returns the first [`NetlistError`] found. Per-module structural checks
/// ([`Module::validate`]) are the caller's responsibility.
pub fn validate_modules(modules: &[Module], banks: &[MemBank]) -> Result<(), NetlistError> {
    // Port tables for all referencable modules.
    let mut port_tables: HashMap<&str, &Module> = HashMap::new();
    for m in modules {
        port_tables.insert(m.name(), m);
    }
    let bank_interfaces: Vec<Module> = banks.iter().map(MemBank::interface_module).collect();
    for b in &bank_interfaces {
        port_tables.insert(b.name(), b);
    }

    {
        for m in modules {
            // Cross-module checks + extended driver census.
            let mut drivers: Vec<u32> = vec![0; m.nets().len()];
            let mut read: Vec<bool> = vec![false; m.nets().len()];
            for (id, dir) in m.ports() {
                if *dir == Dir::Input {
                    drivers[*id] += 1;
                } else {
                    read[*id] = true; // output ports must be driven
                }
            }
            for (target, expr) in m.assigns() {
                drivers[*target] += 1;
                let mut reads = Vec::new();
                expr.collect_reads(&mut reads);
                for r in reads {
                    read[r] = true;
                }
            }
            for r in m.regs() {
                drivers[r.target] += 1;
                let mut reads = Vec::new();
                r.next.collect_reads(&mut reads);
                if let Some(e) = &r.enable {
                    e.collect_reads(&mut reads);
                }
                for x in reads {
                    read[x] = true;
                }
            }
            for inst in m.instances() {
                let child = port_tables.get(inst.module.as_str()).ok_or_else(|| {
                    NetlistError::BadInstance {
                        module: m.name().to_string(),
                        instance: inst.name.clone(),
                        reason: format!("unknown module {:?}", inst.module),
                    }
                })?;
                for (port, net) in &inst.connections {
                    let dir = child.port_dir(port).ok_or_else(|| NetlistError::BadInstance {
                        module: m.name().to_string(),
                        instance: inst.name.clone(),
                        reason: format!("module {:?} has no port {port:?}", inst.module),
                    })?;
                    let child_width = child
                        .ports()
                        .iter()
                        .find(|(id, _)| child.nets()[*id].name == *port)
                        .map(|(id, _)| child.nets()[*id].width)
                        .expect("port exists");
                    let net_width = m.nets()[*net].width;
                    if child_width != net_width {
                        return Err(NetlistError::BadInstance {
                            module: m.name().to_string(),
                            instance: inst.name.clone(),
                            reason: format!(
                                "port {port:?} is {child_width} bits, net is {net_width}"
                            ),
                        });
                    }
                    match dir {
                        Dir::Output => drivers[*net] += 1,
                        Dir::Input => read[*net] = true,
                    }
                }
            }
            for (id, (&d, &r)) in drivers.iter().zip(read.iter()).enumerate() {
                if d > 1 {
                    return Err(NetlistError::MultipleDrivers {
                        module: m.name().to_string(),
                        net: m.nets()[id].name.clone(),
                    });
                }
                if d == 0 && r {
                    return Err(NetlistError::NoDriver {
                        module: m.name().to_string(),
                        net: m.nets()[id].name.clone(),
                    });
                }
            }
        }
        Ok(())
    }
}

impl fmt::Display for AcceleratorDesign {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {}x{} {} array, {} modules, {} banks",
            self.name,
            self.config.array.rows,
            self.config.array.cols,
            self.config.datatype,
            self.modules.len(),
            self.bank_bindings.len()
        )
    }
}

fn next_pow2(v: u64) -> u64 {
    v.max(1).next_power_of_two()
}

/// Register stages between a scratchpad bank and the PE it feeds: the
/// bank's registered `rdata` plus the array-edge operand register. The
/// controller's compute phase extends past the schedule's t-extent by this
/// many cycles on stationary-output designs so the `swap` capture sees the
/// final in-flight products (verified end-to-end by the resilience
/// campaign's golden-versus-reference cross-check).
pub const STREAM_PIPELINE_LATENCY: u64 = 2;

/// Generates the complete accelerator for `dataflow`.
///
/// Pipeline: PE template selection (Figure 3) → PE assembly → array
/// interconnect (Figure 4) → tiling → controller → memory banking → top-level
/// wiring → resource census.
///
/// # Errors
///
/// Returns [`HwError`] if the dataflow's reuse steps cannot be wired
/// (non-neighbour `dp`) or the array is degenerate.
pub fn generate(dataflow: &Dataflow, cfg: &HwConfig) -> Result<AcceleratorDesign, HwError> {
    let _span = tensorlib_obs::span("hw.elaboration");
    let mut name = format!(
        "{}_{}",
        dataflow.kernel_name().to_lowercase().replace('-', "_"),
        dataflow.name().to_lowercase().replace('-', "_")
    );
    if cfg.hardening.is_any() {
        // Hardened variants are distinct designs (and module namespaces).
        name.push_str(&cfg.hardening.suffix().replace('+', "_"));
    }

    // 1. PE.
    let pe_spec = PeSpec {
        name: format!("{name}_pe"),
        datatype: cfg.datatype,
        tensors: dataflow
            .flows()
            .iter()
            .map(|f| PeTensorSpec {
                tensor: f.tensor.clone(),
                kind: PeIoKind::for_flow(&f.class, f.role),
                delay: match &f.class {
                    FlowClass::Systolic { dt, .. } => dt.unsigned_abs() as u32,
                    FlowClass::SystolicMulticast { systolic_dt, .. } => {
                        systolic_dt.unsigned_abs() as u32
                    }
                    _ => 1,
                },
            })
            .collect(),
    };
    let pe = build_pe(&pe_spec);

    // 2. Array.
    let array_name = format!("{name}_array");
    let ab = build_array(&array_name, &pe_spec, dataflow.flows(), &cfg.array)?;

    // 3. Tiling and controller phases.
    let tiling = tile_for_array(dataflow.stt(), dataflow.selected_extents(), &cfg.array);
    let has_stationary_in = pe_spec.needs_load_phase();
    let has_stationary_out = pe_spec.needs_swap_drain();
    // Stationary-output designs capture accumulators on `swap`, so the
    // compute phase must outlast the schedule's t-extent by the streaming
    // pipeline depth (registered bank rdata + the PE operand register):
    // the last scheduled operand pair is still in flight when cycle
    // t_extent-1 ends, and swapping then would drop its product.
    let compute_tail = if has_stationary_out {
        STREAM_PIPELINE_LATENCY
    } else {
        0
    };
    let phases = CtrlPhases {
        load_cycles: if has_stationary_in {
            cfg.array.rows as u64
        } else {
            0
        },
        compute_cycles: tiling.t_extent + compute_tail,
        drain_cycles: if has_stationary_out {
            cfg.array.rows as u64
        } else {
            0
        },
    };
    let ctrl_name = format!("{name}_ctrl");
    // Plain controller, or a TMR-voted triple with a mismatch detector.
    let (ctrl_modules, ctrl_reg_bits) = if cfg.hardening.tmr_ctrl {
        let mods = build_tmr_controller(&ctrl_name, &phases);
        let bits = mods[0].reg_bits() * 3;
        (mods, bits)
    } else {
        let ctrl = build_controller(&ctrl_name, &phases);
        let bits = ctrl.reg_bits();
        (vec![ctrl], bits)
    };

    // 4. Memory plan: one bank instance per array data port.
    let mut mem_banks: Vec<MemBank> = Vec::new();
    let mut bank_bindings = Vec::new();
    for (i, port) in ab.ports.iter().enumerate() {
        let stationary = matches!(
            port.kind,
            PortKind::StationaryLoad | PortKind::StationaryDrain
        );
        let words = match port.kind {
            PortKind::StationaryLoad => next_pow2(cfg.array.rows as u64).max(16),
            _ => next_pow2(tiling.t_extent).clamp(16, 65_536),
        };
        let mut bank = MemBank::new(words, port.width, stationary);
        if cfg.hardening.parity_banks {
            bank = bank.with_parity();
        }
        if !mem_banks.contains(&bank) {
            mem_banks.push(bank.clone());
        }
        bank_bindings.push(BankBinding {
            bank_module: bank.module_name(),
            instance: format!("bank_{i}_{}", port.name),
            port: port.clone(),
        });
    }

    // 5. Top-level wiring.
    let top_name = format!("{name}_top");
    let mut top = Module::new(top_name.clone());
    let start = top.input("start", 1);
    let done = top.output("done", 1);
    let fill_en = top.input("fill_en", 1);
    let en = top.net("en", 1);
    let load_en = top.net("load_en", 1);
    let phase = top.net("phase", 1);
    let swap = top.net("swap", 1);
    let drain_en = top.net("drain_en", 1);
    let mut ctrl_conns = vec![
        ("start".to_string(), start),
        ("en".into(), en),
        ("load_en".into(), load_en),
        ("phase".into(), phase),
        ("swap".into(), swap),
        ("drain_en".into(), drain_en),
        ("done".into(), done),
    ];
    if cfg.hardening.tmr_ctrl {
        // Surface the TMR divergence detector at the top level.
        let mismatch = top.output("tmr_mismatch", 1);
        ctrl_conns.push(("tmr_mismatch".into(), mismatch));
    }
    top.instance(ctrl_name.clone(), "ctrl_i".to_string(), ctrl_conns);

    let mut array_conns = vec![("en".to_string(), en)];
    if has_stationary_in {
        array_conns.push(("load_en".into(), load_en));
        array_conns.push(("phase".into(), phase));
    }
    if has_stationary_out {
        array_conns.push(("swap".into(), swap));
        array_conns.push(("drain_en".into(), drain_en));
    }
    for (bi, binding) in bank_bindings.iter().enumerate() {
        let port = &binding.port;
        let data_net = top.net(format!("n_{}", port.name), port.width);
        array_conns.push((port.name.clone(), data_net));
        let bank = mem_banks
            .iter()
            .find(|b| b.module_name() == binding.bank_module)
            .expect("bank template exists");
        let mut conns: Vec<(String, usize)> = Vec::new();
        if port.kind.is_input() {
            // Bank streams into the array; filled from outside.
            let fill = top.input(format!("fill_{bi}"), port.width);
            let stream_en = if port.kind == PortKind::StationaryLoad {
                load_en
            } else {
                en
            };
            conns.push(("en".into(), stream_en));
            conns.push(("wen".into(), fill_en));
            conns.push(("wdata".into(), fill));
            conns.push(("rdata".into(), data_net));
        } else {
            // Bank captures array results; exposed for readback.
            let out = top.output(format!("result_{bi}"), port.width);
            let capture_en = if port.kind == PortKind::StationaryDrain {
                drain_en
            } else {
                en
            };
            let read_back = top.input(format!("readback_{bi}"), 1);
            conns.push(("en".into(), read_back));
            conns.push(("wen".into(), capture_en));
            conns.push(("wdata".into(), data_net));
            let rd = top.net(format!("rd_{bi}"), port.width);
            conns.push(("rdata".into(), rd));
            top.assign(out, Expr::net(rd));
        }
        if bank.is_double_buffered() {
            conns.push(("buf_sel".into(), phase));
        }
        top.instance(binding.bank_module.clone(), binding.instance.clone(), conns);
    }
    top.instance(array_name.clone(), "array_i".to_string(), array_conns);

    // 6. Resource census.
    let lanes = cfg.vectorize as u64;
    let pe_ops = pe.count_ops();
    let pes = cfg.array.pes() as u64;
    // ABFT adds one checksum row, column, and corner PE worth of compute;
    // TMR adds the voter gates (priced as mux bits).
    let abft_pes = if cfg.hardening.abft {
        (cfg.array.rows + cfg.array.cols + 1) as u64
    } else {
        0
    };
    let compute_pes = pes + abft_pes;
    let voter_bits = if cfg.hardening.tmr_ctrl {
        TMR_VOTER_GATE_BITS
    } else {
        0
    };
    let mut summary = ResourceSummary {
        pe_rows: cfg.array.rows,
        pe_cols: cfg.array.cols,
        vectorize: cfg.vectorize,
        pes,
        multipliers: pe_ops.multipliers * compute_pes * lanes,
        pe_adders: pe_ops.adders * compute_pes * lanes,
        tree_adders: ab.tree_adders * lanes,
        pe_reg_bits: pe.reg_bits() * compute_pes * lanes,
        tree_reg_bits: ab.tree_reg_bits * lanes,
        mux_bits: pe_ops.mux_bits * compute_pes * lanes + voter_bits,
        voter_bits,
        abft_pes,
        stationary_tensors: dataflow
            .flows()
            .iter()
            .filter(|f| f.class.is_stationary_like())
            .count() as u32,
        control_wires: 1
            + if has_stationary_in { 2 } else { 0 }
            + if has_stationary_out { 2 } else { 0 },
        ctrl_reg_bits,
        ..ResourceSummary::default()
    };
    for port in &ab.ports {
        summary.max_fanout = summary.max_fanout.max(port.fanout as u64);
        match port.kind {
            PortKind::Multicast => {
                summary.multicast_ports += 1;
                summary.stream_bits_per_cycle += port.width as u64 * lanes;
            }
            PortKind::SystolicFeed => {
                summary.chain_feed_ports += 1;
                summary.stream_bits_per_cycle += port.width as u64 * lanes;
            }
            PortKind::Unicast => {
                summary.unicast_in_ports += 1;
                summary.stream_bits_per_cycle += port.width as u64 * lanes;
            }
            PortKind::StationaryLoad => {
                summary.chain_feed_ports += 1;
            }
            PortKind::SystolicDrain | PortKind::ReduceSum => {
                summary.output_bits_per_cycle += port.width as u64 * lanes;
            }
            PortKind::UnicastOut => {
                summary.unicast_out_ports += 1;
                summary.output_bits_per_cycle += port.width as u64 * lanes;
            }
            PortKind::StationaryDrain => {}
        }
    }
    for binding in &bank_bindings {
        let bank = mem_banks
            .iter()
            .find(|b| b.module_name() == binding.bank_module)
            .expect("bank template exists");
        summary.mem_banks += 1;
        summary.mem_bits += bank.bits();
        if bank.has_parity() {
            let buffers = if bank.is_double_buffered() { 2 } else { 1 };
            summary.parity_bits += bank.words() * buffers;
        }
    }

    let mut modules = vec![pe];
    modules.extend(ab.tree_modules.clone());
    modules.extend(ctrl_modules);
    modules.push(ab.module);
    modules.push(top);

    Ok(AcceleratorDesign {
        name,
        dataflow: dataflow.clone(),
        config: *cfg,
        tiling,
        phases,
        modules,
        mem_banks,
        bank_bindings,
        array_ports: ab.ports,
        top: top_name,
        summary,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tensorlib_dataflow::{dse, LoopSelection, Stt};
    use tensorlib_ir::workloads;

    fn gemm_design(rows: [[i64; 3]; 3]) -> AcceleratorDesign {
        let gemm = workloads::gemm(64, 64, 64);
        let sel = LoopSelection::by_names(&gemm, ["m", "n", "k"]).unwrap();
        let df = Dataflow::analyze(&gemm, sel, Stt::from_rows(rows).unwrap()).unwrap();
        generate(&df, &HwConfig::default()).unwrap()
    }

    #[test]
    fn output_stationary_design_validates() {
        let d = gemm_design([[1, 0, 0], [0, 1, 0], [1, 1, 1]]);
        d.validate().unwrap();
        let s = d.summary();
        assert_eq!(s.pes, 256);
        assert_eq!(s.multipliers, 256);
        // Output stationary: C held in PEs.
        assert_eq!(s.stationary_tensors, 1);
        // Feeds: 16 A-rows + 16 B-columns.
        assert_eq!(s.chain_feed_ports, 32);
        assert!(d.module(d.top()).is_some());
        assert!(d.to_string().contains("16x16"));
    }

    #[test]
    fn multicast_design_has_trees_and_fanout() {
        let d = gemm_design([[0, 1, 0], [0, 0, 1], [1, 0, 0]]);
        d.validate().unwrap();
        let s = d.summary();
        assert!(s.tree_adders > 0, "reduction trees expected");
        assert_eq!(s.max_fanout, 16);
        assert!(s.multicast_ports > 0);
    }

    #[test]
    fn unicast_design_has_per_pe_ports() {
        // Batched-GEMV forces unicast on A.
        let k = workloads::batched_gemv(32, 32, 32);
        let sel = LoopSelection::by_names(&k, ["m", "n", "k"]).unwrap();
        let df = Dataflow::analyze(&k, sel, Stt::output_stationary()).unwrap();
        let d = generate(&df, &HwConfig::default()).unwrap();
        d.validate().unwrap();
        assert_eq!(d.summary().unicast_in_ports, 256);
    }

    #[test]
    fn named_paper_dataflows_generate_and_validate() {
        let conv = workloads::conv2d(16, 16, 14, 14, 3, 3);
        let cfg = HwConfig::default();
        for name in ["KCX-SST", "KCX-STS"] {
            let df = dse::find_named(&conv, name, &dse::DseConfig::default()).unwrap();
            let d = generate(&df, &cfg).unwrap();
            d.validate().unwrap_or_else(|e| panic!("{name}: {e}"));
        }
    }

    #[test]
    fn vectorization_scales_summary_only() {
        let base = gemm_design([[1, 0, 0], [0, 1, 0], [1, 1, 1]]);
        let gemm = workloads::gemm(64, 64, 64);
        let sel = LoopSelection::by_names(&gemm, ["m", "n", "k"]).unwrap();
        let df = Dataflow::analyze(&gemm, sel, Stt::output_stationary()).unwrap();
        let v8 = generate(
            &df,
            &HwConfig {
                vectorize: 8,
                ..HwConfig::default()
            },
        )
        .unwrap();
        assert_eq!(v8.summary().multipliers, base.summary().multipliers * 8);
        assert_eq!(v8.modules().len(), base.modules().len());
    }

    #[test]
    fn bank_plan_is_consistent() {
        let d = gemm_design([[1, 0, 0], [0, 1, 0], [1, 1, 1]]);
        assert_eq!(d.bank_bindings().len(), d.array_ports().len());
        assert_eq!(d.summary().mem_banks, d.bank_bindings().len() as u64);
        // Stationary drain banks are double-buffered.
        for b in d.bank_bindings() {
            let bank = d
                .mem_banks()
                .iter()
                .find(|mb| mb.module_name() == b.bank_module)
                .unwrap();
            if matches!(
                b.port.kind,
                PortKind::StationaryLoad | PortKind::StationaryDrain
            ) {
                assert!(bank.is_double_buffered());
            }
        }
    }

    #[test]
    fn hardened_design_validates_and_prices_its_overhead() {
        let gemm = workloads::gemm(64, 64, 64);
        let sel = LoopSelection::by_names(&gemm, ["m", "n", "k"]).unwrap();
        let df = Dataflow::analyze(&gemm, sel, Stt::output_stationary()).unwrap();
        let base = generate(&df, &HwConfig::default()).unwrap();
        let hard = generate(
            &df,
            &HwConfig {
                hardening: Hardening::full(),
                ..HwConfig::default()
            },
        )
        .unwrap();
        hard.validate().unwrap();
        assert_eq!(hard.name(), format!("{}_tmr_par_abft", base.name()));

        let (b, h) = (base.summary(), hard.summary());
        // TMR: triple the controller state, plus voter gates.
        assert_eq!(h.ctrl_reg_bits, b.ctrl_reg_bits * 3);
        assert_eq!(h.voter_bits, TMR_VOTER_GATE_BITS);
        // The top now exposes the divergence detector.
        let top = hard.module(hard.top()).unwrap();
        assert_eq!(top.port_dir("tmr_mismatch"), Some(Dir::Output));
        // Parity: one extra bit per stored word, counted in mem_bits.
        assert!(h.parity_bits > 0);
        assert_eq!(h.mem_bits, b.mem_bits + h.parity_bits);
        assert!(hard.mem_banks().iter().all(MemBank::has_parity));
        // ABFT: checksum row + column + corner worth of extra compute.
        assert_eq!(h.abft_pes, 16 + 16 + 1);
        assert_eq!(h.pes, b.pes, "array geometry is unchanged");
        assert_eq!(h.multipliers, b.multipliers + 33);
        // An unhardened config still produces the exact pre-hardening census.
        assert_eq!(b.voter_bits + b.parity_bits + b.abft_pes, 0);
    }

    #[test]
    fn hardened_design_simulates_and_detects_faults() {
        use crate::interp::{elaborate_design, Interpreter};

        let gemm = workloads::gemm(4, 4, 4);
        let sel = LoopSelection::by_names(&gemm, ["m", "n", "k"]).unwrap();
        let df = Dataflow::analyze(&gemm, sel, Stt::output_stationary()).unwrap();
        let cfg = HwConfig {
            array: ArrayConfig { rows: 4, cols: 4 },
            hardening: Hardening {
                tmr_ctrl: true,
                parity_banks: true,
                abft: false,
            },
            ..HwConfig::default()
        };
        let d = generate(&df, &cfg).unwrap();
        d.validate().unwrap();
        let flat = elaborate_design(&d, d.top()).unwrap();
        let mut sim = Interpreter::new(flat);
        // Fault-free run: mismatch stays low through a full tile.
        sim.poke("start", 1);
        sim.step();
        sim.poke("start", 0);
        for _ in 0..40 {
            sim.step();
            assert_eq!(sim.peek("tmr_mismatch"), 0);
        }
        assert_eq!(sim.parity_error_count(), 0);
    }

    #[test]
    fn assign_vs_instance_output_double_drive_is_caught_at_design_level() {
        // `Module::validate` deliberately ignores instance connections (it
        // cannot see child port directions), so a net driven both by an
        // assign and by a child's output port sails through per-module
        // validation. The design-level census must catch exactly that.
        let mut d = gemm_design([[1, 0, 0], [0, 1, 0], [1, 1, 1]]);
        d.validate().expect("generated design is sound");
        let top_name = d.top.clone();
        let top = d
            .modules
            .iter_mut()
            .find(|m| m.name() == top_name)
            .unwrap();
        // "done" is already driven by the controller instance's output.
        let done = top
            .nets()
            .iter()
            .position(|n| n.name == "done")
            .expect("top has a done net");
        top.assign(done, Expr::lit(0, 1));
        assert!(
            top.validate().is_ok(),
            "per-module validation cannot see the instance driver"
        );
        match d.validate().unwrap_err() {
            NetlistError::MultipleDrivers { module, net } => {
                assert_eq!(module, top_name);
                assert_eq!(net, "done");
            }
            other => panic!("expected MultipleDrivers, got {other}"),
        }
    }

    #[test]
    fn tiling_is_exposed() {
        let d = gemm_design([[1, 0, 0], [0, 1, 0], [1, 1, 1]]);
        assert_eq!(d.tiling().tile_extents, [16, 16, 64]);
        // Stationary-output designs extend the compute phase by the
        // streaming pipeline depth so the swap capture is not early.
        let tail = if d.phases().drain_cycles > 0 {
            STREAM_PIPELINE_LATENCY
        } else {
            0
        };
        assert_eq!(d.phases().compute_cycles, d.tiling().t_extent + tail);
    }
}

//! The Table I classification: reuse subspace → hardware dataflow.

use std::fmt;

use serde::{Deserialize, Serialize};
use tensorlib_linalg::{primitive_integer_vector, Frac, Mat};
use tensorlib_ir::TensorRole;

use crate::Stt;

/// The hardware dataflow of one tensor under one STT, per the paper's
/// Table I.
///
/// Rank-1 shapes carry the primitive space-time reuse vector `(dp, dt)`
/// (oriented so `dt ≥ 0`, then lexicographically positive); rank-2 shapes
/// carry the decomposition into 1-D components that the paper's hardware
/// generator wires up (multicast group + stationary register, or multicast
/// group + systolic chain).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FlowClass {
    /// Rank 0: every element touched exactly once — each PE streams from
    /// memory independently.
    Unicast,
    /// Rank 1, `dp = 0`: the element stays in one PE for `dt`-cycle steps.
    Stationary {
        /// Temporal stride between consecutive uses (≥ 1).
        dt: i64,
    },
    /// Rank 1, `dp ≠ 0, dt ≠ 0`: the element hops to the neighbouring PE at
    /// offset `dp` every `dt` cycles.
    Systolic {
        /// Spatial step per reuse.
        dp: [i64; 2],
        /// Cycle delay per hop (≥ 1).
        dt: i64,
    },
    /// Rank 1, `dt = 0` on an input: one element feeds a line of PEs in the
    /// same cycle.
    Multicast {
        /// Direction of the multicast group.
        dp: [i64; 2],
    },
    /// Rank 1, `dt = 0` on the output: PEs along `dp` produce partial sums of
    /// the same element simultaneously; a reduction tree combines them.
    ReductionTree {
        /// Direction of the reduction group.
        dp: [i64; 2],
    },
    /// Rank 2, plane perpendicular to the t-axis: the element reaches every
    /// PE of a 2-D group in one cycle.
    Broadcast {
        /// Two independent spatial directions spanning the group.
        dps: [[i64; 2]; 2],
    },
    /// Rank 2, plane containing the t-axis: multicast to a group, then held
    /// stationary inside each PE.
    MulticastStationary {
        /// Direction of the multicast group.
        dp: [i64; 2],
    },
    /// Rank 2, plane crossing the t-axis obliquely: multicast to a group of
    /// boundary registers, then systolic traversal.
    SystolicMulticast {
        /// Spatial step of the systolic component.
        systolic_dp: [i64; 2],
        /// Cycle delay of the systolic component.
        systolic_dt: i64,
        /// Direction of the multicast component.
        multicast_dp: [i64; 2],
    },
    /// Rank 3: the tensor does not depend on any selected loop — a single
    /// element is broadcast once and stays live in every PE for the whole
    /// tile. (Not tabulated in the paper; arises when all of a tensor's
    /// iterators are left sequential.)
    FullReuse,
}

impl FlowClass {
    /// The rank of the reuse subspace this class came from.
    pub fn rank(&self) -> usize {
        match self {
            FlowClass::Unicast => 0,
            FlowClass::Stationary { .. }
            | FlowClass::Systolic { .. }
            | FlowClass::Multicast { .. }
            | FlowClass::ReductionTree { .. } => 1,
            FlowClass::Broadcast { .. }
            | FlowClass::MulticastStationary { .. }
            | FlowClass::SystolicMulticast { .. } => 2,
            FlowClass::FullReuse => 3,
        }
    }

    /// The paper's single-letter code: `U`nicast, `S`ystolic, s`T`ationary,
    /// `M`ulticast/reduction, `B` for 2-D reuse spaces.
    pub fn letter(&self) -> char {
        match self {
            FlowClass::Unicast => 'U',
            FlowClass::Stationary { .. } => 'T',
            FlowClass::Systolic { .. } => 'S',
            FlowClass::Multicast { .. } | FlowClass::ReductionTree { .. } => 'M',
            _ => 'B',
        }
    }

    /// All letters this class can be described by. The paper's §VI names are
    /// loose for rank-2 shapes (e.g. a multicast+stationary tensor may be
    /// written `M` or `T`), so name matching accepts any component letter.
    pub fn letter_aliases(&self) -> Vec<char> {
        match self {
            FlowClass::Unicast => vec!['U'],
            FlowClass::Stationary { .. } => vec!['T'],
            FlowClass::Systolic { .. } => vec!['S'],
            FlowClass::Multicast { .. } | FlowClass::ReductionTree { .. } => vec!['M'],
            FlowClass::Broadcast { .. } => vec!['B', 'M'],
            FlowClass::MulticastStationary { .. } => vec!['B', 'M', 'T'],
            FlowClass::SystolicMulticast { .. } => vec!['B', 'S', 'M'],
            FlowClass::FullReuse => vec!['B', 'T'],
        }
    }

    /// `true` if the tensor element moves between PEs in the same cycle
    /// (needs combinational fan-out or a reduction tree).
    pub fn has_same_cycle_fanout(&self) -> bool {
        matches!(
            self,
            FlowClass::Multicast { .. }
                | FlowClass::ReductionTree { .. }
                | FlowClass::Broadcast { .. }
                | FlowClass::MulticastStationary { .. }
                | FlowClass::SystolicMulticast { .. }
                | FlowClass::FullReuse
        )
    }

    /// `true` if the tensor is held in a PE-local register across cycles.
    pub fn is_stationary_like(&self) -> bool {
        matches!(
            self,
            FlowClass::Stationary { .. }
                | FlowClass::MulticastStationary { .. }
                | FlowClass::FullReuse
        )
    }
}

impl fmt::Display for FlowClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlowClass::Unicast => write!(f, "unicast"),
            FlowClass::Stationary { dt } => write!(f, "stationary(dt={dt})"),
            FlowClass::Systolic { dp, dt } => {
                write!(f, "systolic(dp=({},{}), dt={dt})", dp[0], dp[1])
            }
            FlowClass::Multicast { dp } => write!(f, "multicast(dp=({},{}))", dp[0], dp[1]),
            FlowClass::ReductionTree { dp } => {
                write!(f, "reduction-tree(dp=({},{}))", dp[0], dp[1])
            }
            FlowClass::Broadcast { .. } => write!(f, "broadcast"),
            FlowClass::MulticastStationary { dp } => {
                write!(f, "multicast+stationary(dp=({},{}))", dp[0], dp[1])
            }
            FlowClass::SystolicMulticast {
                systolic_dp,
                systolic_dt,
                multicast_dp,
            } => write!(
                f,
                "systolic(dp=({},{}),dt={})+multicast(dp=({},{}))",
                systolic_dp[0], systolic_dp[1], systolic_dt, multicast_dp[0], multicast_dp[1]
            ),
            FlowClass::FullReuse => write!(f, "full-reuse"),
        }
    }
}

/// The analyzed dataflow of one tensor: its name, role, and [`FlowClass`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TensorFlow {
    /// The tensor's name in the kernel.
    pub tensor: String,
    /// Input or output.
    pub role: TensorRole,
    /// The classified dataflow.
    pub class: FlowClass,
}

impl fmt::Display for TensorFlow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({}): {}", self.tensor, self.role, self.class)
    }
}

/// Orients a primitive reuse vector: `dt > 0` preferred (data flows forward
/// in time); for `dt = 0`, the spatial part is made lexicographically
/// positive.
fn orient(v: [i64; 3]) -> [i64; 3] {
    let flip = if v[2] != 0 {
        v[2] < 0
    } else if v[0] != 0 {
        v[0] < 0
    } else {
        v[1] < 0
    };
    if flip {
        [-v[0], -v[1], -v[2]]
    } else {
        v
    }
}

/// Classifies one tensor's dataflow from its *restricted* access matrix (the
/// `dims × 3` matrix over the three selected loops) and the STT matrix.
///
/// This is the paper's Table I decision procedure. The reuse subspace in
/// space-time is `T · null(A_sel)`; its rank and orientation w.r.t. the time
/// axis pick the class. The computation is exact.
///
/// # Examples
///
/// ```
/// use tensorlib_dataflow::{classify_tensor, FlowClass, Stt};
/// use tensorlib_linalg::Mat;
/// use tensorlib_ir::TensorRole;
///
/// // A[i,k] in an (i,j,k) nest, with the paper's example T.
/// let a_sel = Mat::from_i64(&[&[1, 0, 0], &[0, 0, 1]]);
/// let t = Stt::output_stationary();
/// let class = classify_tensor(&a_sel, &t, TensorRole::Input);
/// assert_eq!(class, FlowClass::Systolic { dp: [0, 1], dt: 1 });
/// ```
pub fn classify_tensor(a_sel: &Mat, stt: &Stt, role: TensorRole) -> FlowClass {
    assert_eq!(a_sel.cols(), 3, "restricted access matrix must have 3 columns");
    let null = a_sel.null_space();
    let reuse = &stt.to_mat() * &null; // 3 × rank
    classify_reuse(&reuse, role)
}

/// Classifies a tensor directly from its space-time reuse matrix
/// `T · null(A_sel)` (3 × rank).
///
/// [`classify_tensor`] is the convenient entry point; this variant lets the
/// design-space enumerator precompute each tensor's null-space basis once and
/// re-multiply it by thousands of candidate `T` matrices.
pub fn classify_reuse(reuse: &Mat, role: TensorRole) -> FlowClass {
    assert_eq!(reuse.rows(), 3, "space-time reuse matrix must have 3 rows");
    match reuse.cols() {
        0 => FlowClass::Unicast,
        1 => {
            let v = primitive_of_col(reuse, 0);
            classify_rank1(v, role)
        }
        2 => classify_rank2(reuse, role),
        _ => FlowClass::FullReuse,
    }
}

fn primitive_of_col(m: &Mat, col: usize) -> [i64; 3] {
    let v = m.col(col);
    let ints =
        primitive_integer_vector(&v).expect("null-space basis vectors are nonzero");
    orient([ints[0], ints[1], ints[2]])
}

fn classify_rank1(v: [i64; 3], role: TensorRole) -> FlowClass {
    let dp = [v[0], v[1]];
    let dt = v[2];
    match (dp == [0, 0], dt == 0) {
        (true, false) => FlowClass::Stationary { dt },
        (false, false) => FlowClass::Systolic { dp, dt },
        (false, true) => match role {
            TensorRole::Input => FlowClass::Multicast { dp },
            TensorRole::Output => FlowClass::ReductionTree { dp },
        },
        (true, true) => unreachable!("primitive vectors are nonzero"),
    }
}

fn classify_rank2(reuse: &Mat, role: TensorRole) -> FlowClass {
    // The time components of the two basis vectors.
    let t0 = reuse[(2, 0)];
    let t1 = reuse[(2, 1)];
    if t0.is_zero() && t1.is_zero() {
        // Plane perpendicular to the t-axis: pure 2-D spatial reuse.
        let d0 = primitive_of_col(reuse, 0);
        let d1 = primitive_of_col(reuse, 1);
        return FlowClass::Broadcast {
            dps: [[d0[0], d0[1]], [d1[0], d1[1]]],
        };
    }
    // The plane meets {dt = 0} in a line: combination t1·b0 − t0·b1.
    let b0 = reuse.col(0);
    let b1 = reuse.col(1);
    let spatial: Vec<Frac> = (0..3).map(|i| b0[i] * t1 - b1[i] * t0).collect();
    let sp = primitive_integer_vector(&spatial)
        .expect("independent basis vectors give a nonzero spatial line");
    let sp = orient([sp[0], sp[1], sp[2]]);
    debug_assert_eq!(sp[2], 0);
    let multicast_dp = [sp[0], sp[1]];

    // Does the plane contain the t-axis? Solve reuse · c = e3.
    let e3 = Mat::col_from_i64(&[0, 0, 1]);
    let contains_t_axis = reuse
        .solve(&e3)
        .is_some_and(|c| (reuse * &c) == e3);
    if contains_t_axis {
        // Parallel case: multicast then stationary.
        let _ = role; // same decomposition for inputs and outputs
        FlowClass::MulticastStationary { dp: multicast_dp }
    } else {
        // Oblique case: multicast plus systolic traversal. The systolic
        // component is any basis vector with dt ≠ 0, reduced and oriented.
        let sys_col = if !t0.is_zero() { 0 } else { 1 };
        let sys = primitive_of_col(reuse, sys_col);
        FlowClass::SystolicMulticast {
            systolic_dp: [sys[0], sys[1]],
            systolic_dt: sys[2],
            multicast_dp,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tensorlib_linalg::Mat;

    fn t_os() -> Stt {
        Stt::output_stationary()
    }

    #[test]
    fn table1_rank0_unicast() {
        // Access matrix of full rank over selected loops: no reuse.
        let a = Mat::identity(3);
        assert_eq!(
            classify_tensor(&a, &t_os(), TensorRole::Input),
            FlowClass::Unicast
        );
    }

    #[test]
    fn table1_rank1_stationary() {
        // C[i,j] with T = output-stationary: reuse along k stays put.
        let c = Mat::from_i64(&[&[1, 0, 0], &[0, 1, 0]]);
        assert_eq!(
            classify_tensor(&c, &t_os(), TensorRole::Output),
            FlowClass::Stationary { dt: 1 }
        );
    }

    #[test]
    fn table1_rank1_systolic_both_inputs() {
        let a = Mat::from_i64(&[&[1, 0, 0], &[0, 0, 1]]); // A[i,k]
        let b = Mat::from_i64(&[&[0, 1, 0], &[0, 0, 1]]); // B[j,k]
        assert_eq!(
            classify_tensor(&a, &t_os(), TensorRole::Input),
            FlowClass::Systolic { dp: [0, 1], dt: 1 }
        );
        assert_eq!(
            classify_tensor(&b, &t_os(), TensorRole::Input),
            FlowClass::Systolic { dp: [1, 0], dt: 1 }
        );
    }

    #[test]
    fn table1_rank1_multicast_and_reduction() {
        // T = [[0,1,0],[0,0,1],[1,0,0]]: p=(j,k), t=i.
        let t = Stt::from_rows([[0, 1, 0], [0, 0, 1], [1, 0, 0]]).unwrap();
        // A[i,k]: null = j-direction -> T·(0,1,0) = (1,0,0): multicast along p1.
        let a = Mat::from_i64(&[&[1, 0, 0], &[0, 0, 1]]);
        assert_eq!(
            classify_tensor(&a, &t, TensorRole::Input),
            FlowClass::Multicast { dp: [1, 0] }
        );
        // C[i,j]: null = k-direction -> T·(0,0,1) = (0,1,0): reduction tree.
        let c = Mat::from_i64(&[&[1, 0, 0], &[0, 1, 0]]);
        assert_eq!(
            classify_tensor(&c, &t, TensorRole::Output),
            FlowClass::ReductionTree { dp: [0, 1] }
        );
    }

    #[test]
    fn table1_rank2_broadcast() {
        // Tensor depends only on x3 = t (identity T): reuse plane is the
        // whole PE array at fixed time.
        let a = Mat::from_i64(&[&[0, 0, 1]]);
        let got = classify_tensor(&a, &Stt::identity(), TensorRole::Input);
        assert!(matches!(got, FlowClass::Broadcast { .. }), "got {got}");
    }

    #[test]
    fn table1_rank2_multicast_stationary() {
        // Tensor depends only on x1 = p1 (identity T): plane spans p2 and t.
        let a = Mat::from_i64(&[&[1, 0, 0]]);
        assert_eq!(
            classify_tensor(&a, &Stt::identity(), TensorRole::Input),
            FlowClass::MulticastStationary { dp: [0, 1] }
        );
    }

    #[test]
    fn table1_rank2_systolic_multicast() {
        // Tensor depends only on x1; choose T so the reuse plane's basis maps
        // to {(1,0,1), (0,1,0)} — a plane that neither contains nor is
        // perpendicular to the t-axis.
        let t = Stt::from_rows([[1, 1, 0], [0, 0, 1], [0, 1, 0]]).unwrap();
        let a = Mat::from_i64(&[&[1, 0, 0]]);
        let got = classify_tensor(&a, &t, TensorRole::Input);
        match got {
            FlowClass::SystolicMulticast {
                systolic_dt,
                multicast_dp,
                ..
            } => {
                assert!(systolic_dt > 0);
                assert_ne!(multicast_dp, [0, 0]);
            }
            other => panic!("expected systolic+multicast, got {other}"),
        }
    }

    #[test]
    fn rank3_full_reuse() {
        // Tensor independent of all selected loops (zero access matrix row
        // set cannot be built; emulate with a 1-row zero matrix).
        let a = Mat::zeros(1, 3);
        assert_eq!(
            classify_tensor(&a, &t_os(), TensorRole::Input),
            FlowClass::FullReuse
        );
    }

    #[test]
    fn orientation_prefers_positive_dt() {
        // Reuse direction (0,-1,-1) must be flipped to (0,1,1).
        let t = Stt::from_rows([[1, 0, 0], [0, -1, 0], [1, -1, 1]]).unwrap();
        let a = Mat::from_i64(&[&[1, 0, 0], &[0, 0, 1]]);
        match classify_tensor(&a, &t, TensorRole::Input) {
            FlowClass::Systolic { dt, .. } => assert!(dt > 0),
            other => panic!("expected systolic, got {other}"),
        }
    }

    #[test]
    fn letters_and_ranks() {
        assert_eq!(FlowClass::Unicast.letter(), 'U');
        assert_eq!(FlowClass::Stationary { dt: 1 }.letter(), 'T');
        assert_eq!(FlowClass::Systolic { dp: [1, 0], dt: 1 }.letter(), 'S');
        assert_eq!(FlowClass::Multicast { dp: [1, 0] }.letter(), 'M');
        assert_eq!(FlowClass::ReductionTree { dp: [1, 0] }.letter(), 'M');
        assert_eq!(
            FlowClass::MulticastStationary { dp: [1, 0] }.letter(),
            'B'
        );
        assert_eq!(FlowClass::Unicast.rank(), 0);
        assert_eq!(FlowClass::Stationary { dt: 1 }.rank(), 1);
        assert_eq!(FlowClass::FullReuse.rank(), 3);
        assert!(FlowClass::MulticastStationary { dp: [1, 0] }
            .letter_aliases()
            .contains(&'T'));
    }

    #[test]
    fn predicates() {
        assert!(FlowClass::Multicast { dp: [1, 0] }.has_same_cycle_fanout());
        assert!(!FlowClass::Systolic { dp: [1, 0], dt: 1 }.has_same_cycle_fanout());
        assert!(FlowClass::Stationary { dt: 1 }.is_stationary_like());
        assert!(!FlowClass::Unicast.is_stationary_like());
    }

    #[test]
    fn display_strings() {
        assert_eq!(
            FlowClass::Systolic { dp: [0, 1], dt: 1 }.to_string(),
            "systolic(dp=(0,1), dt=1)"
        );
        assert!(FlowClass::FullReuse.to_string().contains("full"));
    }
}

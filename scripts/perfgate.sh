#!/usr/bin/env bash
# Performance gate: build, run the test suite, then benchmark the evaluation
# hot path. perfgate enforces the pay-for-use overhead ceilings (trace-off,
# fault-armed, obs-disabled), the batch_sim floor (the 64-lane batched engine
# must retire >=4x scalar fault-campaign throughput), and — on multi-core
# hosts only — the parallel-explore speedup floor. Fails if compiled
# interpreter throughput regresses more than 20% against the committed
# BENCH_perfgate.json baseline (skips that gate with a warning when no
# baseline is committed). Regenerates BENCH_perfgate.json.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q

if [ -f BENCH_perfgate.json ]; then
    baseline=$(mktemp)
    trap 'rm -f "$baseline"' EXIT
    cp BENCH_perfgate.json "$baseline"
    ./target/release/perfgate --check-against "$baseline"
else
    echo "warning: no committed BENCH_perfgate.json baseline; running without regression gate" >&2
    ./target/release/perfgate
fi

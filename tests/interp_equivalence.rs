//! Differential test of the compiled bytecode evaluator against the
//! tree-walking reference: a systolic PE is driven for 200 cycles with
//! seeded-random pokes on every input port, and **every flat net** must match
//! between the two interpreters after every cycle.
//!
//! This is deliberately stronger than checking the output ports — alias
//! elimination, peephole fusion, and precomputed masks all have to reproduce
//! the reference value of every intermediate wire and register, not just the
//! values that happen to reach the boundary.

use rand::rngs::SmallRng;
use rand::{RngCore, SeedableRng};
use tensorlib::hw::interp::{elaborate, FlatDesign, Interpreter};
use tensorlib::hw::netlist::Dir;
use tensorlib::hw::pe::{build_pe, PeIoKind, PeSpec, PeTensorSpec};
use tensorlib::ir::DataType;

/// A weight-stationary-flavoured systolic PE: systolic activation input,
/// double-buffered stationary weight, systolic partial-sum output — the
/// richest single-PE expression mix the generator emits (sign-extended
/// multiply, accumulate mux, enable-gated delay chains, phase muxing).
fn systolic_pe() -> FlatDesign {
    let spec = PeSpec {
        name: "pe".into(),
        datatype: DataType::Int16,
        tensors: vec![
            PeTensorSpec {
                tensor: "a".into(),
                kind: PeIoKind::SystolicIn,
                delay: 1,
            },
            PeTensorSpec {
                tensor: "b".into(),
                kind: PeIoKind::StationaryIn,
                delay: 1,
            },
            PeTensorSpec {
                tensor: "c".into(),
                kind: PeIoKind::SystolicOut,
                delay: 1,
            },
        ],
    };
    elaborate(&[build_pe(&spec)], &[], "pe").unwrap()
}

#[test]
fn compiled_matches_tree_walking_on_every_net_for_200_random_cycles() {
    let flat = systolic_pe();
    let input_ids: Vec<usize> = flat
        .ports()
        .iter()
        .filter(|(_, dir)| *dir == Dir::Input)
        .map(|&(id, _)| id)
        .collect();
    let net_names: Vec<String> = flat.nets().iter().map(|n| n.name.clone()).collect();
    assert!(!input_ids.is_empty());
    assert!(net_names.len() > input_ids.len(), "PE has internal nets");

    let mut compiled = Interpreter::new(flat.clone());
    let mut tree = Interpreter::new_tree_walking(flat);
    assert!(compiled.is_compiled());
    assert!(!tree.is_compiled());

    let mut rng = SmallRng::seed_from_u64(0xD1FF);
    for cycle in 0..200 {
        // Random values on every input port (the interpreter masks to each
        // port's width); control ports toggle as aggressively as data ports.
        let pokes: Vec<(usize, u64)> = input_ids.iter().map(|&id| (id, rng.next_u64())).collect();
        compiled.poke_by_id(pokes.iter().copied());
        tree.poke_by_id(pokes.iter().copied());
        compiled.step();
        tree.step();
        for name in &net_names {
            assert_eq!(
                compiled.peek(name),
                tree.peek(name),
                "net {name} diverged at cycle {cycle}"
            );
            assert_eq!(
                compiled.peek_signed(name),
                tree.peek_signed(name),
                "signed read of {name} diverged at cycle {cycle}"
            );
        }
    }
}

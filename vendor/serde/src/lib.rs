//! Offline stand-in for `serde`.
//!
//! The real crates.io registry is not reachable from this build environment,
//! so the workspace vendors the *surface* it actually uses: the
//! [`Serialize`]/[`Deserialize`] traits, `#[derive(Serialize, Deserialize)]`
//! (re-exported from the companion `serde_derive` proc-macro crate), and a
//! small self-describing [`Content`] model that `serde_json` renders.
//!
//! This is not wire-compatible with upstream serde's internals, but the JSON
//! produced for the types in this workspace (field-named structs, externally
//! tagged enums, sequences, maps, primitives) matches what upstream
//! `serde_json` would emit for the same derives.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// A self-describing serialized value, the intermediate form between
/// [`Serialize`] and a concrete format writer such as `serde_json`.
#[derive(Debug, Clone, PartialEq)]
pub enum Content {
    /// JSON `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// An unsigned integer.
    U64(u64),
    /// A signed integer.
    I64(i64),
    /// A float.
    F64(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Seq(Vec<Content>),
    /// An ordered string-keyed map (field order preserved).
    Map(Vec<(String, Content)>),
}

/// Types that can describe themselves as a [`Content`] tree.
pub trait Serialize {
    /// Converts `self` into the self-describing value model.
    fn to_content(&self) -> Content;
}

/// Marker trait mirroring upstream serde's `Deserialize`. The workspace only
/// derives it (for API parity with the paper repo); no format in this tree
/// deserializes, so the trait carries no methods.
pub trait Deserialize {}

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content { Content::U64(*self as u64) }
        }
        impl Deserialize for $t {}
    )*};
}

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content { Content::I64(*self as i64) }
        }
        impl Deserialize for $t {}
    )*};
}

impl_uint!(u8, u16, u32, u64, usize);
impl_int!(i8, i16, i32, i64, isize);

impl Serialize for bool {
    fn to_content(&self) -> Content {
        Content::Bool(*self)
    }
}
impl Deserialize for bool {}

impl Serialize for f32 {
    fn to_content(&self) -> Content {
        Content::F64(f64::from(*self))
    }
}
impl Deserialize for f32 {}

impl Serialize for f64 {
    fn to_content(&self) -> Content {
        Content::F64(*self)
    }
}
impl Deserialize for f64 {}

impl Serialize for char {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}
impl Deserialize for char {}

impl Serialize for str {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl Serialize for String {
    fn to_content(&self) -> Content {
        Content::Str(self.clone())
    }
}
impl Deserialize for String {}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}
impl<T: Deserialize> Deserialize for Box<T> {}

impl<T: Serialize> Serialize for Option<T> {
    fn to_content(&self) -> Content {
        match self {
            Some(v) => v.to_content(),
            None => Content::Null,
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {}

impl<T: Serialize> Serialize for [T] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}
impl<T: Deserialize, const N: usize> Deserialize for [T; N] {}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_content(&self) -> Content {
                Content::Seq(vec![$(self.$idx.to_content()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {}
    )*};
}

impl_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

impl<K: ToString, V: Serialize, S> Serialize for std::collections::HashMap<K, V, S> {
    fn to_content(&self) -> Content {
        let mut entries: Vec<(String, Content)> = self
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_content()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Content::Map(entries)
    }
}

impl<K: ToString, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn to_content(&self) -> Content {
        Content::Map(
            self.iter()
                .map(|(k, v)| (k.to_string(), v.to_content()))
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_and_containers_serialize() {
        assert_eq!(5u32.to_content(), Content::U64(5));
        assert_eq!((-5i64).to_content(), Content::I64(-5));
        assert_eq!(true.to_content(), Content::Bool(true));
        assert_eq!("x".to_content(), Content::Str("x".into()));
        assert_eq!(
            Some(1u8).to_content(),
            Content::U64(1),
        );
        assert_eq!(None::<u8>.to_content(), Content::Null);
        assert_eq!(
            vec![1u8, 2].to_content(),
            Content::Seq(vec![Content::U64(1), Content::U64(2)])
        );
        assert_eq!(
            (1u8, "a").to_content(),
            Content::Seq(vec![Content::U64(1), Content::Str("a".into())])
        );
        assert_eq!([3i64; 2].to_content(),
            Content::Seq(vec![Content::I64(3), Content::I64(3)]));
    }
}

//! Property-based tests for the exact linear algebra kernel.
//!
//! These exercise the algebraic laws that the STT analysis relies on: field
//! axioms for `Frac`, rank/null-space duality, inverse round trips, and the
//! Penrose conditions for the pseudo-inverse.

use proptest::prelude::*;
use tensorlib_linalg::{primitive_integer_vector, Frac, Mat};

fn small_frac() -> impl Strategy<Value = Frac> {
    (-20i128..=20, 1i128..=6).prop_map(|(n, d)| Frac::new(n, d))
}

fn small_mat(rows: usize, cols: usize) -> impl Strategy<Value = Mat> {
    proptest::collection::vec(small_frac(), rows * cols).prop_map(move |v| {
        let mut idx = 0;
        Mat::from_fn(rows, cols, |_, _| {
            let f = v[idx];
            idx += 1;
            f
        })
    })
}

fn int_mat(rows: usize, cols: usize) -> impl Strategy<Value = Mat> {
    proptest::collection::vec(-3i64..=3, rows * cols).prop_map(move |v| {
        let mut idx = 0;
        Mat::from_fn(rows, cols, |_, _| {
            let f = Frac::from(v[idx]);
            idx += 1;
            f
        })
    })
}

proptest! {
    #[test]
    fn frac_field_axioms(a in small_frac(), b in small_frac(), c in small_frac()) {
        prop_assert_eq!(a + b, b + a);
        prop_assert_eq!(a * b, b * a);
        prop_assert_eq!((a + b) + c, a + (b + c));
        prop_assert_eq!((a * b) * c, a * (b * c));
        prop_assert_eq!(a * (b + c), a * b + a * c);
        prop_assert_eq!(a + Frac::ZERO, a);
        prop_assert_eq!(a * Frac::ONE, a);
        prop_assert_eq!(a - a, Frac::ZERO);
        if !a.is_zero() {
            prop_assert_eq!(a * a.recip(), Frac::ONE);
        }
    }

    #[test]
    fn frac_ordering_total(a in small_frac(), b in small_frac()) {
        let lt = a < b;
        let gt = a > b;
        let eq = a == b;
        prop_assert_eq!(lt as u8 + gt as u8 + eq as u8, 1);
        prop_assert_eq!(a.min(b) <= a.max(b), true);
    }

    #[test]
    fn matrix_ring_laws(a in small_mat(3, 3), b in small_mat(3, 3), c in small_mat(3, 3)) {
        prop_assert_eq!(&(&a + &b) + &c, &a + &(&b + &c));
        prop_assert_eq!(&(&a * &b) * &c, &a * &(&b * &c));
        prop_assert_eq!(&a * &(&b + &c), &(&a * &b) + &(&a * &c));
        prop_assert_eq!((&a * &b).transpose(), &b.transpose() * &a.transpose());
    }

    #[test]
    fn rank_bounds_and_transpose_invariance(a in int_mat(3, 4)) {
        let r = a.rank();
        prop_assert!(r <= 3);
        prop_assert_eq!(r, a.transpose().rank());
        // Rank–nullity.
        prop_assert_eq!(r + a.null_space().cols(), 4);
    }

    #[test]
    fn null_space_is_annihilated(a in int_mat(2, 4)) {
        let ns = a.null_space();
        prop_assert!((&a * &ns).is_zero());
        // Basis is full column rank.
        prop_assert_eq!(ns.rank(), ns.cols());
    }

    #[test]
    fn inverse_round_trip(a in int_mat(3, 3)) {
        if let Some(inv) = a.inverse() {
            prop_assert_eq!(&a * &inv, Mat::identity(3));
            prop_assert_eq!(&inv * &a, Mat::identity(3));
            prop_assert!(!a.determinant().is_zero());
        } else {
            prop_assert!(a.determinant().is_zero());
        }
    }

    #[test]
    fn determinant_is_multiplicative(a in int_mat(3, 3), b in int_mat(3, 3)) {
        prop_assert_eq!((&a * &b).determinant(), a.determinant() * b.determinant());
    }

    #[test]
    fn pseudo_inverse_penrose_conditions(a in int_mat(2, 3)) {
        let p = a.pseudo_inverse();
        prop_assert_eq!(&(&a * &p) * &a, a.clone());
        prop_assert_eq!(&(&p * &a) * &p, p.clone());
        // Symmetry of the projectors (Penrose 3 & 4).
        let ap = &a * &p;
        let pa = &p * &a;
        prop_assert_eq!(ap.transpose(), ap);
        prop_assert_eq!(pa.transpose(), pa);
    }

    #[test]
    fn solve_produces_solutions(a in int_mat(3, 3), x in int_mat(3, 1)) {
        // Construct a consistent system and check we solve it.
        let b = &a * &x;
        let got = a.solve(&b);
        prop_assert!(got.is_some());
        let got = got.unwrap();
        prop_assert_eq!(&a * &got, b);
    }

    #[test]
    fn primitive_vector_is_primitive(v in proptest::collection::vec(small_frac(), 1..5)) {
        match primitive_integer_vector(&v) {
            None => prop_assert!(v.iter().all(|f| f.is_zero())),
            Some(ints) => {
                // Same direction: cross-ratios match.
                let g = ints.iter().fold(0i128, |g, &x| tensorlib_linalg::gcd_i128(g, x as i128));
                prop_assert_eq!(g, 1);
                // First nonzero entry positive.
                let first = ints.iter().find(|&&x| x != 0).copied().unwrap();
                prop_assert!(first > 0);
                // Collinearity with the input.
                for i in 0..v.len() {
                    for j in 0..v.len() {
                        let lhs = v[i] * Frac::from(ints[j]);
                        let rhs = v[j] * Frac::from(ints[i]);
                        prop_assert_eq!(lhs, rhs);
                    }
                }
            }
        }
    }
}

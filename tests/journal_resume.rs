//! Crash-safety integration tests for journaled campaigns (DESIGN.md §14).
//!
//! A `--resume` campaign must survive `kill -9` at *any* byte: whatever
//! prefix of the journal reached disk, resuming reproduces the clean run's
//! report byte-for-byte. The sweep below simulates the crash at every
//! offset inside the final record; the other tests pin the same contract
//! for the fuzz and explore runners and for the panic-quarantine path.

use tensorlib::explore::{explore_durable, ExploreOptions};
use tensorlib::ir::workloads;
use tensorlib_sim::journal::JOURNAL_FILE;
use tensorlib_sim::resilience::{run_gemm_campaign, run_gemm_campaign_durable, CampaignConfig};
use tensorlib_sim::verify::{run_verify, run_verify_durable, VerifyConfig};
use tensorlib_sim::DurabilityOptions;

fn tmpdir(tag: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!("tl_it_journal_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

/// Byte offset where the journal's final record starts, found by walking
/// the documented on-disk layout: a 24-byte file header, then per record a
/// 16-byte header `[u32 chunk_index][u32 payload_len][u64 checksum]`
/// followed by `payload_len` payload bytes.
fn last_record_start(journal: &[u8]) -> usize {
    const HEADER_LEN: usize = 24;
    const RECORD_HEADER_LEN: usize = 16;
    let mut off = HEADER_LEN;
    let mut last = off;
    while off + RECORD_HEADER_LEN <= journal.len() {
        last = off;
        let len =
            u32::from_le_bytes(journal[off + 4..off + 8].try_into().unwrap()) as usize;
        off += RECORD_HEADER_LEN + len;
    }
    assert_eq!(off, journal.len(), "journal does not end on a record boundary");
    last
}

/// The tentpole acceptance sweep: a fault campaign whose journal is cut at
/// *every* byte offset of the last record — every possible `kill -9` point
/// during the final append — must resume to the byte-identical report.
#[test]
fn faults_report_survives_a_torn_journal_tail_at_every_byte_offset() {
    let cfg = CampaignConfig {
        faults: 8,
        seed: 3,
        ..CampaignConfig::default()
    };
    let golden = serde_json::to_string_pretty(&run_gemm_campaign(&cfg).unwrap()).unwrap();
    let dir = tmpdir("torn_sweep");
    let opts = DurabilityOptions {
        chunk_size: Some(2),
        ..DurabilityOptions::with_dir(&dir)
    };
    let (full, stats) = run_gemm_campaign_durable(&cfg, &opts).unwrap();
    assert_eq!(serde_json::to_string_pretty(&full).unwrap(), golden);
    assert_eq!(stats.chunks_executed, 4);
    let path = dir.join(JOURNAL_FILE);
    let complete = std::fs::read(&path).unwrap();
    let tail_start = last_record_start(&complete);
    for cut in tail_start..complete.len() {
        std::fs::write(&path, &complete[..cut]).unwrap();
        let (resumed, stats) = run_gemm_campaign_durable(&cfg, &opts).unwrap();
        assert_eq!(
            serde_json::to_string_pretty(&resumed).unwrap(),
            golden,
            "report bytes diverged after truncation at offset {cut}"
        );
        assert_eq!(stats.chunks_replayed, 3, "cut={cut}");
        assert_eq!(stats.chunks_executed, 1, "cut={cut}");
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

/// The fuzz runner honours the same contract: crash after the first record
/// lands, resume, and the differential report is byte-identical.
#[test]
fn fuzz_verify_report_resumes_byte_identically_after_a_crash() {
    let cfg = VerifyConfig {
        seeds: 6,
        cycles: 32,
        ..VerifyConfig::default()
    };
    let golden = serde_json::to_string_pretty(&run_verify(&cfg, true, true)).unwrap();
    let dir = tmpdir("fuzz_crash");
    let opts = DurabilityOptions {
        chunk_size: Some(2),
        ..DurabilityOptions::with_dir(&dir)
    };
    let (full, stats) = run_verify_durable(&cfg, true, true, &opts).unwrap();
    assert_eq!(serde_json::to_string_pretty(&full).unwrap(), golden);
    assert!(stats.chunks_total >= 3, "campaign should span several chunks");
    // Keep only the first record — a crash early in the campaign.
    let path = dir.join(JOURNAL_FILE);
    let complete = std::fs::read(&path).unwrap();
    let first_end = {
        const HEADER_LEN: usize = 24;
        const RECORD_HEADER_LEN: usize = 16;
        let len = u32::from_le_bytes(
            complete[HEADER_LEN + 4..HEADER_LEN + 8].try_into().unwrap(),
        ) as usize;
        HEADER_LEN + RECORD_HEADER_LEN + len
    };
    std::fs::write(&path, &complete[..first_end]).unwrap();
    let (resumed, stats) = run_verify_durable(&cfg, true, true, &opts).unwrap();
    assert_eq!(serde_json::to_string_pretty(&resumed).unwrap(), golden);
    assert_eq!(stats.chunks_replayed, 1);
    assert_eq!(stats.chunks_executed, stats.chunks_total - 1);
    std::fs::remove_dir_all(&dir).unwrap();
}

/// ... and so does the design-space explorer.
#[test]
fn explore_sweep_resumes_byte_identically_after_a_crash() {
    let kernel = workloads::gemm(16, 16, 16);
    let opts = ExploreOptions::default();
    // Inert durability short-circuits to the legacy sweep — the golden run.
    let (golden_report, _) =
        explore_durable(&kernel, &opts, &DurabilityOptions::default()).unwrap();
    let golden = serde_json::to_string_pretty(&golden_report).unwrap();
    let dir = tmpdir("explore_crash");
    let durability = DurabilityOptions {
        chunk_size: Some(25),
        ..DurabilityOptions::with_dir(&dir)
    };
    let (full, stats) = explore_durable(&kernel, &opts, &durability).unwrap();
    assert_eq!(serde_json::to_string_pretty(&full).unwrap(), golden);
    assert!(stats.chunks_total >= 2);
    // Tear mid-record, as a crash during the final append would.
    let path = dir.join(JOURNAL_FILE);
    let complete = std::fs::read(&path).unwrap();
    std::fs::write(&path, &complete[..complete.len() - 5]).unwrap();
    let (resumed, stats) = explore_durable(&kernel, &opts, &durability).unwrap();
    assert_eq!(serde_json::to_string_pretty(&resumed).unwrap(), golden);
    assert_eq!(stats.chunks_executed, 1, "only the torn chunk re-runs");
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Graceful degradation: a work item that panics on every retry is
/// quarantined as a typed outcome — the campaign still completes, still
/// journals, and a resume replays the quarantined outcome verbatim rather
/// than re-running (and re-crashing on) it.
#[test]
fn quarantined_panic_survives_resume() {
    let cfg = CampaignConfig {
        faults: 8,
        seed: 3,
        ..CampaignConfig::default()
    };
    let victim = run_gemm_campaign(&cfg).unwrap().outcomes[2].fault.target.clone();
    let dir = tmpdir("quarantine");
    let opts = DurabilityOptions {
        chunk_size: Some(4),
        panic_retries: 1,
        chaos_panic_targets: vec![victim],
        ..DurabilityOptions::with_dir(&dir)
    };
    let (report, _) = run_gemm_campaign_durable(&cfg, &opts).unwrap();
    assert_eq!(report.faults, 8, "campaign completed despite the panic");
    let quarantined = report
        .outcomes
        .iter()
        .filter(|o| o.error.as_deref().is_some_and(|e| e.contains("quarantined")))
        .count();
    assert!(quarantined > 0, "panic was captured as a typed outcome");
    let golden = serde_json::to_string_pretty(&report).unwrap();
    // Resume over the completed journal: everything replays, including the
    // quarantined outcomes, and the report bytes do not change.
    let (replayed, stats) = run_gemm_campaign_durable(&cfg, &opts).unwrap();
    assert_eq!(serde_json::to_string_pretty(&replayed).unwrap(), golden);
    assert_eq!(stats.chunks_executed, 0);
    assert_eq!(stats.chunks_replayed, stats.chunks_total);
    std::fs::remove_dir_all(&dir).unwrap();
}

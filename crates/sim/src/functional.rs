//! Bit-exact functional simulation of a generated design.
//!
//! Every (tile, cycle, PE) slot recovers its loop point through the inverse
//! STT (`x = T⁻¹·[p; t]`), performs one multiply-accumulate on real data, and
//! the accumulated output is compared against the reference executor. This
//! closes the loop on the whole analysis chain: if the dataflow
//! classification, tiling, or transformation math were wrong, outputs would
//! disagree or coverage would be incomplete.
//!
//! The simulator also measures *true* scratchpad traffic: a tensor element is
//! charged to the cycle of its first use inside a tile (later uses ride the
//! reuse structure — stationary registers, systolic forwarding, or multicast
//! fan-out), which is exactly the paper's premise that reuse saves bandwidth.

use std::collections::HashMap;
use std::fmt;

use serde::{Deserialize, Serialize};
use tensorlib_hw::design::AcceleratorDesign;
use tensorlib_ir::{DenseTensor, Kernel};

/// Functional-simulation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The design was generated for a different kernel.
    KernelMismatch {
        /// Kernel the design was generated for.
        design_kernel: String,
        /// Kernel passed to the simulator.
        given_kernel: String,
    },
    /// Not every loop point was executed exactly once.
    CoverageGap {
        /// MACs the kernel requires.
        expected: u64,
        /// MACs the simulation executed.
        executed: u64,
    },
    /// The simulated output tensor disagrees with the reference executor.
    OutputMismatch {
        /// First mismatching index.
        index: Vec<i64>,
        /// Reference value.
        expected: i64,
        /// Simulated value.
        got: i64,
    },
    /// The run would exceed the caller's per-design-point cycle budget.
    CycleBudgetExceeded {
        /// The budget the caller set.
        budget: u64,
        /// Cycles the full run would have needed.
        needed: u64,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::KernelMismatch {
                design_kernel,
                given_kernel,
            } => write!(
                f,
                "design was generated for kernel {design_kernel:?}, simulated with {given_kernel:?}"
            ),
            SimError::CoverageGap { expected, executed } => write!(
                f,
                "space-time mapping executed {executed} MACs, kernel requires {expected}"
            ),
            SimError::OutputMismatch {
                index,
                expected,
                got,
            } => write!(
                f,
                "output mismatch at {index:?}: reference {expected}, simulated {got}"
            ),
            SimError::CycleBudgetExceeded { budget, needed } => write!(
                f,
                "design point needs {needed} simulated cycles, over the {budget}-cycle budget"
            ),
        }
    }
}

impl std::error::Error for SimError {}

/// Statistics from a successful functional run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FunctionalRun {
    /// `true` — returned only when the output matched the reference.
    pub matches_reference: bool,
    /// Compute cycles simulated (tiles × tile time extent).
    pub cycles_simulated: u64,
    /// Multiply-accumulates executed.
    pub macs_executed: u64,
    /// Mean scratchpad words delivered per compute cycle (first-use
    /// accounting, inputs only).
    pub avg_new_words_per_cycle: f64,
    /// Worst single-cycle scratchpad demand in words.
    pub peak_new_words_per_cycle: u64,
    /// Fraction of (PE × cycle) slots that performed work.
    pub pe_busy_fraction: f64,
}

/// Runs the design on random inputs (deterministic per `seed`) and checks the
/// result against [`Kernel::execute_reference`].
///
/// # Errors
///
/// Returns [`SimError`] if the kernel mismatches the design, the mapping
/// leaves loop points uncovered (or covers them twice), or any output element
/// differs from the reference.
///
/// # Examples
///
/// See the crate-level example in [`crate`].
pub fn simulate(
    design: &AcceleratorDesign,
    kernel: &Kernel,
    seed: u64,
) -> Result<FunctionalRun, SimError> {
    simulate_budgeted(design, kernel, seed, None)
}

/// [`simulate`] with an optional per-run cycle budget. The total simulated
/// cycle count is known before any work happens (outer points × tiles ×
/// tile time extent), so an over-budget run fails fast with
/// [`SimError::CycleBudgetExceeded`] instead of grinding through it.
///
/// # Errors
///
/// Everything [`simulate`] returns, plus [`SimError::CycleBudgetExceeded`].
pub fn simulate_budgeted(
    design: &AcceleratorDesign,
    kernel: &Kernel,
    seed: u64,
    cycle_budget: Option<u64>,
) -> Result<FunctionalRun, SimError> {
    let _span = tensorlib_obs::span("sim.functional");
    tensorlib_obs::counter_add("sim.functional_runs", 1);
    if design.dataflow().kernel_name() != kernel.name() {
        return Err(SimError::KernelMismatch {
            design_kernel: design.dataflow().kernel_name().to_string(),
            given_kernel: kernel.name().to_string(),
        });
    }
    if let Some(budget) = cycle_budget {
        let outer_idx = design.dataflow().selection().outer_indices(kernel);
        let outer_points: u64 = outer_idx
            .iter()
            .map(|&i| kernel.loop_nest().iters()[i].extent())
            .product();
        let tiles: u64 = design.tiling().tile_counts.iter().product();
        let needed = outer_points
            .saturating_mul(tiles)
            .saturating_mul(design.tiling().t_extent);
        if needed > budget {
            return Err(SimError::CycleBudgetExceeded { budget, needed });
        }
    }
    let inputs = kernel.random_inputs(seed);
    let reference = kernel
        .execute_reference(&inputs)
        .expect("self-generated inputs fit the kernel");

    let dataflow = design.dataflow();
    let stt = dataflow.stt();
    let tiling = *design.tiling();
    let array = design.config().array;
    let sel_idx = dataflow.selection().indices();
    let sel_ext = dataflow.selected_extents();
    let outer_idx = dataflow.selection().outer_indices(kernel);
    let outer_ext: Vec<u64> = outer_idx
        .iter()
        .map(|&i| kernel.loop_nest().iters()[i].extent())
        .collect();
    let n_loops = kernel.loop_nest().len();

    let input_decls = kernel.inputs();
    let out_access = kernel.output().access().clone();
    let mut out = DenseTensor::zeros(&kernel.output_dims());

    let mut macs_executed = 0u64;
    let mut cycles_simulated = 0u64;
    let mut total_new_words = 0u64;
    let mut peak_new_words = 0u64;

    // Enumerate outer loop points.
    let outer_points = OdometerIter::new(&outer_ext);
    for outer_point in outer_points {
        // Enumerate tiles of the selected loops.
        let tile_counts = tiling.tile_counts;
        let tiles = OdometerIter::new(&tile_counts);
        for tile in tiles {
            // First-use tracking for traffic accounting, per tile.
            let mut first_use: HashMap<(usize, Vec<i64>), u64> = HashMap::new();
            let mut per_cycle_new: Vec<u64> = vec![0; tiling.t_extent as usize];
            for t_local in 0..tiling.t_extent as i64 {
                cycles_simulated += 1;
                for pe_r in 0..array.rows as i64 {
                    for pe_c in 0..array.cols as i64 {
                        let st = [
                            pe_r - tiling.space_offset[0],
                            pe_c - tiling.space_offset[1],
                            t_local - tiling.t_offset,
                        ];
                        let Some(x_local) = stt.unapply(&st) else {
                            continue;
                        };
                        // Inside the tile?
                        let mut global_sel = [0i64; 3];
                        let mut ok = true;
                        for d in 0..3 {
                            if x_local[d] < 0 || x_local[d] >= tiling.tile_extents[d] as i64 {
                                ok = false;
                                break;
                            }
                            let g = tile[d] as i64 * tiling.tile_extents[d] as i64 + x_local[d];
                            if g >= sel_ext[d] as i64 {
                                ok = false;
                                break;
                            }
                            global_sel[d] = g;
                        }
                        if !ok {
                            continue;
                        }
                        // Assemble the full loop point.
                        let mut point = vec![0i64; n_loops];
                        for d in 0..3 {
                            point[sel_idx[d]] = global_sel[d];
                        }
                        for (oi, &li) in outer_idx.iter().enumerate() {
                            point[li] = outer_point[oi] as i64;
                        }
                        // One MAC.
                        let mut prod = 1i64;
                        for (ti, decl) in input_decls.iter().enumerate() {
                            let idx = decl.access().eval(&point);
                            prod *= inputs[ti].get(&idx);
                            first_use
                                .entry((ti, idx))
                                .or_insert_with(|| {
                                    per_cycle_new[t_local as usize] += 1;
                                    t_local as u64
                                });
                        }
                        out.accumulate(&out_access.eval(&point), prod);
                        macs_executed += 1;
                    }
                }
            }
            for &n in &per_cycle_new {
                total_new_words += n;
                peak_new_words = peak_new_words.max(n);
            }
        }
    }

    if macs_executed != kernel.macs() {
        return Err(SimError::CoverageGap {
            expected: kernel.macs(),
            executed: macs_executed,
        });
    }
    // Bit-exact comparison.
    for (i, (&got, &want)) in out
        .as_slice()
        .iter()
        .zip(reference.as_slice().iter())
        .enumerate()
    {
        if got != want {
            // Recover the multi-dimensional index for the report.
            let mut rem = i;
            let dims = reference.dims();
            let mut idx = vec![0i64; dims.len()];
            for d in (0..dims.len()).rev() {
                idx[d] = (rem % dims[d]) as i64;
                rem /= dims[d];
            }
            return Err(SimError::OutputMismatch {
                index: idx,
                expected: want,
                got,
            });
        }
    }

    let slots = cycles_simulated * array.pes() as u64;
    Ok(FunctionalRun {
        matches_reference: true,
        cycles_simulated,
        macs_executed,
        avg_new_words_per_cycle: total_new_words as f64 / cycles_simulated.max(1) as f64,
        peak_new_words_per_cycle: peak_new_words,
        pe_busy_fraction: macs_executed as f64 / slots.max(1) as f64,
    })
}

/// Odometer over a multi-dimensional extent box (empty extents yield a single
/// empty point — the natural unit for "no outer loops").
struct OdometerIter {
    extents: Vec<u64>,
    current: Vec<u64>,
    done: bool,
}

impl OdometerIter {
    fn new(extents: &[u64]) -> OdometerIter {
        OdometerIter {
            extents: extents.to_vec(),
            current: vec![0; extents.len()],
            done: extents.contains(&0),
        }
    }
}

impl Iterator for OdometerIter {
    type Item = Vec<u64>;

    fn next(&mut self) -> Option<Vec<u64>> {
        if self.done {
            return None;
        }
        let out = self.current.clone();
        for d in (0..self.current.len()).rev() {
            self.current[d] += 1;
            if self.current[d] < self.extents[d] {
                return Some(out);
            }
            self.current[d] = 0;
        }
        self.done = true;
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tensorlib_dataflow::{Dataflow, LoopSelection, Stt};
    use tensorlib_hw::design::{generate, HwConfig};
    use tensorlib_hw::ArrayConfig;
    use tensorlib_ir::workloads;

    fn small_cfg() -> HwConfig {
        HwConfig {
            array: ArrayConfig::square(4),
            ..HwConfig::default()
        }
    }

    fn check(kernel: &Kernel, sel: [&str; 3], rows: [[i64; 3]; 3]) -> FunctionalRun {
        let selection = LoopSelection::by_names(kernel, sel).unwrap();
        let df = Dataflow::analyze(kernel, selection, Stt::from_rows(rows).unwrap()).unwrap();
        let design = generate(&df, &small_cfg()).unwrap();
        simulate(&design, kernel, 7).unwrap_or_else(|e| panic!("{}: {e}", df.name()))
    }

    #[test]
    fn gemm_output_stationary_matches() {
        let k = workloads::gemm(8, 8, 8);
        let run = check(&k, ["m", "n", "k"], [[1, 0, 0], [0, 1, 0], [1, 1, 1]]);
        assert!(run.matches_reference);
        assert_eq!(run.macs_executed, 512);
        assert!(run.pe_busy_fraction > 0.0);
    }

    #[test]
    fn gemm_weight_stationary_matches() {
        let k = workloads::gemm(8, 8, 8);
        let run = check(&k, ["m", "n", "k"], [[0, 0, 1], [0, 1, 0], [1, 1, 1]]);
        assert!(run.matches_reference);
    }

    #[test]
    fn gemm_multicast_matches() {
        let k = workloads::gemm(8, 8, 8);
        let run = check(&k, ["m", "n", "k"], [[0, 1, 0], [0, 0, 1], [1, 0, 0]]);
        assert!(run.matches_reference);
    }

    #[test]
    fn conv2d_kcx_matches() {
        let k = workloads::conv2d(4, 4, 6, 6, 3, 3);
        let run = check(&k, ["k", "c", "x"], [[1, 0, 0], [0, 0, 1], [1, 1, 1]]);
        assert!(run.matches_reference);
        assert_eq!(run.macs_executed, k.macs());
    }

    #[test]
    fn mttkrp_matches() {
        let k = workloads::mttkrp(6, 6, 6, 6);
        let run = check(&k, ["i", "j", "k"], [[1, 0, 0], [0, 1, 0], [1, 1, 1]]);
        assert!(run.matches_reference);
    }

    #[test]
    fn ttmc_matches() {
        let k = workloads::ttmc(4, 4, 4, 4, 4);
        let run = check(&k, ["i", "j", "k"], [[1, 0, 0], [0, 1, 0], [1, 1, 1]]);
        assert!(run.matches_reference);
    }

    #[test]
    fn depthwise_matches() {
        let k = workloads::depthwise_conv(4, 6, 6, 3, 3);
        let run = check(&k, ["k", "y", "x"], [[1, 0, 0], [0, 1, 0], [1, 1, 1]]);
        assert!(run.matches_reference);
    }

    #[test]
    fn batched_gemv_unicast_matches_and_is_traffic_heavy() {
        let k = workloads::batched_gemv(6, 6, 6);
        let run = check(&k, ["m", "n", "k"], [[1, 0, 0], [0, 1, 0], [1, 1, 1]]);
        assert!(run.matches_reference);
        // Unicast A: most uses are first uses.
        assert!(run.avg_new_words_per_cycle > 1.0);
    }

    #[test]
    fn reuse_cuts_traffic_versus_unicast() {
        // GEMM (full reuse) must deliver far fewer words per MAC than
        // Batched-GEMV (unicast A) on the same selection and STT.
        let g = workloads::gemm(8, 8, 8);
        let b = workloads::batched_gemv(8, 8, 8);
        let run_g = check(&g, ["m", "n", "k"], [[1, 0, 0], [0, 1, 0], [1, 1, 1]]);
        let run_b = check(&b, ["m", "n", "k"], [[1, 0, 0], [0, 1, 0], [1, 1, 1]]);
        let per_mac_g = run_g.avg_new_words_per_cycle * run_g.cycles_simulated as f64
            / run_g.macs_executed as f64;
        let per_mac_b = run_b.avg_new_words_per_cycle * run_b.cycles_simulated as f64
            / run_b.macs_executed as f64;
        assert!(
            per_mac_g < per_mac_b,
            "gemm {per_mac_g} words/MAC !< batched-gemv {per_mac_b}"
        );
    }

    #[test]
    fn kernel_mismatch_is_reported() {
        let k = workloads::gemm(8, 8, 8);
        let sel = LoopSelection::by_names(&k, ["m", "n", "k"]).unwrap();
        let df = Dataflow::analyze(&k, sel, Stt::output_stationary()).unwrap();
        let design = generate(&df, &small_cfg()).unwrap();
        let other = workloads::mttkrp(4, 4, 4, 4);
        assert!(matches!(
            simulate(&design, &other, 0).unwrap_err(),
            SimError::KernelMismatch { .. }
        ));
    }

    #[test]
    fn cycle_budget_is_enforced_before_any_work() {
        let k = workloads::gemm(8, 8, 8);
        let sel = LoopSelection::by_names(&k, ["m", "n", "k"]).unwrap();
        let df = Dataflow::analyze(&k, sel, Stt::output_stationary()).unwrap();
        let design = generate(&df, &small_cfg()).unwrap();
        // The unbudgeted run reports the true cycle count; a budget one
        // cycle below it must fail with exactly that count.
        let full = simulate_budgeted(&design, &k, 7, None).unwrap();
        let err = simulate_budgeted(&design, &k, 7, Some(full.cycles_simulated - 1)).unwrap_err();
        assert_eq!(
            err,
            SimError::CycleBudgetExceeded {
                budget: full.cycles_simulated - 1,
                needed: full.cycles_simulated
            }
        );
        assert!(err.to_string().contains("cycle budget"));
        // An exactly sufficient budget succeeds.
        let ok = simulate_budgeted(&design, &k, 7, Some(full.cycles_simulated)).unwrap();
        assert_eq!(ok, full);
    }

    #[test]
    fn error_display() {
        let e = SimError::CoverageGap {
            expected: 10,
            executed: 9,
        };
        assert!(e.to_string().contains("9"));
        let o = SimError::OutputMismatch {
            index: vec![1, 2],
            expected: 5,
            got: 6,
        };
        assert!(o.to_string().contains("[1, 2]"));
    }

    #[test]
    fn odometer_counts() {
        let pts: Vec<Vec<u64>> = OdometerIter::new(&[2, 3]).collect();
        assert_eq!(pts.len(), 6);
        // No extents: exactly one empty point.
        let unit: Vec<Vec<u64>> = OdometerIter::new(&[]).collect();
        assert_eq!(unit, vec![Vec::<u64>::new()]);
    }
}

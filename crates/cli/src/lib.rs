//! Command-line front end for the TensorLib accelerator generator.
//!
//! The binary is `tensorlib`; the library half holds the argument parsing
//! and command execution so they are unit-testable.
//!
//! ```text
//! tensorlib workloads
//! tensorlib analyze  <workload> <dataflow>          # e.g. gemm MNK-SST
//! tensorlib generate <workload> <dataflow> [-o f.v] [--rows N] [--cols N]
//! tensorlib emit     <workload> <dataflow> [--format text|yosys-json|verilog]
//!                    [--rows N] [--cols N] [--sim-cycles C --trace-out f] [-o f]
//! tensorlib parse    <netlist-file> [--format auto|text|yosys-json]
//!                    [--sim-cycles C --trace-out f] [-o report]
//! tensorlib simulate <workload> <dataflow> [--rows N] [--cols N]
//! tensorlib explore  <workload> [--top N]
//! tensorlib stats    <workload> <dataflow> [--rows N] [--cols N] [--tiles T] [-o f.json]
//! tensorlib trace    <workload> <dataflow> [--nets a,b,c] [--tiles T] [-o f.vcd]
//! tensorlib faults   [--rows N] [--cols N] [--k K] [--faults N] [--seed S]
//!                    [--harden tmr,parity,abft] [--workers W] [--lanes L]
//!                    [--sweep-acc] [-o f.json]
//! tensorlib fuzz     [--mode netlist|pipeline|both] [--seed S] [--seeds N]
//!                    [--cycles C] [--workers W] [--lanes L] [-o f.json]
//! tensorlib profile  <workload> [--top N] [--rows N] [--cols N] [--workers W] [-o f.trace.json]
//! ```
//!
//! Workloads take optional sizes after a colon: `gemm:64,64,64`,
//! `conv2d:64,64,56,56,3,3`, `mttkrp:32,32,32,32`, …
//!
//! A global `--profile <out.trace.json>` flag (any command, any position)
//! records framework spans during the run and writes a Chrome Trace Event
//! file next to the command's normal output; it never changes what the
//! command computes. Every JSON report carries a `schema_version` and a
//! run-provenance manifest (see [`tensorlib_obs::Provenance`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::path::PathBuf;
use std::time::Duration;

use tensorlib::cost::{hardening_overhead, Activity, HardeningOverhead};
use tensorlib::dataflow::dse::{find_named, DseConfig};
use tensorlib::dataflow::{Dataflow, LoopSelection, Stt};
use tensorlib::explore::{explore_durable, explore_outcome, ExploreOptions};
use tensorlib::hw::design::generate;
use tensorlib::hw::fault::Hardening;
use tensorlib::ir::workloads;
use tensorlib::sim::resilience::{
    run_accumulator_sweep_durable, run_gemm_campaign_durable, CampaignConfig, ResilienceReport,
};
use tensorlib::sim::verify::{run_verify_durable, VerifyConfig};
use tensorlib::sim::{DurabilityOptions, RunStats};
use tensorlib::{Accelerator, ArrayConfig, HwConfig, Kernel, SimConfig, TraceConfig};
use tensorlib_obs::{atomic_write, JournalProvenance, Provenance, SCHEMA_VERSION};

/// The process-wide SIGINT latch campaigns drain on; `main` installs it for
/// `--resume` runs and maps a latched interrupt to exit code 130.
pub use tensorlib::sim::interrupt;

/// A parsed command line.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// List the built-in Table II workloads.
    Workloads,
    /// Print the dataflow analysis for `workload` under `dataflow`.
    Analyze {
        /// Workload spec (`gemm:64,64,64`).
        workload: String,
        /// Paper-style dataflow name (`MNK-SST`).
        dataflow: String,
    },
    /// Generate Verilog.
    Generate {
        /// Workload spec.
        workload: String,
        /// Dataflow name.
        dataflow: String,
        /// Output path (`-` for stdout).
        out: String,
        /// PE array rows.
        rows: usize,
        /// PE array columns.
        cols: usize,
        /// Run the netlist optimizer before emission (`--opt=off` emits the
        /// raw generated netlist byte-identically to older releases).
        opt: bool,
    },
    /// Emit the generated design as a round-trippable interchange netlist
    /// (textual IR or Yosys JSON) or as Verilog. Interchange emissions
    /// self-check `parse(emit(design))` before any bytes leave the process.
    Emit {
        /// Workload spec.
        workload: String,
        /// Dataflow name.
        dataflow: String,
        /// PE array rows.
        rows: usize,
        /// PE array columns.
        cols: usize,
        /// `text`, `yosys-json`, or `verilog`.
        format: String,
        /// Run the netlist optimizer before emission.
        opt: bool,
        /// Cycles of the deterministic seeded smoke trace (`0` = none).
        sim_cycles: u64,
        /// Where the smoke trace is written (paired with `--sim-cycles`).
        trace_out: String,
        /// Output path (`-` for stdout).
        out: String,
    },
    /// Parse an interchange netlist back into the in-memory IR,
    /// re-validate and re-elaborate it, and report a summary; `--opt on`
    /// additionally re-runs the optimizer over the parsed netlist as an
    /// extra oracle.
    Parse {
        /// Input netlist path.
        input: String,
        /// `auto`, `text`, or `yosys-json`.
        format: String,
        /// Re-run the optimizer over the parsed modules and recompile.
        opt: bool,
        /// Cycles of the deterministic seeded smoke trace (`0` = none).
        sim_cycles: u64,
        /// Where the smoke trace is written (paired with `--sim-cycles`).
        trace_out: String,
        /// Report path (`-` for stdout).
        out: String,
    },
    /// Verify bit-exactly and report performance.
    Simulate {
        /// Workload spec.
        workload: String,
        /// Dataflow name.
        dataflow: String,
        /// PE array rows.
        rows: usize,
        /// PE array columns.
        cols: usize,
    },
    /// Sweep the design space and print the best designs.
    Explore {
        /// Workload spec.
        workload: String,
        /// How many designs to print.
        top: usize,
        /// Journal directory for crash-safe resume (`--resume`).
        resume: Option<String>,
        /// Per-chunk watchdog budget in seconds (`--chunk-timeout`).
        chunk_timeout: Option<u64>,
        /// JSON report path (`-` for stdout JSON, empty for the text table).
        out: String,
    },
    /// Run a profiled design-space sweep (functional verification on, so
    /// the trace covers every pipeline phase), print the per-phase wall-time
    /// breakdown, and write a Chrome Trace Event file plus a folded-stack
    /// flamegraph sibling.
    Profile {
        /// Workload spec.
        workload: String,
        /// How many designs to list in the breakdown.
        top: usize,
        /// PE array rows.
        rows: usize,
        /// PE array columns.
        cols: usize,
        /// Worker threads (`0` = one per core).
        workers: usize,
        /// Trace output path (`-` for stdout, empty for `reports/` default).
        out: String,
    },
    /// Run the generated netlist with hardware counters attached and emit a
    /// JSON stats report (measured counters + analytic cross-check).
    Stats {
        /// Workload spec.
        workload: String,
        /// Dataflow name.
        dataflow: String,
        /// PE array rows.
        rows: usize,
        /// PE array columns.
        cols: usize,
        /// Controller rounds to measure.
        tiles: u64,
        /// Run the netlist optimizer before measuring; the report then
        /// carries the pre/post size census.
        opt: bool,
        /// Output path (`-` for stdout, empty for `reports/` default).
        out: String,
    },
    /// Run with event tracing on selected nets and emit a VCD waveform.
    Trace {
        /// Workload spec.
        workload: String,
        /// Dataflow name.
        dataflow: String,
        /// PE array rows.
        rows: usize,
        /// PE array columns.
        cols: usize,
        /// Controller rounds to trace.
        tiles: u64,
        /// Comma-separated top-level nets to watch.
        nets: String,
        /// Run the netlist optimizer before tracing (watched nets survive
        /// optimization by the pass pipeline's preservation contract).
        opt: bool,
        /// Output path (`-` for stdout, empty for `reports/` default).
        out: String,
    },
    /// Run a seeded fault-injection campaign on a generated
    /// output-stationary GEMM design and emit a JSON resilience report
    /// (per-fault masked/detected/SDC classification plus the hardening
    /// options' priced area/power overhead).
    Faults {
        /// Array rows (and GEMM `m` extent).
        rows: usize,
        /// Array columns (and GEMM `n` extent).
        cols: usize,
        /// GEMM reduction extent.
        k: u64,
        /// Faults to sample and inject.
        faults: usize,
        /// Seed for input data and fault sampling.
        seed: u64,
        /// Hardening option list (`tmr,parity,abft`, `full`, `none`).
        harden: String,
        /// Campaign worker threads (`0` = one per core).
        workers: usize,
        /// Simulation lanes per bytecode pass (`1` = scalar engine; wider
        /// lanes retire one fault site per lane per pass).
        lanes: usize,
        /// Run the exhaustive accumulator bit-flip sweep (the ABFT
        /// acceptance campaign) instead of seeded sampling.
        sweep_acc: bool,
        /// Optimize the campaign design before injecting faults. The pass
        /// pipeline preserves every register, so classification counts are
        /// byte-identical either way (CI asserts exactly that).
        opt: bool,
        /// Journal directory for crash-safe resume (`--resume`).
        resume: Option<String>,
        /// Per-chunk watchdog budget in seconds (`--chunk-timeout`).
        chunk_timeout: Option<u64>,
        /// Output path (`-` for stdout, empty for `reports/` default).
        out: String,
    },
    /// Run the differential fuzzing campaign (random netlists and sampled
    /// generation pipelines through every verification oracle) and emit a
    /// JSON report whose `total_findings` CI gates on.
    Fuzz {
        /// `netlist`, `pipeline`, or `both`.
        mode: String,
        /// First seed (inclusive).
        seed: u64,
        /// Seeds per enabled mode.
        seeds: u64,
        /// Cycles per netlist differential run.
        cycles: u64,
        /// Campaign worker threads (`0` = one per core).
        workers: usize,
        /// Lane width of the batched-engine oracle (`1` = scalar-only).
        lanes: usize,
        /// Chain the optimizer equivalence oracle (optimized-vs-unoptimized
        /// lock-step) into both fuzz modes.
        opt: bool,
        /// Journal directory for crash-safe resume (`--resume`).
        resume: Option<String>,
        /// Per-chunk watchdog budget in seconds (`--chunk-timeout`).
        chunk_timeout: Option<u64>,
        /// Output path (`-` for stdout, empty for `reports/` default).
        out: String,
    },
    /// Render a one-shot status snapshot of a journaled campaign directory
    /// (`status.json` + `events.jsonl` telemetry written by `--resume`
    /// runs). The exit code distinguishes finished (0) / running (2) /
    /// interrupted (3); a `running` snapshot whose writer process is gone
    /// is reported as interrupted with a resume hint.
    Status {
        /// Campaign directory (the `--resume` dir).
        dir: String,
        /// Emit the raw JSON snapshot instead of the human table.
        json: bool,
    },
    /// Poll a journaled campaign directory, printing one progress + ETA
    /// line per interval, until the campaign finishes (exit 0) or is
    /// interrupted / its writer dies (exit 3).
    Watch {
        /// Campaign directory (the `--resume` dir).
        dir: String,
        /// Poll interval in milliseconds.
        interval_ms: u64,
    },
    /// List the cross-run metrics history (`history.jsonl`), or with
    /// `--check` compare the newest run against the most recent earlier
    /// run with the same config hash and flag metric deltas beyond
    /// `--threshold` percent (exit 4 when anything is flagged; comparing
    /// runs from different machine shapes is a loud error).
    History {
        /// History file, or a reports directory containing `history.jsonl`.
        path: String,
        /// Compare newest vs the most recent same-config run.
        check: bool,
        /// Flagging threshold for `--check`, in percent relative delta.
        threshold: f64,
    },
}

/// Command-line failure: bad usage or a pipeline error, with a message
/// suitable for stderr.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CliError(pub String);

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for CliError {}

/// Usage text.
pub const USAGE: &str = "\
usage:
  tensorlib workloads
  tensorlib analyze  <workload> <dataflow>
  tensorlib generate <workload> <dataflow> [-o out.v] [--rows N] [--cols N]
                     [--opt on|off]
  tensorlib emit     <workload> <dataflow> [--rows N] [--cols N]
                     [--format text|yosys-json|verilog] [--opt on|off]
                     [--sim-cycles C --trace-out f.trace] [-o out]
  tensorlib parse    <netlist-file> [--format auto|text|yosys-json]
                     [--opt on|off] [--sim-cycles C --trace-out f.trace]
                     [-o report]
  tensorlib simulate <workload> <dataflow> [--rows N] [--cols N]
  tensorlib explore  <workload> [--top N] [--resume DIR] [--chunk-timeout S]
                     [-o f.json]
  tensorlib stats    <workload> <dataflow> [--rows N] [--cols N] [--tiles T]
                     [--opt on|off] [-o f.json]
  tensorlib trace    <workload> <dataflow> [--nets a,b,c] [--tiles T]
                     [--opt on|off] [-o f.vcd]
  tensorlib faults   [--rows N] [--cols N] [--k K] [--faults N] [--seed S]
                     [--harden tmr,parity,abft] [--workers W] [--lanes L]
                     [--sweep-acc] [--opt on|off] [--resume DIR]
                     [--chunk-timeout S] [-o f.json]
  tensorlib fuzz     [--mode netlist|pipeline|both] [--seed S] [--seeds N]
                     [--cycles C] [--workers W] [--lanes L] [--opt on|off]
                     [--resume DIR] [--chunk-timeout S] [-o f.json]
  tensorlib profile  <workload> [--top N] [--rows N] [--cols N] [--workers W]
                     [-o f.trace.json]
  tensorlib status   <campaign-dir> [--json]
  tensorlib watch    <campaign-dir> [--interval SECONDS]
  tensorlib history  [file-or-reports-dir] [--check] [--threshold PCT]

global flags (any command):
  --profile <f.trace.json>   record framework spans during the run and write
                             a Chrome Trace Event file (open in Perfetto or
                             chrome://tracing); never changes results

--opt on|off (default on) runs the semantics-preserving netlist rewrite
pipeline (constant folding, peepholes, reduction-tree rebalancing, shared
subexpressions, dead-logic GC) before emission, measurement, fault
injection, or fuzzing; --opt=off is the escape hatch that reproduces the
raw generated netlist byte-for-byte. Optimization never renames nets or
drops ports/registers, so stats counters, traces, and fault classifications
are identical either way.

emit generates the design and writes it as a round-trippable interchange
netlist: --format text is the line-oriented `tensorlib-netlist v1` form,
--format yosys-json the Yosys-compatible JSON netlist, --format verilog the
synthesizable RTL. Interchange emissions self-check parse(emit(design)) for
structural identity before any bytes leave the process. parse reads either
interchange form back (--format auto sniffs JSON by the leading brace),
re-validates and re-elaborates it, and with --opt on re-runs the optimizer
over the parsed netlist and recompiles. On both commands --sim-cycles C
--trace-out f runs the compiled engine for C cycles under a fixed seeded
stimulus and writes one line per top-level output per cycle: a faithful
round trip reproduces the emitting side's trace byte-for-byte.

workloads: gemm[:m,n,k]  batched-gemv[:m,n,k]  conv2d[:k,c,y,x,p,q]
           depthwise[:k,y,x,p,q]  mttkrp[:i,j,k,l]  ttmc[:i,j,k,l,m]
dataflow:  paper-style name, e.g. MNK-SST or KCX-STS

stats runs the netlist interpreter with hardware counters (PE utilization,
bank traffic/conflicts, controller stall breakdown) and cross-checks the
analytic cycle model; trace additionally records per-cycle value changes on
the watched nets and writes a VCD waveform. With no -o, reports land under
reports/.

faults runs a seeded fault-injection campaign on an output-stationary GEMM
design (rows x cols array, reduction extent K): every injected fault is
classified masked / detected / sdc against a golden fault-free run, hardened
variants (--harden tmr, parity, abft, or full) report their detectors and
priced area/power overhead, and --sweep-acc replaces the seeded sample with
the exhaustive accumulator bit-flip sweep that ABFT must fully detect.
--lanes L > 1 retires L fault sites per batched bytecode pass (the
struct-of-arrays lane engine); reports are byte-identical for any --workers
count and any --lanes width (the provenance block echoes the requested
workers and lanes).

fuzz runs the differential verification campaign: netlist mode feeds random
but valid-by-construction netlists through module validation, a Verilog
emission lint, elaboration, and a lock-step compiled-vs-tree-walking engine
comparison (failures are auto-shrunk to minimal repros); pipeline mode
samples whole generation pipelines (kernel x sizes x loop selection x STT x
hardening) and additionally checks the reference functional executor and the
hardware counters. --lanes L > 1 additionally runs the lane-batched engine
against L independent scalar references (per-lane stimulus in netlist mode,
per-lane bank images in pipeline mode). The JSON report's total_findings
field is zero on a clean run, and its campaign results are identical for any
--workers count and --lanes width (the provenance block records the
requested workers and lanes).

faults, fuzz, and explore are resumable campaigns. --resume DIR journals
every completed work chunk to DIR/campaign.journal (append-only,
length-prefixed, checksummed; a torn tail from a crash is truncated on
reopen) and replays finished chunks on restart, so a campaign killed
mid-run and re-invoked with the same arguments plus the same --resume DIR
finishes the remaining work and emits a byte-identical report. The journal
is keyed to a hash of the campaign config: pointing --resume at a journal
recorded under different arguments fails loudly instead of silently
restarting. --chunk-timeout S arms a per-chunk wall-clock watchdog that
demotes work not started before the budget expires to typed degraded
entries (tallied in the report) instead of hanging the campaign. Ctrl-C
drains the in-flight chunk, flushes the journal, and still writes a valid
partial report with \"interrupted\": true plus resume instructions; the
process then exits with code 130 (a second Ctrl-C kills immediately).

Journaled campaigns also emit best-effort telemetry into the --resume DIR:
an append-only events.jsonl (campaign_started / chunk_completed /
chunk_degraded / panic_retry / campaign_finished|interrupted, each fsynced)
and an atomically-replaced status.json snapshot on every chunk boundary
(per-outcome counters, EWMA throughput, ETA; wall-clock data lives only in
its timing sub-object, never in report bodies, so reports stay
byte-identical with telemetry on or off). `status DIR` renders one snapshot
(exit 0 finished / 2 running / 3 interrupted — a running snapshot whose
writer pid is gone counts as interrupted, with a resume hint); `watch DIR`
polls until the campaign ends. Completed campaign / profile / perfgate
reports append one line of key metrics + a config hash + the machine shape
(host cores, --workers, --lanes) to history.jsonl next to the report;
`history` lists those runs and `history --check` compares the newest run
against the most recent earlier run with the same config hash, exiting 4
when any metric moved more than --threshold percent (default 10). Runs
recorded on a different machine shape are refused loudly rather than
compared.

profile sweeps the workload's design space with functional verification on,
prints a per-phase wall-time breakdown (STT enumeration, classification,
elaboration, bytecode compile, simulation, cost), and writes a Chrome Trace
Event file plus a .folded flamegraph sibling. Every JSON report embeds a
schema_version and a run-provenance manifest (seeds, command echo, per-phase
wall times, worker count, package version).";

/// Parses the argument list (without the program name).
///
/// # Errors
///
/// Returns [`CliError`] with a usage message on malformed input.
pub fn parse_args(args: &[String]) -> Result<Command, CliError> {
    let usage = || CliError(USAGE.to_string());
    let mut it = args.iter();
    let cmd = it.next().ok_or_else(usage)?;
    let mut positional: Vec<String> = Vec::new();
    let mut out = "-".to_string();
    let mut out_given = false;
    let mut rows = 16usize;
    let mut cols = 16usize;
    let mut rows_given = false;
    let mut cols_given = false;
    let mut top = 10usize;
    let mut tiles = 2u64;
    let mut nets = String::new();
    let mut k = 4u64;
    let mut faults = 64usize;
    let mut seed = 1u64;
    let mut harden = "none".to_string();
    let mut workers = 0usize;
    let mut lanes = 1usize;
    let mut sweep_acc = false;
    let mut mode = "both".to_string();
    let mut seeds = 256u64;
    let mut cycles = 16u64;
    let mut opt = true;
    let mut format = String::new();
    let mut sim_cycles = 0u64;
    let mut trace_out = String::new();
    let mut resume: Option<String> = None;
    let mut chunk_timeout: Option<u64> = None;
    let mut json = false;
    let mut interval_ms = 1000u64;
    let mut check = false;
    let mut threshold = tensorlib_obs::history::DEFAULT_CHECK_THRESHOLD_PCT;
    let parse_opt = |v: &str| -> Result<bool, CliError> {
        match v {
            "on" => Ok(true),
            "off" => Ok(false),
            other => Err(CliError(format!(
                "--opt expects on or off (got {other:?})"
            ))),
        }
    };
    let rest: Vec<&String> = it.collect();
    let mut i = 0;
    while i < rest.len() {
        let a = rest[i].as_str();
        let take_value = |i: &mut usize| -> Result<String, CliError> {
            *i += 1;
            rest.get(*i)
                .map(|s| s.to_string())
                .ok_or_else(|| CliError(format!("flag {a} needs a value")))
        };
        match a {
            "-o" | "--out" => {
                out = take_value(&mut i)?;
                out_given = true;
            }
            "--rows" => {
                rows = take_value(&mut i)?
                    .parse()
                    .map_err(|_| CliError("--rows expects an integer".into()))?;
                if rows == 0 {
                    return Err(CliError("--rows must be at least 1".into()));
                }
                rows_given = true;
            }
            "--cols" => {
                cols = take_value(&mut i)?
                    .parse()
                    .map_err(|_| CliError("--cols expects an integer".into()))?;
                if cols == 0 {
                    return Err(CliError("--cols must be at least 1".into()));
                }
                cols_given = true;
            }
            "--top" => {
                top = take_value(&mut i)?
                    .parse()
                    .map_err(|_| CliError("--top expects an integer".into()))?
            }
            "--tiles" => {
                tiles = take_value(&mut i)?
                    .parse()
                    .map_err(|_| CliError("--tiles expects an integer".into()))?
            }
            "--nets" => nets = take_value(&mut i)?,
            "--k" => {
                k = take_value(&mut i)?
                    .parse()
                    .map_err(|_| CliError("--k expects an integer".into()))?;
                if k == 0 {
                    return Err(CliError("--k must be at least 1".into()));
                }
            }
            "--faults" => {
                faults = take_value(&mut i)?
                    .parse()
                    .map_err(|_| CliError("--faults expects an integer".into()))?
            }
            "--seed" => {
                seed = take_value(&mut i)?
                    .parse()
                    .map_err(|_| CliError("--seed expects an integer".into()))?
            }
            "--harden" => harden = take_value(&mut i)?,
            "--workers" => {
                workers = take_value(&mut i)?
                    .parse()
                    .map_err(|_| CliError("--workers expects an integer".into()))?;
                if workers == 0 {
                    return Err(CliError(
                        "--workers must be at least 1 (omit the flag for one worker per core)"
                            .into(),
                    ));
                }
            }
            "--lanes" => {
                lanes = take_value(&mut i)?
                    .parse()
                    .map_err(|_| CliError("--lanes expects an integer".into()))?;
                if lanes == 0 || lanes > 64 {
                    return Err(CliError(format!(
                        "--lanes must be between 1 and 64 (the batched engine packs 64 \
                         lanes per bytecode pass; got {lanes})"
                    )));
                }
            }
            "--sweep-acc" => sweep_acc = true,
            "--format" => format = take_value(&mut i)?,
            "--sim-cycles" => {
                sim_cycles = take_value(&mut i)?
                    .parse()
                    .map_err(|_| CliError("--sim-cycles expects an integer".into()))?;
                if sim_cycles == 0 {
                    return Err(CliError(
                        "--sim-cycles must be at least 1 (omit the flag to skip the \
                         smoke trace)"
                            .into(),
                    ));
                }
            }
            "--trace-out" => {
                trace_out = take_value(&mut i)?;
                if trace_out.is_empty() {
                    return Err(CliError("--trace-out needs a file path".into()));
                }
            }
            "--opt" => opt = parse_opt(&take_value(&mut i)?)?,
            _ if a.starts_with("--opt=") => opt = parse_opt(&a["--opt=".len()..])?,
            "--mode" => mode = take_value(&mut i)?,
            "--seeds" => {
                seeds = take_value(&mut i)?
                    .parse()
                    .map_err(|_| CliError("--seeds expects an integer".into()))?;
                if seeds == 0 {
                    return Err(CliError(
                        "--seeds must be at least 1 (a zero-seed campaign runs nothing)".into(),
                    ));
                }
            }
            "--cycles" => {
                cycles = take_value(&mut i)?
                    .parse()
                    .map_err(|_| CliError("--cycles expects an integer".into()))?;
                if cycles == 0 {
                    return Err(CliError("--cycles must be at least 1".into()));
                }
            }
            "--resume" => {
                let dir = take_value(&mut i)?;
                if dir.is_empty() {
                    return Err(CliError("--resume needs a journal directory".into()));
                }
                resume = Some(dir);
            }
            "--chunk-timeout" => {
                let secs: u64 = take_value(&mut i)?
                    .parse()
                    .map_err(|_| CliError("--chunk-timeout expects whole seconds".into()))?;
                if secs == 0 {
                    return Err(CliError(
                        "--chunk-timeout must be at least 1 second (omit the flag to \
                         disable the watchdog)"
                            .into(),
                    ));
                }
                chunk_timeout = Some(secs);
            }
            "--json" => json = true,
            "--interval" => {
                let secs: f64 = take_value(&mut i)?
                    .parse()
                    .map_err(|_| CliError("--interval expects seconds (fractions ok)".into()))?;
                if secs <= 0.0 || !secs.is_finite() {
                    return Err(CliError(
                        "--interval must be a positive number of seconds".into(),
                    ));
                }
                interval_ms = ((secs * 1000.0).round() as u64).max(1);
            }
            "--check" => check = true,
            "--threshold" => {
                threshold = take_value(&mut i)?
                    .parse()
                    .map_err(|_| CliError("--threshold expects a percentage".into()))?;
                if threshold < 0.0 || !threshold.is_finite() {
                    return Err(CliError(
                        "--threshold must be a non-negative percentage".into(),
                    ));
                }
            }
            _ if a.starts_with('-') => {
                return Err(CliError(format!("unknown flag {a}\n\n{USAGE}")))
            }
            _ => positional.push(a.to_string()),
        }
        i += 1;
    }
    // The smoke trace is one feature behind two flags: requiring the pair
    // keeps "trace requested but silently skipped" unrepresentable.
    let check_trace_pair = |sim_cycles: u64, trace_out: &str| -> Result<(), CliError> {
        match (sim_cycles > 0, !trace_out.is_empty()) {
            (true, false) => Err(CliError(
                "--sim-cycles needs --trace-out <file> for the smoke trace".into(),
            )),
            (false, true) => Err(CliError(
                "--trace-out needs --sim-cycles <C> to drive the smoke trace".into(),
            )),
            _ => Ok(()),
        }
    };
    match (cmd.as_str(), positional.len()) {
        ("workloads", 0) => Ok(Command::Workloads),
        ("analyze", 2) => Ok(Command::Analyze {
            workload: positional[0].clone(),
            dataflow: positional[1].clone(),
        }),
        ("generate", 2) => Ok(Command::Generate {
            workload: positional[0].clone(),
            dataflow: positional[1].clone(),
            out,
            rows,
            cols,
            opt,
        }),
        ("emit", 2) => {
            let format = if format.is_empty() {
                "text".to_string()
            } else {
                format
            };
            if !matches!(format.as_str(), "text" | "yosys-json" | "verilog") {
                return Err(CliError(format!(
                    "--format for emit expects text, yosys-json, or verilog (got {format:?})"
                )));
            }
            check_trace_pair(sim_cycles, &trace_out)?;
            Ok(Command::Emit {
                workload: positional[0].clone(),
                dataflow: positional[1].clone(),
                rows,
                cols,
                format,
                opt,
                sim_cycles,
                trace_out,
                out,
            })
        }
        ("parse", 1) => {
            let format = if format.is_empty() {
                "auto".to_string()
            } else {
                format
            };
            if !matches!(format.as_str(), "auto" | "text" | "yosys-json") {
                return Err(CliError(format!(
                    "--format for parse expects auto, text, or yosys-json (got {format:?})"
                )));
            }
            check_trace_pair(sim_cycles, &trace_out)?;
            Ok(Command::Parse {
                input: positional[0].clone(),
                format,
                opt,
                sim_cycles,
                trace_out,
                out,
            })
        }
        ("simulate", 2) => Ok(Command::Simulate {
            workload: positional[0].clone(),
            dataflow: positional[1].clone(),
            rows,
            cols,
        }),
        ("explore", 1) => Ok(Command::Explore {
            workload: positional[0].clone(),
            top,
            resume,
            chunk_timeout,
            out: if out_given { out } else { String::new() },
        }),
        // Profile defaults to a small array: the sweep runs the functional
        // simulator on every point, and 4x4 keeps that tractable.
        ("profile", 1) => Ok(Command::Profile {
            workload: positional[0].clone(),
            top,
            rows: if rows_given { rows } else { 4 },
            cols: if cols_given { cols } else { 4 },
            workers,
            out: if out_given { out } else { String::new() },
        }),
        ("stats", 2) => Ok(Command::Stats {
            workload: positional[0].clone(),
            dataflow: positional[1].clone(),
            rows,
            cols,
            tiles,
            opt,
            out: if out_given { out } else { String::new() },
        }),
        ("trace", 2) => Ok(Command::Trace {
            workload: positional[0].clone(),
            dataflow: positional[1].clone(),
            rows,
            cols,
            tiles,
            nets,
            opt,
            out: if out_given { out } else { String::new() },
        }),
        // Campaigns clone one interpreter per fault, so the faults default
        // array is the small 4x4 campaign rather than the 16x16 generator
        // default.
        ("faults", 0) => {
            if !sweep_acc && faults == 0 {
                return Err(CliError(
                    "--faults must be at least 1 (or pass --sweep-acc for the \
                     exhaustive accumulator sweep)"
                        .into(),
                ));
            }
            Ok(Command::Faults {
                rows: if rows_given { rows } else { 4 },
                cols: if cols_given { cols } else { 4 },
                k,
                faults,
                seed,
                harden,
                workers,
                lanes,
                sweep_acc,
                opt,
                resume,
                chunk_timeout,
                out: if out_given { out } else { String::new() },
            })
        }
        ("fuzz", 0) => Ok(Command::Fuzz {
            mode,
            seed,
            seeds,
            cycles,
            workers,
            lanes,
            opt,
            resume,
            chunk_timeout,
            out: if out_given { out } else { String::new() },
        }),
        ("status", 1) => Ok(Command::Status {
            dir: positional[0].clone(),
            json,
        }),
        ("watch", 1) => Ok(Command::Watch {
            dir: positional[0].clone(),
            interval_ms,
        }),
        // With no path, history reads the default reports-dir index.
        ("history", 0) => Ok(Command::History {
            path: "reports/history.jsonl".to_string(),
            check,
            threshold,
        }),
        ("history", 1) => Ok(Command::History {
            path: positional[0].clone(),
            check,
            threshold,
        }),
        _ => Err(usage()),
    }
}

/// A fully parsed invocation: the command plus global flags.
#[derive(Debug, Clone, PartialEq)]
pub struct Invocation {
    /// `--profile <path>`: record framework spans during the run and write a
    /// Chrome Trace Event file there afterwards.
    pub profile: Option<String>,
    /// The command itself.
    pub command: Command,
    /// The raw argument echo, recorded in report provenance.
    pub echo: String,
}

/// Parses the argument list (without the program name), extracting global
/// flags (`--profile <path>`) before command parsing. This is what `main`
/// calls; [`parse_args`] stays available for command-only parsing.
///
/// # Errors
///
/// Returns [`CliError`] with a usage message on malformed input.
pub fn parse_invocation(args: &[String]) -> Result<Invocation, CliError> {
    let mut profile = None;
    let mut rest: Vec<String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        if args[i] == "--profile" {
            i += 1;
            profile = Some(args.get(i).cloned().ok_or_else(|| {
                CliError("--profile needs a trace output path".to_string())
            })?);
        } else {
            rest.push(args[i].clone());
        }
        i += 1;
    }
    Ok(Invocation {
        profile,
        command: parse_args(&rest)?,
        echo: args.join(" "),
    })
}

/// Resolves a workload spec like `gemm:64,64,64` to a kernel.
///
/// # Errors
///
/// Returns [`CliError`] for unknown names or wrong size arity.
pub fn resolve_workload(spec: &str) -> Result<Kernel, CliError> {
    let (name, sizes) = match spec.split_once(':') {
        Some((n, s)) => {
            let sizes: Result<Vec<u64>, _> = s.split(',').map(str::parse).collect();
            (
                n,
                Some(sizes.map_err(|_| CliError(format!("bad sizes in {spec:?}")))?),
            )
        }
        None => (spec, None),
    };
    let need = |n: usize, sizes: &Option<Vec<u64>>| -> Result<Vec<u64>, CliError> {
        match sizes {
            None => Ok(Vec::new()),
            Some(v) if v.len() == n => Ok(v.clone()),
            Some(v) => Err(CliError(format!(
                "{name} takes {n} sizes, got {}",
                v.len()
            ))),
        }
    };
    Ok(match name {
        "gemm" => {
            let s = need(3, &sizes)?;
            if s.is_empty() {
                workloads::gemm(64, 64, 64)
            } else {
                workloads::gemm(s[0], s[1], s[2])
            }
        }
        "batched-gemv" => {
            let s = need(3, &sizes)?;
            if s.is_empty() {
                workloads::batched_gemv(64, 64, 64)
            } else {
                workloads::batched_gemv(s[0], s[1], s[2])
            }
        }
        "conv2d" => {
            let s = need(6, &sizes)?;
            if s.is_empty() {
                workloads::resnet_layer2()
            } else {
                workloads::conv2d(s[0], s[1], s[2], s[3], s[4], s[5])
            }
        }
        "depthwise" => {
            let s = need(5, &sizes)?;
            if s.is_empty() {
                workloads::depthwise_conv(64, 56, 56, 3, 3)
            } else {
                workloads::depthwise_conv(s[0], s[1], s[2], s[3], s[4])
            }
        }
        "mttkrp" => {
            let s = need(4, &sizes)?;
            if s.is_empty() {
                workloads::mttkrp(32, 32, 32, 32)
            } else {
                workloads::mttkrp(s[0], s[1], s[2], s[3])
            }
        }
        "ttmc" => {
            let s = need(5, &sizes)?;
            if s.is_empty() {
                workloads::ttmc(16, 16, 16, 16, 16)
            } else {
                workloads::ttmc(s[0], s[1], s[2], s[3], s[4])
            }
        }
        other => return Err(CliError(format!("unknown workload {other:?}\n\n{USAGE}"))),
    })
}

/// Headline numbers of a measured run, duplicated out of the raw counters so
/// a report reader does not have to re-derive them.
#[derive(serde::Serialize)]
struct StatsSummary {
    cycles: u64,
    total_mac_cycles: u64,
    utilization: f64,
    stall_cycles: u64,
    total_bank_conflicts: u64,
}

/// The JSON document `tensorlib stats` emits.
#[derive(serde::Serialize)]
struct StatsReport {
    schema_version: u32,
    provenance: Provenance,
    workload: String,
    dataflow: String,
    rows: usize,
    cols: usize,
    tiles: u64,
    summary: StatsSummary,
    stats: tensorlib::InterpreterStats,
    cross_check: tensorlib::sim::perf::ModelCrossCheck,
    /// Pre/post netlist size census when the optimizer ran (`--opt=on`).
    opt: Option<tensorlib::hw::opt::OptStats>,
}

/// The JSON document `tensorlib faults` emits: the campaign parameters, the
/// per-fault classification report, and (for hardened designs) the priced
/// area/power overhead of the protection.
#[derive(serde::Serialize)]
struct FaultsReportDoc {
    schema_version: u32,
    provenance: Provenance,
    config: CampaignConfig,
    /// `seeded` or `accumulator-sweep`.
    mode: String,
    report: ResilienceReport,
    hardening_overhead: Option<HardeningOverhead>,
    /// `true` when the campaign was interrupted (SIGINT) after draining the
    /// in-flight chunk: the report above is valid but partial.
    interrupted: bool,
    /// Operator instructions for finishing an interrupted campaign.
    resume_hint: Option<String>,
}

/// The JSON document `tensorlib fuzz` emits: the verification campaign
/// report under a provenance envelope.
#[derive(serde::Serialize)]
struct FuzzReportDoc {
    schema_version: u32,
    provenance: Provenance,
    report: tensorlib::sim::verify::VerifyReport,
    /// `true` when the campaign was interrupted (SIGINT) after draining the
    /// in-flight chunk: the report above is valid but partial.
    interrupted: bool,
    /// Operator instructions for finishing an interrupted campaign.
    resume_hint: Option<String>,
}

/// One row of the `tensorlib explore -o` JSON report (the full
/// [`tensorlib::explore::DesignPoint`] is too heavy to serialize per point).
#[derive(serde::Serialize)]
struct ExplorePointRow {
    name: String,
    letters: String,
    total_cycles: u64,
    normalized_perf: f64,
    power_mw: f64,
    area_mm2: f64,
}

/// The JSON document `tensorlib explore -o` emits.
#[derive(serde::Serialize)]
struct ExploreReportDoc {
    schema_version: u32,
    provenance: Provenance,
    workload: String,
    implementable_designs: usize,
    errors: usize,
    skipped: usize,
    /// Candidates demoted by the per-chunk watchdog (`--chunk-timeout`).
    degraded: u64,
    top: Vec<ExplorePointRow>,
    /// `true` when the sweep was interrupted (SIGINT) after draining the
    /// in-flight chunk: the report above is valid but partial.
    interrupted: bool,
    /// Operator instructions for finishing an interrupted sweep.
    resume_hint: Option<String>,
}

/// Builds the provenance manifest every JSON report embeds. Phase wall
/// times come from the live span recorder when a `--profile` run has it
/// enabled; otherwise only the `total` entry (measured around the command)
/// is present.
fn provenance_for(command_echo: &str, seeds: Vec<u64>, workers: usize, total_us: u64) -> Provenance {
    let mut p = Provenance::new(command_echo);
    p.seeds = seeds;
    p.workers = workers;
    if tensorlib_obs::is_enabled() {
        p.phase_wall_times_us = tensorlib_obs::snapshot()
            .phase_totals()
            .into_iter()
            .map(|(name, (_count, total))| (name, total))
            .collect();
    }
    p.phase_wall_times_us.insert("total".to_string(), total_us);
    p
}

/// Builds campaign durability options from the shared `--resume` /
/// `--chunk-timeout` flags. Both absent means the inert legacy path.
fn durability_from(resume: &Option<String>, chunk_timeout: Option<u64>) -> DurabilityOptions {
    DurabilityOptions {
        dir: resume.as_ref().map(PathBuf::from),
        chunk_timeout: chunk_timeout.map(Duration::from_secs),
        ..DurabilityOptions::default()
    }
}

/// The provenance `journal` block for a `--resume` run: which directory the
/// journal lives in and how much of the campaign was replayed versus
/// executed. `None` (serialized `"journal": null`) on non-journaled runs.
fn journal_provenance(resume: &Option<String>, stats: &RunStats) -> Option<JournalProvenance> {
    resume.as_ref().map(|dir| JournalProvenance {
        dir: dir.clone(),
        chunks_total: stats.chunks_total,
        chunks_replayed: stats.chunks_replayed,
        chunks_executed: stats.chunks_executed,
    })
}

/// Operator-facing resume instructions embedded in an interrupted report.
fn resume_hint_for(stats: &RunStats, resume: &Option<String>) -> Option<String> {
    stats.interrupted.then(|| match resume {
        Some(dir) => format!(
            "campaign interrupted; re-run the same command with --resume {dir} to finish"
        ),
        None => "campaign interrupted before completion".to_string(),
    })
}

/// Default report path for `stats`/`trace`: `reports/<kind>_<workload>_<dataflow>.<ext>`
/// with shell-hostile characters replaced.
fn report_path(kind: &str, workload: &str, dataflow: &str, ext: &str) -> String {
    let slug: String = format!("{kind}_{workload}_{dataflow}")
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '-' || c == '_' {
                c
            } else {
                '-'
            }
        })
        .collect();
    format!("reports/{slug}.{ext}")
}

/// Prints `text` for `-`, otherwise writes it to `out` (or `default_path`
/// when `out` is empty), creating parent directories.
fn emit_report(
    out: &str,
    default_path: String,
    text: &str,
    what: &str,
) -> Result<String, CliError> {
    if out == "-" {
        return Ok(text.to_string());
    }
    let path = if out.is_empty() {
        default_path
    } else {
        out.to_string()
    };
    if let Some(parent) = std::path::Path::new(&path).parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)
                .map_err(|err| CliError(format!("creating {}: {err}", parent.display())))?;
        }
    }
    // Atomic (tmp + fsync + rename): a reader — or a crash mid-write — never
    // sees a half-written report where a previous run's good one stood.
    atomic_write(&path, text.as_bytes())
        .map_err(|err| CliError(format!("writing {path}: {err}")))?;
    Ok(format!("wrote {what} to {path}\n"))
}

/// Where a report actually lands: `None` when it goes to stdout (`-`).
fn resolved_report_path(out: &str, default_path: &str) -> Option<String> {
    match out {
        "-" => None,
        "" => Some(default_path.to_string()),
        other => Some(other.to_string()),
    }
}

/// Hex FNV-1a hash of a canonical config string. The canonical strings
/// deliberately exclude `--workers`, `--lanes`, `--resume`, and output
/// paths, so a clean run, its resumed re-run, and a different parallelism
/// of the same campaign all land in one comparison series; machine shape is
/// checked separately (and loudly) by `history --check`.
fn history_config_hash(canonical: &str) -> String {
    format!(
        "{:016x}",
        tensorlib::sim::journal::fnv1a64(canonical.as_bytes())
    )
}

/// Appends one line of key metrics to the `history.jsonl` sitting next to a
/// completed report. Best-effort like the rest of telemetry: any failure
/// produces an empty note instead of failing the run, and reports written
/// to stdout (`report_path` is `None`) record nothing.
fn append_history(
    report_path: Option<&str>,
    kind: &str,
    canonical_config: &str,
    provenance: &Provenance,
    metrics: std::collections::BTreeMap<String, f64>,
    wall_ms: u64,
) -> String {
    let Some(report_path) = report_path else {
        return String::new();
    };
    let dir = std::path::Path::new(report_path)
        .parent()
        .filter(|p| !p.as_os_str().is_empty())
        .map_or_else(|| PathBuf::from("."), std::path::Path::to_path_buf);
    let path = dir.join(tensorlib_obs::history::HISTORY_FILE);
    let entry = tensorlib_obs::history::HistoryEntry {
        kind: kind.to_string(),
        config_hash: history_config_hash(canonical_config),
        command: provenance.command.clone(),
        pkg_version: provenance.pkg_version.clone(),
        host_cores: provenance.host_cores as u64,
        workers: provenance.workers as u64,
        lanes: provenance.lanes as u64,
        metrics,
        unix_ms: tensorlib_obs::events::unix_ms(),
        wall_ms,
    };
    match tensorlib_obs::history::append(&path, &entry) {
        Ok(()) => format!("appended history entry to {}\n", path.display()),
        Err(_) => String::new(),
    }
}

/// Whether the process that wrote a status snapshot is still alive, judged
/// by `/proc/<pid>`. On systems without `/proc` the snapshot's own state is
/// trusted (a live-looking stale snapshot is the conservative failure mode).
fn pid_alive(pid: u32) -> bool {
    let proc_root = std::path::Path::new("/proc");
    if !proc_root.is_dir() {
        return true;
    }
    proc_root.join(pid.to_string()).is_dir()
}

/// The state a reader should act on: a `"running"` snapshot whose writer is
/// dead means the campaign was killed without the chance to write a final
/// snapshot (SIGKILL, power loss) — that is an interruption.
fn effective_status_state(snapshot: &tensorlib_obs::events::StatusSnapshot) -> String {
    if snapshot.state == "running" && !pid_alive(snapshot.pid) {
        "interrupted".to_string()
    } else {
        snapshot.state.clone()
    }
}

/// Operator instructions shown by `status`/`watch` for interrupted runs.
fn status_resume_hint(dir: &str) -> String {
    format!("re-run the original campaign command with --resume {dir} to finish")
}

/// `tensorlib status <dir>`: one snapshot, rendered human or `--json`, with
/// the exit code distinguishing finished (0) / running (2) / interrupted (3).
fn run_status(dir: &str, json: bool) -> Result<(String, u8), CliError> {
    use tensorlib_obs::events::StatusSnapshot;
    use tensorlib_obs::json::Value;
    let snapshot = StatusSnapshot::read(std::path::Path::new(dir))
        .map_err(|err| CliError(format!("reading campaign status in {dir}: {err}")))?;
    let state = effective_status_state(&snapshot);
    let code = match state.as_str() {
        "finished" => 0u8,
        "running" => 2,
        _ => 3,
    };
    if json {
        let mut v = snapshot.to_value();
        if let Value::Obj(entries) = &mut v {
            for (key, val) in entries.iter_mut() {
                if key == "state" {
                    *val = Value::Str(state.clone());
                }
            }
            if state == "interrupted" {
                entries.push((
                    "resume_hint".to_string(),
                    Value::Str(status_resume_hint(dir)),
                ));
            }
        }
        return Ok((format!("{v}\n"), code));
    }
    let mut s = format!(
        "campaign    {} (config {})\nstate       {state}",
        snapshot.kind, snapshot.config_hash
    );
    if state == "running" {
        s.push_str(&format!(" (pid {})", snapshot.pid));
    }
    s.push('\n');
    s.push_str(&format!(
        "chunks      {}/{} done ({} replayed, {} executed this run)\n",
        snapshot.chunks_done,
        snapshot.chunks_total,
        snapshot.chunks_replayed,
        snapshot.chunks_executed
    ));
    if !snapshot.outcomes.is_empty() {
        let parts: Vec<String> = snapshot
            .outcomes
            .iter()
            .map(|(k, v)| format!("{k}={v}"))
            .collect();
        s.push_str(&format!("outcomes    {}\n", parts.join(" ")));
    }
    if snapshot.timing.throughput_chunks_per_s > 0.0 {
        s.push_str(&format!(
            "throughput  {:.2} chunks/s (EWMA chunk {:.1} ms)\n",
            snapshot.timing.throughput_chunks_per_s, snapshot.timing.ewma_chunk_ms
        ));
    }
    if state == "running" {
        s.push_str(&format!(
            "eta         ~{:.1} s\n",
            snapshot.timing.eta_ms as f64 / 1000.0
        ));
    }
    s.push_str(&format!(
        "updated     {} (unix ms)\n",
        snapshot.timing.updated_unix_ms
    ));
    if state == "interrupted" {
        s.push_str(&format!("resume      {}\n", status_resume_hint(dir)));
    }
    Ok((s, code))
}

/// `tensorlib watch <dir>`: polls the status snapshot, printing one
/// progress + ETA line per interval, until the campaign finishes (exit 0)
/// or is interrupted / its writer dies (exit 3).
fn run_watch(dir: &str, interval_ms: u64) -> Result<(String, u8), CliError> {
    use tensorlib_obs::events::StatusSnapshot;
    loop {
        let snapshot = StatusSnapshot::read(std::path::Path::new(dir))
            .map_err(|err| CliError(format!("reading campaign status in {dir}: {err}")))?;
        let state = effective_status_state(&snapshot);
        match state.as_str() {
            "finished" => {
                return Ok((
                    format!(
                        "{}: campaign finished — {}/{} chunks\n",
                        snapshot.kind, snapshot.chunks_done, snapshot.chunks_total
                    ),
                    0,
                ));
            }
            "running" => {
                let pct = if snapshot.chunks_total > 0 {
                    snapshot.chunks_done as f64 / snapshot.chunks_total as f64 * 100.0
                } else {
                    0.0
                };
                println!(
                    "{}: {}/{} chunks ({pct:.1}%), {:.2} chunks/s, eta ~{:.1} s",
                    snapshot.kind,
                    snapshot.chunks_done,
                    snapshot.chunks_total,
                    snapshot.timing.throughput_chunks_per_s,
                    snapshot.timing.eta_ms as f64 / 1000.0
                );
                std::thread::sleep(Duration::from_millis(interval_ms));
            }
            _ => {
                return Ok((
                    format!(
                        "{}: campaign interrupted at {}/{} chunks; {}\n",
                        snapshot.kind,
                        snapshot.chunks_done,
                        snapshot.chunks_total,
                        status_resume_hint(dir)
                    ),
                    3,
                ));
            }
        }
    }
}

/// `tensorlib history [path]`: lists the cross-run index, or with `--check`
/// compares the newest run against the most recent earlier run with the
/// same config hash (exit 4 when any metric moved beyond the threshold).
fn run_history(path: &str, check: bool, threshold: f64) -> Result<(String, u8), CliError> {
    use tensorlib_obs::history::{self, CheckOutcome};
    let file = if path.ends_with(".jsonl") {
        PathBuf::from(path)
    } else {
        std::path::Path::new(path).join(history::HISTORY_FILE)
    };
    let entries = history::read(&file).map_err(CliError)?;
    if !check {
        if entries.is_empty() {
            return Ok((format!("no history at {}\n", file.display()), 0));
        }
        let mut s = String::new();
        for e in &entries {
            let metrics: Vec<String> = e
                .metrics
                .iter()
                .map(|(k, v)| format!("{k}={v}"))
                .collect();
            s.push_str(&format!(
                "{:8} {} v{} cores={} workers={} lanes={}  {}  ({})\n",
                e.kind,
                e.config_hash,
                e.pkg_version,
                e.host_cores,
                e.workers,
                e.lanes,
                metrics.join(" "),
                e.command
            ));
        }
        return Ok((s, 0));
    }
    match history::check(&entries, threshold).map_err(CliError)? {
        CheckOutcome::NoRuns => Ok((
            format!("history at {} is empty; nothing to check\n", file.display()),
            0,
        )),
        CheckOutcome::NoPrior { kind, config_hash } => Ok((
            format!(
                "no prior {kind} run with config {config_hash}; nothing to compare\n"
            ),
            0,
        )),
        CheckOutcome::Compared {
            kind,
            config_hash,
            baseline_unix_ms,
            deltas,
            wall_delta_pct,
            flagged,
        } => {
            let mut s = format!(
                "{kind} (config {config_hash}) vs baseline from unix ms {baseline_unix_ms}:\n"
            );
            let fmt_side = |side: Option<f64>| -> String {
                side.map_or_else(|| "(absent)".to_string(), |v| format!("{v}"))
            };
            for d in &deltas {
                let delta = d
                    .delta_pct
                    .map_or_else(String::new, |pct| format!("  {pct:+.2}%"));
                let mark = if d.flagged { "  FLAGGED" } else { "" };
                s.push_str(&format!(
                    "  {:24} {} -> {}{delta}{mark}\n",
                    d.metric,
                    fmt_side(d.baseline),
                    fmt_side(d.current)
                ));
            }
            if let Some(pct) = wall_delta_pct {
                s.push_str(&format!(
                    "  wall time {pct:+.1}% (informational; never flagged)\n"
                ));
            }
            if flagged > 0 {
                s.push_str(&format!(
                    "{flagged} metric(s) moved more than {threshold}% — check the runs above\n"
                ));
                Ok((s, 4))
            } else {
                s.push_str(&format!("no metric moved more than {threshold}%\n"));
                Ok((s, 0))
            }
        }
    }
}

/// Runs the compiled bytecode engine over an interchange document for
/// `cycles` cycles under a fixed seeded stimulus and renders one line per
/// top-level output per cycle. The seed and the line format are fixed, so
/// the emitting side and the re-parsing side of a round trip produce
/// byte-identical traces exactly when the interchange preserved the design.
fn smoke_trace(doc: &tensorlib::hw::text::NetlistDoc, cycles: u64) -> Result<String, CliError> {
    use tensorlib::hw::interp::{elaborate, Interpreter};
    use tensorlib::hw::netlist::Dir;
    let flat = elaborate(&doc.modules, &doc.banks, &doc.top)
        .map_err(|err| CliError(err.to_string()))?;
    let inputs: Vec<String> = flat
        .ports()
        .iter()
        .filter(|(_, d)| *d == Dir::Input)
        .map(|(id, _)| flat.nets()[*id].name.clone())
        .collect();
    let outputs: Vec<String> = flat
        .ports()
        .iter()
        .filter(|(_, d)| *d == Dir::Output)
        .map(|(id, _)| flat.nets()[*id].name.clone())
        .collect();
    let mut sim = Interpreter::new(flat);
    let mut rng = tensorlib::linalg::rng::SplitMix64::new(0x7E57_0A7C_0000_0001);
    let mut text = String::new();
    for cycle in 0..cycles {
        for name in &inputs {
            sim.poke(name, rng.next_u64());
        }
        sim.step();
        for name in &outputs {
            text.push_str(&format!("{cycle} {name}={}\n", sim.peek(name)));
        }
    }
    Ok(text)
}

/// Executes a parsed command, returning the text to print.
///
/// # Errors
///
/// Returns [`CliError`] when the pipeline fails (unknown dataflow,
/// unwireable design, simulation mismatch).
pub fn run(cmd: Command) -> Result<String, CliError> {
    let e = |err: &dyn fmt::Display| CliError(err.to_string());
    match cmd {
        Command::Workloads => {
            let mut s = String::new();
            for k in workloads::table2_catalog() {
                s.push_str(&format!("{k}\n"));
            }
            Ok(s)
        }
        Command::Analyze { workload, dataflow } => {
            let kernel = resolve_workload(&workload)?;
            let df = find_named(&kernel, &dataflow, &DseConfig::default())
                .map_err(|err| e(&err))?;
            Ok(format!("{df}\n"))
        }
        Command::Generate {
            workload,
            dataflow,
            out,
            rows,
            cols,
            opt,
        } => {
            let kernel = resolve_workload(&workload)?;
            let df = find_named(&kernel, &dataflow, &DseConfig::default())
                .map_err(|err| e(&err))?;
            let cfg = HwConfig {
                array: ArrayConfig { rows, cols },
                ..HwConfig::default()
            };
            let mut design = generate(&df, &cfg).map_err(|err| e(&err))?;
            design.validate().map_err(|err| e(&err))?;
            if opt {
                design.optimize(&tensorlib::hw::opt::OptOptions::default());
                design.validate().map_err(|err| e(&err))?;
            }
            let verilog = tensorlib::hw::verilog::emit_design(&design);
            if out == "-" {
                Ok(verilog)
            } else {
                atomic_write(&out, verilog.as_bytes())
                    .map_err(|err| CliError(format!("writing {out}: {err}")))?;
                Ok(format!(
                    "wrote {out}: {} lines, top module {}\n",
                    verilog.lines().count(),
                    design.top()
                ))
            }
        }
        Command::Emit {
            workload,
            dataflow,
            rows,
            cols,
            format,
            opt,
            sim_cycles,
            trace_out,
            out,
        } => {
            let kernel = resolve_workload(&workload)?;
            let df = find_named(&kernel, &dataflow, &DseConfig::default())
                .map_err(|err| e(&err))?;
            let cfg = HwConfig {
                array: ArrayConfig { rows, cols },
                ..HwConfig::default()
            };
            let mut design = generate(&df, &cfg).map_err(|err| e(&err))?;
            design.validate().map_err(|err| e(&err))?;
            if opt {
                design.optimize(&tensorlib::hw::opt::OptOptions::default());
                design.validate().map_err(|err| e(&err))?;
            }
            let doc = tensorlib::hw::text::NetlistDoc::from_design(&design);
            let emitted = match format.as_str() {
                "text" => tensorlib::hw::text::emit_text(&doc),
                "yosys-json" => tensorlib::hw::yosys::emit_yosys(&doc),
                _ => tensorlib::hw::verilog::emit_design(&design),
            };
            // Interchange emissions self-check their own round trip before
            // any bytes leave the process: what we wrote is what a reader
            // gets back.
            if format != "verilog" {
                let reparse = |s: &str| -> Result<tensorlib::hw::text::NetlistDoc, CliError> {
                    let bad = |err: &dyn fmt::Display| {
                        CliError(format!("emitted {format} does not re-parse: {err}"))
                    };
                    match format.as_str() {
                        "text" => tensorlib::hw::text::parse_text(s).map_err(|err| bad(&err)),
                        _ => tensorlib::hw::yosys::parse_yosys(s).map_err(|err| bad(&err)),
                    }
                };
                if reparse(&emitted)? != doc {
                    return Err(CliError(format!(
                        "emitted {format} round trip is not structurally identical"
                    )));
                }
            }
            let trace_note = if sim_cycles > 0 {
                let trace = smoke_trace(&doc, sim_cycles)?;
                atomic_write(&trace_out, trace.as_bytes())
                    .map_err(|err| CliError(format!("writing {trace_out}: {err}")))?;
                format!("wrote {sim_cycles}-cycle smoke trace to {trace_out}\n")
            } else {
                String::new()
            };
            if out == "-" {
                // The netlist itself is the stdout payload; the trace (if
                // any) already landed in its own file.
                Ok(emitted)
            } else {
                atomic_write(&out, emitted.as_bytes())
                    .map_err(|err| CliError(format!("writing {out}: {err}")))?;
                Ok(format!(
                    "wrote {format} netlist to {out}: {} lines, top module {}\n{trace_note}",
                    emitted.lines().count(),
                    design.top()
                ))
            }
        }
        Command::Parse {
            input,
            format,
            opt,
            sim_cycles,
            trace_out,
            out,
        } => {
            let src = std::fs::read_to_string(&input)
                .map_err(|err| CliError(format!("reading {input}: {err}")))?;
            let fmt = if format == "auto" {
                if src.trim_start().starts_with('{') {
                    "yosys-json"
                } else {
                    "text"
                }
            } else {
                format.as_str()
            };
            let doc = match fmt {
                "text" => tensorlib::hw::text::parse_text(&src)
                    .map_err(|err| CliError(format!("{input}: {err}")))?,
                _ => tensorlib::hw::yosys::parse_yosys(&src)
                    .map_err(|err| CliError(format!("{input}: {err}")))?,
            };
            doc.validate()
                .map_err(|msg| CliError(format!("{input}: {msg}")))?;
            let flat = tensorlib::hw::interp::elaborate(&doc.modules, &doc.banks, &doc.top)
                .map_err(|err| CliError(format!("{input}: {err}")))?;
            let ops = tensorlib::hw::interp::flat_op_count(&flat);
            let mut s = format!(
                "parsed {fmt} netlist {input}: top module {:?}, {} modules, {} banks\n\
                 elaborated: {} flat nets, {ops} bytecode ops\n",
                doc.top,
                doc.modules.len(),
                doc.banks.len(),
                flat.nets().len(),
            );
            if opt {
                let (opt_modules, _) = tensorlib::hw::opt::optimize_netlist(
                    &doc.modules,
                    &doc.top,
                    &tensorlib::hw::opt::OptOptions::default(),
                );
                let opt_doc = tensorlib::hw::text::NetlistDoc {
                    modules: opt_modules,
                    banks: doc.banks.clone(),
                    top: doc.top.clone(),
                };
                opt_doc.validate().map_err(|msg| {
                    CliError(format!("{input}: optimized netlist fails validation: {msg}"))
                })?;
                let opt_flat = tensorlib::hw::interp::elaborate(
                    &opt_doc.modules,
                    &opt_doc.banks,
                    &opt_doc.top,
                )
                .map_err(|err| {
                    CliError(format!("{input}: optimized netlist fails elaboration: {err}"))
                })?;
                s.push_str(&format!(
                    "optimizer recompile: {ops} -> {} bytecode ops\n",
                    tensorlib::hw::interp::flat_op_count(&opt_flat),
                ));
            }
            if sim_cycles > 0 {
                let trace = smoke_trace(&doc, sim_cycles)?;
                atomic_write(&trace_out, trace.as_bytes())
                    .map_err(|err| CliError(format!("writing {trace_out}: {err}")))?;
                s.push_str(&format!(
                    "wrote {sim_cycles}-cycle smoke trace to {trace_out}\n"
                ));
            }
            if out == "-" {
                Ok(s)
            } else {
                atomic_write(&out, s.as_bytes())
                    .map_err(|err| CliError(format!("writing {out}: {err}")))?;
                Ok(format!("wrote parse report to {out}\n"))
            }
        }
        Command::Simulate {
            workload,
            dataflow,
            rows,
            cols,
        } => {
            let kernel = resolve_workload(&workload)?;
            let acc = Accelerator::builder(kernel)
                .dataflow_name(&dataflow)
                .array(rows, cols)
                .build()
                .map_err(|err| e(&err))?;
            let run = acc.verify(42).map_err(|err| e(&err))?;
            let perf = acc.performance(&SimConfig::paper_default());
            Ok(format!(
                "verified: bit-exact over {} MACs\n\
                 cycles: {} total ({} stall), {:.1}% of peak, {:.1} Gop/s\n",
                run.macs_executed,
                perf.total_cycles,
                perf.stall_cycles,
                100.0 * perf.normalized_perf,
                perf.gops
            ))
        }
        Command::Stats {
            workload,
            dataflow,
            rows,
            cols,
            tiles,
            opt,
            out,
        } => {
            if tiles == 0 {
                return Err(CliError("--tiles must be at least 1".into()));
            }
            let t0 = std::time::Instant::now();
            let kernel = resolve_workload(&workload)?;
            let df = find_named(&kernel, &dataflow, &DseConfig::default())
                .map_err(|err| e(&err))?;
            let cfg = HwConfig {
                array: ArrayConfig { rows, cols },
                ..HwConfig::default()
            };
            let mut design = generate(&df, &cfg).map_err(|err| e(&err))?;
            let opt_stats = opt
                .then(|| design.optimize(&tensorlib::hw::opt::OptOptions::default()));
            let measured =
                tensorlib::sim::trace::measure(&design, &TraceConfig::counters_only(), tiles)
                    .map_err(|err| e(&err))?;
            let cross = tensorlib::sim::perf::cross_check(
                &design,
                &kernel,
                &SimConfig::paper_default(),
                tiles,
            )
            .map_err(|err| e(&err))?;
            let s = &measured.stats;
            let report = StatsReport {
                schema_version: SCHEMA_VERSION,
                provenance: provenance_for(
                    &format!("stats {workload} {dataflow} --rows {rows} --cols {cols} --tiles {tiles}"),
                    Vec::new(),
                    1,
                    t0.elapsed().as_micros() as u64,
                ),
                workload: workload.clone(),
                dataflow: dataflow.clone(),
                rows,
                cols,
                tiles,
                summary: StatsSummary {
                    cycles: s.cycles,
                    total_mac_cycles: s.total_mac_cycles(),
                    utilization: s.utilization(),
                    stall_cycles: s.stall_cycles(),
                    total_bank_conflicts: s.total_bank_conflicts(),
                },
                stats: s.clone(),
                cross_check: cross,
                opt: opt_stats,
            };
            let text = serde_json::to_string_pretty(&report)
                .map_err(|err| CliError(format!("serializing report: {err}")))?
                + "\n";
            emit_report(
                &out,
                report_path("stats", &workload, &dataflow, "json"),
                &text,
                "stats report",
            )
        }
        Command::Trace {
            workload,
            dataflow,
            rows,
            cols,
            tiles,
            nets,
            opt,
            out,
        } => {
            if tiles == 0 {
                return Err(CliError("--tiles must be at least 1".into()));
            }
            let kernel = resolve_workload(&workload)?;
            let df = find_named(&kernel, &dataflow, &DseConfig::default())
                .map_err(|err| e(&err))?;
            let cfg = HwConfig {
                array: ArrayConfig { rows, cols },
                ..HwConfig::default()
            };
            let mut design = generate(&df, &cfg).map_err(|err| e(&err))?;
            if opt {
                design.optimize(&tensorlib::hw::opt::OptOptions::default());
            }
            let watch: Vec<String> = if nets.is_empty() {
                ["en", "swap", "done"].iter().map(|s| s.to_string()).collect()
            } else {
                nets.split(',')
                    .map(|s| s.trim().to_string())
                    .filter(|s| !s.is_empty())
                    .collect()
            };
            let trace_cfg = TraceConfig::default().with_watch(watch);
            let measured = tensorlib::sim::trace::measure(&design, &trace_cfg, tiles)
                .map_err(|err| e(&err))?;
            let vcd = measured
                .sim
                .write_vcd()
                .ok_or_else(|| CliError("tracing produced no waveform".into()))?;
            let s = &measured.stats;
            let summary = format!(
                "{} signals, {} events recorded ({} dropped), {} cycles",
                measured.sim.watched_signals().len(),
                s.events_recorded,
                s.events_dropped,
                s.cycles
            );
            let msg = emit_report(
                &out,
                report_path("trace", &workload, &dataflow, "vcd"),
                &vcd,
                &format!("VCD ({summary})"),
            )?;
            Ok(msg)
        }
        Command::Faults {
            rows,
            cols,
            k,
            faults,
            seed,
            harden,
            workers,
            lanes,
            sweep_acc,
            opt,
            resume,
            chunk_timeout,
            out,
        } => {
            if rows == 0 || cols == 0 || k == 0 {
                return Err(CliError("--rows, --cols, and --k must be at least 1".into()));
            }
            if !sweep_acc && faults == 0 {
                return Err(CliError("--faults must be at least 1".into()));
            }
            let t0 = std::time::Instant::now();
            let hardening = Hardening::parse(&harden).map_err(CliError)?;
            let cfg = CampaignConfig {
                rows,
                cols,
                k,
                faults,
                seed,
                hardening,
                workers,
                lanes,
                opt,
            };
            let durability = durability_from(&resume, chunk_timeout);
            let (mode, (report, stats)) = if sweep_acc {
                // Flip every accumulator bit 0..8 mid-accumulation: half-way
                // through the compute phase (t-extent = k plus the skew in
                // each direction, plus the streaming-pipeline tail), after
                // the 1-cycle start handshake.
                let compute = k + rows as u64 - 1 + cols as u64 - 1 + 2;
                let cycle = 1 + compute / 2;
                (
                    "accumulator-sweep".to_string(),
                    run_accumulator_sweep_durable(&cfg, 8, cycle, &durability)
                        .map_err(|err| e(&err))?,
                )
            } else {
                (
                    "seeded".to_string(),
                    run_gemm_campaign_durable(&cfg, &durability).map_err(|err| e(&err))?,
                )
            };
            let hardening_cost = if hardening.is_any() {
                let gemm = workloads::gemm(rows as u64, cols as u64, k);
                let sel =
                    LoopSelection::by_names(&gemm, ["m", "n", "k"]).map_err(|err| e(&err))?;
                let df = Dataflow::analyze(&gemm, sel, Stt::output_stationary())
                    .map_err(|err| e(&err))?;
                let hw = HwConfig {
                    array: ArrayConfig { rows, cols },
                    ..HwConfig::default()
                };
                Some(
                    hardening_overhead(&df, &hw, hardening, &Activity::default())
                        .map_err(|err| e(&err))?,
                )
            } else {
                None
            };
            let mut provenance = provenance_for(
                &format!(
                    "faults --rows {rows} --cols {cols} --k {k} --seed {seed} --harden {hardening}"
                ),
                vec![seed],
                cfg.workers,
                t0.elapsed().as_micros() as u64,
            );
            provenance.journal = journal_provenance(&resume, &stats);
            provenance.lanes = lanes;
            let doc = FaultsReportDoc {
                schema_version: SCHEMA_VERSION,
                provenance,
                config: cfg,
                mode,
                report,
                hardening_overhead: hardening_cost,
                interrupted: stats.interrupted,
                resume_hint: resume_hint_for(&stats, &resume),
            };
            let text = serde_json::to_string_pretty(&doc)
                .map_err(|err| CliError(format!("serializing report: {err}")))?
                + "\n";
            let default_path = report_path(
                "faults",
                &format!("gemm-{rows}x{cols}x{k}"),
                &hardening.to_string(),
                "json",
            );
            let msg = emit_report(&out, default_path.clone(), &text, "resilience report")?;
            let mut history_note = String::new();
            if !doc.interrupted {
                let r = &doc.report;
                let mut metrics = std::collections::BTreeMap::new();
                metrics.insert("faults".to_string(), r.faults as f64);
                metrics.insert("masked".to_string(), r.masked as f64);
                metrics.insert("detected".to_string(), r.detected as f64);
                metrics.insert("sdc".to_string(), r.sdc as f64);
                metrics.insert("errors".to_string(), r.errors as f64);
                metrics.insert("degraded".to_string(), r.degraded as f64);
                metrics.insert("detection_coverage".to_string(), r.detection_coverage);
                history_note = append_history(
                    resolved_report_path(&out, &default_path).as_deref(),
                    "faults",
                    &format!(
                        "faults|rows={rows}|cols={cols}|k={k}|faults={faults}|seed={seed}\
                         |harden={hardening}|sweep={sweep_acc}|opt={opt}"
                    ),
                    &doc.provenance,
                    metrics,
                    t0.elapsed().as_millis() as u64,
                );
            }
            Ok(format!("{msg}{history_note}"))
        }
        Command::Fuzz {
            mode,
            seed,
            seeds,
            cycles,
            workers,
            lanes,
            opt,
            resume,
            chunk_timeout,
            out,
        } => {
            let (netlist, pipeline) = match mode.as_str() {
                "netlist" => (true, false),
                "pipeline" => (false, true),
                "both" => (true, true),
                other => {
                    return Err(CliError(format!(
                        "--mode must be netlist, pipeline, or both (got {other:?})"
                    )))
                }
            };
            if seeds == 0 || cycles == 0 {
                return Err(CliError("--seeds and --cycles must be at least 1".into()));
            }
            let t0 = std::time::Instant::now();
            let workers = if workers == 0 {
                std::thread::available_parallelism().map_or(1, usize::from)
            } else {
                workers
            };
            let cfg = VerifyConfig {
                seed_start: seed,
                seeds,
                workers,
                cycles,
                lanes,
                opt,
            };
            let durability = durability_from(&resume, chunk_timeout);
            let (report, stats) =
                run_verify_durable(&cfg, netlist, pipeline, &durability).map_err(|err| e(&err))?;
            let mut provenance = provenance_for(
                &format!("fuzz --mode {mode} --seed {seed} --seeds {seeds} --cycles {cycles}"),
                vec![seed],
                workers,
                t0.elapsed().as_micros() as u64,
            );
            provenance.journal = journal_provenance(&resume, &stats);
            provenance.lanes = lanes;
            let doc = FuzzReportDoc {
                schema_version: SCHEMA_VERSION,
                provenance,
                report,
                interrupted: stats.interrupted,
                resume_hint: resume_hint_for(&stats, &resume),
            };
            let text = serde_json::to_string_pretty(&doc)
                .map_err(|err| CliError(format!("serializing report: {err}")))?
                + "\n";
            let default_path = report_path("fuzz", &mode, &format!("{seed}-{seeds}"), "json");
            let msg = emit_report(&out, default_path.clone(), &text, "fuzz report")?;
            let mut history_note = String::new();
            if !doc.interrupted {
                let modes = [doc.report.netlist.as_ref(), doc.report.pipeline.as_ref()];
                let sum = |f: &dyn Fn(&tensorlib::sim::verify::ModeReport) -> u64| -> f64 {
                    modes.iter().flatten().map(|m| f(m)).sum::<u64>() as f64
                };
                let mut metrics = std::collections::BTreeMap::new();
                metrics.insert("seeds_run".to_string(), sum(&|m| m.seeds_run));
                metrics.insert("rejected".to_string(), sum(&|m| m.rejected));
                metrics.insert("degraded".to_string(), sum(&|m| m.degraded));
                metrics.insert(
                    "total_findings".to_string(),
                    doc.report.total_findings as f64,
                );
                history_note = append_history(
                    resolved_report_path(&out, &default_path).as_deref(),
                    "fuzz",
                    &format!("fuzz|mode={mode}|seed={seed}|seeds={seeds}|cycles={cycles}|opt={opt}"),
                    &doc.provenance,
                    metrics,
                    t0.elapsed().as_millis() as u64,
                );
            }
            Ok(format!("{msg}{history_note}"))
        }
        Command::Explore {
            workload,
            top,
            resume,
            chunk_timeout,
            out,
        } => {
            let t0 = std::time::Instant::now();
            let kernel = resolve_workload(&workload)?;
            let durability = durability_from(&resume, chunk_timeout);
            let (sweep, stats) = explore_durable(&kernel, &ExploreOptions::default(), &durability)
                .map_err(|err| e(&err))?;
            if out.is_empty() {
                let mut s = format!(
                    "{}: {} implementable designs (fastest {top}):\n",
                    kernel.name(),
                    sweep.rows.len()
                );
                let mut seen = std::collections::HashSet::new();
                for r in sweep
                    .rows
                    .iter()
                    .filter(|r| seen.insert(r.name.clone()))
                    .take(top)
                {
                    s.push_str(&format!(
                        "  {:14} {:>12} cycles  {:6.1} mW  {:.3} mm2\n",
                        r.name, r.total_cycles, r.power_mw, r.area_mm2
                    ));
                }
                if stats.interrupted {
                    s.push_str("interrupted: partial sweep");
                    if let Some(dir) = &resume {
                        s.push_str(&format!("; re-run with --resume {dir} to finish"));
                    }
                    s.push('\n');
                }
                return Ok(s);
            }
            let mut provenance = provenance_for(
                &format!("explore {workload} --top {top}"),
                Vec::new(),
                ExploreOptions::default().workers.max(1),
                t0.elapsed().as_micros() as u64,
            );
            provenance.journal = journal_provenance(&resume, &stats);
            let doc = ExploreReportDoc {
                schema_version: SCHEMA_VERSION,
                provenance,
                workload: workload.clone(),
                implementable_designs: sweep.rows.len(),
                errors: sweep.errors.len(),
                skipped: sweep.skipped as usize,
                degraded: sweep.degraded,
                top: sweep
                    .rows
                    .iter()
                    .take(top)
                    .map(|r| ExplorePointRow {
                        name: r.name.clone(),
                        letters: r.letters.clone(),
                        total_cycles: r.total_cycles,
                        normalized_perf: r.normalized_perf,
                        power_mw: r.power_mw,
                        area_mm2: r.area_mm2,
                    })
                    .collect(),
                interrupted: stats.interrupted,
                resume_hint: resume_hint_for(&stats, &resume),
            };
            let text = serde_json::to_string_pretty(&doc)
                .map_err(|err| CliError(format!("serializing report: {err}")))?
                + "\n";
            let default_path = report_path("explore", &workload, "sweep", "json");
            let msg = emit_report(&out, default_path.clone(), &text, "explore report")?;
            let mut history_note = String::new();
            if !doc.interrupted {
                let mut metrics = std::collections::BTreeMap::new();
                metrics.insert(
                    "implementable_designs".to_string(),
                    doc.implementable_designs as f64,
                );
                metrics.insert("errors".to_string(), doc.errors as f64);
                metrics.insert("skipped".to_string(), doc.skipped as f64);
                metrics.insert("degraded".to_string(), doc.degraded as f64);
                if let Some(best) = doc.top.first() {
                    metrics.insert("best_total_cycles".to_string(), best.total_cycles as f64);
                }
                history_note = append_history(
                    resolved_report_path(&out, &default_path).as_deref(),
                    "explore",
                    &format!("explore|{workload}|top={top}"),
                    &doc.provenance,
                    metrics,
                    t0.elapsed().as_millis() as u64,
                );
            }
            Ok(format!("{msg}{history_note}"))
        }
        Command::Profile {
            workload,
            top,
            rows,
            cols,
            workers,
            out,
        } => {
            let t0 = std::time::Instant::now();
            let kernel = resolve_workload(&workload)?;
            // Profile the full pipeline: enumeration, classification,
            // elaboration, bytecode compile, functional simulation, cost.
            let opts = ExploreOptions {
                hw: HwConfig {
                    array: ArrayConfig { rows, cols },
                    ..HwConfig::default()
                },
                workers,
                functional_verify: true,
                ..ExploreOptions::default()
            };
            let was_enabled = tensorlib_obs::is_enabled();
            tensorlib_obs::enable();
            let outcome = explore_outcome(&kernel, &opts);
            // The sweep's functional verifier is a behavioural model; the
            // netlist-flattening and bytecode-compilation phases only run in
            // the cycle-accurate interpreter. Deep-measure the fastest point
            // so the trace covers those too.
            if let Some(best) = outcome.points.first() {
                let measured = generate(&best.dataflow, &opts.hw).map_err(|err| e(&err)).and_then(
                    |design| {
                        tensorlib::sim::trace::measure(&design, &TraceConfig::counters_only(), 1)
                            .map_err(|err| e(&err))
                    },
                );
                if let Err(err) = measured {
                    if !was_enabled {
                        tensorlib_obs::disable();
                    }
                    return Err(err);
                }
            }
            let session = tensorlib_obs::drain();
            if !was_enabled {
                tensorlib_obs::disable();
            }
            let provenance = provenance_from_session(
                &session,
                &format!("profile {workload} --rows {rows} --cols {cols}"),
                vec![42],
                workers.max(1),
                t0.elapsed().as_micros() as u64,
            );
            let mut table = format!(
                "profiled {}: {} points, {} errors, {} skipped\n\n\
                 {:<28} {:>8} {:>12} {:>10}\n",
                kernel.name(),
                outcome.points.len(),
                outcome.errors.len(),
                outcome.skipped,
                "phase",
                "count",
                "total_us",
                "mean_us",
            );
            for (phase, (count, total_us)) in session.phase_totals().into_iter().take(top.max(1)) {
                table.push_str(&format!(
                    "{:<28} {:>8} {:>12} {:>10}\n",
                    phase,
                    count,
                    total_us,
                    total_us / count.max(1),
                ));
            }
            for (name, value) in &session.metrics.counters {
                table.push_str(&format!("counter {name} = {value}\n"));
            }
            let trace = session.to_chrome_trace(Some(&provenance));
            let msg = emit_report(
                &out,
                report_path("profile", &workload, "sweep", "trace.json"),
                &trace,
                "Chrome trace",
            )?;
            // A folded-stacks sibling rides along for flamegraph tooling
            // whenever the trace goes to a file.
            let mut folded_note = String::new();
            if out != "-" {
                let trace_path = if out.is_empty() {
                    report_path("profile", &workload, "sweep", "trace.json")
                } else {
                    out.clone()
                };
                let folded_path = format!("{}.folded", trace_path.trim_end_matches(".trace.json"));
                atomic_write(&folded_path, session.to_folded().as_bytes())
                    .map_err(|err| CliError(format!("writing {folded_path}: {err}")))?;
                folded_note = format!("wrote folded stacks to {folded_path}\n");
            }
            let mut metrics = std::collections::BTreeMap::new();
            metrics.insert("points".to_string(), outcome.points.len() as f64);
            metrics.insert("errors".to_string(), outcome.errors.len() as f64);
            metrics.insert("skipped".to_string(), outcome.skipped as f64);
            let history_note = append_history(
                resolved_report_path(&out, &report_path("profile", &workload, "sweep", "trace.json"))
                    .as_deref(),
                "profile",
                &format!("profile|{workload}|rows={rows}|cols={cols}|top={top}"),
                &provenance,
                metrics,
                t0.elapsed().as_millis() as u64,
            );
            Ok(format!("{table}\n{msg}{folded_note}{history_note}"))
        }
        // The exit-code-bearing commands: `run` discards the code for
        // callers that only want text; `run_coded` keeps it.
        Command::Status { dir, json } => run_status(&dir, json).map(|(text, _)| text),
        Command::Watch { dir, interval_ms } => run_watch(&dir, interval_ms).map(|(text, _)| text),
        Command::History {
            path,
            check,
            threshold,
        } => run_history(&path, check, threshold).map(|(text, _)| text),
    }
}

/// Like [`run`], but also returning the process exit code. Most commands
/// exit 0 on success; `status` exits 0 finished / 2 running / 3
/// interrupted, `watch` exits 0 finished / 3 interrupted, and
/// `history --check` exits 4 when a metric regression is flagged.
///
/// # Errors
///
/// Returns [`CliError`] when the command fails (exit code 1 in `main`).
pub fn run_coded(cmd: Command) -> Result<(String, u8), CliError> {
    match cmd {
        Command::Status { dir, json } => run_status(&dir, json),
        Command::Watch { dir, interval_ms } => run_watch(&dir, interval_ms),
        Command::History {
            path,
            check,
            threshold,
        } => run_history(&path, check, threshold),
        other => run(other).map(|text| (text, 0)),
    }
}

/// [`provenance_for`], but reading phase wall times out of an already-drained
/// [`tensorlib_obs::Session`] instead of the live recorder.
fn provenance_from_session(
    session: &tensorlib_obs::Session,
    command_echo: &str,
    seeds: Vec<u64>,
    workers: usize,
    total_us: u64,
) -> Provenance {
    let mut p = Provenance::new(command_echo);
    p.seeds = seeds;
    p.workers = workers;
    p.phase_wall_times_us = session
        .phase_totals()
        .into_iter()
        .map(|(name, (_count, total))| (name, total))
        .collect();
    p.phase_wall_times_us.insert("total".to_string(), total_us);
    p
}

/// Whether `main` should install the process-wide SIGINT latch before
/// running: only journaled campaigns (`--resume`) drain-and-flush on
/// Ctrl-C; every other command keeps the default kill-immediately behavior.
pub fn wants_interrupt_latch(cmd: &Command) -> bool {
    matches!(
        cmd,
        Command::Faults { resume: Some(_), .. }
            | Command::Fuzz { resume: Some(_), .. }
            | Command::Explore { resume: Some(_), .. }
    )
}

/// Runs a parsed invocation: the command itself, plus (when the global
/// `--profile <out.trace.json>` flag was given) a span-tracing session
/// around it whose Chrome trace — with the run's provenance embedded — is
/// written to the requested path. The flag never changes what the command
/// computes; see the module docs.
///
/// # Errors
///
/// Returns [`CliError`] when the command fails or the trace cannot be
/// written.
pub fn run_invocation(inv: Invocation) -> Result<String, CliError> {
    run_invocation_coded(inv).map(|(text, _)| text)
}

/// [`run_invocation`], but also returning the process exit code (see
/// [`run_coded`]). This is what `main` calls.
///
/// # Errors
///
/// Returns [`CliError`] when the command fails or the trace cannot be
/// written.
pub fn run_invocation_coded(inv: Invocation) -> Result<(String, u8), CliError> {
    let Some(trace_path) = inv.profile else {
        return run_coded(inv.command);
    };
    let t0 = std::time::Instant::now();
    let was_enabled = tensorlib_obs::is_enabled();
    tensorlib_obs::enable();
    let result = run_coded(inv.command);
    let session = tensorlib_obs::drain();
    if !was_enabled {
        tensorlib_obs::disable();
    }
    let (output, code) = result?;
    let provenance = provenance_from_session(
        &session,
        &inv.echo,
        Vec::new(),
        1,
        t0.elapsed().as_micros() as u64,
    );
    let trace = session.to_chrome_trace(Some(&provenance));
    let note = emit_report(&trace_path, String::new(), &trace, "profile trace")?;
    Ok((format!("{output}{note}"), code))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sv(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parse_all_commands() {
        assert_eq!(parse_args(&sv(&["workloads"])).unwrap(), Command::Workloads);
        assert_eq!(
            parse_args(&sv(&["analyze", "gemm", "MNK-SST"])).unwrap(),
            Command::Analyze {
                workload: "gemm".into(),
                dataflow: "MNK-SST".into()
            }
        );
        assert_eq!(
            parse_args(&sv(&[
                "generate", "gemm", "MNK-SST", "-o", "x.v", "--rows", "4", "--cols", "8"
            ]))
            .unwrap(),
            Command::Generate {
                workload: "gemm".into(),
                dataflow: "MNK-SST".into(),
                out: "x.v".into(),
                rows: 4,
                cols: 8,
                opt: true,
            }
        );
        // Both --opt spellings parse; bad values are errors.
        assert_eq!(
            parse_args(&sv(&["generate", "gemm", "MNK-SST", "--opt=off"])).unwrap(),
            Command::Generate {
                workload: "gemm".into(),
                dataflow: "MNK-SST".into(),
                out: "-".into(),
                rows: 16,
                cols: 16,
                opt: false,
            }
        );
        assert_eq!(
            parse_args(&sv(&["generate", "gemm", "MNK-SST", "--opt", "off"])).unwrap(),
            parse_args(&sv(&["generate", "gemm", "MNK-SST", "--opt=off"])).unwrap(),
        );
        assert!(parse_args(&sv(&["generate", "gemm", "MNK-SST", "--opt=maybe"])).is_err());
        assert_eq!(
            parse_args(&sv(&["explore", "gemm", "--top", "3"])).unwrap(),
            Command::Explore {
                workload: "gemm".into(),
                top: 3,
                resume: None,
                chunk_timeout: None,
                out: String::new()
            }
        );
        assert_eq!(
            parse_args(&sv(&["explore", "gemm", "-o", "sweep.json"])).unwrap(),
            Command::Explore {
                workload: "gemm".into(),
                top: 10,
                resume: None,
                chunk_timeout: None,
                out: "sweep.json".into()
            }
        );
        assert_eq!(
            parse_args(&sv(&["profile", "gemm", "--workers", "2", "-o", "-"])).unwrap(),
            Command::Profile {
                workload: "gemm".into(),
                top: 10,
                rows: 4,
                cols: 4,
                workers: 2,
                out: "-".into()
            }
        );
    }

    #[test]
    fn parse_invocation_extracts_global_profile_flag() {
        let inv = parse_invocation(&sv(&["--profile", "run.trace.json", "workloads"])).unwrap();
        assert_eq!(inv.profile.as_deref(), Some("run.trace.json"));
        assert_eq!(inv.command, Command::Workloads);
        assert_eq!(inv.echo, "--profile run.trace.json workloads");

        // The flag may appear anywhere, including after the command.
        let inv = parse_invocation(&sv(&["workloads", "--profile", "t.json"])).unwrap();
        assert_eq!(inv.profile.as_deref(), Some("t.json"));
        assert_eq!(inv.command, Command::Workloads);

        // Without the flag, nothing changes.
        let inv = parse_invocation(&sv(&["workloads"])).unwrap();
        assert_eq!(inv.profile, None);

        // A dangling --profile is a usage error.
        let err = parse_invocation(&sv(&["workloads", "--profile"])).unwrap_err();
        assert!(err.to_string().contains("--profile"), "{err}");
    }

    #[test]
    fn parse_errors() {
        assert!(parse_args(&sv(&[])).is_err());
        assert!(parse_args(&sv(&["analyze", "gemm"])).is_err());
        assert!(parse_args(&sv(&["generate", "gemm", "MNK-SST", "--rows"])).is_err());
        assert!(parse_args(&sv(&["simulate", "gemm", "X", "--bogus", "1"])).is_err());
        assert!(parse_args(&sv(&["explore", "gemm", "--top", "zz"])).is_err());
    }

    #[test]
    fn workload_resolution() {
        assert_eq!(resolve_workload("gemm").unwrap().name(), "GEMM");
        let k = resolve_workload("gemm:4,5,6").unwrap();
        assert_eq!(k.loop_nest().extents(), vec![4, 5, 6]);
        assert_eq!(
            resolve_workload("mttkrp:2,3,4,5").unwrap().name(),
            "MTTKRP"
        );
        assert!(resolve_workload("nonsense").is_err());
        assert!(resolve_workload("gemm:1,2").is_err());
        assert!(resolve_workload("gemm:a,b,c").is_err());
    }

    #[test]
    fn run_workloads_and_analyze() {
        let out = run(Command::Workloads).unwrap();
        assert!(out.contains("GEMM"));
        assert!(out.contains("MTTKRP"));
        let out = run(Command::Analyze {
            workload: "gemm:16,16,16".into(),
            dataflow: "MNK-SST".into(),
        })
        .unwrap();
        assert!(out.contains("systolic"));
        assert!(out.contains("stationary"));
    }

    #[test]
    fn run_simulate_small() {
        let out = run(Command::Simulate {
            workload: "gemm:8,8,8".into(),
            dataflow: "MNK-SST".into(),
            rows: 4,
            cols: 4,
        })
        .unwrap();
        assert!(out.contains("bit-exact"));
        assert!(out.contains("Gop/s"));
    }

    #[test]
    fn run_generate_to_stdout() {
        let out = run(Command::Generate {
            workload: "gemm:8,8,8".into(),
            dataflow: "MNK-SST".into(),
            out: "-".into(),
            rows: 2,
            cols: 2,
            opt: true,
        })
        .unwrap();
        assert!(out.contains("endmodule"));
    }

    #[test]
    fn parse_emit_and_parse_commands() {
        assert_eq!(
            parse_args(&sv(&["emit", "gemm", "MNK-SST"])).unwrap(),
            Command::Emit {
                workload: "gemm".into(),
                dataflow: "MNK-SST".into(),
                rows: 16,
                cols: 16,
                format: "text".into(),
                opt: true,
                sim_cycles: 0,
                trace_out: String::new(),
                out: "-".into(),
            }
        );
        assert_eq!(
            parse_args(&sv(&[
                "emit",
                "gemm:8,8,8",
                "MNK-SST",
                "--rows",
                "2",
                "--cols",
                "2",
                "--format",
                "yosys-json",
                "--opt=off",
                "--sim-cycles",
                "64",
                "--trace-out",
                "t.trace",
                "-o",
                "n.json",
            ]))
            .unwrap(),
            Command::Emit {
                workload: "gemm:8,8,8".into(),
                dataflow: "MNK-SST".into(),
                rows: 2,
                cols: 2,
                format: "yosys-json".into(),
                opt: false,
                sim_cycles: 64,
                trace_out: "t.trace".into(),
                out: "n.json".into(),
            }
        );
        assert_eq!(
            parse_args(&sv(&["parse", "n.tl", "--format", "text", "-o", "r.txt"])).unwrap(),
            Command::Parse {
                input: "n.tl".into(),
                format: "text".into(),
                opt: true,
                sim_cycles: 0,
                trace_out: String::new(),
                out: "r.txt".into(),
            }
        );
        // Defaults: emit → text, parse → auto-sniff.
        assert_eq!(
            parse_args(&sv(&["parse", "n.json"])).unwrap(),
            Command::Parse {
                input: "n.json".into(),
                format: "auto".into(),
                opt: true,
                sim_cycles: 0,
                trace_out: String::new(),
                out: "-".into(),
            }
        );
        // Format values are validated per command, and the smoke-trace
        // flags only come as a pair.
        assert!(parse_args(&sv(&["emit", "gemm", "MNK-SST", "--format", "auto"])).is_err());
        assert!(parse_args(&sv(&["parse", "n.tl", "--format", "verilog"])).is_err());
        assert!(parse_args(&sv(&["emit", "gemm", "MNK-SST", "--sim-cycles", "8"])).is_err());
        assert!(parse_args(&sv(&["parse", "n.tl", "--trace-out", "t.trace"])).is_err());
        assert!(parse_args(&sv(&["emit", "gemm", "MNK-SST", "--sim-cycles", "0"])).is_err());
    }

    #[test]
    fn run_emit_parse_round_trip_with_trace() {
        let dir = std::env::temp_dir().join("tensorlib_cli_interchange_test");
        std::fs::create_dir_all(&dir).unwrap();
        let p = |n: &str| dir.join(n).to_string_lossy().into_owned();
        for (format, file) in [("text", "n.tl"), ("yosys-json", "n.json")] {
            let netlist = p(file);
            let emit_trace = p(&format!("{format}.emit.trace"));
            let parse_trace = p(&format!("{format}.parse.trace"));
            let out = run(Command::Emit {
                workload: "gemm:8,8,8".into(),
                dataflow: "MNK-SST".into(),
                rows: 2,
                cols: 2,
                format: format.into(),
                opt: true,
                sim_cycles: 16,
                trace_out: emit_trace.clone(),
                out: netlist.clone(),
            })
            .unwrap();
            assert!(out.contains("wrote"), "{out}");
            // Auto-detection picks the right parser for both formats.
            let out = run(Command::Parse {
                input: netlist,
                format: "auto".into(),
                opt: true,
                sim_cycles: 16,
                trace_out: parse_trace.clone(),
                out: "-".into(),
            })
            .unwrap();
            assert!(out.contains(&format!("parsed {format} netlist")), "{out}");
            assert!(out.contains("optimizer recompile"), "{out}");
            let a = std::fs::read(&emit_trace).unwrap();
            let b = std::fs::read(&parse_trace).unwrap();
            assert!(!a.is_empty());
            assert_eq!(a, b, "{format} smoke traces must be byte-identical");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn run_emit_verilog_matches_generate() {
        let emit = run(Command::Emit {
            workload: "gemm:8,8,8".into(),
            dataflow: "MNK-SST".into(),
            rows: 2,
            cols: 2,
            format: "verilog".into(),
            opt: true,
            sim_cycles: 0,
            trace_out: String::new(),
            out: "-".into(),
        })
        .unwrap();
        let generate = run(Command::Generate {
            workload: "gemm:8,8,8".into(),
            dataflow: "MNK-SST".into(),
            out: "-".into(),
            rows: 2,
            cols: 2,
            opt: true,
        })
        .unwrap();
        assert_eq!(emit, generate);
    }

    #[test]
    fn run_parse_rejects_garbage_with_located_error() {
        let dir = std::env::temp_dir().join("tensorlib_cli_parse_err_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.tl").to_string_lossy().into_owned();
        std::fs::write(&path, "tensorlib-netlist v1\nmodule \"m\"\n").unwrap();
        let err = run(Command::Parse {
            input: path,
            format: "text".into(),
            opt: false,
            sim_cycles: 0,
            trace_out: String::new(),
            out: "-".into(),
        })
        .unwrap_err();
        assert!(err.to_string().contains("line"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn parse_stats_and_trace() {
        assert_eq!(
            parse_args(&sv(&[
                "stats", "gemm:4,4,4", "MNK-SST", "--rows", "4", "--cols", "4", "--tiles",
                "3"
            ]))
            .unwrap(),
            Command::Stats {
                workload: "gemm:4,4,4".into(),
                dataflow: "MNK-SST".into(),
                rows: 4,
                cols: 4,
                tiles: 3,
                opt: true,
                out: String::new()
            }
        );
        assert_eq!(
            parse_args(&sv(&["trace", "gemm", "MNK-SST", "--nets", "en,swap", "-o", "-"]))
                .unwrap(),
            Command::Trace {
                workload: "gemm".into(),
                dataflow: "MNK-SST".into(),
                rows: 16,
                cols: 16,
                tiles: 2,
                nets: "en,swap".into(),
                opt: true,
                out: "-".into()
            }
        );
        assert!(parse_args(&sv(&["stats", "gemm", "MNK-SST", "--tiles", "x"])).is_err());
    }

    /// The acceptance benchmark: `tensorlib stats` on the 4×4
    /// output-stationary GEMM must report counters that match the values one
    /// can compute by hand from the design's fixed schedule.
    ///
    /// The design (`gemm:4,4,4`, MNK-SST, 4×4 array) has phases
    /// load=0 / compute=12 / drain=4 (t_extent 10 = k + skew of 3 in each
    /// direction, plus the 2-cycle streaming pipeline before the swap
    /// capture; drain walks 4 result rows out). With `--tiles 2` the
    /// measurement protocol runs `1 + 2×16 = 33` cycles:
    ///
    /// * controller: compute = 2×12 = 24, drain = 2×4 = 8, idle = 1 (the
    ///   start handshake), swaps = 2 (one per tile);
    /// * MACs: a PE at (i,j) sees its first nonzero product only after the
    ///   1-cycle bank-read latency plus max(i,j) systolic hops, so tile 1
    ///   contributes Σ_{i,j} (12 − 1 − max(i,j)) = 142; operands then stay
    ///   latched through the drain phase, so tile 2 contributes 16×12 = 192.
    ///   Total MAC-issue cycles = 334, utilization = 334/(16×33) ≈ 63.3%;
    /// * banks: single-ported feeds are never read and written in the same
    ///   cycle, so 0 conflicts; the only stall is the 1 idle cycle.
    #[test]
    fn run_stats_matches_hand_computed_os_gemm_4x4() {
        let out = run(Command::Stats {
            workload: "gemm:4,4,4".into(),
            dataflow: "MNK-SST".into(),
            rows: 4,
            cols: 4,
            tiles: 2,
            opt: true,
            out: "-".into(),
        })
        .unwrap();
        for needle in [
            "\"cycles\": 33",
            "\"total_mac_cycles\": 334",
            "\"stall_cycles\": 1",
            "\"total_bank_conflicts\": 0",
            "\"compute_cycles\": 24",
            "\"drain_cycles\": 8",
            "\"idle_cycles\": 1",
            "\"swap_pulses\": 2",
        ] {
            assert!(out.contains(needle), "missing {needle} in stats:\n{out}");
        }
        // 334 MACs over 16 PEs × 33 cycles.
        assert!(
            out.contains("\"utilization\": 0.632"),
            "utilization should be ≈0.633:\n{out}"
        );
    }

    #[test]
    fn run_trace_emits_vcd_with_watched_nets() {
        let out = run(Command::Trace {
            workload: "gemm:4,4,4".into(),
            dataflow: "MNK-SST".into(),
            rows: 4,
            cols: 4,
            tiles: 1,
            nets: "en,swap,done".into(),
            opt: true,
            out: "-".into(),
        })
        .unwrap();
        assert!(out.starts_with("$timescale"), "not a VCD:\n{out}");
        for net in ["en", "swap", "done"] {
            assert!(out.contains(&format!(" {net} $end")), "missing var {net}");
        }
        assert!(out.contains("$dumpvars"));
    }

    #[test]
    fn run_trace_unknown_net_is_an_error() {
        let err = run(Command::Trace {
            workload: "gemm:4,4,4".into(),
            dataflow: "MNK-SST".into(),
            rows: 4,
            cols: 4,
            tiles: 1,
            nets: "no_such_net".into(),
            opt: true,
            out: "-".into(),
        })
        .unwrap_err();
        assert!(err.to_string().contains("no_such_net"), "{err}");
    }

    #[test]
    fn parse_faults_defaults_and_flags() {
        assert_eq!(
            parse_args(&sv(&["faults"])).unwrap(),
            Command::Faults {
                rows: 4,
                cols: 4,
                k: 4,
                faults: 64,
                seed: 1,
                harden: "none".into(),
                workers: 0,
                lanes: 1,
                sweep_acc: false,
                opt: true,
                resume: None,
                chunk_timeout: None,
                out: String::new(),
            }
        );
        assert_eq!(
            parse_args(&sv(&[
                "faults", "--rows", "16", "--cols", "8", "--k", "6", "--faults", "12",
                "--seed", "9", "--harden", "tmr,parity", "--workers", "2", "--lanes", "8",
                "--sweep-acc", "--opt=off",
                "-o", "-",
            ]))
            .unwrap(),
            Command::Faults {
                rows: 16,
                cols: 8,
                k: 6,
                faults: 12,
                seed: 9,
                harden: "tmr,parity".into(),
                workers: 2,
                lanes: 8,
                sweep_acc: true,
                opt: false,
                resume: None,
                chunk_timeout: None,
                out: "-".into(),
            }
        );
        // Malformed arguments are parse errors, not panics.
        assert!(parse_args(&sv(&["faults", "--seed", "banana"])).is_err());
        assert!(parse_args(&sv(&["faults", "--faults"])).is_err());
        assert!(parse_args(&sv(&["faults", "extra-positional"])).is_err());
    }

    #[test]
    fn parse_fuzz_defaults_and_flags() {
        assert_eq!(
            parse_args(&sv(&["fuzz"])).unwrap(),
            Command::Fuzz {
                mode: "both".into(),
                seed: 1,
                seeds: 256,
                cycles: 16,
                workers: 0,
                lanes: 1,
                opt: true,
                resume: None,
                chunk_timeout: None,
                out: String::new(),
            }
        );
        assert_eq!(
            parse_args(&sv(&[
                "fuzz", "--mode", "netlist", "--seed", "7", "--seeds", "99", "--cycles",
                "8", "--workers", "3", "--lanes", "16", "--opt", "off", "-o", "-",
            ]))
            .unwrap(),
            Command::Fuzz {
                mode: "netlist".into(),
                seed: 7,
                seeds: 99,
                cycles: 8,
                workers: 3,
                lanes: 16,
                opt: false,
                resume: None,
                chunk_timeout: None,
                out: "-".into(),
            }
        );
        assert!(parse_args(&sv(&["fuzz", "--seeds", "banana"])).is_err());
        assert!(parse_args(&sv(&["fuzz", "extra-positional"])).is_err());
    }

    #[test]
    fn run_fuzz_reports_zero_findings_on_clean_seeds() {
        let out = run(Command::Fuzz {
            mode: "both".into(),
            seed: 0,
            seeds: 10,
            cycles: 8,
            workers: 2,
            lanes: 4,
            opt: true,
            resume: None,
            chunk_timeout: None,
            out: "-".into(),
        })
        .unwrap();
        assert!(out.contains("\"total_findings\": 0"), "{out}");
        assert!(out.contains("\"netlist\""), "{out}");
        assert!(out.contains("\"pipeline\""), "{out}");
    }

    #[test]
    fn run_fuzz_rejects_bad_mode() {
        let err = run(Command::Fuzz {
            mode: "bogus".into(),
            seed: 0,
            seeds: 1,
            cycles: 1,
            workers: 1,
            lanes: 1,
            opt: true,
            resume: None,
            chunk_timeout: None,
            out: "-".into(),
        })
        .unwrap_err();
        assert!(err.to_string().contains("--mode"), "{err}");
    }

    fn faults_cmd(harden: &str, faults: usize, out: &str) -> Command {
        Command::Faults {
            rows: 4,
            cols: 4,
            k: 4,
            faults,
            seed: 1,
            harden: harden.into(),
            workers: 1,
            lanes: 1,
            sweep_acc: false,
            opt: true,
            resume: None,
            chunk_timeout: None,
            out: out.into(),
        }
    }

    #[test]
    fn parse_campaign_durability_flags() {
        match parse_args(&sv(&["faults", "--resume", "j/dir", "--chunk-timeout", "30"])).unwrap() {
            Command::Faults {
                resume,
                chunk_timeout,
                ..
            } => {
                assert_eq!(resume.as_deref(), Some("j/dir"));
                assert_eq!(chunk_timeout, Some(30));
            }
            other => panic!("parsed {other:?}"),
        }
        // The SIGINT drain latch is armed exactly when a journal exists to
        // flush: --resume arms it, --chunk-timeout alone does not.
        assert!(wants_interrupt_latch(
            &parse_args(&sv(&["fuzz", "--resume", "j"])).unwrap()
        ));
        assert!(!wants_interrupt_latch(
            &parse_args(&sv(&["explore", "gemm", "--chunk-timeout", "5"])).unwrap()
        ));
        assert!(!wants_interrupt_latch(&Command::Workloads));
    }

    #[test]
    fn parse_rejects_nonsense_campaign_arguments_up_front() {
        for (args, needle) in [
            (vec!["fuzz", "--workers", "0"], "--workers"),
            (vec!["fuzz", "--lanes", "0"], "--lanes"),
            (vec!["fuzz", "--lanes", "70"], "between 1 and 64"),
            (vec!["fuzz", "--seeds", "0"], "--seeds"),
            (vec!["fuzz", "--cycles", "0"], "--cycles"),
            (vec!["faults", "--faults", "0"], "--faults"),
            (vec!["faults", "--k", "0"], "--k"),
            (vec!["faults", "--rows", "0"], "--rows"),
            (vec!["faults", "--cols", "0"], "--cols"),
            (vec!["faults", "--chunk-timeout", "0"], "--chunk-timeout"),
            (vec!["faults", "--resume", ""], "--resume"),
        ] {
            let err = parse_args(&sv(&args)).unwrap_err();
            assert!(err.to_string().contains(needle), "{args:?}: {err}");
        }
        // --faults 0 is only an error for the seeded campaign; with
        // --sweep-acc the sample count is unused.
        assert!(parse_args(&sv(&["faults", "--faults", "0", "--sweep-acc"])).is_ok());
    }

    #[test]
    fn run_faults_resume_with_drifted_config_fails_loudly() {
        let dir = std::env::temp_dir().join(format!("tl_cli_drift_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cmd = |seed: u64| Command::Faults {
            rows: 4,
            cols: 4,
            k: 4,
            faults: 6,
            seed,
            harden: "none".into(),
            workers: 1,
            lanes: 1,
            sweep_acc: false,
            opt: true,
            resume: Some(dir.to_str().unwrap().into()),
            chunk_timeout: None,
            out: "-".into(),
        };
        let clean = run(cmd(1)).unwrap();
        assert!(clean.contains("\"interrupted\": false"), "{clean}");
        assert!(clean.contains("\"journal\": {"), "{clean}");
        // Same --resume dir, different campaign: a loud refusal, never a
        // silent restart.
        let err = run(cmd(2)).unwrap_err();
        assert!(
            err.to_string().contains("different campaign config"),
            "{err}"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn run_faults_journaled_report_matches_legacy_body() {
        let dir = std::env::temp_dir().join(format!("tl_cli_journal_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let journaled = run(Command::Faults {
            rows: 4,
            cols: 4,
            k: 4,
            faults: 6,
            seed: 1,
            harden: "full".into(),
            workers: 1,
            lanes: 1,
            sweep_acc: false,
            opt: true,
            resume: Some(dir.to_str().unwrap().into()),
            chunk_timeout: None,
            out: "-".into(),
        })
        .unwrap();
        let legacy = run(faults_cmd("full", 6, "-")).unwrap();
        // The campaign body (config + report) is byte-identical; only the
        // provenance journal block and wall times differ.
        let body_of = |doc: &str| {
            let v = tensorlib_obs::json::parse(doc).unwrap();
            format!("{:?}|{:?}", v.get("config"), v.get("report"))
        };
        assert_eq!(body_of(&journaled), body_of(&legacy));
        assert!(journaled.contains("\"chunks_executed\""), "{journaled}");
        assert!(legacy.contains("\"journal\": null"), "{legacy}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn run_faults_emits_classified_report() {
        let out = run(faults_cmd("full", 6, "-")).unwrap();
        for needle in [
            "\"mode\": \"seeded\"",
            "\"detection_coverage\"",
            "\"masked\"",
            "\"hardening\": \"tmr,par,abft\"",
            "\"area_overhead_pct\"",
        ] {
            assert!(out.contains(needle), "missing {needle} in report:\n{out}");
        }
    }

    #[test]
    fn run_faults_unhardened_skips_overhead() {
        let out = run(faults_cmd("none", 4, "-")).unwrap();
        assert!(out.contains("\"hardening_overhead\": null"), "{out}");
    }

    #[test]
    fn run_faults_bad_hardening_and_zero_params_are_errors() {
        let err = run(faults_cmd("voodoo", 4, "-")).unwrap_err();
        assert!(err.to_string().contains("voodoo"), "{err}");
        let err = run(Command::Faults {
            rows: 0,
            cols: 4,
            k: 4,
            faults: 4,
            seed: 1,
            harden: "none".into(),
            workers: 1,
            lanes: 1,
            sweep_acc: false,
            opt: true,
            resume: None,
            chunk_timeout: None,
            out: "-".into(),
        })
        .unwrap_err();
        assert!(err.to_string().contains("--rows"), "{err}");
        let err = run(faults_cmd("none", 0, "-")).unwrap_err();
        assert!(err.to_string().contains("--faults"), "{err}");
    }

    #[test]
    fn run_faults_unwritable_report_dir_is_a_typed_error() {
        // A parent path that is a *file* makes create_dir_all fail; the CLI
        // must surface a descriptive CliError, not panic.
        let dir = std::env::temp_dir().join(format!("tl_cli_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let blocker = dir.join("not_a_dir");
        std::fs::write(&blocker, b"plain file").unwrap();
        let out = blocker.join("reports").join("r.json");
        let err = run(faults_cmd("none", 4, out.to_str().unwrap())).unwrap_err();
        assert!(
            err.to_string().contains("creating") || err.to_string().contains("writing"),
            "unexpected error text: {err}"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn run_bad_dataflow_is_error() {
        let err = run(Command::Analyze {
            workload: "gemm".into(),
            dataflow: "ZZZ-XXX".into(),
        })
        .unwrap_err();
        assert!(err.to_string().contains("ZZZ-XXX"));
    }

    #[test]
    fn reports_carry_schema_version_and_provenance() {
        let stats = run(Command::Stats {
            workload: "gemm:4,4,4".into(),
            dataflow: "MNK-SST".into(),
            rows: 4,
            cols: 4,
            tiles: 1,
            opt: true,
            out: "-".into(),
        })
        .unwrap();
        let fuzz = run(Command::Fuzz {
            mode: "netlist".into(),
            seed: 3,
            seeds: 4,
            cycles: 8,
            workers: 1,
            lanes: 1,
            opt: true,
            resume: None,
            chunk_timeout: None,
            out: "-".into(),
        })
        .unwrap();
        let faults = run(faults_cmd("none", 4, "-")).unwrap();
        for (name, doc) in [("stats", &stats), ("fuzz", &fuzz), ("faults", &faults)] {
            for needle in [
                "\"schema_version\": 1",
                "\"provenance\"",
                "\"generator\": \"tensorlib\"",
                "\"pkg_version\"",
                "\"phase_wall_times_us\"",
                "\"total\"",
            ] {
                assert!(doc.contains(needle), "{name} report missing {needle}:\n{doc}");
            }
            // Every emitted document passes the reader-side schema check.
            assert_eq!(tensorlib_obs::check_schema_version(doc).unwrap(), 1, "{name}");
        }
        // The campaign seeds land in the provenance block, machine-readably.
        let seeds_of = |doc: &str| {
            let v = tensorlib_obs::json::parse(doc).unwrap();
            v.get("provenance")
                .and_then(|p| p.get("seeds"))
                .and_then(|s| s.as_array().map(|a| a.iter().filter_map(|x| x.as_u64()).collect::<Vec<_>>()))
                .unwrap()
        };
        assert_eq!(seeds_of(&fuzz), vec![3]);
        assert_eq!(seeds_of(&faults), vec![1]);
    }

    /// Serializes the tests below that flip the process-wide recording
    /// switch, so their sessions never observe each other's spans.
    static OBS_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn run_explore_json_report_lists_top_points() {
        let out = run(Command::Explore {
            workload: "gemm:4,4,4".into(),
            top: 3,
            resume: None,
            chunk_timeout: None,
            out: "-".into(),
        })
        .unwrap();
        for needle in [
            "\"schema_version\": 1",
            "\"implementable_designs\"",
            "\"total_cycles\"",
            "\"normalized_perf\"",
            "\"area_mm2\"",
        ] {
            assert!(out.contains(needle), "missing {needle}:\n{out}");
        }
    }

    #[test]
    fn run_profile_emits_phase_table_and_trace() {
        let _guard = OBS_LOCK.lock().unwrap_or_else(|p| p.into_inner());
        let dir = std::env::temp_dir().join(format!("tl_profile_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let trace_path = dir.join("p.trace.json");
        let out = run(Command::Profile {
            workload: "gemm:2,2,2".into(),
            top: 50,
            rows: 2,
            cols: 2,
            workers: 1,
            out: trace_path.to_str().unwrap().into(),
        })
        .unwrap();
        assert!(!tensorlib_obs::is_enabled(), "profile must restore disabled state");
        for phase in [
            "dse.stt_enumeration",
            "dse.classification",
            "hw.elaboration",
            "hw.flatten",
            "hw.bytecode_compile",
            "sim.functional",
            "sim.measure",
            "sim.cost_model",
        ] {
            assert!(out.contains(phase), "phase table missing {phase}:\n{out}");
        }
        let trace = std::fs::read_to_string(&trace_path).unwrap();
        assert!(trace.contains("\"traceEvents\""), "{trace_path:?} not a trace");
        assert!(trace.contains("\"provenance\""));
        assert_eq!(tensorlib_obs::check_schema_version(&trace).unwrap(), 1);
        let folded = std::fs::read_to_string(dir.join("p.folded")).unwrap();
        assert!(folded.contains("explore"), "folded stacks empty:\n{folded}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn run_invocation_global_profile_writes_trace_and_keeps_output() {
        let _guard = OBS_LOCK.lock().unwrap_or_else(|p| p.into_inner());
        let dir = std::env::temp_dir().join(format!("tl_inv_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let trace_path = dir.join("stats.trace.json");
        let args = sv(&[
            "--profile",
            trace_path.to_str().unwrap(),
            "stats",
            "gemm:4,4,4",
            "MNK-SST",
            "--rows",
            "4",
            "--cols",
            "4",
            "-o",
            "-",
        ]);
        let inv = parse_invocation(&args).unwrap();
        let out = run_invocation(inv).unwrap();
        assert!(!tensorlib_obs::is_enabled(), "--profile must restore disabled state");
        // The command's own output is unchanged and the note rides along.
        assert!(out.contains("\"cycles\""), "{out}");
        assert!(out.contains("wrote profile trace"), "{out}");
        let trace = std::fs::read_to_string(&trace_path).unwrap();
        assert!(trace.contains("hw.elaboration"), "trace missing spans:\n{trace}");
        // The provenance echoes the full argument vector.
        assert!(trace.contains("stats gemm:4,4,4 MNK-SST"), "{trace}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("tl_cli_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn parse_status_watch_history_commands() {
        assert_eq!(
            parse_args(&sv(&["status", "j/dir", "--json"])).unwrap(),
            Command::Status {
                dir: "j/dir".into(),
                json: true
            }
        );
        assert_eq!(
            parse_args(&sv(&["watch", "j/dir", "--interval", "0.25"])).unwrap(),
            Command::Watch {
                dir: "j/dir".into(),
                interval_ms: 250
            }
        );
        // history defaults to the reports-dir index; an explicit path and
        // --check/--threshold parse.
        assert_eq!(
            parse_args(&sv(&["history"])).unwrap(),
            Command::History {
                path: "reports/history.jsonl".into(),
                check: false,
                threshold: tensorlib_obs::history::DEFAULT_CHECK_THRESHOLD_PCT,
            }
        );
        assert_eq!(
            parse_args(&sv(&["history", "r", "--check", "--threshold", "2.5"])).unwrap(),
            Command::History {
                path: "r".into(),
                check: true,
                threshold: 2.5
            }
        );
        assert!(parse_args(&sv(&["watch", "d", "--interval", "0"])).is_err());
        assert!(parse_args(&sv(&["history", "--threshold", "-3"])).is_err());
        assert!(parse_args(&sv(&["status"])).is_err());
    }

    #[test]
    fn journaled_faults_writes_telemetry_status_and_history() {
        let dir = tmpdir("telemetry_e2e");
        let journal = dir.join("journal");
        let report = dir.join("reports").join("faults.json");
        let cmd = |journal: &std::path::Path| Command::Faults {
            rows: 2,
            cols: 2,
            k: 2,
            faults: 8,
            seed: 1,
            harden: "none".into(),
            workers: 1,
            lanes: 1,
            sweep_acc: false,
            opt: true,
            resume: Some(journal.to_str().unwrap().into()),
            chunk_timeout: None,
            out: report.to_str().unwrap().into(),
        };
        let note = run(cmd(&journal)).unwrap();
        assert!(note.contains("appended history entry"), "{note}");
        // The campaign dir has a well-formed event log ending in
        // campaign_finished, and a finished status snapshot.
        let events = tensorlib_obs::events::read_events(&journal).unwrap();
        let names: Vec<_> = events
            .iter()
            .map(|e| e.get("event").and_then(|v| v.as_str()).unwrap().to_string())
            .collect();
        assert_eq!(names.first().map(String::as_str), Some("campaign_started"));
        assert_eq!(names.last().map(String::as_str), Some("campaign_finished"));
        let (text, code) = run_coded(Command::Status {
            dir: journal.to_str().unwrap().into(),
            json: false,
        })
        .unwrap();
        assert_eq!(code, 0, "{text}");
        assert!(text.contains("state       finished"), "{text}");
        // --json emits a parsable snapshot.
        let (json_text, code) = run_coded(Command::Status {
            dir: journal.to_str().unwrap().into(),
            json: true,
        })
        .unwrap();
        assert_eq!(code, 0);
        let v = tensorlib_obs::json::parse(&json_text).unwrap();
        assert_eq!(v.get("state").and_then(|s| s.as_str()), Some("finished"));
        // watch on a finished campaign returns immediately with code 0.
        let (watch_text, code) = run_coded(Command::Watch {
            dir: journal.to_str().unwrap().into(),
            interval_ms: 10,
        })
        .unwrap();
        assert_eq!(code, 0, "{watch_text}");
        assert!(watch_text.contains("campaign finished"), "{watch_text}");
        // A second identical run (fresh journal) appends a comparable entry:
        // history --check compares them without machine-shape false
        // positives and exits 0 (the runs are deterministic, so no deltas).
        run(cmd(&dir.join("journal2"))).unwrap();
        let (check_text, code) = run_coded(Command::History {
            path: dir.join("reports").to_str().unwrap().into(),
            check: true,
            threshold: tensorlib_obs::history::DEFAULT_CHECK_THRESHOLD_PCT,
        })
        .unwrap();
        assert_eq!(code, 0, "{check_text}");
        assert!(check_text.contains("no metric moved"), "{check_text}");
        // The listing shows both runs with their machine shape.
        let (list_text, code) = run_coded(Command::History {
            path: dir.join("reports").to_str().unwrap().into(),
            check: false,
            threshold: tensorlib_obs::history::DEFAULT_CHECK_THRESHOLD_PCT,
        })
        .unwrap();
        assert_eq!(code, 0);
        assert_eq!(list_text.lines().count(), 2, "{list_text}");
        assert!(list_text.contains("lanes=1"), "{list_text}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn status_running_snapshot_with_dead_writer_is_interrupted() {
        let dir = tmpdir("status_dead_pid");
        let snapshot = tensorlib_obs::events::StatusSnapshot {
            kind: "faults".to_string(),
            state: "running".to_string(),
            // No live process has this pid (PID_MAX_LIMIT is 2^22 on Linux).
            pid: u32::MAX,
            config_hash: "00ff00ff00ff00ff".to_string(),
            chunks_total: 8,
            chunks_done: 3,
            chunks_replayed: 0,
            chunks_executed: 3,
            outcomes: std::collections::BTreeMap::new(),
            timing: tensorlib_obs::events::StatusTiming::default(),
        };
        snapshot.write(&dir).unwrap();
        let (text, code) = run_coded(Command::Status {
            dir: dir.to_str().unwrap().into(),
            json: false,
        })
        .unwrap();
        assert_eq!(code, 3, "{text}");
        assert!(text.contains("state       interrupted"), "{text}");
        assert!(text.contains("--resume"), "no resume hint:\n{text}");
        // The JSON form substitutes the effective state and carries the hint.
        let (json_text, code) = run_coded(Command::Status {
            dir: dir.to_str().unwrap().into(),
            json: true,
        })
        .unwrap();
        assert_eq!(code, 3);
        let v = tensorlib_obs::json::parse(&json_text).unwrap();
        assert_eq!(
            v.get("state").and_then(|s| s.as_str()),
            Some("interrupted")
        );
        assert!(v.get("resume_hint").is_some(), "{json_text}");
        // watch exits 3 on the same evidence.
        let (_, code) = run_coded(Command::Watch {
            dir: dir.to_str().unwrap().into(),
            interval_ms: 10,
        })
        .unwrap();
        assert_eq!(code, 3);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn history_check_flags_regressions_and_refuses_shape_mismatch() {
        use tensorlib_obs::history::{append, HistoryEntry, HISTORY_FILE};
        let dir = tmpdir("history_check");
        let path = dir.join(HISTORY_FILE);
        let entry = |coverage: f64, lanes: u64| HistoryEntry {
            kind: "faults".to_string(),
            config_hash: "aa".to_string(),
            command: "faults --rows 4".to_string(),
            pkg_version: "0.1.0".to_string(),
            host_cores: 8,
            workers: 1,
            lanes,
            metrics: [("detection_coverage".to_string(), coverage)]
                .into_iter()
                .collect(),
            unix_ms: 1,
            wall_ms: 10,
        };
        append(&path, &entry(0.9, 4)).unwrap();
        append(&path, &entry(0.5, 4)).unwrap(); // -44%: flagged at 10%
        let (text, code) = run_coded(Command::History {
            path: path.to_str().unwrap().into(),
            check: true,
            threshold: 10.0,
        })
        .unwrap();
        assert_eq!(code, 4, "{text}");
        assert!(text.contains("FLAGGED"), "{text}");
        // A lanes mismatch is a loud refusal (exit 1), not a comparison.
        append(&path, &entry(0.5, 8)).unwrap();
        let err = run_coded(Command::History {
            path: path.to_str().unwrap().into(),
            check: true,
            threshold: 10.0,
        })
        .unwrap_err();
        assert!(err.0.contains("machine shapes"), "{err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn journaled_report_is_byte_identical_with_telemetry_off() {
        // The determinism quarantine, end to end: the report body never
        // depends on whether telemetry was recorded alongside it.
        let dir = tmpdir("telemetry_ab");
        let cfg = CampaignConfig {
            rows: 2,
            cols: 2,
            k: 2,
            faults: 8,
            seed: 1,
            hardening: Hardening::parse("none").unwrap(),
            workers: 1,
            lanes: 1,
            opt: true,
        };
        let on = DurabilityOptions {
            dir: Some(dir.join("on")),
            ..DurabilityOptions::default()
        };
        let off = DurabilityOptions {
            dir: Some(dir.join("off")),
            telemetry_off: true,
            ..DurabilityOptions::default()
        };
        let (report_on, _) = run_gemm_campaign_durable(&cfg, &on).unwrap();
        let (report_off, _) = run_gemm_campaign_durable(&cfg, &off).unwrap();
        assert_eq!(
            serde_json::to_string(&report_on).unwrap(),
            serde_json::to_string(&report_off).unwrap()
        );
        assert!(dir.join("on").join("events.jsonl").exists());
        assert!(!dir.join("off").join("events.jsonl").exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

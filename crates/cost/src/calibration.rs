//! Calibration constants for the ASIC and FPGA cost models.
//!
//! Every constant is documented with its anchor. The ASIC numbers are typical
//! of a mature 55 nm standard-cell flow and are jointly tuned so that the
//! GEMM 16×16 INT16 design space at 320 MHz reproduces the paper's Figure 6
//! envelope: power 35–63 mW (≈1.8× spread), area spread ≈1.16×, with
//! multicast-input dataflows at the high-energy end and stationary tensors
//! paying extra area and control energy. The FPGA numbers are anchored to
//! Table III: the KCX-STS FP32 build (10×16 array, 8 lanes) synthesizing to
//! ≈68% LUT / 75% DSP / 51% BRAM at 263 MHz on a VU9P.

/// ASIC technology constants (UMC 55 nm class).
pub mod asic55 {
    /// Area of one INT16 multiplier, µm². (≈0.9 kGE at 1.44 µm²/GE.)
    pub const MUL_INT16_AREA_UM2: f64 = 1600.0;
    /// Area of one 32-bit adder, µm².
    pub const ADD32_AREA_UM2: f64 = 260.0;
    /// Register area per bit, µm² (scan DFF).
    pub const REG_AREA_UM2_PER_BIT: f64 = 2.0;
    /// 2:1 mux area per data bit, µm².
    pub const MUX_AREA_UM2_PER_BIT: f64 = 1.2;
    /// SRAM macro area per bit, µm² (small single-port banks).
    pub const SRAM_AREA_UM2_PER_BIT: f64 = 0.12;
    /// Wiring/buffer area per fanout endpoint of a broadcast net, µm².
    /// Multicast lines need buffer trees; this is their footprint.
    pub const BROADCAST_AREA_UM2_PER_ENDPOINT: f64 = 8.0;
    /// Control distribution area per control wire per PE, µm².
    pub const CTRL_AREA_UM2_PER_PE: f64 = 16.0;

    /// Energy of one INT16 multiply, pJ.
    pub const MUL_INT16_PJ: f64 = 0.175;
    /// Energy of one 32-bit add, pJ.
    pub const ADD32_PJ: f64 = 0.032;
    /// Register energy per bit per active cycle, pJ (clock + data toggle).
    pub const REG_PJ_PER_BIT: f64 = 0.0012;
    /// Activity factor applied to stationary tensors' registers. Synthesis
    /// power (the Figure 6 methodology) assumes default toggle rates and
    /// charges the double-buffer pair, its write muxes and enable tree every
    /// cycle — which is why the paper finds stationary dataflows *more*
    /// expensive, not less.
    pub const STATIONARY_REG_ACTIVITY: f64 = 1.7;
    /// SRAM access energy per byte, pJ.
    pub const SRAM_PJ_PER_BYTE: f64 = 0.24;
    /// Broadcast wire energy per byte per fanout endpoint, pJ. The dominant
    /// term that makes MMT/MMS dataflows expensive (Figure 6).
    pub const BROADCAST_PJ_PER_BYTE_PER_ENDPOINT: f64 = 0.064;
    /// Mux energy per data bit per active cycle, pJ.
    pub const MUX_PJ_PER_BIT: f64 = 0.0009;
    /// Control network energy per control wire per PE per cycle, pJ.
    pub const CTRL_PJ_PER_WIRE_PER_PE: f64 = 0.024;
    /// Leakage power per mm² of logic, mW.
    pub const LEAKAGE_MW_PER_MM2: f64 = 1.8;

    /// Datatype scaling of multiplier area/energy relative to INT16
    /// (quadratic-ish in width; FP32 includes alignment/normalization).
    pub fn mul_scale(bits: u32, is_float: bool) -> f64 {
        let w = bits as f64 / 16.0;
        let base = w * w;
        if is_float {
            base * 1.6
        } else {
            base
        }
    }
}

/// FPGA device and mapping constants (Xilinx VU9P class).
pub mod vu9p {
    /// Device LUT capacity.
    pub const DEVICE_LUTS: u64 = 1_182_240;
    /// Device DSP48 slices (as reported in the paper).
    pub const DEVICE_DSPS: u64 = 6840;
    /// Device BRAM36 blocks (as reported in the paper).
    pub const DEVICE_BRAMS: u64 = 2160;

    /// DSPs per FP32 multiply-accumulate lane (Xilinx FP IP: 3 for the
    /// multiplier + 2 for the adder, sharing — nets out to 4 per MAC, which
    /// reproduces the paper's 75% DSP at 1280 lanes).
    pub const DSP_PER_FP32_MAC: u64 = 4;
    /// DSPs per INT16 MAC lane.
    pub const DSP_PER_INT16_MAC: u64 = 1;
    /// LUTs per FP32 MAC lane (IP glue, alignment).
    pub const LUT_PER_FP32_MAC: u64 = 420;
    /// LUTs per INT16 MAC lane.
    pub const LUT_PER_INT16_MAC: u64 = 70;
    /// Fixed LUT overhead per PE (I/O templates, enables).
    pub const LUT_PER_PE: u64 = 160;
    /// LUTs per register bit of PE/tree state (routing + control logic share).
    pub const LUT_PER_REG_BIT: f64 = 0.35;
    /// LUTs per mux data bit.
    pub const LUT_PER_MUX_BIT: f64 = 0.5;
    /// LUTs per broadcast endpoint (fanout buffers / routing muxes).
    pub const LUT_PER_BROADCAST_ENDPOINT: u64 = 9;
    /// LUT overhead for the controller and top-level glue.
    pub const LUT_TOP_OVERHEAD: u64 = 4200;
    /// BRAM36 blocks per bank lane beyond its raw bit count: the paper's
    /// builds buffer several DRAM tiles per scratchpad bank to hide off-chip
    /// latency (Table III reports 51% BRAM for the MM build, ≈3 BRAM36 per
    /// bank lane at 336 bank lanes).
    pub const BRAM_DEPTH_FACTOR: u64 = 3;

    /// Base achievable frequency for a nearest-neighbour (systolic) INT16
    /// design, MHz.
    pub const BASE_FREQ_MHZ: f64 = 290.0;
    /// Frequency derate per log2 of the worst multicast fanout.
    pub const FANOUT_FREQ_DERATE_PER_LOG2: f64 = 0.055;
    /// FP32 pipelines close timing slightly below INT16.
    pub const FP32_FREQ_FACTOR: f64 = 0.93;
    /// Deeply-pipelined vectorized feeders buy some frequency back — the
    /// paper's 10×16×8 FP32 systolic build closes at 263 MHz.
    pub const VECTOR_FREQ_BONUS: f64 = 0.975;
    /// Frequency gain from manual placement/floorplanning (§VI-C: 263 → 328
    /// MHz on the MM design).
    pub const PLACEMENT_OPT_FACTOR: f64 = 1.247;
    /// Frequency derate when any tensor is unicast (congestion from per-PE
    /// memory routing).
    pub const UNICAST_FREQ_FACTOR: f64 = 0.88;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mul_scale_monotone() {
        assert!(asic55::mul_scale(8, false) < asic55::mul_scale(16, false));
        assert!(asic55::mul_scale(16, false) < asic55::mul_scale(32, false));
        assert!(asic55::mul_scale(32, false) < asic55::mul_scale(32, true));
        assert!((asic55::mul_scale(16, false) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn device_capacities_match_paper() {
        assert_eq!(vu9p::DEVICE_DSPS, 6840);
        assert_eq!(vu9p::DEVICE_BRAMS, 2160);
    }
}

//! Design-space enumeration: every dataflow a kernel admits.
//!
//! The paper's Figure 6 sweeps 148 GEMM dataflows and 33 Depthwise-Conv
//! dataflows. This module regenerates such sweeps by enumerating candidate
//! STT matrices (small integer entries, full rank), analyzing each against
//! each 3-loop selection, and de-duplicating by dataflow signature — two
//! `T` matrices that induce the same per-tensor flows drive the same
//! hardware.
//!
//! # Examples
//!
//! ```
//! use tensorlib_dataflow::dse::{design_space, DseConfig};
//! use tensorlib_ir::workloads;
//!
//! let gemm = workloads::gemm(16, 16, 16);
//! let designs = design_space(&gemm, &DseConfig::default());
//! assert!(designs.len() > 50);
//! // The classic dataflows are all in the space.
//! for want in ["SST", "STS", "MTM"] {
//!     assert!(designs.iter().any(|d| d.matches_letters(want)));
//! }
//! ```

use tensorlib_ir::{Kernel, TensorRole};
use tensorlib_linalg::par::par_map_indexed;
use tensorlib_linalg::Mat;

use crate::{classify::classify_reuse, Dataflow, DataflowError, LoopSelection, Stt, TensorFlow};

/// Configuration for design-space enumeration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DseConfig {
    /// Maximum absolute value of STT matrix entries (default 1; the classic
    /// dataflow literature never needs more).
    pub max_coeff: i64,
    /// Keep only unimodular matrices (`|det| = 1`), guaranteeing every
    /// (PE, cycle) slot has work (default `true`).
    pub require_unimodular: bool,
    /// Restrict to these loop selections (by name triples); `None` enumerates
    /// every combination of three distinct loops.
    pub selections: Option<Vec<[String; 3]>>,
    /// Hard cap on the number of de-duplicated designs returned.
    pub max_designs: usize,
    /// Worker threads used to classify candidates in [`design_space`] (`0` =
    /// one per available core, `1` = fully serial). The output is identical
    /// for every worker count.
    pub workers: usize,
}

impl Default for DseConfig {
    fn default() -> DseConfig {
        DseConfig {
            max_coeff: 1,
            require_unimodular: true,
            selections: None,
            max_designs: 10_000,
            workers: 0,
        }
    }
}

/// Enumerates all candidate STT matrices under `config`.
///
/// # Examples
///
/// ```
/// use tensorlib_dataflow::dse::{enumerate_stt, DseConfig};
/// let all = enumerate_stt(&DseConfig::default());
/// assert!(all.iter().all(|t| t.is_unimodular()));
/// assert!(all.len() > 1000);
/// ```
pub fn enumerate_stt(config: &DseConfig) -> Vec<Stt> {
    let _span = tensorlib_obs::span("dse.stt_enumeration");
    let c = config.max_coeff;
    let span = (2 * c + 1) as usize;
    let total = span.pow(9);
    let mut out = Vec::new();
    for code in 0..total {
        let mut rows = [[0i64; 3]; 3];
        let mut rem = code;
        for row in &mut rows {
            for e in row.iter_mut() {
                *e = (rem % span) as i64 - c;
                rem /= span;
            }
        }
        if let Ok(stt) = Stt::from_rows(rows) {
            if !config.require_unimodular || stt.is_unimodular() {
                out.push(stt);
            }
        }
    }
    tensorlib_obs::counter_add("dse.stt_candidates", out.len() as u64);
    out
}

/// Enumerates the loop selections to explore: every 3-combination of the
/// kernel's iterators (in nest order), or the explicit list in `config`.
///
/// Selection *order* is deliberately not enumerated — permuting the selected
/// loops is equivalent to permuting the columns of `T`, which the matrix
/// enumeration already covers.
///
/// # Errors
///
/// Returns [`DataflowError`] if an explicit selection names an unknown or
/// repeated loop, or the kernel has fewer than three loops.
pub fn enumerate_selections(
    kernel: &Kernel,
    config: &DseConfig,
) -> Result<Vec<LoopSelection>, DataflowError> {
    if let Some(named) = &config.selections {
        return named
            .iter()
            .map(|[a, b, c]| LoopSelection::by_names(kernel, [a, b, c]))
            .collect();
    }
    let n = kernel.loop_nest().len();
    if n < 3 {
        return Err(DataflowError::TooFewLoops { available: n });
    }
    let mut out = Vec::new();
    for i in 0..n {
        for j in (i + 1)..n {
            for k in (j + 1)..n {
                out.push(LoopSelection::by_indices(kernel, [i, j, k])?);
            }
        }
    }
    Ok(out)
}

/// Enumerates the full de-duplicated dataflow design space of `kernel`.
///
/// Returns one representative [`Dataflow`] per distinct signature, sorted by
/// name for determinism. See the module docs for an example.
///
/// # Panics
///
/// Panics if `config.selections` is invalid for the kernel (use
/// [`enumerate_selections`] directly for fallible handling).
pub fn design_space(kernel: &Kernel, config: &DseConfig) -> Vec<Dataflow> {
    let _span = tensorlib_obs::span("dse.design_space");
    let selections =
        enumerate_selections(kernel, config).expect("valid DSE selections for kernel");
    let matrices = enumerate_stt(config);
    let mut seen = std::collections::HashSet::new();
    let mut out: Vec<Dataflow> = Vec::new();
    for sel in &selections {
        // Precompute each tensor's null-space basis over this selection once.
        let idx = sel.indices();
        let bases: Vec<(String, TensorRole, Mat)> = kernel
            .tensors()
            .iter()
            .map(|t| {
                (
                    t.name().to_string(),
                    t.role(),
                    t.access().restrict_to(&idx).null_space(),
                )
            })
            .collect();
        // Classification (three matrix products + reuse analysis per
        // candidate) dominates; fan it out across the worker pool. The map
        // preserves enumeration order, so the first-occurrence dedup and the
        // `max_designs` cap below keep exactly the serial semantics for any
        // worker count.
        let _sel_span = tensorlib_obs::span("dse.classification");
        let classified = par_map_indexed(&matrices, config.workers, 128, |_, stt| {
            let t_mat = stt.to_mat();
            let flows: Vec<TensorFlow> = bases
                .iter()
                .map(|(name, role, basis)| TensorFlow {
                    tensor: name.clone(),
                    role: *role,
                    class: classify_reuse(&(&t_mat * basis), *role),
                })
                .collect();
            let df = Dataflow::from_parts(kernel, sel.clone(), stt.clone(), flows);
            let sig = df.signature();
            (sig, df)
        });
        let before = out.len();
        for (sig, df) in classified {
            if seen.insert(sig) {
                out.push(df);
                if out.len() >= config.max_designs {
                    tensorlib_obs::counter_add("dse.classified", matrices.len() as u64);
                    tensorlib_obs::counter_add("dse.unique_designs", (out.len() - before) as u64);
                    out.sort_by_key(Dataflow::name);
                    return out;
                }
            }
        }
        tensorlib_obs::counter_add("dse.classified", matrices.len() as u64);
        tensorlib_obs::counter_add("dse.unique_designs", (out.len() - before) as u64);
    }
    out.sort_by_key(Dataflow::name);
    out
}

/// Finds a dataflow by its paper-style name, e.g. `"KCX-SST"` for Conv2D.
///
/// The selection tag is matched against loop-name initials (in tag order);
/// the letters are matched with rank-2 aliases (see
/// [`crate::FlowClass::letter_aliases`]). Among all matching STT matrices the
/// simplest is returned (fewest nonzero entries, then smallest magnitudes),
/// which recovers the textbook transformation for the classic dataflows.
///
/// # Errors
///
/// Returns [`DataflowError::BadName`] if the name is malformed, names unknown
/// loops, or no candidate matrix realizes the requested letters.
///
/// # Examples
///
/// ```
/// use tensorlib_dataflow::dse::{find_named, DseConfig};
/// use tensorlib_ir::workloads;
///
/// let gemm = workloads::gemm(16, 16, 16);
/// let df = find_named(&gemm, "MNK-SST", &DseConfig::default())?;
/// assert_eq!(df.letters(), "SST");
/// # Ok::<(), tensorlib_dataflow::DataflowError>(())
/// ```
pub fn find_named(
    kernel: &Kernel,
    name: &str,
    config: &DseConfig,
) -> Result<Dataflow, DataflowError> {
    let _span = tensorlib_obs::span("dse.find_named");
    let (tag, letters) = name
        .split_once('-')
        .ok_or_else(|| DataflowError::BadName(name.to_string()))?;
    if tag.len() != 3 || letters.len() != kernel.tensors().len() {
        return Err(DataflowError::BadName(name.to_string()));
    }
    // Resolve tag initials to loop names, in tag order.
    let mut loop_names = Vec::new();
    for ch in tag.chars() {
        let found = kernel
            .loop_nest()
            .names()
            .into_iter()
            .find(|n| n.chars().next().is_some_and(|c| c.eq_ignore_ascii_case(&ch)))
            .ok_or_else(|| DataflowError::BadName(name.to_string()))?;
        loop_names.push(found.to_string());
    }
    let sel = LoopSelection::by_names(
        kernel,
        [&loop_names[0], &loop_names[1], &loop_names[2]],
    )?;

    let mut best: Option<(u64, Dataflow)> = None;
    for stt in enumerate_stt(config) {
        let df = Dataflow::analyze(kernel, sel.clone(), stt)?;
        if df.matches_letters(letters) {
            let cost = matrix_simplicity(df.stt());
            if best.as_ref().is_none_or(|(c, _)| cost < *c) {
                best = Some((cost, df));
            }
        }
    }
    best.map(|(_, df)| df)
        .ok_or_else(|| DataflowError::BadName(name.to_string()))
}

/// Complexity score used to pick the canonical matrix for a named dataflow:
/// nonzero entries weigh 4, plus total magnitude, plus 1 per negative entry —
/// so permutation matrices beat skewed ones, positive skews beat mirrored
/// ones, and anything with ±2 entries comes last.
fn matrix_simplicity(stt: &Stt) -> u64 {
    let mut score = 0u64;
    for row in stt.rows() {
        for &e in row {
            if e != 0 {
                score += 4 + e.unsigned_abs();
            }
            if e < 0 {
                score += 1;
            }
        }
    }
    score
}

#[cfg(test)]
mod tests {
    use super::*;
    use tensorlib_ir::workloads;

    #[test]
    fn stt_enumeration_counts() {
        let uni = enumerate_stt(&DseConfig::default());
        assert!(uni.iter().all(Stt::is_unimodular));
        // All {-1,0,1} unimodular 3x3 matrices: a fixed, deterministic set.
        assert_eq!(uni.len(), 6960);
        let nonsing = enumerate_stt(&DseConfig {
            require_unimodular: false,
            ..DseConfig::default()
        });
        assert!(nonsing.len() > uni.len());
    }

    #[test]
    fn selection_enumeration_counts() {
        let conv = workloads::conv2d(4, 4, 4, 4, 3, 3);
        let sels = enumerate_selections(&conv, &DseConfig::default()).unwrap();
        assert_eq!(sels.len(), 20); // C(6,3)
        let gemm = workloads::gemm(4, 4, 4);
        assert_eq!(
            enumerate_selections(&gemm, &DseConfig::default())
                .unwrap()
                .len(),
            1
        );
    }

    #[test]
    fn explicit_selections_are_respected() {
        let conv = workloads::conv2d(4, 4, 4, 4, 3, 3);
        let cfg = DseConfig {
            selections: Some(vec![["k".into(), "c".into(), "x".into()]]),
            ..DseConfig::default()
        };
        let sels = enumerate_selections(&conv, &cfg).unwrap();
        assert_eq!(sels.len(), 1);
        assert_eq!(sels[0].tag(), "KCX");
    }

    #[test]
    fn gemm_design_space_contains_classics() {
        let gemm = workloads::gemm(16, 16, 16);
        let designs = design_space(&gemm, &DseConfig::default());
        for want in ["SST", "STS", "TSS", "MTM", "UUU"] {
            // UUU should NOT exist for GEMM: every tensor always has nullity
            // >= ... actually A has rank 2 access over 3 loops, so nullity 1.
            let found = designs.iter().any(|d| d.letters() == want);
            if want == "UUU" {
                assert!(!found, "GEMM admits no all-unicast dataflow");
            } else {
                assert!(found, "missing classic dataflow {want}");
            }
        }
        // Signatures are unique.
        let mut sigs: Vec<String> = designs.iter().map(Dataflow::signature).collect();
        sigs.sort();
        sigs.dedup();
        assert_eq!(sigs.len(), designs.len());
    }

    #[test]
    fn find_named_recovers_textbook_matrices() {
        let gemm = workloads::gemm(16, 16, 16);
        let cfg = DseConfig::default();
        let sst = find_named(&gemm, "MNK-SST", &cfg).unwrap();
        assert_eq!(sst.letters(), "SST");
        assert!(sst.stt().is_unimodular());
        let sts = find_named(&gemm, "MNK-STS", &cfg).unwrap();
        assert_eq!(sts.letters(), "STS");
        // Bad names.
        assert!(find_named(&gemm, "MNK", &cfg).is_err());
        assert!(find_named(&gemm, "ZZZ-SST", &cfg).is_err());
        assert!(find_named(&gemm, "MNK-XX", &cfg).is_err());
    }

    #[test]
    fn find_named_conv2d_paper_dataflows() {
        let conv = workloads::conv2d(8, 8, 8, 8, 3, 3);
        let cfg = DseConfig::default();
        for name in ["KCX-SST", "KCX-STS", "XYP-MMT"] {
            let df = find_named(&conv, name, &cfg).unwrap_or_else(|e| {
                panic!("paper dataflow {name} must exist: {e}");
            });
            assert_eq!(df.selection().tag(), &name[..3]);
        }
    }

    #[test]
    fn max_designs_caps_output() {
        let gemm = workloads::gemm(8, 8, 8);
        let cfg = DseConfig {
            max_designs: 5,
            ..DseConfig::default()
        };
        assert_eq!(design_space(&gemm, &cfg).len(), 5);
    }
}

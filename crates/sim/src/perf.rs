//! The analytical cycle model: per-tile phase timing with bandwidth stalls.
//!
//! Cycle anatomy of one tile (all quantities derived from the generated
//! design, never guessed):
//!
//! - **compute**: the tiling's time extent — systolic skew is inherent in the
//!   STT's time row, so it is already inside this number.
//! - **pipeline tails**: reduction-tree depth and systolic-output drain hops
//!   extend each tile's occupancy.
//! - **bandwidth stalls**: the array's streaming demand
//!   (`ResourceSummary::stream_bits_per_cycle` + output bits) against the
//!   configured scratchpad bandwidth; demand beyond bandwidth stretches the
//!   compute phase proportionally. This is what sinks unicast dataflows in
//!   the paper's MTTKRP/TTMc results.
//! - **load/drain**: stationary fills and drains overlap neighbouring tiles'
//!   compute thanks to double buffering; only the non-hidden remainder shows
//!   up, plus the first load and last drain.

use serde::Serialize;
use tensorlib_dataflow::FlowClass;
use tensorlib_hw::design::AcceleratorDesign;
use tensorlib_ir::Kernel;

use crate::trace::{measure, MeasureError, TraceConfig};
use crate::{SimConfig, SimReport};

/// Estimates execution of `kernel` on `design` under `cfg`.
///
/// # Panics
///
/// Panics if `kernel` is not the kernel the design's dataflow was analyzed
/// for (name mismatch).
///
/// # Examples
///
/// See the crate-level example in [`crate`].
pub fn estimate(design: &AcceleratorDesign, kernel: &Kernel, cfg: &SimConfig) -> SimReport {
    let _span = tensorlib_obs::span("sim.cost_model");
    assert_eq!(
        design.dataflow().kernel_name(),
        kernel.name(),
        "design was generated for a different kernel"
    );
    let tiling = design.tiling();
    let summary = design.summary();
    let array = design.config().array;

    // Outer sequential loops (never selected for space-time mapping).
    let outer: u64 = design
        .dataflow()
        .selection()
        .outer_indices(kernel)
        .iter()
        .map(|&i| kernel.loop_nest().iters()[i].extent())
        .product();
    let tiles = outer * tiling.total_tiles();

    // Per-tile compute, including pipeline tails. The controller's compute
    // phase is the schedule's t-extent plus the streaming pipeline depth on
    // stationary-output designs (see `STREAM_PIPELINE_LATENCY`), so sourcing
    // it from the design keeps the analytic and measured models in lockstep.
    let mut tile_compute = design.phases().compute_cycles;
    tile_compute += pipeline_tail(design);

    // Bandwidth stall: streaming demand during compute.
    let demand_bytes =
        (summary.stream_bits_per_cycle + summary.output_bits_per_cycle) as f64 / 8.0;
    let stall_factor = (demand_bytes / cfg.bytes_per_cycle).max(1.0);
    let tile_compute_stalled = (tile_compute as f64 * stall_factor).ceil() as u64;

    // Load phase, stalled by its own demand (chain loads stream one word per
    // port per cycle).
    let phases = design.phases();
    let word_bytes = (design.config().datatype.bits() as f64 / 8.0).max(1.0);
    let load_ports = summary.chain_feed_ports.max(1) as f64;
    let load_demand = load_ports * word_bytes;
    let load_stall = (load_demand / cfg.bytes_per_cycle).max(1.0);
    let tile_load = (phases.load_cycles as f64 * load_stall).ceil() as u64;
    let tile_drain = phases.drain_cycles;

    // Steady state: load of tile i+1 and drain of tile i-1 overlap compute of
    // tile i (double buffering); the slowest phase dominates.
    let steady = tile_compute_stalled.max(tile_load).max(tile_drain);
    let total_cycles = tile_load + tiles * steady + tile_drain;

    let compute_cycles = tiles * tile_compute;
    let stall_cycles = tiles * (tile_compute_stalled - tile_compute);
    let exposed_load_cycles =
        tile_load + tiles * steady.saturating_sub(tile_compute_stalled.max(tile_drain));
    let macs = kernel.macs();
    let peak_slots = (array.pes() as u64) * total_cycles;
    let runtime_us = total_cycles as f64 / cfg.freq_mhz;
    SimReport {
        total_cycles,
        compute_cycles,
        stall_cycles,
        exposed_load_cycles,
        drain_cycles: tile_drain,
        tiles,
        macs,
        macs_per_cycle: macs as f64 / total_cycles as f64,
        normalized_perf: macs as f64 / peak_slots as f64,
        runtime_us,
        gops: 2.0 * macs as f64 / (runtime_us * 1e3),
    }
}

/// The analytic model lined up against measured interpreter counters for the
/// same design (see [`cross_check`]).
#[derive(Debug, Clone, Serialize)]
pub struct ModelCrossCheck {
    /// The analytic estimate.
    pub analytic: SimReport,
    /// Controller rounds the measured run executed.
    pub tiles_measured: u64,
    /// Total measured cycles (`1 + tiles × phases.total()`).
    pub measured_cycles: u64,
    /// Measured compute-phase cycles (`en` high).
    pub measured_compute_cycles: u64,
    /// Measured idle (stall) cycles.
    pub measured_stall_cycles: u64,
    /// Measured mean PE utilization over the whole run.
    pub measured_utilization: f64,
    /// Analytic cycles per tile (`total_cycles / tiles`).
    pub analytic_cycles_per_tile: f64,
    /// Measured non-idle cycles per controller round.
    pub measured_cycles_per_tile: f64,
    /// `measured_cycles_per_tile / analytic_cycles_per_tile`. The analytic
    /// model overlaps load/drain with compute (double buffering) while the
    /// generated FSM serializes the phases, so the ratio sits above 1 for
    /// stationary dataflows but must stay within a small constant factor.
    pub tile_cycle_ratio: f64,
}

/// Runs `design` in the netlist interpreter with counters attached
/// ([`crate::trace::measure`], `tiles` controller rounds) and lines the
/// measured cycle counts up against [`estimate`].
///
/// The measured per-tile compute is exact (`phases.compute_cycles`, shared
/// with the analytic model by construction); the interesting signal is
/// `tile_cycle_ratio`, which exposes how much phase serialization the real
/// FSM adds over the analytic steady-state overlap.
///
/// # Errors
///
/// Returns [`MeasureError`] if the design fails to elaborate.
///
/// # Panics
///
/// Panics if `kernel` is not the design's kernel (same contract as
/// [`estimate`]) or `tiles` is zero.
pub fn cross_check(
    design: &AcceleratorDesign,
    kernel: &Kernel,
    cfg: &SimConfig,
    tiles: u64,
) -> Result<ModelCrossCheck, MeasureError> {
    assert!(tiles > 0, "cross-check needs at least one tile");
    let analytic = estimate(design, kernel, cfg);
    let run = measure(design, &TraceConfig::counters_only(), tiles)?;
    let s = &run.stats;
    let measured_per_tile = (s.cycles - s.ctrl.idle_cycles) as f64 / tiles as f64;
    let analytic_per_tile = analytic.total_cycles as f64 / analytic.tiles.max(1) as f64;
    Ok(ModelCrossCheck {
        analytic,
        tiles_measured: tiles,
        measured_cycles: s.cycles,
        measured_compute_cycles: s.ctrl.compute_cycles,
        measured_stall_cycles: s.stall_cycles(),
        measured_utilization: s.utilization(),
        analytic_cycles_per_tile: analytic_per_tile,
        measured_cycles_per_tile: measured_per_tile,
        tile_cycle_ratio: measured_per_tile / analytic_per_tile,
    })
}

/// Extra cycles a tile occupies after its last input: reduction-tree depth
/// plus systolic-output drain hops.
fn pipeline_tail(design: &AcceleratorDesign) -> u64 {
    let array = design.config().array;
    let mut tail = 0u64;
    for f in design.dataflow().flows() {
        match &f.class {
            FlowClass::ReductionTree { dp } => {
                let span = line_span(array.rows, array.cols, *dp);
                tail = tail.max((span as f64).log2().ceil() as u64);
            }
            FlowClass::Systolic { dp, dt } if f.role == tensorlib_ir::TensorRole::Output => {
                let hops = (array.rows as u64 - 1) * dp[0].unsigned_abs()
                    + (array.cols as u64 - 1) * dp[1].unsigned_abs();
                tail = tail.max(hops * dt.unsigned_abs());
            }
            _ => {}
        }
    }
    tail
}

/// Length of the longest PE line in direction `dp` on a `rows × cols` grid.
fn line_span(rows: usize, cols: usize, dp: [i64; 2]) -> usize {
    match (dp[0] != 0, dp[1] != 0) {
        (true, true) => rows.min(cols),
        (true, false) => rows,
        (false, true) => cols,
        (false, false) => 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tensorlib_dataflow::{Dataflow, LoopSelection, Stt};
    use tensorlib_hw::design::{generate, HwConfig};
    use tensorlib_ir::workloads;

    fn design_for(rows: [[i64; 3]; 3]) -> (AcceleratorDesign, Kernel) {
        let gemm = workloads::gemm(64, 64, 64);
        let sel = LoopSelection::by_names(&gemm, ["m", "n", "k"]).unwrap();
        let df = Dataflow::analyze(&gemm, sel, Stt::from_rows(rows).unwrap()).unwrap();
        (generate(&df, &HwConfig::default()).unwrap(), gemm)
    }

    #[test]
    fn output_stationary_gemm_cycle_anatomy() {
        let (d, k) = design_for([[1, 0, 0], [0, 1, 0], [1, 1, 1]]);
        let r = estimate(&d, &k, &SimConfig::default());
        // 16 tiles of t_extent 94 (+load/drain edges).
        assert_eq!(r.tiles, 16);
        assert_eq!(r.macs, 64 * 64 * 64);
        assert!(r.total_cycles >= 16 * 94);
        assert!(r.normalized_perf > 0.5 && r.normalized_perf < 1.0);
        assert!(r.stall_cycles == 0, "2 feeds * 16 ports * 2B fits 100 B/cyc");
        assert!(r.runtime_us > 0.0 && r.gops > 0.0);
    }

    #[test]
    fn multicast_beats_systolic_on_gemm() {
        // Paper §VI-A: multicast (MTM) outperforms systolic (SST/STS) in
        // cycles because it avoids the skew overhead.
        let (mtm, k) = design_for([[0, 1, 0], [0, 0, 1], [1, 0, 0]]);
        let (sst, _) = design_for([[1, 0, 0], [0, 1, 0], [1, 1, 1]]);
        let cfg = SimConfig::default();
        let r_mtm = estimate(&mtm, &k, &cfg);
        let r_sst = estimate(&sst, &k, &cfg);
        assert!(
            r_mtm.total_cycles < r_sst.total_cycles,
            "MTM {} !< SST {}",
            r_mtm.total_cycles,
            r_sst.total_cycles
        );
    }

    #[test]
    fn unicast_stalls_on_bandwidth() {
        // Batched-GEMV forces unicast A: 256 ports * 2 bytes = 512 B/cycle
        // demanded vs 100 available -> big stall.
        let k = workloads::batched_gemv(64, 64, 64);
        let sel = LoopSelection::by_names(&k, ["m", "n", "k"]).unwrap();
        let df = Dataflow::analyze(&k, sel, Stt::output_stationary()).unwrap();
        let d = generate(&df, &HwConfig::default()).unwrap();
        let r = estimate(&d, &k, &SimConfig::default());
        assert!(r.stall_cycles > 0);
        assert!(r.normalized_perf < 0.25, "perf = {}", r.normalized_perf);
    }

    #[test]
    fn small_loops_crater_utilization() {
        // Conv2D with p (extent 3) on a spatial dimension: at most 3/16 of
        // rows busy — the paper's XYP utilization cliff.
        let conv = workloads::conv2d(16, 16, 16, 16, 3, 3);
        let sel = LoopSelection::by_names(&conv, ["p", "x", "y"]).unwrap();
        let df = Dataflow::analyze(&conv, sel, Stt::identity()).unwrap();
        let d = generate(&df, &HwConfig::default()).unwrap();
        let r = estimate(&d, &conv, &SimConfig::default());
        assert!(
            r.normalized_perf <= 3.0 / 16.0 + 1e-9,
            "perf = {}",
            r.normalized_perf
        );
    }

    #[test]
    fn normalized_perf_is_bounded() {
        for rows in [
            [[1, 0, 0], [0, 1, 0], [1, 1, 1]],
            [[0, 1, 0], [0, 0, 1], [1, 0, 0]],
            [[0, 0, 1], [0, 1, 0], [1, 1, 1]],
        ] {
            let (d, k) = design_for(rows);
            let r = estimate(&d, &k, &SimConfig::default());
            assert!(r.normalized_perf > 0.0 && r.normalized_perf <= 1.0);
            assert!(r.total_cycles >= r.compute_cycles / r.tiles.max(1));
        }
    }

    #[test]
    #[should_panic(expected = "different kernel")]
    fn kernel_mismatch_panics() {
        let (d, _) = design_for([[1, 0, 0], [0, 1, 0], [1, 1, 1]]);
        let other = workloads::mttkrp(8, 8, 8, 8);
        let _ = estimate(&d, &other, &SimConfig::default());
    }
}

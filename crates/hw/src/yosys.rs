//! Yosys-JSON netlist interchange.
//!
//! [`export_yosys`] renders a [`NetlistDoc`] as the JSON netlist schema
//! Yosys's `write_json` emits (modules → ports/cells/netnames over a global
//! bit-index space, word-level `$add`/`$mux`/`$sdff`/… cells, constants as
//! inline `"0"`/`"1"` bit strings), so external EDA tooling can inspect or
//! transform our designs; [`import_yosys`] reads it back. The round-trip
//! contract matches [`crate::text`]: `import_yosys(&export_yosys(doc))`
//! is structurally identical to `doc`, re-exports byte-identically, and
//! compiles to byte-identical bytecode.
//!
//! # Encoding
//!
//! - Every named net gets a contiguous run of bit indices (from 2 upward,
//!   Yosys reserves 0/1), allocated in net-declaration order, so the
//!   importer recovers [`crate::netlist::NetId`] order from the first bit
//!   of each `netnames` entry. The true net name (which may be empty or
//!   duplicated) always travels in a `tensorlib_name` attribute; the JSON
//!   object key is only a uniquified display name.
//! - Expression trees decompose into one cell per operator, post-order,
//!   with hidden intermediate bit runs; the root cell of an `assign` drives
//!   the target net's bits directly, which is how the importer tells roots
//!   from intermediates.
//! - `Expr::Resize`/`Expr::SignExtend` map to `$pos` with `A_SIGNED` 0/1
//!   plus a `tensorlib_resize` marker attribute; an *unmarked* `$pos` is a
//!   plain buffer (an `assign` whose expression is a bare net or constant).
//! - Registers map to `$sdff`/`$sdffe` with the reset value (`init`)
//!   carried in `SRST_VALUE` and placeholder `"x"` clock/reset bits.
//! - Child-module instances are cells whose type does not start with `$`;
//!   memory banks export as blackbox modules carrying their parameters in
//!   `tensorlib_*` string attributes (strings, so `words` stays u64-exact
//!   through the f64-backed JSON number type).
//! - Constants are masked to their width on export: a `Const` whose
//!   `value` has bits above `width` does not survive the trip unchanged —
//!   the round-trip oracle deliberately flags any producer of such values.
//!
//! Import never trusts the file: every structural assumption above is
//! checked and violations surface as a [`YosysError`] naming the module
//! and cell at fault.

use std::collections::HashMap;
use std::fmt;

use tensorlib_obs::json::{self, Value};

use crate::mem::MemBank;
use crate::netlist::{BinOp, Dir, Expr, Module, NetId};
use crate::text::NetlistDoc;

/// An import failure, located by a dotted document path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct YosysError {
    /// Where in the document the problem was found (e.g. `modules.pe.cells.$expr$3`).
    pub path: String,
    /// What went wrong.
    pub msg: String,
}

impl fmt::Display for YosysError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "at {}: {}", self.path, self.msg)
    }
}

impl std::error::Error for YosysError {}

fn err<T>(path: impl Into<String>, msg: impl Into<String>) -> Result<T, YosysError> {
    Err(YosysError {
        path: path.into(),
        msg: msg.into(),
    })
}

// ---------------------------------------------------------------------------
// Export
// ---------------------------------------------------------------------------

fn num(n: u64) -> Value {
    Value::Num(n as f64)
}

fn s(t: impl Into<String>) -> Value {
    Value::Str(t.into())
}

fn obj(entries: Vec<(String, Value)>) -> Value {
    Value::Obj(entries)
}

fn kv(entries: &[(&str, Value)]) -> Value {
    Value::Obj(
        entries
            .iter()
            .map(|(k, v)| (k.to_string(), v.clone()))
            .collect(),
    )
}

/// Uniquifies display keys: the true name when it is unique, nonempty, and
/// does not collide with generated `$…` names; otherwise `base$<index>`.
fn display_keys(names: Vec<String>, placeholder: &str) -> Vec<String> {
    let mut counts: HashMap<&str, usize> = HashMap::new();
    for n in &names {
        *counts.entry(n.as_str()).or_insert(0) += 1;
    }
    names
        .iter()
        .enumerate()
        .map(|(i, n)| {
            if n.is_empty() || n.starts_with('$') {
                format!("${placeholder}${i}")
            } else if counts[n.as_str()] > 1 {
                format!("{n}${i}")
            } else {
                n.clone()
            }
        })
        .collect()
}

struct ModuleExporter<'m> {
    m: &'m Module,
    net_bits: Vec<Vec<u64>>,
    next_bit: u64,
    cells: Vec<(String, Value)>,
    expr_counter: usize,
}

impl<'m> ModuleExporter<'m> {
    fn new(m: &'m Module) -> ModuleExporter<'m> {
        let mut next_bit = 2u64; // Yosys reserves bits 0 and 1
        let mut net_bits = Vec::with_capacity(m.nets().len());
        for net in m.nets() {
            let run: Vec<u64> = (next_bit..next_bit + u64::from(net.width)).collect();
            next_bit += u64::from(net.width);
            net_bits.push(run);
        }
        ModuleExporter {
            m,
            net_bits,
            next_bit,
            cells: Vec::new(),
            expr_counter: 0,
        }
    }

    fn fresh_bits(&mut self, width: u32) -> Vec<u64> {
        let run: Vec<u64> = (self.next_bit..self.next_bit + u64::from(width)).collect();
        self.next_bit += u64::from(width);
        run
    }

    fn bits_value(bits: &[u64]) -> Vec<Value> {
        bits.iter().map(|b| num(*b)).collect()
    }

    fn const_bits(value: u64, width: u32) -> Vec<Value> {
        (0..width)
            .map(|i| {
                let bit = if i < 64 { (value >> i) & 1 } else { 0 };
                s(if bit == 1 { "1" } else { "0" })
            })
            .collect()
    }

    fn push_cell(
        &mut self,
        key: String,
        ty: &str,
        params: Vec<(String, Value)>,
        attrs: Vec<(String, Value)>,
        dirs: Vec<(String, Value)>,
        conns: Vec<(String, Value)>,
    ) {
        self.cells.push((
            key,
            obj(vec![
                ("hide_name".to_string(), num(1)),
                ("type".to_string(), s(ty)),
                ("parameters".to_string(), obj(params)),
                ("attributes".to_string(), obj(attrs)),
                ("port_directions".to_string(), obj(dirs)),
                ("connections".to_string(), obj(conns)),
            ]),
        ));
    }

    /// Connection bits for `e`, materializing hidden cells for operators.
    /// With `root_y`, the outermost operator drives those (visible) bits.
    fn expr_bits(&mut self, e: &Expr, root_y: Option<Vec<u64>>) -> Vec<Value> {
        let nets = self.m.nets();
        let width = e.width(nets);
        let alloc_y = |ex: &mut Self| match root_y.clone() {
            Some(y) => y,
            None => ex.fresh_bits(width),
        };
        let cell_key = |ex: &mut Self| {
            let k = format!("$expr${}", ex.expr_counter);
            ex.expr_counter += 1;
            k
        };
        match e {
            Expr::Const { value, width } => Self::const_bits(*value, *width),
            Expr::Net(id) => Self::bits_value(&self.net_bits[*id]),
            Expr::Not(a) => {
                let aw = a.width(nets);
                let a_bits = self.expr_bits(a, None);
                let y = alloc_y(self);
                let k = cell_key(self);
                self.push_cell(
                    k,
                    "$not",
                    vec![
                        ("A_SIGNED".to_string(), num(0)),
                        ("A_WIDTH".to_string(), num(u64::from(aw))),
                        ("Y_WIDTH".to_string(), num(u64::from(width))),
                    ],
                    vec![],
                    vec![
                        ("A".to_string(), s("input")),
                        ("Y".to_string(), s("output")),
                    ],
                    vec![
                        ("A".to_string(), Value::Arr(a_bits)),
                        ("Y".to_string(), Value::Arr(Self::bits_value(&y))),
                    ],
                );
                Self::bits_value(&y)
            }
            Expr::Bin(op, a, b) => {
                let ty = match op {
                    BinOp::Add => "$add",
                    BinOp::Sub => "$sub",
                    BinOp::Mul => "$mul",
                    BinOp::And => "$and",
                    BinOp::Or => "$or",
                    BinOp::Xor => "$xor",
                    BinOp::Eq => "$eq",
                    BinOp::Lt => "$lt",
                };
                let (aw, bw) = (a.width(nets), b.width(nets));
                let a_bits = self.expr_bits(a, None);
                let b_bits = self.expr_bits(b, None);
                let y = alloc_y(self);
                let k = cell_key(self);
                self.push_cell(
                    k,
                    ty,
                    vec![
                        ("A_SIGNED".to_string(), num(0)),
                        ("B_SIGNED".to_string(), num(0)),
                        ("A_WIDTH".to_string(), num(u64::from(aw))),
                        ("B_WIDTH".to_string(), num(u64::from(bw))),
                        ("Y_WIDTH".to_string(), num(u64::from(width))),
                    ],
                    vec![],
                    vec![
                        ("A".to_string(), s("input")),
                        ("B".to_string(), s("input")),
                        ("Y".to_string(), s("output")),
                    ],
                    vec![
                        ("A".to_string(), Value::Arr(a_bits)),
                        ("B".to_string(), Value::Arr(b_bits)),
                        ("Y".to_string(), Value::Arr(Self::bits_value(&y))),
                    ],
                );
                Self::bits_value(&y)
            }
            Expr::Mux {
                sel,
                on_true,
                on_false,
            } => {
                // Yosys $mux: Y = S ? B : A.
                let s_bits = self.expr_bits(sel, None);
                let b_bits = self.expr_bits(on_true, None);
                let a_bits = self.expr_bits(on_false, None);
                let y = alloc_y(self);
                let k = cell_key(self);
                self.push_cell(
                    k,
                    "$mux",
                    vec![("WIDTH".to_string(), num(u64::from(width)))],
                    vec![],
                    vec![
                        ("A".to_string(), s("input")),
                        ("B".to_string(), s("input")),
                        ("S".to_string(), s("input")),
                        ("Y".to_string(), s("output")),
                    ],
                    vec![
                        ("A".to_string(), Value::Arr(a_bits)),
                        ("B".to_string(), Value::Arr(b_bits)),
                        ("S".to_string(), Value::Arr(s_bits)),
                        ("Y".to_string(), Value::Arr(Self::bits_value(&y))),
                    ],
                );
                Self::bits_value(&y)
            }
            Expr::Resize(a, w) | Expr::SignExtend(a, w) => {
                let signed = matches!(e, Expr::SignExtend(..));
                let aw = a.width(nets);
                let a_bits = self.expr_bits(a, None);
                let y = alloc_y(self);
                let k = cell_key(self);
                self.push_cell(
                    k,
                    "$pos",
                    vec![
                        ("A_SIGNED".to_string(), num(u64::from(signed))),
                        ("A_WIDTH".to_string(), num(u64::from(aw))),
                        ("Y_WIDTH".to_string(), num(u64::from(*w))),
                    ],
                    vec![("tensorlib_resize".to_string(), num(1))],
                    vec![
                        ("A".to_string(), s("input")),
                        ("Y".to_string(), s("output")),
                    ],
                    vec![
                        ("A".to_string(), Value::Arr(a_bits)),
                        ("Y".to_string(), Value::Arr(Self::bits_value(&y))),
                    ],
                );
                Self::bits_value(&y)
            }
        }
    }

    fn export(mut self) -> Value {
        let m = self.m;
        // Assign roots: operator roots drive the target bits directly;
        // bare net/constant right-hand sides become unmarked $pos buffers.
        for (target, expr) in m.assigns() {
            let y = self.net_bits[*target].clone();
            match expr {
                Expr::Net(_) | Expr::Const { .. } => {
                    let aw = expr.width(m.nets());
                    let a_bits = self.expr_bits(expr, None);
                    let k = format!("$expr${}", self.expr_counter);
                    self.expr_counter += 1;
                    self.push_cell(
                        k,
                        "$pos",
                        vec![
                            ("A_SIGNED".to_string(), num(0)),
                            ("A_WIDTH".to_string(), num(u64::from(aw))),
                            ("Y_WIDTH".to_string(), num(y.len() as u64)),
                        ],
                        vec![],
                        vec![
                            ("A".to_string(), s("input")),
                            ("Y".to_string(), s("output")),
                        ],
                        vec![
                            ("A".to_string(), Value::Arr(a_bits)),
                            ("Y".to_string(), Value::Arr(Self::bits_value(&y))),
                        ],
                    );
                }
                _ => {
                    self.expr_bits(expr, Some(y));
                }
            }
        }
        // Registers.
        for (i, r) in m.regs().iter().enumerate() {
            let width = m.nets()[r.target].width;
            let d_bits = self.expr_bits(&r.next, None);
            let en_bits = r.enable.as_ref().map(|en| self.expr_bits(en, None));
            let q = self.net_bits[r.target].clone();
            let srst_value: String = (0..width)
                .rev()
                .map(|i| {
                    let bit = if i < 64 { (r.init >> i) & 1 } else { 0 };
                    if bit == 1 {
                        '1'
                    } else {
                        '0'
                    }
                })
                .collect();
            let mut params = vec![
                ("WIDTH".to_string(), num(u64::from(width))),
                ("CLK_POLARITY".to_string(), num(1)),
                ("SRST_POLARITY".to_string(), num(1)),
                ("SRST_VALUE".to_string(), s(srst_value)),
            ];
            let mut dirs = vec![
                ("CLK".to_string(), s("input")),
                ("SRST".to_string(), s("input")),
                ("D".to_string(), s("input")),
                ("Q".to_string(), s("output")),
            ];
            let mut conns = vec![
                ("CLK".to_string(), Value::Arr(vec![s("x")])),
                ("SRST".to_string(), Value::Arr(vec![s("x")])),
                ("D".to_string(), Value::Arr(d_bits)),
                ("Q".to_string(), Value::Arr(Self::bits_value(&q))),
            ];
            let ty = if let Some(en) = en_bits {
                params.push(("EN_POLARITY".to_string(), num(1)));
                dirs.insert(2, ("EN".to_string(), s("input")));
                conns.insert(2, ("EN".to_string(), Value::Arr(en)));
                "$sdffe"
            } else {
                "$sdff"
            };
            let key = format!("$reg${i}");
            self.push_cell(key, ty, params, vec![], dirs, conns);
        }
        // Child-module instances.
        let inst_keys = display_keys(
            m.instances().iter().map(|i| i.name.clone()).collect(),
            "inst",
        );
        for (inst, key) in m.instances().iter().zip(inst_keys) {
            let conns: Vec<(String, Value)> = inst
                .connections
                .iter()
                .map(|(port, net)| {
                    (
                        port.clone(),
                        Value::Arr(Self::bits_value(&self.net_bits[*net])),
                    )
                })
                .collect();
            self.cells.push((
                key,
                obj(vec![
                    ("hide_name".to_string(), num(0)),
                    ("type".to_string(), s(&inst.module)),
                    ("parameters".to_string(), obj(vec![])),
                    (
                        "attributes".to_string(),
                        obj(vec![
                            ("tensorlib_name".to_string(), s(&inst.name)),
                            ("module_not_derived".to_string(), num(1)),
                        ]),
                    ),
                    ("connections".to_string(), obj(conns)),
                ]),
            ));
        }
        // Ports and netnames in declaration order.
        let net_keys = display_keys(
            m.nets().iter().map(|n| n.name.clone()).collect(),
            "n",
        );
        let ports: Vec<(String, Value)> = m
            .ports()
            .iter()
            .map(|(id, dir)| {
                (
                    net_keys[*id].clone(),
                    kv(&[
                        (
                            "direction",
                            s(match dir {
                                Dir::Input => "input",
                                Dir::Output => "output",
                            }),
                        ),
                        ("bits", Value::Arr(Self::bits_value(&self.net_bits[*id]))),
                    ]),
                )
            })
            .collect();
        let netnames: Vec<(String, Value)> = m
            .nets()
            .iter()
            .enumerate()
            .map(|(id, net)| {
                (
                    net_keys[id].clone(),
                    obj(vec![
                        ("hide_name".to_string(), num(u64::from(net.name.is_empty()))),
                        ("bits".to_string(), Value::Arr(Self::bits_value(&self.net_bits[id]))),
                        (
                            "attributes".to_string(),
                            obj(vec![("tensorlib_name".to_string(), s(&net.name))]),
                        ),
                    ]),
                )
            })
            .collect();
        obj(vec![
            ("attributes".to_string(), obj(vec![])),
            ("ports".to_string(), obj(ports)),
            ("cells".to_string(), obj(self.cells)),
            ("netnames".to_string(), obj(netnames)),
        ])
    }
}

fn export_bank(bank: &MemBank) -> Value {
    let iface = bank.interface_module();
    let mut next_bit = 2u64;
    let mut ports = Vec::new();
    let mut netnames = Vec::new();
    for (id, dir) in iface.ports() {
        let net = &iface.nets()[*id];
        let bits: Vec<Value> = (next_bit..next_bit + u64::from(net.width))
            .map(num)
            .collect();
        next_bit += u64::from(net.width);
        ports.push((
            net.name.clone(),
            kv(&[
                (
                    "direction",
                    s(match dir {
                        Dir::Input => "input",
                        Dir::Output => "output",
                    }),
                ),
                ("bits", Value::Arr(bits.clone())),
            ]),
        ));
        netnames.push((
            net.name.clone(),
            obj(vec![
                ("hide_name".to_string(), num(0)),
                ("bits".to_string(), Value::Arr(bits)),
                (
                    "attributes".to_string(),
                    obj(vec![("tensorlib_name".to_string(), s(&net.name))]),
                ),
            ]),
        ));
    }
    obj(vec![
        (
            "attributes".to_string(),
            obj(vec![
                ("blackbox".to_string(), num(1)),
                ("tensorlib_bank".to_string(), num(1)),
                ("tensorlib_words".to_string(), s(bank.words().to_string())),
                ("tensorlib_width".to_string(), s(bank.width().to_string())),
                (
                    "tensorlib_db".to_string(),
                    s(if bank.is_double_buffered() { "1" } else { "0" }),
                ),
                (
                    "tensorlib_parity".to_string(),
                    s(if bank.has_parity() { "1" } else { "0" }),
                ),
            ]),
        ),
        ("ports".to_string(), obj(ports)),
        ("cells".to_string(), obj(vec![])),
        ("netnames".to_string(), obj(netnames)),
    ])
}

/// Exports `doc` as a Yosys-JSON document tree. Deterministic: equal
/// documents export identical trees (and therefore identical text via
/// [`emit_yosys`]).
pub fn export_yosys(doc: &NetlistDoc) -> Value {
    let mut modules: Vec<(String, Value)> = Vec::new();
    for bank in &doc.banks {
        modules.push((bank.module_name(), export_bank(bank)));
    }
    for m in &doc.modules {
        let mut v = ModuleExporter::new(m).export();
        if m.name() == doc.top {
            if let Value::Obj(entries) = &mut v {
                entries[0].1 = obj(vec![("top".to_string(), num(1))]);
            }
        }
        modules.push((m.name().to_string(), v));
    }
    obj(vec![
        ("creator".to_string(), s("tensorlib netlist interchange v1")),
        ("modules".to_string(), obj(modules)),
    ])
}

/// Exports `doc` and serializes it to JSON text (trailing newline included).
pub fn emit_yosys(doc: &NetlistDoc) -> String {
    format!("{}\n", export_yosys(doc))
}

// ---------------------------------------------------------------------------
// Import
// ---------------------------------------------------------------------------

fn get_attr<'v>(module_or_cell: &'v Value, name: &str) -> Option<&'v Value> {
    module_or_cell.get("attributes").and_then(|a| a.get(name))
}

fn attr_u64_str(v: &Value, name: &str, path: &str) -> Result<u64, YosysError> {
    let raw = get_attr(v, name)
        .and_then(Value::as_str)
        .ok_or_else(|| YosysError {
            path: path.to_string(),
            msg: format!("missing string attribute {name:?}"),
        })?;
    raw.parse().map_err(|_| YosysError {
        path: path.to_string(),
        msg: format!("attribute {name:?} is not a u64: {raw:?}"),
    })
}

fn import_bank(name: &str, v: &Value, path: &str) -> Result<MemBank, YosysError> {
    let words = attr_u64_str(v, "tensorlib_words", path)?;
    let width = attr_u64_str(v, "tensorlib_width", path)?;
    let db = attr_u64_str(v, "tensorlib_db", path)?;
    let parity = attr_u64_str(v, "tensorlib_parity", path)?;
    if words == 0 || width == 0 || width > u64::from(u32::MAX) || db > 1 || parity > 1 {
        return err(path, "bank attributes out of range");
    }
    let mut bank = MemBank::new(words, width as u32, db == 1);
    if parity == 1 {
        bank = bank.with_parity();
    }
    if bank.module_name() != name {
        return err(
            path,
            format!(
                "bank module key {name:?} does not match its parameters ({})",
                bank.module_name()
            ),
        );
    }
    Ok(bank)
}

/// Decoded bit connection: each entry is a bit index or a constant bit.
fn conn_bits(v: &Value, path: &str) -> Result<Vec<BitRef>, YosysError> {
    let arr = v.as_array().ok_or_else(|| YosysError {
        path: path.to_string(),
        msg: "connection is not an array".to_string(),
    })?;
    arr.iter()
        .map(|b| match b {
            Value::Num(_) => {
                let n = b.as_u64().ok_or_else(|| YosysError {
                    path: path.to_string(),
                    msg: "bit index is not an integer".to_string(),
                })?;
                Ok(BitRef::Wire(n))
            }
            Value::Str(t) if t == "0" => Ok(BitRef::Const(false)),
            Value::Str(t) if t == "1" => Ok(BitRef::Const(true)),
            Value::Str(t) => err(path, format!("unsupported constant bit {t:?}")),
            _ => err(path, "malformed bit reference"),
        })
        .collect()
}

#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
enum BitRef {
    Wire(u64),
    Const(bool),
}

fn wire_vec(bits: &[BitRef]) -> Option<Vec<u64>> {
    bits.iter()
        .map(|b| match b {
            BitRef::Wire(n) => Some(*n),
            BitRef::Const(_) => None,
        })
        .collect()
}

fn param_u64(cell: &Value, name: &str, path: &str) -> Result<u64, YosysError> {
    cell.get("parameters")
        .and_then(|p| p.get(name))
        .and_then(Value::as_u64)
        .ok_or_else(|| YosysError {
            path: path.to_string(),
            msg: format!("missing integer parameter {name:?}"),
        })
}

struct ModuleImporter<'v> {
    path: String,
    m: Module,
    /// Exact bit-run → visible net.
    visible: HashMap<Vec<u64>, NetId>,
    /// Exact output bit-run → hidden `$`-cell (key, value).
    hidden: HashMap<Vec<u64>, (&'v str, &'v Value)>,
}

impl<'v> ModuleImporter<'v> {
    fn cell_conn(
        &self,
        cell: &'v Value,
        port: &str,
        path: &str,
    ) -> Result<Vec<BitRef>, YosysError> {
        let v = cell
            .get("connections")
            .and_then(|c| c.get(port))
            .ok_or_else(|| YosysError {
                path: path.to_string(),
                msg: format!("missing connection {port:?}"),
            })?;
        conn_bits(v, path)
    }

    /// Rebuilds the expression a bit-run denotes: an inline constant, a
    /// visible net, or (recursively) a hidden operator cell's output.
    fn resolve_expr(&self, bits: &[BitRef], path: &str, depth: u32) -> Result<Expr, YosysError> {
        if depth > 1000 {
            return err(path, "expression nesting too deep (cyclic cell graph?)");
        }
        if bits.is_empty() {
            return err(path, "empty connection");
        }
        if bits.iter().all(|b| matches!(b, BitRef::Const(_))) {
            if bits.len() > u32::MAX as usize {
                return err(path, "constant wider than u32::MAX bits");
            }
            let mut value = 0u64;
            for (i, b) in bits.iter().enumerate() {
                if let BitRef::Const(true) = b {
                    if i >= 64 {
                        return err(path, "constant with set bits above bit 63");
                    }
                    value |= 1 << i;
                }
            }
            return Ok(Expr::Const {
                value,
                width: bits.len() as u32,
            });
        }
        let Some(wires) = wire_vec(bits) else {
            return err(path, "connection mixes constant and wire bits");
        };
        if let Some(id) = self.visible.get(&wires) {
            return Ok(Expr::Net(*id));
        }
        if let Some((key, cell)) = self.hidden.get(&wires) {
            return self.rebuild_cell(key, cell, depth + 1);
        }
        err(path, "connection bits match no net and no cell output")
    }

    /// Rebuilds the expression computed by a `$`-operator cell.
    fn rebuild_cell(
        &self,
        key: &str,
        cell: &'v Value,
        depth: u32,
    ) -> Result<Expr, YosysError> {
        let path = format!("{}.cells.{key}", self.path);
        let ty = cell.get("type").and_then(Value::as_str).unwrap_or("");
        let unary = |op: fn(Box<Expr>) -> Expr, s: &Self| -> Result<Expr, YosysError> {
            let a = s.resolve_expr(&s.cell_conn(cell, "A", &path)?, &path, depth)?;
            Ok(op(Box::new(a)))
        };
        let bin = |op: BinOp, s: &Self| -> Result<Expr, YosysError> {
            let a = s.resolve_expr(&s.cell_conn(cell, "A", &path)?, &path, depth)?;
            let b = s.resolve_expr(&s.cell_conn(cell, "B", &path)?, &path, depth)?;
            Ok(Expr::Bin(op, Box::new(a), Box::new(b)))
        };
        match ty {
            "$not" => unary(Expr::Not, self),
            "$add" => bin(BinOp::Add, self),
            "$sub" => bin(BinOp::Sub, self),
            "$mul" => bin(BinOp::Mul, self),
            "$and" => bin(BinOp::And, self),
            "$or" => bin(BinOp::Or, self),
            "$xor" => bin(BinOp::Xor, self),
            "$eq" => bin(BinOp::Eq, self),
            "$lt" => bin(BinOp::Lt, self),
            "$mux" => {
                let sel = self.resolve_expr(&self.cell_conn(cell, "S", &path)?, &path, depth)?;
                let on_true =
                    self.resolve_expr(&self.cell_conn(cell, "B", &path)?, &path, depth)?;
                let on_false =
                    self.resolve_expr(&self.cell_conn(cell, "A", &path)?, &path, depth)?;
                Ok(Expr::Mux {
                    sel: Box::new(sel),
                    on_true: Box::new(on_true),
                    on_false: Box::new(on_false),
                })
            }
            "$pos" => {
                let a = self.resolve_expr(&self.cell_conn(cell, "A", &path)?, &path, depth)?;
                if get_attr(cell, "tensorlib_resize").is_some() {
                    let w = param_u64(cell, "Y_WIDTH", &path)?;
                    let w = u32::try_from(w)
                        .map_err(|_| YosysError {
                            path: path.clone(),
                            msg: "Y_WIDTH overflows u32".to_string(),
                        })?;
                    if param_u64(cell, "A_SIGNED", &path)? == 1 {
                        Ok(Expr::SignExtend(Box::new(a), w))
                    } else {
                        Ok(Expr::Resize(Box::new(a), w))
                    }
                } else {
                    // Unmarked $pos is a plain buffer.
                    Ok(a)
                }
            }
            other => err(&path, format!("unsupported cell type {other:?}")),
        }
    }

    fn import(mut self, v: &'v Value) -> Result<Module, YosysError> {
        let path = self.path.clone();
        // Nets, in bit order (the exporter allocates bits in declaration
        // order, so sorting by first bit recovers NetId order).
        let netnames = v
            .get("netnames")
            .and_then(Value::as_object)
            .ok_or_else(|| YosysError {
                path: path.clone(),
                msg: "missing `netnames` object".to_string(),
            })?;
        let mut nets: Vec<(Vec<u64>, String)> = Vec::with_capacity(netnames.len());
        for (key, nv) in netnames {
            let npath = format!("{path}.netnames.{key}");
            let bits = conn_bits(
                nv.get("bits").ok_or_else(|| YosysError {
                    path: npath.clone(),
                    msg: "missing `bits`".to_string(),
                })?,
                &npath,
            )?;
            let Some(wires) = wire_vec(&bits) else {
                return err(&npath, "net bits must be wire indices, not constants");
            };
            if wires.is_empty() {
                return err(&npath, "net has no bits");
            }
            if wires.len() > u32::MAX as usize {
                return err(&npath, "net wider than u32::MAX bits");
            }
            let name = get_attr(nv, "tensorlib_name")
                .and_then(Value::as_str)
                .unwrap_or(key)
                .to_string();
            nets.push((wires, name));
        }
        nets.sort_by_key(|(wires, _)| wires[0]);
        // Port directions, keyed by exact bit run.
        let mut port_dirs: HashMap<Vec<u64>, Dir> = HashMap::new();
        let mut port_order: Vec<Vec<u64>> = Vec::new();
        if let Some(ports) = v.get("ports").and_then(Value::as_object) {
            for (key, pv) in ports {
                let ppath = format!("{path}.ports.{key}");
                let dir = match pv.get("direction").and_then(Value::as_str) {
                    Some("input") => Dir::Input,
                    Some("output") => Dir::Output,
                    _ => return err(&ppath, "port direction must be \"input\" or \"output\""),
                };
                let bits = conn_bits(
                    pv.get("bits").ok_or_else(|| YosysError {
                        path: ppath.clone(),
                        msg: "missing `bits`".to_string(),
                    })?,
                    &ppath,
                )?;
                let Some(wires) = wire_vec(&bits) else {
                    return err(&ppath, "port bits must be wire indices");
                };
                if port_dirs.insert(wires.clone(), dir).is_some() {
                    return err(&ppath, "duplicate port bit run");
                }
                port_order.push(wires);
            }
        }
        // Create nets in order; ports are declared through the port-typed
        // constructors so Module's port list lands in net order, exactly as
        // the exporter's source module had it.
        for (wires, name) in &nets {
            let width = wires.len() as u32;
            let id = match port_dirs.get(wires) {
                Some(Dir::Input) => self.m.input(name.clone(), width),
                Some(Dir::Output) => self.m.output(name.clone(), width),
                None => self.m.net(name.clone(), width),
            };
            if self.visible.insert(wires.clone(), id).is_some() {
                return err(&path, format!("two nets share the bit run {wires:?}"));
            }
        }
        for wires in &port_order {
            if !self.visible.contains_key(wires) {
                return err(&path, "port bits do not match any net");
            }
        }
        // Cells: first index hidden operator outputs, then walk in document
        // order rebuilding assigns, registers, and instances.
        let cells: &'v [(String, Value)] =
            v.get("cells").and_then(Value::as_object).unwrap_or(&[]);
        for (key, cv) in cells {
            let ty = cv.get("type").and_then(Value::as_str).unwrap_or("");
            if !ty.starts_with('$') || ty == "$sdff" || ty == "$sdffe" {
                continue;
            }
            let cpath = format!("{path}.cells.{key}");
            let y = self.cell_conn(cv, "Y", &cpath)?;
            if let Some(wires) = wire_vec(&y) {
                if !self.visible.contains_key(&wires) {
                    self.hidden.insert(wires, (key.as_str(), cv));
                }
            }
        }
        for (key, cv) in cells {
            let cpath = format!("{path}.cells.{key}");
            let ty = cv.get("type").and_then(Value::as_str).unwrap_or("");
            match ty {
                "$sdff" | "$sdffe" => {
                    let q = self.cell_conn(cv, "Q", &cpath)?;
                    let Some(wires) = wire_vec(&q) else {
                        return err(&cpath, "register Q bits must be wire indices");
                    };
                    let Some(&target) = self.visible.get(&wires) else {
                        return err(&cpath, "register Q must drive a named net");
                    };
                    let next = self.resolve_expr(&self.cell_conn(cv, "D", &cpath)?, &cpath, 0)?;
                    let enable = if ty == "$sdffe" {
                        Some(self.resolve_expr(
                            &self.cell_conn(cv, "EN", &cpath)?,
                            &cpath,
                            0,
                        )?)
                    } else {
                        None
                    };
                    let srst = cv
                        .get("parameters")
                        .and_then(|p| p.get("SRST_VALUE"))
                        .and_then(Value::as_str)
                        .ok_or_else(|| YosysError {
                            path: cpath.clone(),
                            msg: "missing SRST_VALUE string parameter".to_string(),
                        })?;
                    let mut init = 0u64;
                    for (i, c) in srst.chars().rev().enumerate() {
                        match c {
                            '0' => {}
                            '1' if i < 64 => init |= 1 << i,
                            '1' => return err(&cpath, "SRST_VALUE has set bits above bit 63"),
                            _ => return err(&cpath, "SRST_VALUE must be a binary string"),
                        }
                    }
                    self.m.reg(target, next, enable, init);
                }
                t if t.starts_with('$') => {
                    let y = self.cell_conn(cv, "Y", &cpath)?;
                    if let Some(wires) = wire_vec(&y) {
                        if let Some(&target) = self.visible.get(&wires) {
                            let expr = self.rebuild_cell(key, cv, 0)?;
                            self.m.assign(target, expr);
                        }
                        // Hidden intermediates are reached through
                        // resolve_expr from their consumers.
                    } else {
                        return err(&cpath, "cell output bits must be wire indices");
                    }
                }
                _ => {
                    // A child-module or bank instance.
                    let name = get_attr(cv, "tensorlib_name")
                        .and_then(Value::as_str)
                        .unwrap_or(key)
                        .to_string();
                    let conns_v = cv
                        .get("connections")
                        .and_then(Value::as_object)
                        .ok_or_else(|| YosysError {
                            path: cpath.clone(),
                            msg: "missing `connections` object".to_string(),
                        })?;
                    let mut conns: Vec<(String, NetId)> = Vec::with_capacity(conns_v.len());
                    for (port, bv) in conns_v {
                        let bits = conn_bits(bv, &cpath)?;
                        let Some(wires) = wire_vec(&bits) else {
                            return err(
                                &cpath,
                                format!("connection {port:?} must be wire indices"),
                            );
                        };
                        let Some(&net) = self.visible.get(&wires) else {
                            return err(
                                &cpath,
                                format!("connection {port:?} must be a whole named net"),
                            );
                        };
                        conns.push((port.clone(), net));
                    }
                    self.m.instance(ty.to_string(), name, conns);
                }
            }
        }
        Ok(self.m)
    }
}

/// Imports a Yosys-JSON document tree produced by [`export_yosys`] (or by
/// Yosys itself, within the encoding subset documented at module level).
///
/// # Errors
///
/// Returns a [`YosysError`] naming the JSON path of the first violation.
pub fn import_yosys(root: &Value) -> Result<NetlistDoc, YosysError> {
    let modules = root
        .get("modules")
        .and_then(Value::as_object)
        .ok_or_else(|| YosysError {
            path: "$".to_string(),
            msg: "missing top-level `modules` object".to_string(),
        })?;
    let mut doc = NetlistDoc {
        modules: Vec::new(),
        banks: Vec::new(),
        top: String::new(),
    };
    let mut top: Option<String> = None;
    for (name, mv) in modules {
        let path = format!("modules.{name}");
        if get_attr(mv, "tensorlib_bank").is_some() {
            doc.banks.push(import_bank(name, mv, &path)?);
            continue;
        }
        if get_attr(mv, "top").is_some() {
            if top.is_some() {
                return err(&path, "more than one module carries the `top` attribute");
            }
            top = Some(name.clone());
        }
        let importer = ModuleImporter {
            path,
            m: Module::new(name.clone()),
            visible: HashMap::new(),
            hidden: HashMap::new(),
        };
        doc.modules.push(importer.import(mv)?);
    }
    let Some(top) = top else {
        return err("$", "no module carries the `top` attribute");
    };
    doc.top = top;
    Ok(doc)
}

/// Parses Yosys-JSON text and imports it.
///
/// # Errors
///
/// JSON syntax errors surface at path `$`; structural problems carry the
/// offending JSON path.
pub fn parse_yosys(input: &str) -> Result<NetlistDoc, YosysError> {
    let root = json::parse(input).map_err(|msg| YosysError {
        path: "$".to_string(),
        msg,
    })?;
    import_yosys(&root)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::Expr as E;

    fn tiny_doc() -> NetlistDoc {
        let mut child = Module::new("leaf");
        let cin = child.input("cin", 4);
        let cout = child.output("cout", 4);
        child.assign(cout, E::Not(Box::new(E::net(cin))));
        let mut m = Module::new("t");
        let a = m.input("a", 4);
        let b = m.net("mid", 4);
        let y = m.output("y", 8);
        m.instance("leaf", "u0", vec![("cin".into(), a), ("cout".into(), b)]);
        m.assign(a, E::lit(5, 4));
        m.reg(
            y,
            E::mux(
                E::net(b).resize(1),
                E::net(a).sext(8),
                E::net(y).add(E::lit(3, 8)),
            ),
            Some(E::net(b).resize(1)),
            7,
        );
        NetlistDoc {
            modules: vec![child, m],
            banks: vec![MemBank::new(16, 4, true).with_parity()],
            top: "t".to_string(),
        }
    }

    #[test]
    fn round_trips_structurally_and_byte_identically() {
        let doc = tiny_doc();
        let text = emit_yosys(&doc);
        let parsed = parse_yosys(&text).unwrap();
        assert_eq!(parsed, doc);
        assert_eq!(emit_yosys(&parsed), text);
    }

    #[test]
    fn duplicate_and_empty_net_names_round_trip() {
        let mut m = Module::new("m");
        let a = m.input("x", 2);
        let b = m.net("x", 2);
        let c = m.net("", 2);
        let y = m.output("y", 2);
        m.assign(b, E::net(a));
        m.assign(c, E::net(b));
        m.assign(y, E::net(c));
        let doc = NetlistDoc::from_modules(&[m], "m");
        let parsed = parse_yosys(&emit_yosys(&doc)).unwrap();
        assert_eq!(parsed, doc);
    }

    #[test]
    fn bare_net_and_const_assigns_survive_as_buffers() {
        let mut m = Module::new("m");
        let a = m.input("a", 3);
        let p = m.net("p", 3);
        let q = m.output("q", 3);
        m.assign(p, E::net(a));
        m.assign(q, E::lit(6, 3));
        let doc = NetlistDoc::from_modules(&[m], "m");
        let text = emit_yosys(&doc);
        let parsed = parse_yosys(&text).unwrap();
        assert_eq!(parsed, doc);
        assert_eq!(emit_yosys(&parsed), text);
    }

    #[test]
    fn top_attribute_is_required_and_unique() {
        let doc = tiny_doc();
        let mut root = export_yosys(&doc);
        // Strip every `top` attribute.
        if let Value::Obj(entries) = &mut root {
            if let Some((_, Value::Obj(mods))) =
                entries.iter_mut().find(|(k, _)| k == "modules")
            {
                for (_, mv) in mods.iter_mut() {
                    if let Value::Obj(fields) = mv {
                        for (k, fv) in fields.iter_mut() {
                            if k == "attributes" {
                                if let Value::Obj(attrs) = fv {
                                    attrs.retain(|(ak, _)| ak != "top");
                                }
                            }
                        }
                    }
                }
            }
        }
        let e = import_yosys(&root).unwrap_err();
        assert!(e.msg.contains("top"), "{e}");
    }

    #[test]
    fn unknown_cell_type_is_a_pathed_error() {
        let doc = tiny_doc();
        let mut root = export_yosys(&doc);
        if let Value::Obj(entries) = &mut root {
            if let Some((_, Value::Obj(mods))) =
                entries.iter_mut().find(|(k, _)| k == "modules")
            {
                let (_, mv) = mods.iter_mut().find(|(k, _)| k == "leaf").unwrap();
                let cells = mv
                    .as_object()
                    .unwrap()
                    .iter()
                    .position(|(k, _)| k == "cells")
                    .unwrap();
                if let Value::Obj(fields) = mv {
                    if let Value::Obj(cell_map) = &mut fields[cells].1 {
                        if let Value::Obj(cell) = &mut cell_map[0].1 {
                            for (k, v) in cell.iter_mut() {
                                if k == "type" {
                                    *v = Value::Str("$bogus".to_string());
                                }
                            }
                        }
                    }
                }
            }
        }
        let e = import_yosys(&root).unwrap_err();
        assert!(e.msg.contains("unsupported cell type"), "{e}");
        assert!(e.path.contains("modules.leaf.cells"), "{e}");
    }

    #[test]
    fn bank_attributes_must_match_their_key() {
        let doc = NetlistDoc {
            modules: vec![Module::new("m")],
            banks: vec![MemBank::new(8, 8, false)],
            top: "m".to_string(),
        };
        let text = emit_yosys(&doc);
        let broken = text.replacen("\"tensorlib_words\": \"8\"", "\"tensorlib_words\": \"9\"", 1);
        let e = parse_yosys(&broken).unwrap_err();
        assert!(e.msg.contains("does not match"), "{e}");
    }
}

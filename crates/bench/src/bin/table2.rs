//! Regenerates **Table II**: the six evaluated tensor algebras, with their
//! formulas, shapes, and a reference-executor sanity run.

use tensorlib::ir::workloads;
use tensorlib_bench::TextTable;

fn main() {
    println!("Table II — evaluated tensor algebras\n");
    let mut table = TextTable::new(vec!["name", "formula", "loops", "MACs", "checksum"]);
    for kernel in workloads::table2_catalog() {
        // Small-size twin for the checksum run (the catalog sizes are the
        // evaluation sizes; reference execution there would be slow for the
        // conv layers).
        let small = match kernel.name() {
            "GEMM" => workloads::gemm(8, 8, 8),
            "Batched-GEMV" => workloads::batched_gemv(8, 8, 8),
            "Conv2D" => workloads::conv2d(4, 4, 6, 6, 3, 3),
            "Depthwise-Conv" => workloads::depthwise_conv(4, 6, 6, 3, 3),
            "MTTKRP" => workloads::mttkrp(6, 6, 6, 6),
            "TTMc" => workloads::ttmc(4, 4, 4, 4, 4),
            other => panic!("unknown workload {other}"),
        };
        let inputs = small.random_inputs(2024);
        let out = small
            .execute_reference(&inputs)
            .expect("catalog kernels execute");
        let checksum: i64 = out.as_slice().iter().sum();
        table.row(vec![
            kernel.name().to_string(),
            kernel.to_string().split(": ").nth(1).unwrap_or("").to_string(),
            kernel
                .loop_nest()
                .names()
                .join(",")
                .to_string(),
            kernel.macs().to_string(),
            checksum.to_string(),
        ]);
    }
    println!("{table}");
}

//! Regression pins from the differential fuzzing harness.
//!
//! The first tests are shrunk findings: minimal netlists distilled from real
//! generator bugs (the compound-operand part-select emission bug fixed in
//! this harness's PR), written in the exact form `fuzz::rust_repro` emits so
//! future findings can be pasted here verbatim. The rest assert the
//! harness's own guarantees: clean seed windows stay clean, injected
//! mismatches shrink to small repros, and reports are byte-identical for
//! any worker count.

use tensorlib::hw::fuzz::{
    check_netlist, check_opt_netlist, gen_netlist, shrink_netlist, NetlistFailure,
    NetlistFailureKind, NetlistFuzzConfig,
};
use tensorlib::hw::netlist::{Expr, Module};
use tensorlib::hw::opt::{optimize_netlist, OptOptions};
use tensorlib::hw::verilog::emit_module;
use tensorlib::sim::verify::{run_verify, VerifyConfig};

/// Shrunk repro of the narrowing-resize emission bug: `(a + b)[3:0]` is not
/// legal Verilog, so the emitter must hoist the sum into a named wire. The
/// buggy emitter produced the illegal part-select; both engines always
/// agreed, making this exactly the class of bug only the emission lint
/// catches.
#[test]
fn fuzz_regression_compound_resize_narrow() {
    let mut m = Module::new("shrunk_resize");
    let a = m.input("a", 8);
    let b = m.input("b", 8);
    let y = m.output("y", 4);
    m.assign(y, Expr::net(a).add(Expr::net(b)).resize(4));
    let v = emit_module(&m);
    assert!(!v.contains(")["), "illegal part-select re-emerged:\n{v}");
    tensorlib_hw::fuzz::assert_engines_agree(&[m], "shrunk_resize", 0, 16);
}

/// Shrunk repro of the sign-extend variant: widening a mux needs the mux
/// result in a named wire before its sign bit can be replicated.
#[test]
fn fuzz_regression_compound_sign_extend_widen() {
    let mut m = Module::new("shrunk_sext");
    let s = m.input("s", 1);
    let a = m.input("a", 4);
    let b = m.input("b", 4);
    let y = m.output("y", 8);
    m.assign(y, Expr::mux(Expr::net(s), Expr::net(a), Expr::net(b)).sext(8));
    let v = emit_module(&m);
    assert!(!v.contains(")["), "illegal part-select re-emerged:\n{v}");
    tensorlib_hw::fuzz::assert_engines_agree(&[m], "shrunk_sext", 0, 16);
}

/// The shrunk part-select repro, pushed through the *full* optimizer
/// pipeline: the optimized form must stay bit-identical to the original
/// under the lock-step oracle, must still emit legal Verilog, and — because
/// `add(…).resize(…)` of two inputs is irreducible — must keep the repro's
/// shape rather than folding it away. Pins the interaction between shrunk
/// findings and the optimizer so a rewrite bug can never "fix" a repro by
/// deleting it.
#[test]
fn shrunk_repro_survives_the_full_opt_pipeline() {
    let mut m = Module::new("shrunk_resize");
    let a = m.input("a", 8);
    let b = m.input("b", 8);
    let y = m.output("y", 4);
    m.assign(y, Expr::net(a).add(Expr::net(b)).resize(4));
    let modules = vec![m];
    check_opt_netlist(&modules, "shrunk_resize", 7, 16, 2)
        .expect("optimizer diverged on the pinned repro");
    let (optimized, stats) =
        optimize_netlist(&modules, "shrunk_resize", &OptOptions::default());
    assert_eq!(stats.post.nets, 3, "repro shape changed: {:?}", optimized[0]);
    let v = emit_module(&optimized[0]);
    assert!(!v.contains(")["), "optimizer re-introduced the part-select:\n{v}");
    tensorlib_hw::fuzz::assert_engines_agree(&optimized, "shrunk_resize", 0, 16);
}

/// The module-level driver census deliberately cannot see instance-output
/// double drives (child port directions live in the child): this module
/// passes `Module::validate`, and the design-level pass is what rejects the
/// pattern (covered by `AcceleratorDesign::validate` unit tests). Pinned
/// here because a dead loop in the module census used to *look* like it
/// handled this case.
#[test]
fn instance_output_double_drive_is_beyond_the_module_census() {
    let mut child = Module::new("dd_child");
    let ci = child.input("ci", 4);
    let co = child.output("co", 4);
    child.assign(co, Expr::net(ci));

    let mut parent = Module::new("dd_parent");
    let x = parent.input("x", 4);
    let y = parent.output("y", 4);
    parent.instance("dd_child", "u0", vec![("ci".into(), x), ("co".into(), y)]);
    parent.assign(y, Expr::lit(0, 4));

    child.validate().unwrap();
    parent
        .validate()
        .expect("module census cannot resolve child port directions");
}

/// A window of generator seeds stays clean through every oracle. Any
/// failure here is a real engine/emitter/validator disagreement: shrink it
/// with `fuzz::shrink_netlist`, render it with `fuzz::rust_repro`, and pin
/// it above.
#[test]
fn netlist_seed_window_is_clean() {
    let cfg = NetlistFuzzConfig::default();
    for seed in 0..150 {
        let (modules, top) = gen_netlist(seed, &cfg);
        check_netlist(&modules, &top, seed, cfg.cycles, None)
            .unwrap_or_else(|f| panic!("seed {seed} found a bug: {f:?}"));
    }
}

/// The acceptance bar for the shrinker: an injected engine mismatch must
/// minimize to a repro of at most 10 nets.
#[test]
fn injected_mismatch_shrinks_to_at_most_ten_nets() {
    let cfg = NetlistFuzzConfig::default();
    let mut shrunk_sizes = Vec::new();
    for seed in 0..64 {
        let (modules, top) = gen_netlist(seed, &cfg);
        if check_netlist(&modules, &top, seed, cfg.cycles, Some(0)).is_err() {
            let (shrunk, _) = shrink_netlist(&modules, &top, |mods, t| {
                matches!(
                    check_netlist(mods, t, seed, cfg.cycles, Some(0)),
                    Err(NetlistFailure {
                        kind: NetlistFailureKind::Mismatch,
                        ..
                    })
                )
            });
            shrunk_sizes.push(shrunk.iter().map(|m| m.nets().len()).sum::<usize>());
            if shrunk_sizes.len() >= 3 {
                break;
            }
        }
    }
    assert!(
        !shrunk_sizes.is_empty(),
        "no seed in the window propagated the injected input flip"
    );
    for size in shrunk_sizes {
        assert!(size <= 10, "shrunk repro kept {size} nets (bar is 10)");
    }
}

/// Same seeds, different worker counts, identical bytes — the property the
/// CI smoke gate relies on when it greps one worker-count's report.
#[test]
fn fuzz_reports_are_byte_identical_across_worker_counts() {
    let mut cfg = VerifyConfig {
        seed_start: 0,
        seeds: 15,
        workers: 1,
        cycles: 8,
        lanes: 1,
        opt: true,
    };
    let one = serde_json::to_string_pretty(&run_verify(&cfg, true, true)).unwrap();
    cfg.workers = 4;
    let four = serde_json::to_string_pretty(&run_verify(&cfg, true, true)).unwrap();
    assert_eq!(one, four);
    assert!(one.contains("\"total_findings\": 0"), "{one}");
}

//! Affine index expressions and access matrices.

use std::fmt;

use serde::{Deserialize, Serialize};
use tensorlib_linalg::{Frac, Mat};

use crate::LoopNest;

/// A linear expression over loop iterators: `Σ coeff_i · iter_i`.
///
/// Tensor subscripts in the paper's workloads are linear in the iterators —
/// e.g. `A[c, y + p, x + q]` uses the expressions `c`, `y + p` and `x + q`.
/// Constant offsets are deliberately unsupported; the paper's Table II
/// kernels never need them and forbidding them keeps `I = A·x` exactly a
/// matrix product.
///
/// # Examples
///
/// ```
/// use tensorlib_ir::{AffineExpr, LoopNest};
/// let nest = LoopNest::new(vec![("y", 8), ("p", 3)]);
/// let e = AffineExpr::sum_of(&nest, &["y", "p"]);
/// assert_eq!(e.eval(&[5, 2]), 7);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct AffineExpr {
    coeffs: Vec<i64>,
}

impl AffineExpr {
    /// Creates an expression from explicit coefficients, one per nest
    /// iterator in order.
    pub fn from_coeffs(coeffs: Vec<i64>) -> AffineExpr {
        AffineExpr { coeffs }
    }

    /// The expression that is just the iterator `name`.
    ///
    /// # Panics
    ///
    /// Panics if `name` is not in the nest.
    pub fn var(nest: &LoopNest, name: &str) -> AffineExpr {
        AffineExpr::sum_of(nest, &[name])
    }

    /// The expression `Σ names` (each with coefficient 1).
    ///
    /// # Panics
    ///
    /// Panics if any name is not in the nest.
    pub fn sum_of(nest: &LoopNest, names: &[&str]) -> AffineExpr {
        let mut coeffs = vec![0i64; nest.len()];
        for name in names {
            let idx = nest
                .index_of(name)
                .unwrap_or_else(|| panic!("unknown iterator {name:?}"));
            coeffs[idx] += 1;
        }
        AffineExpr { coeffs }
    }

    /// The coefficient vector, one entry per nest iterator.
    pub fn coeffs(&self) -> &[i64] {
        &self.coeffs
    }

    /// Evaluates the expression at a loop point.
    ///
    /// # Panics
    ///
    /// Panics if `point` has the wrong length.
    pub fn eval(&self, point: &[i64]) -> i64 {
        assert_eq!(point.len(), self.coeffs.len(), "point arity mismatch");
        self.coeffs.iter().zip(point).map(|(&c, &x)| c * x).sum()
    }

    /// Returns `true` if the expression involves the iterator at `idx`.
    pub fn uses(&self, idx: usize) -> bool {
        self.coeffs.get(idx).is_some_and(|&c| c != 0)
    }
}

/// The access matrix `A` of one tensor reference: `I = A·x` maps a loop point
/// to a tensor index vector. One [`AffineExpr`] row per tensor dimension.
///
/// # Examples
///
/// ```
/// use tensorlib_ir::{AccessMap, AffineExpr, LoopNest};
/// let nest = LoopNest::new(vec![("i", 4), ("j", 4), ("k", 4)]);
/// // A[i, k]:
/// let a = AccessMap::new(vec![
///     AffineExpr::var(&nest, "i"),
///     AffineExpr::var(&nest, "k"),
/// ]);
/// assert_eq!(a.eval(&[1, 2, 3]), vec![1, 3]);
/// assert_eq!(a.to_mat().rank(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct AccessMap {
    rows: Vec<AffineExpr>,
}

impl AccessMap {
    /// Creates an access map from per-dimension expressions.
    ///
    /// # Panics
    ///
    /// Panics if `rows` is empty or the rows have differing arities.
    pub fn new(rows: Vec<AffineExpr>) -> AccessMap {
        assert!(!rows.is_empty(), "access map needs at least one dimension");
        let arity = rows[0].coeffs().len();
        assert!(
            rows.iter().all(|r| r.coeffs().len() == arity),
            "access map rows must agree on iterator count"
        );
        AccessMap { rows }
    }

    /// Number of tensor dimensions (rows of `A`).
    pub fn dims(&self) -> usize {
        self.rows.len()
    }

    /// Number of loop iterators (columns of `A`).
    pub fn arity(&self) -> usize {
        self.rows[0].coeffs().len()
    }

    /// The per-dimension expressions.
    pub fn exprs(&self) -> &[AffineExpr] {
        &self.rows
    }

    /// Evaluates the full index vector at a loop point.
    pub fn eval(&self, point: &[i64]) -> Vec<i64> {
        self.rows.iter().map(|r| r.eval(point)).collect()
    }

    /// The access matrix as an exact rational [`Mat`] (`dims × arity`).
    pub fn to_mat(&self) -> Mat {
        Mat::from_fn(self.dims(), self.arity(), |i, j| {
            Frac::from(self.rows[i].coeffs()[j])
        })
    }

    /// Restricts the access matrix to the given iterator columns (in order),
    /// yielding the `dims × selected` matrix used when three loops are chosen
    /// for space-time mapping.
    pub fn restrict_to(&self, iter_indices: &[usize]) -> Mat {
        self.to_mat().select_cols(iter_indices)
    }

    /// Returns `true` if any dimension uses the iterator at `idx`.
    pub fn uses_iter(&self, idx: usize) -> bool {
        self.rows.iter().any(|r| r.uses(idx))
    }

    /// Renders the access map with real iterator names, e.g. `[c, y+p, x+q]`.
    ///
    /// # Panics
    ///
    /// Panics if `names` has the wrong arity.
    pub fn display_with(&self, names: &[&str]) -> String {
        assert_eq!(names.len(), self.arity(), "iterator name arity mismatch");
        let mut out = String::from("[");
        for (i, r) in self.rows.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let mut first = true;
            for (j, &c) in r.coeffs().iter().enumerate() {
                if c == 0 {
                    continue;
                }
                if !first {
                    out.push('+');
                }
                if c != 1 {
                    out.push_str(&format!("{c}*"));
                }
                out.push_str(names[j]);
                first = false;
            }
            if first {
                out.push('0');
            }
        }
        out.push(']');
        out
    }

    /// The extent of each tensor dimension implied by the loop extents:
    /// `max_x (A·x)[d] + 1`, requiring the minimum to be `0`.
    ///
    /// # Panics
    ///
    /// Panics if the arity disagrees with the nest, or if any dimension can
    /// evaluate negative (which would index out of bounds).
    pub fn dim_extents(&self, nest: &LoopNest) -> Vec<usize> {
        assert_eq!(self.arity(), nest.len(), "access map arity mismatch");
        let exts = nest.extents();
        self.rows
            .iter()
            .map(|r| {
                let mut max = 0i64;
                let mut min = 0i64;
                for (j, &c) in r.coeffs().iter().enumerate() {
                    let hi = exts[j] as i64 - 1;
                    if c >= 0 {
                        max += c * hi;
                    } else {
                        min += c * hi;
                    }
                }
                assert!(min >= 0, "access map can produce a negative index");
                (max + 1) as usize
            })
            .collect()
    }
}

impl fmt::Display for AccessMap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, r) in self.rows.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            let mut first = true;
            for (j, &c) in r.coeffs().iter().enumerate() {
                if c == 0 {
                    continue;
                }
                if !first {
                    write!(f, "+")?;
                }
                if c != 1 {
                    write!(f, "{c}*")?;
                }
                write!(f, "x{j}")?;
                first = false;
            }
            if first {
                write!(f, "0")?;
            }
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nest3() -> LoopNest {
        LoopNest::new(vec![("i", 4), ("j", 5), ("k", 6)])
    }

    #[test]
    fn var_and_sum_expressions() {
        let nest = nest3();
        let i = AffineExpr::var(&nest, "i");
        assert_eq!(i.coeffs(), &[1, 0, 0]);
        let ik = AffineExpr::sum_of(&nest, &["i", "k"]);
        assert_eq!(ik.coeffs(), &[1, 0, 1]);
        assert_eq!(ik.eval(&[2, 9, 3]), 5);
        assert!(ik.uses(0));
        assert!(!ik.uses(1));
    }

    #[test]
    #[should_panic(expected = "unknown iterator")]
    fn unknown_iterator_panics() {
        let _ = AffineExpr::var(&nest3(), "zz");
    }

    #[test]
    fn access_map_eval_and_mat() {
        let nest = nest3();
        let a = AccessMap::new(vec![
            AffineExpr::var(&nest, "i"),
            AffineExpr::var(&nest, "k"),
        ]);
        assert_eq!(a.dims(), 2);
        assert_eq!(a.arity(), 3);
        assert_eq!(a.eval(&[1, 2, 3]), vec![1, 3]);
        let m = a.to_mat();
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 3);
        assert_eq!(m.rank(), 2);
        assert!(a.uses_iter(0));
        assert!(!a.uses_iter(1));
    }

    #[test]
    fn restriction_selects_columns() {
        let nest = nest3();
        let a = AccessMap::new(vec![AffineExpr::sum_of(&nest, &["i", "k"])]);
        let r = a.restrict_to(&[2, 0]);
        assert_eq!(r.rows(), 1);
        assert_eq!(r.cols(), 2);
        assert_eq!(r[(0, 0)], 1i64.into());
        assert_eq!(r[(0, 1)], 1i64.into());
    }

    #[test]
    fn dim_extents_handles_sums() {
        let nest = LoopNest::new(vec![("y", 8), ("p", 3)]);
        let a = AccessMap::new(vec![AffineExpr::sum_of(&nest, &["y", "p"])]);
        // max = 7 + 2 = 9, so extent 10 (the conv halo).
        assert_eq!(a.dim_extents(&nest), vec![10]);
    }

    #[test]
    fn display_is_readable() {
        let nest = nest3();
        let a = AccessMap::new(vec![AffineExpr::sum_of(&nest, &["i", "k"])]);
        assert_eq!(a.to_string(), "[x0+x2]");
    }
}

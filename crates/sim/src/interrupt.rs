//! Process-wide SIGINT latch for graceful campaign draining.
//!
//! The CLI installs this handler only for journaled campaign runs
//! (`--resume`): the first Ctrl-C sets a flag that the chunked campaign
//! loop checks between chunks — the in-flight chunk drains to completion,
//! the journal is flushed, and a valid partial report marked
//! `interrupted: true` is written with resume instructions. The handler
//! then restores the default disposition, so a second Ctrl-C hard-kills
//! the process the way an impatient operator expects.
//!
//! The handler body is async-signal-safe: one atomic store plus one
//! `signal(2)` call, no allocation, no locking. This module carries the
//! only `allow(unsafe_code)` in the workspace — a two-line libc `signal`
//! binding; everything else in the crate is `deny(unsafe_code)`.
//!
//! Tests never touch this global latch: campaign entry points accept a
//! local `Arc<AtomicBool>` via
//! [`DurabilityOptions::interrupt`](crate::DurabilityOptions), so parallel
//! tests cannot race each other through process state. [`trigger`] and
//! [`reset`] exist for single-process smoke use, not for test isolation.

use std::sync::atomic::{AtomicBool, Ordering};

static INTERRUPTED: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
mod sys {
    use super::{Ordering, INTERRUPTED};

    const SIGINT: i32 = 2;
    /// `SIG_DFL` is the null handler pointer on every POSIX platform.
    const SIG_DFL: usize = 0;

    #[allow(unsafe_code)]
    extern "C" {
        /// POSIX `signal(2)`. Adequate here: one signal, one process-wide
        /// latch, no need for `sigaction` flags.
        fn signal(signum: i32, handler: usize) -> usize;
    }

    extern "C" fn on_sigint(_sig: i32) {
        INTERRUPTED.store(true, Ordering::SeqCst);
        // Restore the default disposition so a second Ctrl-C kills the
        // process instead of being latched again. Both the store above and
        // this call are async-signal-safe.
        #[allow(unsafe_code)]
        unsafe {
            signal(SIGINT, SIG_DFL);
        }
    }

    pub fn install() {
        #[allow(unsafe_code)]
        unsafe {
            signal(SIGINT, on_sigint as extern "C" fn(i32) as usize);
        }
    }
}

#[cfg(not(unix))]
mod sys {
    /// SIGINT latching is a POSIX feature; elsewhere Ctrl-C keeps its
    /// default process-killing behaviour and campaigns rely on the journal
    /// alone for durability.
    pub fn install() {}
}

/// Arms the SIGINT latch: the next Ctrl-C sets the interrupted flag and
/// restores the default handler (so a second Ctrl-C hard-kills). Call once
/// from the CLI before starting a journaled campaign; never from library
/// code or tests.
pub fn install() {
    sys::install();
}

/// True once SIGINT has been received (or [`trigger`] called) in this
/// process.
pub fn interrupted() -> bool {
    INTERRUPTED.load(Ordering::SeqCst)
}

/// Sets the latch as if SIGINT had arrived. For single-process smoke use.
pub fn trigger() {
    INTERRUPTED.store(true, Ordering::SeqCst);
}

/// Clears the latch. For single-process smoke use.
pub fn reset() {
    INTERRUPTED.store(false, Ordering::SeqCst);
}

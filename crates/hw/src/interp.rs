//! Netlist elaboration and cycle-level interpretation.
//!
//! [`elaborate`] flattens a module hierarchy into a single netlist (child
//! instances inlined, ports spliced onto parent nets, memory banks kept as
//! behavioural primitives). [`Interpreter`] then executes the flat netlist
//! cycle by cycle: combinational settle in topological order, registered
//! state commits on [`Interpreter::step`].
//!
//! This is how the test suite proves the generated RTL itself computes the
//! kernel — e.g. driving an output-stationary GEMM array's feed ports with
//! the skewed schedule and reading the drained results (see
//! `tests/netlist_execution.rs`).

use std::collections::HashMap;

use crate::array::HwError;
use crate::fault::{BankWordFlip, FaultKind, FaultSpec, FaultState, RegHold, SlotFlip, StuckForce};
use crate::mem::MemBank;
use crate::netlist::{BinOp, Dir, Expr, Module, Net, NetId, RegDef};
use crate::trace::{InterpreterStats, TraceConfig, TraceEvent, TraceState};

/// A memory bank instance surviving elaboration as a behavioural primitive.
#[derive(Debug, Clone)]
pub struct FlatBank {
    /// Hierarchical instance path (e.g. `bank_0_a_feed0`).
    pub name: String,
    /// The bank template.
    pub spec: MemBank,
    /// Flat net carrying the stream enable.
    pub en: NetId,
    /// Flat net carrying the write enable.
    pub wen: NetId,
    /// Flat net carrying write data.
    pub wdata: NetId,
    /// Flat net carrying read data (driven by the bank).
    pub rdata: NetId,
    /// Double-buffer select net, if the bank is double-buffered.
    pub buf_sel: Option<NetId>,
}

/// A fully elaborated (flattened) netlist.
#[derive(Debug, Clone)]
pub struct FlatDesign {
    pub(crate) nets: Vec<Net>,
    pub(crate) ports: Vec<(NetId, Dir)>,
    pub(crate) assigns: Vec<(NetId, Expr)>,
    pub(crate) regs: Vec<RegDef>,
    pub(crate) banks: Vec<FlatBank>,
    pub(crate) topo: Vec<usize>,
}

impl FlatDesign {
    /// All flat nets (names are hierarchical, `inst.inst.net`).
    pub fn nets(&self) -> &[Net] {
        &self.nets
    }

    /// Top-level ports.
    pub fn ports(&self) -> &[(NetId, Dir)] {
        &self.ports
    }

    /// The flat net id of the top-level port named `name`.
    pub fn port(&self, name: &str) -> Option<NetId> {
        self.ports
            .iter()
            .find(|(id, _)| self.nets[*id].name == name)
            .map(|&(id, _)| id)
    }

    /// Total registers after flattening.
    pub fn reg_count(&self) -> usize {
        self.regs.len()
    }

    /// Total behavioural banks after flattening.
    pub fn bank_count(&self) -> usize {
        self.banks.len()
    }

    /// All registers after flattening (targets index [`FlatDesign::nets`]).
    pub fn regs(&self) -> &[RegDef] {
        &self.regs
    }

    /// The behavioural bank instances.
    pub fn flat_banks(&self) -> &[FlatBank] {
        &self.banks
    }
}

/// Elaboration failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ElaborateError {
    /// An instance references a module that is neither in `modules` nor a
    /// bank template.
    UnknownModule(String),
    /// An instance connection names a port the child does not have.
    UnknownPort {
        /// The child module.
        module: String,
        /// The missing port.
        port: String,
    },
}

impl std::fmt::Display for ElaborateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ElaborateError::UnknownModule(m) => write!(f, "unknown module {m:?}"),
            ElaborateError::UnknownPort { module, port } => {
                write!(f, "module {module:?} has no port {port:?}")
            }
        }
    }
}

impl std::error::Error for ElaborateError {}

/// Flattens the hierarchy rooted at `top` into a single netlist.
///
/// # Errors
///
/// Returns [`ElaborateError`] if an instance references an unknown module or
/// port.
///
/// # Examples
///
/// ```
/// use tensorlib_hw::interp::{elaborate, Interpreter};
/// use tensorlib_hw::netlist::{Expr, Module};
///
/// let mut m = Module::new("cnt");
/// let en = m.input("en", 1);
/// let q = m.output("q", 8);
/// m.reg(q, Expr::net(q).add(Expr::lit(1, 8)), Some(Expr::net(en)), 0);
/// let flat = elaborate(&[m], &[], "cnt")?;
/// let mut sim = Interpreter::new(flat);
/// sim.poke("en", 1);
/// sim.step();
/// sim.step();
/// assert_eq!(sim.peek("q"), 2);
/// # Ok::<(), tensorlib_hw::interp::ElaborateError>(())
/// ```
pub fn elaborate(
    modules: &[Module],
    banks: &[MemBank],
    top: &str,
) -> Result<FlatDesign, ElaborateError> {
    let _span = tensorlib_obs::span("hw.flatten");
    let by_name: HashMap<&str, &Module> = modules.iter().map(|m| (m.name(), m)).collect();
    let bank_by_name: HashMap<String, &MemBank> =
        banks.iter().map(|b| (b.module_name(), b)).collect();
    let top_module = by_name
        .get(top)
        .ok_or_else(|| ElaborateError::UnknownModule(top.to_string()))?;

    let mut flat = FlatDesign {
        nets: Vec::new(),
        ports: Vec::new(),
        assigns: Vec::new(),
        regs: Vec::new(),
        banks: Vec::new(),
        topo: Vec::new(),
    };

    // Top-level ports become flat nets first so `port()` lookups stay simple.
    let mut top_map: Vec<Option<NetId>> = vec![None; top_module.nets().len()];
    for (id, dir) in top_module.ports() {
        let flat_id = flat.nets.len();
        flat.nets.push(top_module.nets()[*id].clone());
        flat.ports.push((flat_id, *dir));
        top_map[*id] = Some(flat_id);
    }
    inline(
        top_module,
        "",
        top_map,
        &by_name,
        &bank_by_name,
        &mut flat,
    )?;

    // Topological order over combinational assigns.
    flat.topo = topo_order(&flat);
    tensorlib_obs::counter_add("hw.flat_nets", flat.nets.len() as u64);
    tensorlib_obs::counter_add("hw.flat_assigns", flat.assigns.len() as u64);
    tensorlib_obs::hist_record("hw.design_nets", flat.nets.len() as u64);
    Ok(flat)
}

/// Convenience: elaborates a complete [`crate::design::AcceleratorDesign`]
/// from the given top module (usually [`crate::design::AcceleratorDesign::top`]
/// or the array module).
pub fn elaborate_design(
    design: &crate::design::AcceleratorDesign,
    top: &str,
) -> Result<FlatDesign, ElaborateError> {
    elaborate(design.modules(), design.mem_banks(), top)
}

fn inline(
    module: &Module,
    prefix: &str,
    // For each child-local net: the flat id it maps to (ports pre-bound by
    // the parent), or None to allocate fresh.
    mut map: Vec<Option<NetId>>,
    by_name: &HashMap<&str, &Module>,
    bank_by_name: &HashMap<String, &MemBank>,
    flat: &mut FlatDesign,
) -> Result<(), ElaborateError> {
    // Allocate fresh flat nets for everything unbound.
    for (id, net) in module.nets().iter().enumerate() {
        if map[id].is_none() {
            let flat_id = flat.nets.len();
            flat.nets.push(Net {
                name: format!("{prefix}{}", net.name),
                width: net.width,
            });
            map[id] = Some(flat_id);
        }
    }
    let remap = |id: NetId| map[id].expect("all nets mapped");
    for (target, expr) in module.assigns() {
        flat.assigns.push((remap(*target), rewrite(expr, &map)));
    }
    for r in module.regs() {
        flat.regs.push(RegDef {
            target: remap(r.target),
            next: rewrite(&r.next, &map),
            enable: r.enable.as_ref().map(|e| rewrite(e, &map)),
            init: r.init,
        });
    }
    for inst in module.instances() {
        let child_prefix = format!("{prefix}{}.", inst.name);
        if let Some(bank) = bank_by_name.get(&inst.module) {
            let find = |port: &str| -> Result<Option<NetId>, ElaborateError> {
                Ok(inst
                    .connections
                    .iter()
                    .find(|(p, _)| p == port)
                    .map(|(_, n)| remap(*n)))
            };
            let req = |port: &str| -> Result<NetId, ElaborateError> {
                find(port)?.ok_or_else(|| ElaborateError::UnknownPort {
                    module: inst.module.clone(),
                    port: port.to_string(),
                })
            };
            flat.banks.push(FlatBank {
                name: format!("{prefix}{}", inst.name),
                spec: (*bank).clone(),
                en: req("en")?,
                wen: req("wen")?,
                wdata: req("wdata")?,
                rdata: req("rdata")?,
                buf_sel: find("buf_sel")?,
            });
            continue;
        }
        let child = by_name
            .get(inst.module.as_str())
            .ok_or_else(|| ElaborateError::UnknownModule(inst.module.clone()))?;
        let mut child_map: Vec<Option<NetId>> = vec![None; child.nets().len()];
        for (port, parent_net) in &inst.connections {
            let child_net = child
                .ports()
                .iter()
                .find(|(id, _)| child.nets()[*id].name == *port)
                .map(|&(id, _)| id)
                .ok_or_else(|| ElaborateError::UnknownPort {
                    module: inst.module.clone(),
                    port: port.clone(),
                })?;
            child_map[child_net] = Some(remap(*parent_net));
        }
        inline(child, &child_prefix, child_map, by_name, bank_by_name, flat)?;
    }
    Ok(())
}

fn rewrite(expr: &Expr, map: &[Option<NetId>]) -> Expr {
    match expr {
        Expr::Const { value, width } => Expr::Const {
            value: *value,
            width: *width,
        },
        Expr::Net(id) => Expr::Net(map[*id].expect("net mapped")),
        Expr::Not(e) => Expr::Not(Box::new(rewrite(e, map))),
        Expr::Bin(op, a, b) => {
            Expr::Bin(*op, Box::new(rewrite(a, map)), Box::new(rewrite(b, map)))
        }
        Expr::Mux {
            sel,
            on_true,
            on_false,
        } => Expr::Mux {
            sel: Box::new(rewrite(sel, map)),
            on_true: Box::new(rewrite(on_true, map)),
            on_false: Box::new(rewrite(on_false, map)),
        },
        Expr::Resize(e, w) => Expr::Resize(Box::new(rewrite(e, map)), *w),
        Expr::SignExtend(e, w) => Expr::SignExtend(Box::new(rewrite(e, map)), *w),
    }
}

fn topo_order(flat: &FlatDesign) -> Vec<usize> {
    // Map: net -> assign index driving it.
    let mut driver: HashMap<NetId, usize> = HashMap::new();
    for (i, (target, _)) in flat.assigns.iter().enumerate() {
        driver.insert(*target, i);
    }
    let mut order = Vec::with_capacity(flat.assigns.len());
    let mut state = vec![0u8; flat.assigns.len()];
    fn visit(
        i: usize,
        flat: &FlatDesign,
        driver: &HashMap<NetId, usize>,
        state: &mut [u8],
        order: &mut Vec<usize>,
    ) {
        if state[i] != 0 {
            assert!(state[i] == 2, "combinational cycle (validated earlier)");
            return;
        }
        state[i] = 1;
        let mut reads = Vec::new();
        flat.assigns[i].1.collect_reads(&mut reads);
        for r in reads {
            if let Some(&j) = driver.get(&r) {
                if state[j] == 0 {
                    visit(j, flat, driver, state, order);
                }
            }
        }
        state[i] = 2;
        order.push(i);
    }
    for i in 0..flat.assigns.len() {
        visit(i, flat, &driver, &mut state, &mut order);
    }
    order
}

pub(crate) fn mask(value: u64, width: u32) -> u64 {
    if width >= 64 {
        value
    } else {
        value & ((1u64 << width) - 1)
    }
}

pub(crate) fn sign_extend(value: u64, from: u32, to: u32) -> u64 {
    let v = mask(value, from);
    if from == 0 || from >= 64 {
        return mask(v, to);
    }
    let sign_bit = 1u64 << (from - 1);
    let extended = if v & sign_bit != 0 {
        v | !((1u64 << from) - 1)
    } else {
        v
    };
    mask(extended, to)
}

/// Returns the bitmask selecting the low `width` bits (`u64::MAX` for widths
/// of 64 and above, `0` for width 0 — matching [`mask`]).
pub(crate) fn width_mask(width: u32) -> u64 {
    if width >= 64 {
        u64::MAX
    } else {
        (1u64 << width).wrapping_sub(1)
    }
}

/// One postfix instruction of the compiled evaluator.
///
/// Operands live on a value stack; widths, masks, and sign-extension
/// parameters are folded in at compile time so evaluation is a single linear
/// pass with no tree recursion and no per-node width re-derivation.
#[derive(Debug, Clone, Copy)]
pub(crate) enum Instr {
    /// Push a pre-masked literal.
    Const(u64),
    /// Push the current value of a net.
    Load(u32),
    /// Bitwise NOT masked to the operand width.
    Not { mask: u64 },
    /// Binary operator over the top two stack entries (see [`bin_eval`] for
    /// the per-op masking rules, which mirror the tree evaluator).
    Bin { op: BinOp, mask: u64 },
    /// 2-way mux: pops `on_false`, `on_true`, then tests `sel & 1`.
    Mux,
    /// Zero-extension/truncation to a precomputed mask.
    Resize { mask: u64 },
    /// Sign-extension with all parameters precomputed. `sign_bit == 0`
    /// encodes the degenerate from-widths (0 or ≥ 64) where no extension
    /// happens.
    SignExt {
        /// Mask selecting the source width.
        from_mask: u64,
        /// The source sign bit (0 if no extension applies).
        sign_bit: u64,
        /// Bits OR-ed in when the sign bit is set (`!from_mask`).
        ext_bits: u64,
        /// Mask selecting the destination width.
        to_mask: u64,
    },
    /// Pop the expression result and store it into a net (masked to the
    /// target width). Terminates one combinational assignment.
    Store { net: u32, mask: u64 },
    /// Fused `Load` + `Store`: a wire alias assignment.
    Copy { src: u32, dst: u32, mask: u64 },
    /// Fused `Const` + `Store` (value pre-masked to the target width).
    StoreConst { dst: u32, value: u64 },
    /// Pop next-value then enable; append the sample (masked next value if
    /// enabled, else the register's current value, making the commit loop
    /// branchless) to the register sample buffer. Samples appear in
    /// `FlatDesign::regs` order, which the commit loop relies on.
    SampleReg { mask: u64, target: u32 },
    /// Pop next-value; append an always-enabled register sample.
    SampleRegAlways { mask: u64 },

    // Fused superinstructions produced by the peephole pass — each folds a
    // short operand-fetch pattern into one dispatch. Semantics are exactly
    // the sequences they replace.
    /// `Load` + `Bin`: both operands fetched straight from nets.
    Bin2 { op: BinOp, a: u32, b: u32, mask: u64 },
    /// `Load` + `SignExt`.
    LoadSext {
        net: u32,
        from_mask: u64,
        sign_bit: u64,
        ext_bits: u64,
        to_mask: u64,
    },
    /// `Load` + `Resize`.
    LoadMasked { net: u32, mask: u64 },
    /// `Load` + `Not`.
    NotNet { net: u32, mask: u64 },
    /// `Mux` with all three operands fetched straight from nets.
    Mux3 { sel: u32, t: u32, f: u32 },
    /// `SampleReg` with net-sourced enable and next value.
    SampleRegNets {
        en: u32,
        next: u32,
        mask: u64,
        target: u32,
    },
    /// `SampleRegAlways` with a net-sourced next value.
    SampleRegAlwaysNet { net: u32, mask: u64 },
}

/// Applies a binary operator with the tree evaluator's masking rules:
/// arithmetic wraps then masks to the max operand width, logical ops need no
/// mask (operands are already in range), comparisons produce a 1-bit flag.
#[inline]
pub(crate) fn bin_eval(op: BinOp, va: u64, vb: u64, mask: u64) -> u64 {
    match op {
        BinOp::Add => va.wrapping_add(vb) & mask,
        BinOp::Sub => va.wrapping_sub(vb) & mask,
        BinOp::Mul => va.wrapping_mul(vb) & mask,
        BinOp::And => va & vb,
        BinOp::Or => va | vb,
        BinOp::Xor => va ^ vb,
        BinOp::Eq => (va == vb) as u64,
        BinOp::Lt => (va < vb) as u64,
    }
}

/// Peephole pass over one freshly lowered expression segment: fuses
/// operand-fetch patterns (`Load` feeding a unary op, `Load`+`Load` feeding
/// a binary op, three `Load`s feeding a mux) into superinstructions. Postfix
/// guarantees consecutive `Load`s are exactly the consumer's top-of-stack
/// operands, so each rewrite is semantics-preserving.
pub(crate) fn peephole(seg: &mut Vec<Instr>) {
    let mut out = Vec::with_capacity(seg.len());
    for ins in seg.drain(..) {
        match ins {
            Instr::SignExt {
                from_mask,
                sign_bit,
                ext_bits,
                to_mask,
            } => {
                if let Some(&Instr::Load(net)) = out.last() {
                    out.pop();
                    out.push(Instr::LoadSext {
                        net,
                        from_mask,
                        sign_bit,
                        ext_bits,
                        to_mask,
                    });
                } else {
                    out.push(ins);
                }
            }
            Instr::Resize { mask } => {
                if let Some(&Instr::Load(net)) = out.last() {
                    out.pop();
                    out.push(Instr::LoadMasked { net, mask });
                } else {
                    out.push(ins);
                }
            }
            Instr::Not { mask } => {
                if let Some(&Instr::Load(net)) = out.last() {
                    out.pop();
                    out.push(Instr::NotNet { net, mask });
                } else {
                    out.push(ins);
                }
            }
            Instr::Bin { op, mask } => {
                if let [.., Instr::Load(a), Instr::Load(b)] = out[..] {
                    out.truncate(out.len() - 2);
                    out.push(Instr::Bin2 { op, a, b, mask });
                } else {
                    out.push(ins);
                }
            }
            Instr::Mux => {
                if let [.., Instr::Load(sel), Instr::Load(t), Instr::Load(f)] = out[..] {
                    out.truncate(out.len() - 3);
                    out.push(Instr::Mux3 { sel, t, f });
                } else {
                    out.push(ins);
                }
            }
            other => out.push(other),
        }
    }
    *seg = out;
}

/// Bank port nets with alias resolution applied (the compiled step samples
/// through these instead of the raw [`FlatBank`] nets).
#[derive(Debug, Clone, Copy)]
pub(crate) struct CompiledBankNets {
    pub(crate) en: u32,
    pub(crate) wen: u32,
    pub(crate) wdata: u32,
    pub(crate) buf_sel: Option<u32>,
}

/// The one-time lowering of a [`FlatDesign`]'s expressions into linear
/// postfix instruction streams: one for the whole combinational settle
/// (assignments in topological order, each terminated by a store) and one
/// sampling every register's next value.
///
/// Pure wire aliases (`dst = src` where the target width does not truncate)
/// are eliminated entirely: no instruction is emitted and every compiled
/// read of `dst` — including [`Interpreter::peek`], bank port sampling, and
/// downstream expressions — is redirected to `src` through `resolve`.
#[derive(Debug, Clone)]
pub(crate) struct Compiled {
    pub(crate) settle_code: Vec<Instr>,
    pub(crate) reg_code: Vec<Instr>,
    /// Read-forwarding map: `resolve[n]` is the net whose value slot holds
    /// `n`'s value (identity for non-aliased nets).
    pub(crate) resolve: Vec<u32>,
    /// Register targets in `FlatDesign::regs` order (compact commit loop).
    pub(crate) reg_targets: Vec<u32>,
    /// Alias-resolved bank port nets, parallel to `FlatDesign::banks`.
    pub(crate) bank_nets: Vec<CompiledBankNets>,
}

impl Compiled {
    /// Total instructions across the settle and register streams.
    pub(crate) fn op_count(&self) -> usize {
        self.settle_code.len() + self.reg_code.len()
    }

    pub(crate) fn build(flat: &FlatDesign) -> Compiled {
        let mut resolve: Vec<u32> = (0..flat.nets.len() as u32).collect();
        let mut settle_code = Vec::new();
        let mut seg = Vec::new();
        for &i in &flat.topo {
            let (target, expr) = &flat.assigns[i];
            let tw = flat.nets[*target].width;
            let mask = width_mask(tw);
            // Alias elimination: a copy that cannot truncate needs no
            // instruction at all — forward readers to the source. Topo order
            // guarantees the source's own resolution is already final.
            if let Expr::Net(src) = expr {
                if flat.nets[*src].width <= tw {
                    resolve[*target] = resolve[*src];
                    continue;
                }
            }
            seg.clear();
            lower_onto(expr, &flat.nets, &resolve, &mut seg);
            peephole(&mut seg);
            // Fuse single-instruction expressions with their store.
            match seg[..] {
                [Instr::Load(src)] => settle_code.push(Instr::Copy {
                    src,
                    dst: *target as u32,
                    mask,
                }),
                [Instr::Const(value)] => settle_code.push(Instr::StoreConst {
                    dst: *target as u32,
                    value: value & mask,
                }),
                _ => {
                    settle_code.extend_from_slice(&seg);
                    settle_code.push(Instr::Store {
                        net: *target as u32,
                        mask,
                    });
                }
            }
        }
        let mut reg_code = Vec::new();
        for r in &flat.regs {
            let mask = width_mask(flat.nets[r.target].width);
            let target = r.target as u32;
            seg.clear();
            match &r.enable {
                Some(e) => {
                    lower_onto(e, &flat.nets, &resolve, &mut seg);
                    lower_onto(&r.next, &flat.nets, &resolve, &mut seg);
                    peephole(&mut seg);
                    if let [Instr::Load(en), Instr::Load(next)] = seg[..] {
                        reg_code.push(Instr::SampleRegNets {
                            en,
                            next,
                            mask,
                            target,
                        });
                    } else {
                        reg_code.extend_from_slice(&seg);
                        reg_code.push(Instr::SampleReg { mask, target });
                    }
                }
                None => {
                    lower_onto(&r.next, &flat.nets, &resolve, &mut seg);
                    peephole(&mut seg);
                    if let [Instr::Load(net)] = seg[..] {
                        reg_code.push(Instr::SampleRegAlwaysNet { net, mask });
                    } else {
                        reg_code.extend_from_slice(&seg);
                        reg_code.push(Instr::SampleRegAlways { mask });
                    }
                }
            }
        }
        let reg_targets = flat.regs.iter().map(|r| r.target as u32).collect();
        let bank_nets = flat
            .banks
            .iter()
            .map(|b| CompiledBankNets {
                en: resolve[b.en],
                wen: resolve[b.wen],
                wdata: resolve[b.wdata],
                buf_sel: b.buf_sel.map(|n| resolve[n]),
            })
            .collect();
        Compiled {
            settle_code,
            reg_code,
            resolve,
            reg_targets,
            bank_nets,
        }
    }
}

/// Recursive lowering helper; returns the expression's width. Net reads go
/// through `resolve` so alias-eliminated wires load straight from their
/// source slot.
pub(crate) fn lower_onto(expr: &Expr, nets: &[Net], resolve: &[u32], code: &mut Vec<Instr>) -> u32 {
    match expr {
        Expr::Const { value, width } => {
            code.push(Instr::Const(mask(*value, *width)));
            *width
        }
        Expr::Net(id) => {
            code.push(Instr::Load(resolve[*id]));
            nets[*id].width
        }
        Expr::Not(e) => {
            let w = lower_onto(e, nets, resolve, code);
            code.push(Instr::Not {
                mask: width_mask(w),
            });
            w
        }
        Expr::Bin(op, a, b) => {
            let wa = lower_onto(a, nets, resolve, code);
            let wb = lower_onto(b, nets, resolve, code);
            let w = wa.max(wb);
            code.push(Instr::Bin {
                op: *op,
                mask: width_mask(w),
            });
            match op {
                BinOp::Eq | BinOp::Lt => 1,
                _ => w,
            }
        }
        Expr::Mux {
            sel,
            on_true,
            on_false,
        } => {
            lower_onto(sel, nets, resolve, code);
            let wt = lower_onto(on_true, nets, resolve, code);
            lower_onto(on_false, nets, resolve, code);
            code.push(Instr::Mux);
            wt
        }
        Expr::Resize(e, w) => {
            lower_onto(e, nets, resolve, code);
            code.push(Instr::Resize {
                mask: width_mask(*w),
            });
            *w
        }
        Expr::SignExtend(e, w) => {
            let from = lower_onto(e, nets, resolve, code);
            let degenerate = from == 0 || from >= 64;
            code.push(Instr::SignExt {
                from_mask: width_mask(from),
                sign_bit: if degenerate { 0 } else { 1u64 << (from - 1) },
                ext_bits: if degenerate { 0 } else { !width_mask(from) },
                to_mask: width_mask(*w),
            });
            *w
        }
    }
}

/// Exact compiled-bytecode instruction count for a flat design: the number
/// of instructions [`Interpreter::new`] (and the lane-batched engine) would
/// execute per settle + register-sample pass, after alias elimination and
/// peephole fusion. This is the metric the optimizer's pre/post reports and
/// the performance gate's `opt` section are pinned against.
pub fn flat_op_count(flat: &FlatDesign) -> usize {
    Compiled::build(flat).op_count()
}

/// Deterministic textual dump of the full compiled bytecode for a flat
/// design: settle stream, register stream, alias-resolution map, register
/// targets, and bank bindings. Two flat designs compile identically exactly
/// when their dumps are byte-identical, which makes this the equality
/// witness behind the interchange round-trip contract (`DESIGN.md` §15):
/// `parse(emit(design))` must reproduce this string byte-for-byte.
pub fn bytecode_dump(flat: &FlatDesign) -> String {
    format!("{:#?}", Compiled::build(flat))
}

/// One [`FaultSpec`] resolved against a flat netlist: the canonical value
/// slot, register index, or bank storage word the interpreter engines act
/// on. Shared by the scalar [`Interpreter::attach_faults`] and the
/// lane-batched engine ([`crate::batch::BatchSim`]) so both resolve specs —
/// and reject invalid ones — identically.
pub(crate) enum ResolvedFault {
    Stuck(StuckForce),
    Flip(SlotFlip),
    Bank(BankWordFlip),
    Hold(RegHold),
}

/// Resolves one fault spec against `flat`. `resolve` is the compiled
/// engine's alias-resolution map when running compiled (stuck-at targets are
/// canonicalized through it), `None` on the tree-walking path.
pub(crate) fn resolve_fault_spec(
    spec: &FaultSpec,
    flat: &FlatDesign,
    resolve: Option<&[u32]>,
    net_by_name: &HashMap<String, NetId>,
) -> Result<ResolvedFault, HwError> {
    let lookup = |name: &str| -> Result<NetId, HwError> {
        net_by_name
            .get(name)
            .copied()
            .ok_or_else(|| HwError::UnknownNet { net: name.into() })
    };
    let read_slot = |id: NetId| -> usize {
        match resolve {
            Some(r) => r[id] as usize,
            None => id,
        }
    };
    match &spec.kind {
        FaultKind::StuckAt { bit, value } => {
            let id = lookup(&spec.target)?;
            let width = flat.nets[id].width;
            if *bit >= width {
                return Err(HwError::FaultBitOutOfRange {
                    net: spec.target.clone(),
                    bit: *bit,
                    width,
                });
            }
            let m = 1u64 << bit;
            Ok(ResolvedFault::Stuck(StuckForce {
                slot: read_slot(id) as u32,
                or_mask: if *value { m } else { 0 },
                and_mask: if *value { u64::MAX } else { !m },
            }))
        }
        FaultKind::TransientFlip { bit, cycle } => {
            let id = lookup(&spec.target)?;
            let width = flat.nets[id].width;
            if *bit >= width {
                return Err(HwError::FaultBitOutOfRange {
                    net: spec.target.clone(),
                    bit: *bit,
                    width,
                });
            }
            if !flat.regs.iter().any(|r| r.target == id) {
                return Err(HwError::NotARegister {
                    net: spec.target.clone(),
                });
            }
            Ok(ResolvedFault::Flip(SlotFlip {
                cycle: *cycle,
                slot: id,
                xor: 1u64 << bit,
            }))
        }
        FaultKind::BankFlip { word, bit, cycle } => {
            let bank = flat
                .banks
                .iter()
                .position(|b| b.name == spec.target)
                .ok_or_else(|| HwError::UnknownNet {
                    net: spec.target.clone(),
                })?;
            let spec_bank = &flat.banks[bank].spec;
            let mult = if spec_bank.is_double_buffered() { 2 } else { 1 };
            let capacity = (spec_bank.words() * mult) as usize;
            if *word >= capacity {
                return Err(HwError::FaultWordOutOfRange {
                    bank: spec.target.clone(),
                    word: *word,
                    capacity,
                });
            }
            let width = spec_bank.width();
            if *bit >= width {
                return Err(HwError::FaultBitOutOfRange {
                    net: spec.target.clone(),
                    bit: *bit,
                    width,
                });
            }
            Ok(ResolvedFault::Bank(BankWordFlip {
                cycle: *cycle,
                bank,
                word: *word,
                xor: 1u64 << bit,
            }))
        }
        FaultKind::DropTransition { cycle } => {
            let id = lookup(&spec.target)?;
            let reg = flat
                .regs
                .iter()
                .position(|r| r.target == id)
                .ok_or_else(|| HwError::NotARegister {
                    net: spec.target.clone(),
                })?;
            Ok(ResolvedFault::Hold(RegHold {
                cycle: *cycle,
                reg,
                target: id,
            }))
        }
    }
}

/// Re-applies stuck-at forces to `slot` after a store clobbered it. Only
/// called on the fault-injecting execution paths; `forced` is a handful of
/// entries at most, so a linear scan is the fast structure.
#[inline]
fn reforce(forced: &[StuckForce], slot: u32, values: &mut [u64]) {
    for s in forced {
        if s.slot == slot {
            let v = values[slot as usize];
            values[slot as usize] = (v | s.or_mask) & s.and_mask;
        }
    }
}

/// Executes one bytecode stream over the value array, using `stack` as the
/// reusable operand stack. `Store`-family instructions write into `values`;
/// `SampleReg`-family instructions append to `next_regs` (pass an empty
/// buffer for the settle stream, which contains none). Disabled registers
/// sample their current value, so every entry commits unconditionally.
fn exec_stream(code: &[Instr], values: &mut [u64], stack: &mut Vec<u64>, next_regs: &mut Vec<u64>) {
    exec_stream_impl::<false>(code, values, stack, next_regs, &[]);
}

/// The [`exec_stream`] body, monomorphized over fault injection. With
/// `FORCED = false` (the only path reachable without attached faults) the
/// re-force hooks compile away entirely, keeping the hot path identical to
/// the pre-fault-engine code. With `FORCED = true`, stuck-at forces are
/// re-applied after every store so forced bits survive recomputation.
fn exec_stream_impl<const FORCED: bool>(
    code: &[Instr],
    values: &mut [u64],
    stack: &mut Vec<u64>,
    next_regs: &mut Vec<u64>,
    forced: &[StuckForce],
) {
    stack.clear();
    for ins in code {
        match *ins {
            Instr::Const(v) => stack.push(v),
            Instr::Load(n) => stack.push(values[n as usize]),
            Instr::Not { mask } => {
                let a = stack.last_mut().expect("operand");
                *a = !*a & mask;
            }
            Instr::Bin { op, mask } => {
                let b = stack.pop().expect("rhs");
                let a = stack.last_mut().expect("lhs");
                *a = bin_eval(op, *a, b, mask);
            }
            Instr::Mux => {
                let on_false = stack.pop().expect("on_false");
                let on_true = stack.pop().expect("on_true");
                let sel = stack.last_mut().expect("sel");
                *sel = if *sel & 1 == 1 { on_true } else { on_false };
            }
            Instr::Resize { mask } => {
                let a = stack.last_mut().expect("operand");
                *a &= mask;
            }
            Instr::SignExt {
                from_mask,
                sign_bit,
                ext_bits,
                to_mask,
            } => {
                let a = stack.last_mut().expect("operand");
                let v = *a & from_mask;
                *a = if v & sign_bit != 0 { v | ext_bits } else { v } & to_mask;
            }
            Instr::Store { net, mask } => {
                let v = stack.pop().expect("store operand");
                values[net as usize] = v & mask;
                if FORCED {
                    reforce(forced, net, values);
                }
            }
            Instr::Copy { src, dst, mask } => {
                values[dst as usize] = values[src as usize] & mask;
                if FORCED {
                    reforce(forced, dst, values);
                }
            }
            Instr::StoreConst { dst, value } => {
                values[dst as usize] = value;
                if FORCED {
                    reforce(forced, dst, values);
                }
            }
            Instr::SampleReg { mask, target } => {
                let next = stack.pop().expect("next value");
                let en = stack.pop().expect("enable");
                next_regs.push(if en & 1 == 1 {
                    next & mask
                } else {
                    values[target as usize]
                });
            }
            Instr::SampleRegAlways { mask } => {
                let next = stack.pop().expect("next value");
                next_regs.push(next & mask);
            }
            Instr::Bin2 { op, a, b, mask } => {
                stack.push(bin_eval(op, values[a as usize], values[b as usize], mask));
            }
            Instr::LoadSext {
                net,
                from_mask,
                sign_bit,
                ext_bits,
                to_mask,
            } => {
                let v = values[net as usize] & from_mask;
                stack.push(if v & sign_bit != 0 { v | ext_bits } else { v } & to_mask);
            }
            Instr::LoadMasked { net, mask } => stack.push(values[net as usize] & mask),
            Instr::NotNet { net, mask } => stack.push(!values[net as usize] & mask),
            Instr::Mux3 { sel, t, f } => {
                stack.push(if values[sel as usize] & 1 == 1 {
                    values[t as usize]
                } else {
                    values[f as usize]
                });
            }
            Instr::SampleRegNets {
                en,
                next,
                mask,
                target,
            } => {
                next_regs.push(if values[en as usize] & 1 == 1 {
                    values[next as usize] & mask
                } else {
                    values[target as usize]
                });
            }
            Instr::SampleRegAlwaysNet { net, mask } => {
                next_regs.push(values[net as usize] & mask);
            }
        }
    }
}

/// Tree-walking expression evaluation (the reference path). Re-derives
/// widths recursively on every call — kept for differential validation of
/// the compiled evaluator and selectable via
/// [`Interpreter::new_tree_walking`].
fn eval_expr(expr: &Expr, nets: &[Net], values: &[u64]) -> u64 {
    match expr {
        Expr::Const { value, width } => mask(*value, *width),
        Expr::Net(id) => values[*id],
        Expr::Not(e) => {
            let w = e.width(nets);
            mask(!eval_expr(e, nets, values), w)
        }
        Expr::Bin(op, a, b) => {
            let wa = a.width(nets);
            let wb = b.width(nets);
            let w = wa.max(wb);
            let va = eval_expr(a, nets, values);
            let vb = eval_expr(b, nets, values);
            match op {
                BinOp::Add => mask(va.wrapping_add(vb), w),
                BinOp::Sub => mask(va.wrapping_sub(vb), w),
                BinOp::Mul => mask(va.wrapping_mul(vb), w),
                BinOp::And => va & vb,
                BinOp::Or => va | vb,
                BinOp::Xor => va ^ vb,
                BinOp::Eq => (va == vb) as u64,
                BinOp::Lt => (va < vb) as u64,
            }
        }
        Expr::Mux {
            sel,
            on_true,
            on_false,
        } => {
            if eval_expr(sel, nets, values) & 1 == 1 {
                eval_expr(on_true, nets, values)
            } else {
                eval_expr(on_false, nets, values)
            }
        }
        Expr::Resize(e, w) => mask(eval_expr(e, nets, values), *w),
        Expr::SignExtend(e, w) => {
            sign_extend(eval_expr(e, nets, values), e.width(nets), *w)
        }
    }
}

/// Sampled per-bank port activity for one clock edge.
#[derive(Debug, Clone, Copy, Default)]
struct BankOp {
    read: bool,
    write: bool,
    wdata: u64,
    buf_sel: u64,
}

/// Cycle-level interpreter over a [`FlatDesign`].
///
/// Drive inputs with [`Interpreter::poke`] (or [`Interpreter::poke_many`] to
/// settle once for a whole set of port drives), advance one clock with
/// [`Interpreter::step`], observe with [`Interpreter::peek`]. Combinational
/// logic settles automatically before every read and commit.
///
/// By default the netlist is compiled once into a linear postfix bytecode
/// stream (precomputed widths/masks, value-array operands, reusable operand
/// stack) — the evaluation hot path allocates nothing per cycle.
/// [`Interpreter::new_tree_walking`] selects the original recursive
/// evaluator, kept as the differential-testing reference; both paths are
/// bit-identical by construction and by test.
#[derive(Debug, Clone)]
pub struct Interpreter {
    pub(crate) flat: FlatDesign,
    pub(crate) compiled: Option<Compiled>,
    pub(crate) values: Vec<u64>,
    pub(crate) bank_mem: Vec<Vec<u64>>,
    pub(crate) bank_raddr: Vec<u64>,
    pub(crate) bank_waddr: Vec<u64>,
    pub(crate) bank_rdata: Vec<u64>,
    /// First-occurrence name → net index (peeks are O(1), not O(nets)).
    pub(crate) net_by_name: HashMap<String, NetId>,
    /// First-occurrence port name → net index.
    pub(crate) port_by_name: HashMap<String, NetId>,
    /// Reusable operand stack for the compiled evaluator.
    stack: Vec<u64>,
    /// Reusable register-sample buffer for [`Interpreter::step`] (disabled
    /// registers sample their current value, so commits are unconditional).
    next_regs: Vec<u64>,
    /// Reusable bank-sample buffer for [`Interpreter::step`].
    bank_ops: Vec<BankOp>,
    /// `true` when a value changed since the last settle; [`Interpreter::settle`]
    /// is a no-op on an already-settled design.
    dirty: bool,
    /// Observability layer (`None` unless attached — the disabled path costs
    /// one pointer test per step).
    trace: Option<Box<TraceState>>,
    /// Fault-injection layer (`None` unless attached — same pay-for-use
    /// shape as `trace`).
    pub(crate) faults: Option<Box<FaultState>>,
    /// Behavioural parity bookkeeping, parallel to `bank_mem` (`None` for
    /// banks without parity protection). Stores the expected parity of each
    /// word, refreshed on every write and checked on every read.
    pub(crate) bank_parity: Vec<Option<Vec<u8>>>,
    /// Sticky per-bank parity-mismatch counters (only ever advanced for
    /// parity-protected banks).
    pub(crate) parity_errors: Vec<u64>,
}

impl Interpreter {
    /// Creates an interpreter with all registers at their reset values and
    /// bank memories zeroed, running the compiled bytecode evaluator.
    pub fn new(flat: FlatDesign) -> Interpreter {
        Interpreter::with_compilation(flat, true)
    }

    /// Creates an interpreter that evaluates by walking the expression trees
    /// (the pre-compilation reference path).
    pub fn new_tree_walking(flat: FlatDesign) -> Interpreter {
        Interpreter::with_compilation(flat, false)
    }

    fn with_compilation(flat: FlatDesign, compile: bool) -> Interpreter {
        let values = vec![0; flat.nets.len()];
        let bank_mem = flat
            .banks
            .iter()
            .map(|b| {
                let mult = if b.spec.is_double_buffered() { 2 } else { 1 };
                vec![0u64; (b.spec.words() * mult) as usize]
            })
            .collect();
        let n_banks = flat.banks.len();
        let mut net_by_name = HashMap::with_capacity(flat.nets.len());
        for (id, net) in flat.nets.iter().enumerate() {
            net_by_name.entry(net.name.clone()).or_insert(id);
        }
        let mut port_by_name = HashMap::with_capacity(flat.ports.len());
        for &(id, _) in &flat.ports {
            port_by_name.entry(flat.nets[id].name.clone()).or_insert(id);
        }
        let compiled = compile.then(|| {
            let _span = tensorlib_obs::span("hw.bytecode_compile");
            let compiled = Compiled::build(&flat);
            tensorlib_obs::counter_add("hw.bytecode_ops", compiled.op_count() as u64);
            compiled
        });
        let n_regs = flat.regs.len();
        let bank_parity = flat
            .banks
            .iter()
            .map(|b| {
                let mult = if b.spec.is_double_buffered() { 2 } else { 1 };
                b.spec
                    .has_parity()
                    .then(|| vec![0u8; (b.spec.words() * mult) as usize])
            })
            .collect();
        let mut interp = Interpreter {
            flat,
            compiled,
            values,
            bank_mem,
            bank_raddr: vec![0; n_banks],
            bank_waddr: vec![0; n_banks],
            bank_rdata: vec![0; n_banks],
            net_by_name,
            port_by_name,
            stack: Vec::with_capacity(16),
            next_regs: Vec::with_capacity(n_regs),
            bank_ops: Vec::with_capacity(n_banks),
            dirty: true,
            trace: None,
            faults: None,
            bank_parity,
            parity_errors: vec![0; n_banks],
        };
        for r in &interp.flat.regs {
            interp.values[r.target] = mask(r.init, interp.flat.nets[r.target].width);
        }
        interp.settle();
        interp
    }

    /// `true` if this interpreter runs the compiled bytecode evaluator.
    pub fn is_compiled(&self) -> bool {
        self.compiled.is_some()
    }

    /// Creates a compiled interpreter with the observability layer attached
    /// (see [`crate::trace`] for what gets recorded).
    ///
    /// # Errors
    ///
    /// Returns [`HwError::UnknownNet`] if the config watches a net the
    /// design does not have.
    pub fn with_trace(flat: FlatDesign, cfg: &TraceConfig) -> Result<Interpreter, HwError> {
        let mut sim = Interpreter::new(flat);
        sim.attach_trace(cfg)?;
        Ok(sim)
    }

    /// Attaches (or replaces) the observability layer. Counters start from
    /// zero; the current settled values become the event-trace baseline.
    /// Attaching a [`TraceConfig::disabled`] config detaches entirely,
    /// restoring the zero-overhead step path.
    ///
    /// # Errors
    ///
    /// Returns [`HwError::UnknownNet`] if the config watches a net the
    /// design does not have.
    pub fn attach_trace(&mut self, cfg: &TraceConfig) -> Result<(), HwError> {
        if !cfg.is_enabled() {
            self.trace = None;
            return Ok(());
        }
        let resolve = self.compiled.as_ref().map(|c| c.resolve.as_slice());
        let mut state = TraceState::build(&self.flat, resolve, cfg)?;
        state.snapshot(&self.values);
        self.trace = Some(state);
        Ok(())
    }

    /// The accumulated counters, if a trace is attached.
    pub fn stats(&self) -> Option<&InterpreterStats> {
        self.trace.as_ref().map(|t| &t.stats)
    }

    /// The retained value-change events (oldest first; empty without a
    /// trace).
    pub fn trace_events(&self) -> Vec<TraceEvent> {
        self.trace.as_ref().map_or_else(Vec::new, |t| t.events())
    }

    /// Watched-net `(name, width)` pairs in watch-index order (the
    /// [`TraceEvent::watch`] namespace).
    pub fn watched_signals(&self) -> Vec<(String, u32)> {
        self.trace.as_ref().map_or_else(Vec::new, |t| t.signals())
    }

    /// Renders the watched nets as a VCD waveform (`None` without a trace).
    /// One timescale unit per clock cycle; the baseline at `#0` reflects the
    /// ring's horizon when events have been dropped.
    pub fn write_vcd(&self) -> Option<String> {
        self.trace.as_ref().map(|t| t.to_vcd())
    }

    /// Attaches (or replaces) the fault-injection layer, resolving every
    /// spec against the flat netlist. The fault cycle counter restarts at
    /// zero: the next [`Interpreter::step`] is fault cycle 1. Stuck-at
    /// forces take effect immediately (the design is resettled). Attaching
    /// an empty list detaches entirely, restoring the zero-overhead path.
    ///
    /// Stuck-at targets are canonicalized through the compiled engine's
    /// alias resolution, so forcing an alias-eliminated wire forces its
    /// source slot — identical observable behaviour to the tree-walking
    /// engine for single-reader aliases (every alias the generators emit).
    /// Transient flips and dropped transitions require register targets,
    /// which are never alias-eliminated, so they are engine-exact by
    /// construction.
    ///
    /// # Errors
    ///
    /// Returns [`HwError::UnknownNet`] for an unresolvable target name,
    /// [`HwError::FaultBitOutOfRange`] / [`HwError::FaultWordOutOfRange`]
    /// for out-of-range bit or word positions, and [`HwError::NotARegister`]
    /// when a register-only fault kind targets a combinational net.
    pub fn attach_faults(&mut self, faults: &[FaultSpec]) -> Result<(), HwError> {
        if faults.is_empty() {
            self.detach_faults();
            return Ok(());
        }
        let mut state = FaultState {
            specs: faults.to_vec(),
            ..FaultState::default()
        };
        let resolve = self.compiled.as_ref().map(|c| c.resolve.as_slice());
        for spec in faults {
            match resolve_fault_spec(spec, &self.flat, resolve, &self.net_by_name)? {
                ResolvedFault::Stuck(s) => state.stuck.push(s),
                ResolvedFault::Flip(f) => state.flips.push(f),
                ResolvedFault::Bank(b) => state.bank_flips.push(b),
                ResolvedFault::Hold(h) => state.holds.push(h),
            }
        }
        self.faults = Some(Box::new(state));
        // Resettle so stuck-at forces are visible before the next step.
        self.dirty = true;
        self.settle();
        Ok(())
    }

    /// Removes the fault layer and resettles, clearing any stuck-at forces
    /// from combinational nets (state already corrupted by past transient
    /// faults stays corrupted — detaching is not a rollback).
    pub fn detach_faults(&mut self) {
        if self.faults.take().is_some() {
            self.dirty = true;
            self.settle();
        }
    }

    /// The attached fault state, if any.
    pub fn faults(&self) -> Option<&FaultState> {
        self.faults.as_deref()
    }

    /// Total parity mismatches observed on reads of parity-protected banks
    /// (always 0 for designs without [`crate::fault::Hardening::parity_banks`]).
    pub fn parity_error_count(&self) -> u64 {
        self.parity_errors.iter().sum()
    }

    /// Per-bank sticky parity-mismatch counters, in elaboration order.
    pub fn parity_errors(&self) -> &[u64] {
        &self.parity_errors
    }

    /// The current storage contents of a bank (both buffers for a
    /// double-buffered bank), for differential output comparison.
    ///
    /// # Panics
    ///
    /// Panics if `bank` is out of range (see [`Interpreter::bank_count`]).
    pub fn bank_words(&self, bank: usize) -> &[u64] {
        &self.bank_mem[bank]
    }

    /// Sets a top-level input port and resettles combinational logic.
    ///
    /// When driving many ports in the same cycle, prefer
    /// [`Interpreter::poke_many`], which settles once for the whole batch.
    ///
    /// # Panics
    ///
    /// Panics if no such port exists.
    pub fn poke(&mut self, port: &str, value: u64) {
        self.set_port(port, value);
        self.settle();
    }

    /// Sets a batch of top-level input ports, settling combinational logic
    /// once at the end instead of once per port.
    ///
    /// # Panics
    ///
    /// Panics if any named port does not exist.
    ///
    /// # Examples
    ///
    /// ```
    /// use tensorlib_hw::interp::{elaborate, Interpreter};
    /// use tensorlib_hw::netlist::{Expr, Module};
    ///
    /// let mut m = Module::new("sum");
    /// let a = m.input("a", 8);
    /// let b = m.input("b", 8);
    /// let y = m.output("y", 8);
    /// m.assign(y, Expr::net(a).add(Expr::net(b)));
    /// let mut sim = Interpreter::new(elaborate(&[m], &[], "sum")?);
    /// sim.poke_many([("a", 30), ("b", 12)]);
    /// assert_eq!(sim.peek("y"), 42);
    /// # Ok::<(), tensorlib_hw::interp::ElaborateError>(())
    /// ```
    pub fn poke_many<'a>(&mut self, pokes: impl IntoIterator<Item = (&'a str, u64)>) {
        for (port, value) in pokes {
            self.set_port(port, value);
        }
        self.settle();
    }

    fn set_port(&mut self, port: &str, value: u64) {
        let id = *self
            .port_by_name
            .get(port)
            .unwrap_or_else(|| panic!("no port {port:?}"));
        self.values[id] = mask(value, self.flat.nets[id].width);
        self.dirty = true;
    }

    /// Resolves a top-level port to its net id, for use with
    /// [`Interpreter::poke_by_id`] in poke-heavy loops (skips the per-call
    /// name lookup).
    ///
    /// # Panics
    ///
    /// Panics if no such port exists.
    pub fn input_id(&self, port: &str) -> NetId {
        *self
            .port_by_name
            .get(port)
            .unwrap_or_else(|| panic!("no port {port:?}"))
    }

    /// Sets a batch of ports by id (from [`Interpreter::input_id`]) and
    /// settles once. The ids must come from `input_id`; driving an internal
    /// net is unsupported (its value is recomputed by the settle).
    pub fn poke_by_id(&mut self, pokes: impl IntoIterator<Item = (NetId, u64)>) {
        for (id, value) in pokes {
            self.values[id] = mask(value, self.flat.nets[id].width);
        }
        self.dirty = true;
        self.settle();
    }

    fn net_id(&self, name: &str) -> NetId {
        *self
            .net_by_name
            .get(name)
            .unwrap_or_else(|| panic!("no net {name:?}"))
    }

    /// The value slot holding `id`'s value: the alias-resolved slot on the
    /// compiled path (eliminated wire copies forward reads to their source,
    /// whose value is bit-identical by construction), `id` itself otherwise.
    #[inline]
    fn read_slot(&self, id: NetId) -> usize {
        match &self.compiled {
            Some(c) => c.resolve[id] as usize,
            None => id,
        }
    }

    /// Reads any net by (hierarchical) name after settling.
    ///
    /// # Panics
    ///
    /// Panics if no such net exists.
    pub fn peek(&self, name: &str) -> u64 {
        self.values[self.read_slot(self.net_id(name))]
    }

    /// Reads a net as a signed value of its declared width.
    pub fn peek_signed(&self, name: &str) -> i64 {
        let id = self.net_id(name);
        let w = self.flat.nets[id].width;
        sign_extend(self.values[self.read_slot(id)], w, 64) as i64
    }

    /// Preloads a bank's memory (index by elaboration order).
    ///
    /// # Errors
    ///
    /// Returns [`HwError::NoSuchBank`] for an out-of-range index and
    /// [`HwError::BankOverflow`] when `words` exceeds the bank's storage
    /// (both buffers for a double-buffered bank) — naming the bank and its
    /// capacity in either case, so the failure surfaces cleanly through the
    /// `tensorlib-core` error boundary instead of panicking.
    pub fn load_bank(&mut self, bank: usize, words: &[u64]) -> Result<(), HwError> {
        let banks = self.bank_mem.len();
        if bank >= banks {
            return Err(HwError::NoSuchBank { bank, banks });
        }
        let capacity = self.bank_mem[bank].len();
        if words.len() > capacity {
            return Err(HwError::BankOverflow {
                bank,
                capacity,
                given: words.len(),
            });
        }
        self.bank_mem[bank][..words.len()].copy_from_slice(words);
        if let Some(p) = &mut self.bank_parity[bank] {
            for (i, w) in words.iter().enumerate() {
                p[i] = (w.count_ones() & 1) as u8;
            }
        }
        Ok(())
    }

    /// Number of behavioural banks.
    pub fn bank_count(&self) -> usize {
        self.flat.banks.len()
    }

    /// Settles combinational logic (topological evaluation). No-op when
    /// nothing changed since the last settle — `step` after `poke_many`
    /// evaluates the netlist once, not twice.
    fn settle(&mut self) {
        if !self.dirty {
            return;
        }
        self.dirty = false;
        // Bank read data drives its net.
        for (i, b) in self.flat.banks.iter().enumerate() {
            self.values[b.rdata] = mask(self.bank_rdata[i], self.flat.nets[b.rdata].width);
        }
        if self.faults.is_some() {
            self.settle_faulty();
            return;
        }
        match &self.compiled {
            Some(compiled) => {
                // The settle stream contains no register samples, so the
                // sample buffer is passed only to satisfy the executor.
                exec_stream(
                    &compiled.settle_code,
                    &mut self.values,
                    &mut self.stack,
                    &mut self.next_regs,
                );
            }
            None => {
                for &i in &self.flat.topo {
                    let (target, expr) = &self.flat.assigns[i];
                    let w = self.flat.nets[*target].width;
                    self.values[*target] =
                        mask(eval_expr(expr, &self.flat.nets, &self.values), w);
                }
            }
        }
    }

    /// The settle pass with stuck-at forcing: a prologue forces every stuck
    /// slot (covering inputs, register state, and bank read data, which no
    /// assignment recomputes), then the evaluators re-force after each store
    /// so forced bits survive recomputation of combinational targets.
    ///
    /// When the attached faults carry no stuck-ats (transient flips and
    /// holds only — the common armed-campaign shape), the re-forcing is a
    /// no-op by construction, so the plain settle stream runs instead and
    /// an armed-but-idle fault layer costs nothing per settle.
    fn settle_faulty(&mut self) {
        let f = self.faults.take().expect("settle_faulty requires faults");
        for s in &f.stuck {
            let v = self.values[s.slot as usize];
            self.values[s.slot as usize] = (v | s.or_mask) & s.and_mask;
        }
        match &self.compiled {
            Some(compiled) if f.stuck.is_empty() => {
                exec_stream(
                    &compiled.settle_code,
                    &mut self.values,
                    &mut self.stack,
                    &mut self.next_regs,
                );
            }
            Some(compiled) => {
                exec_stream_impl::<true>(
                    &compiled.settle_code,
                    &mut self.values,
                    &mut self.stack,
                    &mut self.next_regs,
                    &f.stuck,
                );
            }
            None => {
                for &i in &self.flat.topo {
                    let (target, expr) = &self.flat.assigns[i];
                    let w = self.flat.nets[*target].width;
                    self.values[*target] =
                        mask(eval_expr(expr, &self.flat.nets, &self.values), w);
                    if !f.stuck.is_empty() {
                        reforce(&f.stuck, *target as u32, &mut self.values);
                    }
                }
            }
        }
        self.faults = Some(f);
    }

    /// Advances one clock: samples every register's next value and every
    /// bank's port activity, commits them simultaneously, and resettles.
    /// Allocation-free on both evaluator paths — sample buffers are reused
    /// across calls.
    pub fn step(&mut self) {
        self.settle();
        // Counter hook: observe the settled pre-commit values — what the
        // hardware's registers see on this clock edge.
        if let Some(tr) = self.trace.as_deref_mut() {
            tr.observe_cycle(&self.values);
        }
        // Sample registers.
        self.next_regs.clear();
        match &self.compiled {
            Some(compiled) => {
                // One linear pass samples every register (the stream's
                // `SampleReg` ops append in `flat.regs` order).
                exec_stream(
                    &compiled.reg_code,
                    &mut self.values,
                    &mut self.stack,
                    &mut self.next_regs,
                );
            }
            None => {
                for r in &self.flat.regs {
                    let enabled = r.enable.as_ref().is_none_or(|e| {
                        eval_expr(e, &self.flat.nets, &self.values) & 1 == 1
                    });
                    let w = self.flat.nets[r.target].width;
                    self.next_regs.push(if enabled {
                        mask(eval_expr(&r.next, &self.flat.nets, &self.values), w)
                    } else {
                        self.values[r.target]
                    });
                }
            }
        }
        // Fault hook (pre-commit): a dropped transition overwrites the
        // sampled next value with the register's current value, so the
        // commit below holds it for this cycle.
        if self.faults.is_some() {
            let f = self.faults.take().expect("checked above");
            let now = f.cycle + 1;
            for h in &f.holds {
                if h.cycle == now {
                    self.next_regs[h.reg] = self.values[h.target];
                }
            }
            self.faults = Some(f);
        }
        // Sample bank port activity (through the alias-resolved port nets on
        // the compiled path) and commit registers. The compiled commit walks
        // the compact target array instead of the full `RegDef` structs.
        self.bank_ops.clear();
        match &self.compiled {
            Some(compiled) => {
                for b in &compiled.bank_nets {
                    self.bank_ops.push(BankOp {
                        read: self.values[b.en as usize] & 1 == 1,
                        write: self.values[b.wen as usize] & 1 == 1,
                        wdata: self.values[b.wdata as usize],
                        buf_sel: b.buf_sel.map_or(0, |n| self.values[n as usize] & 1),
                    });
                }
                for (&t, &v) in compiled.reg_targets.iter().zip(&self.next_regs) {
                    self.values[t as usize] = v;
                }
            }
            None => {
                for b in &self.flat.banks {
                    self.bank_ops.push(BankOp {
                        read: self.values[b.en] & 1 == 1,
                        write: self.values[b.wen] & 1 == 1,
                        wdata: self.values[b.wdata],
                        buf_sel: b.buf_sel.map_or(0, |n| self.values[n] & 1),
                    });
                }
                for (r, &v) in self.flat.regs.iter().zip(&self.next_regs) {
                    self.values[r.target] = v;
                }
            }
        }
        // Commit banks: read from the inactive buffer, write to the active
        // one (matching the behavioural Verilog template).
        for (i, (b, op)) in self.flat.banks.iter().zip(&self.bank_ops).enumerate() {
            let words = b.spec.words();
            if op.read {
                let base = if b.spec.is_double_buffered() {
                    (1 - op.buf_sel) * words
                } else {
                    0
                };
                let addr = (base + self.bank_raddr[i] % words) as usize;
                self.bank_rdata[i] = self.bank_mem[i][addr];
                self.bank_raddr[i] = (self.bank_raddr[i] + 1) % words;
                // Parity check on read: a stored word whose parity no
                // longer matches its bookkeeping bit was corrupted in
                // place. The counter is sticky.
                if let Some(p) = &self.bank_parity[i] {
                    if (self.bank_mem[i][addr].count_ones() & 1) as u8 != p[addr] {
                        self.parity_errors[i] += 1;
                    }
                }
            }
            if op.write {
                let base = if b.spec.is_double_buffered() {
                    op.buf_sel * words
                } else {
                    0
                };
                let addr = (base + self.bank_waddr[i] % words) as usize;
                self.bank_mem[i][addr] = mask(op.wdata, b.spec.width());
                self.bank_waddr[i] = (self.bank_waddr[i] + 1) % words;
                if let Some(p) = &mut self.bank_parity[i] {
                    p[addr] = (self.bank_mem[i][addr].count_ones() & 1) as u8;
                }
            }
        }
        // Fault hook (post-commit): transient register flips and bank-word
        // flips corrupt the state just committed by this cycle, *without*
        // updating parity bookkeeping — that is the point.
        if self.faults.is_some() {
            let mut f = self.faults.take().expect("checked above");
            f.cycle += 1;
            let now = f.cycle;
            for fl in &f.flips {
                if fl.cycle == now {
                    self.values[fl.slot] ^= fl.xor;
                }
            }
            for bf in &f.bank_flips {
                if bf.cycle == now {
                    self.bank_mem[bf.bank][bf.word] ^= bf.xor;
                }
            }
            self.faults = Some(f);
        }
        // Committed state changed; resettle the combinational logic.
        self.dirty = true;
        self.settle();
        // Event hook: record watched-net transitions on the post-commit
        // settled values (the state visible after this cycle).
        if let Some(tr) = self.trace.as_deref_mut() {
            tr.record_events(&self.values);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pe::{build_pe, PeIoKind, PeSpec, PeTensorSpec};
    use tensorlib_ir::DataType;

    fn as_u16(v: i64) -> u64 {
        (v as u64) & 0xFFFF
    }

    #[test]
    fn counter_counts() {
        let mut m = Module::new("cnt");
        let en = m.input("en", 1);
        let q = m.output("q", 8);
        m.reg(q, Expr::net(q).add(Expr::lit(1, 8)), Some(Expr::net(en)), 0);
        let mut sim = Interpreter::new(elaborate(&[m], &[], "cnt").unwrap());
        sim.poke("en", 1);
        for _ in 0..5 {
            sim.step();
        }
        assert_eq!(sim.peek("q"), 5);
        sim.poke("en", 0);
        sim.step();
        assert_eq!(sim.peek("q"), 5, "enable gates the register");
    }

    #[test]
    fn sign_extension_semantics() {
        assert_eq!(sign_extend(0xFFFF, 16, 32), 0xFFFF_FFFF);
        assert_eq!(sign_extend(0x7FFF, 16, 32), 0x7FFF);
        assert_eq!(sign_extend(0xFFFF_FFFF, 32, 16), 0xFFFF);
        assert_eq!(sign_extend(5, 16, 64) as i64, 5);
        assert_eq!(sign_extend(as_u16(-5), 16, 64) as i64, -5);
    }

    #[test]
    fn hierarchy_flattens_and_runs() {
        // child: y = a + b; parent instantiates it twice in a chain.
        let mut child = Module::new("add1");
        let a = child.input("a", 8);
        let y = child.output("y", 8);
        child.assign(y, Expr::net(a).add(Expr::lit(1, 8)));
        let mut parent = Module::new("top");
        let x = parent.input("x", 8);
        let mid = parent.net("mid", 8);
        let out = parent.output("out", 8);
        parent.instance("add1", "u0", vec![("a".into(), x), ("y".into(), mid)]);
        parent.instance("add1", "u1", vec![("a".into(), mid), ("y".into(), out)]);
        let flat = elaborate(&[child, parent], &[], "top").unwrap();
        assert_eq!(flat.reg_count(), 0);
        let mut sim = Interpreter::new(flat);
        sim.poke("x", 40);
        assert_eq!(sim.peek("out"), 42);
    }

    #[test]
    fn unknown_module_and_port_errors() {
        let mut parent = Module::new("top");
        let x = parent.input("x", 8);
        parent.instance("ghost", "u0", vec![("a".into(), x)]);
        assert!(matches!(
            elaborate(&[parent], &[], "top").unwrap_err(),
            ElaborateError::UnknownModule(_)
        ));
        let mut child = Module::new("c");
        let _ = child.input("a", 8);
        let mut parent = Module::new("top");
        let x = parent.input("x", 8);
        parent.instance("c", "u0", vec![("zz".into(), x)]);
        let err = elaborate(&[child, parent], &[], "top").unwrap_err();
        assert!(matches!(err, ElaborateError::UnknownPort { .. }));
        assert!(err.to_string().contains("zz"));
    }

    #[test]
    fn systolic_pe_computes_and_forwards() {
        // Weight-stationary-ish PE: a systolic, b stationary, c systolic out.
        let spec = PeSpec {
            name: "pe".into(),
            datatype: DataType::Int16,
            tensors: vec![
                PeTensorSpec {
                    tensor: "a".into(),
                    kind: PeIoKind::SystolicIn,
                    delay: 1,
                },
                PeTensorSpec {
                    tensor: "b".into(),
                    kind: PeIoKind::StationaryIn,
                    delay: 1,
                },
                PeTensorSpec {
                    tensor: "c".into(),
                    kind: PeIoKind::SystolicOut,
                    delay: 1,
                },
            ],
        };
        let pe = build_pe(&spec);
        let mut sim = Interpreter::new(elaborate(&[pe], &[], "pe").unwrap());
        // Load weight -3 into buf1 (phase 0 loads the inactive buffer).
        sim.poke("load_en", 1);
        sim.poke("phase", 0);
        sim.poke("b_in", as_u16(-3));
        sim.step();
        sim.poke("load_en", 0);
        // Compute with phase 1 (buf1 active): c_out' = c_in + a_in * (-3).
        sim.poke("phase", 1);
        sim.poke("en", 1);
        sim.poke("a_in", as_u16(7));
        sim.poke("c_in", as_u16(100));
        sim.step();
        assert_eq!(sim.peek_signed("c_out"), 100 + 7 * -3);
        // a is forwarded with one cycle of delay.
        assert_eq!(sim.peek_signed("a_out"), 7);
    }

    #[test]
    fn stationary_output_pe_accumulates_and_drains() {
        let spec = PeSpec {
            name: "pe".into(),
            datatype: DataType::Int16,
            tensors: vec![
                PeTensorSpec {
                    tensor: "a".into(),
                    kind: PeIoKind::DirectIn,
                    delay: 1,
                },
                PeTensorSpec {
                    tensor: "b".into(),
                    kind: PeIoKind::DirectIn,
                    delay: 1,
                },
                PeTensorSpec {
                    tensor: "c".into(),
                    kind: PeIoKind::StationaryOut,
                    delay: 1,
                },
            ],
        };
        let pe = build_pe(&spec);
        let mut sim = Interpreter::new(elaborate(&[pe], &[], "pe").unwrap());
        sim.poke("en", 1);
        sim.poke("swap", 0);
        sim.poke("drain_en", 0);
        sim.poke("c_in", 0);
        // Accumulate 2*3 + 4*5 + (-1)*6. First product enters via swap pulse.
        sim.poke("swap", 1);
        sim.poke("a_in", as_u16(2));
        sim.poke("b_in", as_u16(3));
        sim.step();
        sim.poke("swap", 0);
        sim.poke("a_in", as_u16(4));
        sim.poke("b_in", as_u16(5));
        sim.step();
        sim.poke("a_in", as_u16(-1));
        sim.poke("b_in", as_u16(6));
        sim.step();
        // Swap captures the finished accumulation into the transfer register.
        sim.poke("swap", 1);
        sim.poke("a_in", 0);
        sim.poke("b_in", 0);
        sim.step();
        assert_eq!(sim.peek_signed("c_out"), 2 * 3 + 4 * 5 - 6);
        // Drain shifts the chain input through.
        sim.poke("swap", 0);
        sim.poke("drain_en", 1);
        sim.poke("c_in", as_u16(777));
        sim.step();
        assert_eq!(sim.peek_signed("c_out"), 777);
    }

    #[test]
    fn reduction_tree_sums_with_pipeline_latency() {
        let (tree, _, _) = crate::array::build_reduce_tree("t4", 4, 32);
        let mut sim = Interpreter::new(elaborate(&[tree], &[], "t4").unwrap());
        for (i, v) in [10u64, 20, 30, 40].iter().enumerate() {
            sim.poke(&format!("in{i}"), *v);
        }
        // Two pipeline levels for 4 inputs.
        sim.step();
        sim.step();
        assert_eq!(sim.peek("sum"), 100);
    }

    #[test]
    fn bank_streams_and_captures() {
        let bank = MemBank::new(8, 16, false);
        let mut top = Module::new("top");
        let en = top.input("en", 1);
        let wen = top.input("wen", 1);
        let wdata = top.input("wdata", 16);
        let rdata = top.output("rdata", 16);
        top.instance(
            bank.module_name(),
            "b0",
            vec![
                ("en".into(), en),
                ("wen".into(), wen),
                ("wdata".into(), wdata),
                ("rdata".into(), rdata),
            ],
        );
        let flat = elaborate(&[top], &[bank], "top").unwrap();
        assert_eq!(flat.bank_count(), 1);
        let mut sim = Interpreter::new(flat);
        // Write 3 values.
        sim.poke("wen", 1);
        for v in [11u64, 22, 33] {
            sim.poke("wdata", v);
            sim.step();
        }
        sim.poke("wen", 0);
        // Stream them back.
        sim.poke("en", 1);
        sim.step();
        assert_eq!(sim.peek("rdata"), 11);
        sim.step();
        assert_eq!(sim.peek("rdata"), 22);
        sim.step();
        assert_eq!(sim.peek("rdata"), 33);
    }

    #[test]
    fn poke_many_settles_once_and_matches_poke() {
        let mut m = Module::new("mac");
        let a = m.input("a", 16);
        let b = m.input("b", 16);
        let c = m.input("c", 16);
        let y = m.output("y", 16);
        m.assign(y, Expr::net(a).mul(Expr::net(b)).add(Expr::net(c)));
        let flat = elaborate(&[m], &[], "mac").unwrap();
        let mut one_by_one = Interpreter::new(flat.clone());
        one_by_one.poke("a", 3);
        one_by_one.poke("b", 5);
        one_by_one.poke("c", 7);
        let mut batched = Interpreter::new(flat);
        batched.poke_many([("a", 3), ("b", 5), ("c", 7)]);
        assert_eq!(batched.peek("y"), 22);
        assert_eq!(batched.peek("y"), one_by_one.peek("y"));
    }

    #[test]
    fn tree_walking_matches_compiled_on_a_pe() {
        let spec = PeSpec {
            name: "pe".into(),
            datatype: DataType::Int16,
            tensors: vec![
                PeTensorSpec {
                    tensor: "a".into(),
                    kind: PeIoKind::SystolicIn,
                    delay: 1,
                },
                PeTensorSpec {
                    tensor: "b".into(),
                    kind: PeIoKind::StationaryIn,
                    delay: 1,
                },
                PeTensorSpec {
                    tensor: "c".into(),
                    kind: PeIoKind::SystolicOut,
                    delay: 1,
                },
            ],
        };
        let pe = build_pe(&spec);
        let flat = elaborate(&[pe], &[], "pe").unwrap();
        let mut fast = Interpreter::new(flat.clone());
        let mut slow = Interpreter::new_tree_walking(flat);
        assert!(fast.is_compiled());
        assert!(!slow.is_compiled());
        for cycle in 0..32u64 {
            let pokes = [
                ("load_en", u64::from(cycle % 7 == 0)),
                ("phase", (cycle / 7) & 1),
                ("en", 1),
                ("a_in", as_u16((cycle as i64 % 17) - 8)),
                ("b_in", as_u16((cycle as i64 % 5) - 2)),
                ("c_in", as_u16(cycle as i64 * 3 - 40)),
            ];
            fast.poke_many(pokes);
            slow.poke_many(pokes);
            fast.step();
            slow.step();
            for name in ["c_out", "a_out", "b_out"] {
                assert_eq!(
                    fast.peek(name),
                    slow.peek(name),
                    "net {name} diverged at cycle {cycle}"
                );
            }
        }
    }

    /// One single-buffered 4-word bank wired to top-level ports.
    fn one_bank_top() -> Interpreter {
        let bank = MemBank::new(4, 16, false);
        let mut top = Module::new("top");
        let en = top.input("en", 1);
        let wen = top.input("wen", 1);
        let wdata = top.input("wdata", 16);
        let rdata = top.output("rdata", 16);
        top.instance(
            bank.module_name(),
            "b0",
            vec![
                ("en".into(), en),
                ("wen".into(), wen),
                ("wdata".into(), wdata),
                ("rdata".into(), rdata),
            ],
        );
        Interpreter::new(elaborate(&[top], &[bank], "top").unwrap())
    }

    #[test]
    fn load_bank_overflow_is_an_error_naming_bank_and_capacity() {
        let mut sim = one_bank_top();
        let err = sim.load_bank(0, &[1, 2, 3, 4, 5]).unwrap_err();
        assert_eq!(
            err,
            HwError::BankOverflow {
                bank: 0,
                capacity: 4,
                given: 5
            }
        );
        assert_eq!(
            err.to_string(),
            "bank 0 holds 4 words but load_bank was given 5 words"
        );
        // A full-capacity load succeeds, and the bank streams it back.
        sim.load_bank(0, &[7, 8, 9, 10]).unwrap();
        sim.poke("en", 1);
        sim.step();
        assert_eq!(sim.peek("rdata"), 7);
    }

    #[test]
    fn load_bank_bad_index_is_an_error_naming_the_design_size() {
        let mut sim = one_bank_top();
        let err = sim.load_bank(3, &[1]).unwrap_err();
        assert_eq!(err, HwError::NoSuchBank { bank: 3, banks: 1 });
        assert_eq!(err.to_string(), "no bank 3: design has 1 banks");
    }

    #[test]
    fn trace_counts_bank_traffic_conflicts_and_flags_unknown_nets() {
        let mut sim = one_bank_top();
        assert!(sim.stats().is_none(), "no trace attached by default");
        let err = sim
            .attach_trace(&TraceConfig::counters_only().with_watch(["ghost_net"]))
            .unwrap_err();
        assert_eq!(
            err,
            HwError::UnknownNet {
                net: "ghost_net".into()
            }
        );
        sim.attach_trace(&TraceConfig::counters_only()).unwrap();
        // 2 write-only cycles, then 1 read+write conflict cycle, then 1
        // read-only cycle.
        sim.poke_many([("wen", 1), ("wdata", 5)]);
        sim.step();
        sim.step();
        sim.poke("en", 1);
        sim.step();
        sim.poke("wen", 0);
        sim.step();
        let stats = sim.stats().unwrap();
        assert_eq!(stats.cycles, 4);
        assert_eq!(stats.banks.len(), 1);
        assert_eq!(stats.banks[0].name, "b0");
        assert_eq!(stats.banks[0].writes, 3);
        assert_eq!(stats.banks[0].reads, 2);
        assert_eq!(stats.banks[0].conflicts, 1);
        assert_eq!(stats.total_bank_conflicts(), 1);
        // Detaching restores the zero-overhead path.
        sim.attach_trace(&TraceConfig::disabled()).unwrap();
        assert!(sim.stats().is_none());
    }

    #[test]
    fn trace_ring_bounds_events_and_folds_overflow_into_baseline() {
        let mut m = Module::new("cnt");
        let en = m.input("en", 1);
        let q = m.output("q", 8);
        m.reg(q, Expr::net(q).add(Expr::lit(1, 8)), Some(Expr::net(en)), 0);
        let cfg = TraceConfig {
            counters: false,
            watch: vec!["q".into()],
            ring_capacity: 3,
        };
        let mut sim =
            Interpreter::with_trace(elaborate(&[m], &[], "cnt").unwrap(), &cfg).unwrap();
        sim.poke("en", 1);
        for _ in 0..8 {
            sim.step();
        }
        let stats = sim.stats().unwrap();
        assert_eq!(stats.events_recorded, 8);
        assert_eq!(stats.events_dropped, 5);
        let events = sim.trace_events();
        assert_eq!(events.len(), 3);
        // The retained tail is the last three increments.
        let values: Vec<u64> = events.iter().map(|e| e.value).collect();
        assert_eq!(values, vec![6, 7, 8]);
        assert_eq!(events[0].cycle, 6);
        // The VCD baseline advanced to the value before the retained tail.
        let vcd = sim.write_vcd().unwrap();
        let doc = crate::trace::parse_vcd(&vcd).unwrap();
        let id = doc.id_of("q").unwrap().to_string();
        let at_zero: Vec<u64> = doc
            .changes
            .iter()
            .filter(|c| c.time == 0 && c.id == id)
            .map(|c| c.value)
            .collect();
        assert_eq!(at_zero, vec![5]);
    }

    /// Counter design used by the fault tests: q increments while `en` is
    /// high, `y = q + 1` is a derived combinational net.
    fn faultable_counter(compiled: bool) -> Interpreter {
        let mut m = Module::new("cnt");
        let en = m.input("en", 1);
        let q = m.output("q", 8);
        let y = m.output("y", 8);
        m.reg(q, Expr::net(q).add(Expr::lit(1, 8)), Some(Expr::net(en)), 0);
        m.assign(y, Expr::net(q).add(Expr::lit(1, 8)));
        let flat = elaborate(&[m], &[], "cnt").unwrap();
        if compiled {
            Interpreter::new(flat)
        } else {
            Interpreter::new_tree_walking(flat)
        }
    }

    #[test]
    fn stuck_at_forces_nets_on_both_engines() {
        for compiled in [false, true] {
            let mut sim = faultable_counter(compiled);
            // Stuck-at-0 on bit 1 of q: counting 0,1,2,3 becomes 0,1,0,1.
            sim.attach_faults(&[FaultSpec::stuck_at("q", 1, false)]).unwrap();
            sim.poke("en", 1);
            let mut seen = Vec::new();
            for _ in 0..4 {
                sim.step();
                seen.push((sim.peek("q"), sim.peek("y")));
            }
            // q's bit 1 always reads 0; y tracks the forced value.
            assert_eq!(
                seen,
                vec![(1, 2), (0, 1), (1, 2), (0, 1)],
                "compiled={compiled}"
            );
            // Detach restores clean behaviour (register state persists).
            sim.detach_faults();
            assert!(sim.faults().is_none());
            sim.step();
            assert_eq!(sim.peek("q"), 1, "compiled={compiled}");
        }
    }

    #[test]
    fn stuck_at_1_forces_high() {
        let mut sim = faultable_counter(true);
        sim.attach_faults(&[FaultSpec::stuck_at("q", 7, true)]).unwrap();
        // Without stepping, the settled value already shows the force.
        assert_eq!(sim.peek("q"), 0x80);
    }

    #[test]
    fn transient_flip_perturbs_one_cycle_on_both_engines() {
        for compiled in [false, true] {
            let mut sim = faultable_counter(compiled);
            // Flip bit 4 of q after the commit of step 3: q becomes 3^16=19,
            // then resumes counting from the corrupted value.
            sim.attach_faults(&[FaultSpec::flip("q", 4, 3)]).unwrap();
            sim.poke("en", 1);
            let mut seen = Vec::new();
            for _ in 0..5 {
                sim.step();
                seen.push(sim.peek("q"));
            }
            assert_eq!(seen, vec![1, 2, 19, 20, 21], "compiled={compiled}");
        }
    }

    #[test]
    fn drop_transition_holds_a_register_for_one_cycle() {
        for compiled in [false, true] {
            let mut sim = faultable_counter(compiled);
            // Drop the commit of step 2: the counter re-holds its value.
            sim.attach_faults(&[FaultSpec::drop_transition("q", 2)]).unwrap();
            sim.poke("en", 1);
            let mut seen = Vec::new();
            for _ in 0..4 {
                sim.step();
                seen.push(sim.peek("q"));
            }
            assert_eq!(seen, vec![1, 1, 2, 3], "compiled={compiled}");
        }
    }

    #[test]
    fn fault_target_errors_are_typed() {
        let mut sim = faultable_counter(true);
        assert_eq!(
            sim.attach_faults(&[FaultSpec::stuck_at("q", 8, false)]).unwrap_err(),
            HwError::FaultBitOutOfRange {
                net: "q".into(),
                bit: 8,
                width: 8
            }
        );
        assert_eq!(
            sim.attach_faults(&[FaultSpec::flip("y", 0, 1)]).unwrap_err(),
            HwError::NotARegister { net: "y".into() }
        );
        assert!(matches!(
            sim.attach_faults(&[FaultSpec::stuck_at("ghost", 0, false)]).unwrap_err(),
            HwError::UnknownNet { .. }
        ));
        // A failed attach leaves the interpreter fault-free.
        assert!(sim.faults().is_none());
    }

    /// One parity-protected 4-word bank wired to top-level ports.
    fn parity_bank_top() -> Interpreter {
        let bank = MemBank::new(4, 16, false).with_parity();
        let mut top = Module::new("top");
        let en = top.input("en", 1);
        let wen = top.input("wen", 1);
        let wdata = top.input("wdata", 16);
        let rdata = top.output("rdata", 16);
        top.instance(
            bank.module_name(),
            "b0",
            vec![
                ("en".into(), en),
                ("wen".into(), wen),
                ("wdata".into(), wdata),
                ("rdata".into(), rdata),
            ],
        );
        Interpreter::new(elaborate(&[top], &[bank], "top").unwrap())
    }

    #[test]
    fn bank_flip_corrupts_a_word_and_parity_detects_it() {
        let mut sim = parity_bank_top();
        sim.load_bank(0, &[7, 8, 9, 10]).unwrap();
        // Flip bit 3 of word 1 after the first step.
        sim.attach_faults(&[FaultSpec::bank_flip("b0", 1, 3, 1)]).unwrap();
        sim.poke("en", 1);
        sim.step(); // read word 0 (clean), then the flip lands
        assert_eq!(sim.peek("rdata"), 7);
        assert_eq!(sim.parity_error_count(), 0);
        sim.step(); // read word 1: corrupted, parity fires
        assert_eq!(sim.peek("rdata"), 8 ^ 0b1000);
        assert_eq!(sim.parity_error_count(), 1);
        assert_eq!(sim.parity_errors(), &[1]);
        sim.step(); // word 2 is clean again
        assert_eq!(sim.peek("rdata"), 9);
        assert_eq!(sim.parity_error_count(), 1);
        assert_eq!(sim.bank_words(0)[1], 8 ^ 0b1000);
    }

    /// Exhaustive single-bit sweep: every (word, bit) flip in a
    /// parity-protected bank is detected on the read of that word.
    #[test]
    fn parity_detects_every_single_bit_bank_flip() {
        for word in 0..4usize {
            for bit in 0..16u32 {
                let mut sim = parity_bank_top();
                sim.load_bank(0, &[7, 8, 9, 10]).unwrap();
                sim.attach_faults(&[FaultSpec::bank_flip("b0", word, bit, 1)])
                    .unwrap();
                sim.poke("en", 1);
                // The read address wraps, so two passes read every word at
                // least once *after* the cycle-1 flip has landed (word 0's
                // first read happens before it).
                for _ in 0..8 {
                    sim.step();
                }
                assert!(
                    sim.parity_error_count() >= 1,
                    "flip of word {word} bit {bit} escaped parity"
                );
            }
        }
    }

    #[test]
    fn clean_writes_refresh_parity() {
        let mut sim = parity_bank_top();
        sim.poke("wen", 1);
        for v in [11u64, 22, 33, 44] {
            sim.poke("wdata", v);
            sim.step();
        }
        sim.poke_many([("wen", 0), ("en", 1)]);
        for v in [11u64, 22, 33, 44] {
            sim.step();
            assert_eq!(sim.peek("rdata"), v);
        }
        assert_eq!(sim.parity_error_count(), 0);
    }

    #[test]
    fn bank_fault_word_bounds_are_checked() {
        let mut sim = parity_bank_top();
        assert_eq!(
            sim.attach_faults(&[FaultSpec::bank_flip("b0", 4, 0, 1)]).unwrap_err(),
            HwError::FaultWordOutOfRange {
                bank: "b0".into(),
                word: 4,
                capacity: 4
            }
        );
    }

    #[test]
    fn faulty_interpreter_matches_engines_under_mixed_faults() {
        // The same fault set on both engines over a PE must stay bit-exact.
        let spec = PeSpec {
            name: "pe".into(),
            datatype: DataType::Int16,
            tensors: vec![
                PeTensorSpec {
                    tensor: "a".into(),
                    kind: PeIoKind::SystolicIn,
                    delay: 1,
                },
                PeTensorSpec {
                    tensor: "b".into(),
                    kind: PeIoKind::StationaryIn,
                    delay: 1,
                },
                PeTensorSpec {
                    tensor: "c".into(),
                    kind: PeIoKind::SystolicOut,
                    delay: 1,
                },
            ],
        };
        let pe = build_pe(&spec);
        let flat = elaborate(&[pe], &[], "pe").unwrap();
        let reg_net = flat.nets()[flat.regs()[0].target].name.clone();
        let faults = vec![
            FaultSpec::stuck_at(reg_net.as_str(), 0, true),
            FaultSpec::flip(reg_net.as_str(), 3, 5),
            FaultSpec::drop_transition(reg_net.as_str(), 9),
        ];
        let mut fast = Interpreter::new(flat.clone());
        let mut slow = Interpreter::new_tree_walking(flat);
        fast.attach_faults(&faults).unwrap();
        slow.attach_faults(&faults).unwrap();
        for cycle in 0..24u64 {
            let pokes = [
                ("load_en", u64::from(cycle % 7 == 0)),
                ("phase", (cycle / 7) & 1),
                ("en", 1),
                ("a_in", as_u16((cycle as i64 % 17) - 8)),
                ("b_in", as_u16((cycle as i64 % 5) - 2)),
                ("c_in", as_u16(cycle as i64 * 3 - 40)),
            ];
            fast.poke_many(pokes);
            slow.poke_many(pokes);
            fast.step();
            slow.step();
            for name in ["c_out", "a_out", "b_out"] {
                assert_eq!(
                    fast.peek(name),
                    slow.peek(name),
                    "net {name} diverged at cycle {cycle} under faults"
                );
            }
        }
    }
}

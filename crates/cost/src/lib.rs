//! Area, power, and FPGA resource models for generated accelerators.
//!
//! The paper evaluates designs with Synopsys DC (UMC 55 nm) and Vivado
//! (VU9P); neither toolchain is available here, so this crate substitutes
//! component-level analytical models driven by the generated design's
//! [`tensorlib_hw::ResourceSummary`]:
//!
//! - [`asic`]: per-primitive area (µm²) and energy (pJ) constants calibrated
//!   against the paper's Figure 6 envelope (GEMM 16×16 INT16 @ 320 MHz lands
//!   in 35–63 mW with an area spread ≪ energy spread).
//! - [`fpga`]: LUT/FF/DSP/BRAM counts and a fanout-aware frequency heuristic
//!   calibrated against the paper's Table III build (10×16 FP32 array,
//!   vectorization 8, on a VU9P).
//!
//! All constants live in [`calibration`] with their provenance documented —
//! change them there, nowhere else.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod asic;
pub mod calibration;
pub mod fpga;
pub mod hardening;
pub mod opt_report;

pub use asic::{asic_cost, Activity, AsicReport};
pub use fpga::{fpga_cost, FpgaDevice, FpgaReport};
pub use hardening::{hardening_overhead, HardeningOverhead};
pub use opt_report::{opt_cost_report, OptCostReport};

//! The high-level entry point: build, simulate, and cost an accelerator in a
//! few lines.

use tensorlib_cost::{asic_cost, fpga_cost, Activity, AsicReport, FpgaDevice, FpgaReport};
use tensorlib_dataflow::dse::{find_named, DseConfig};
use tensorlib_dataflow::{Dataflow, LoopSelection, Stt};
use tensorlib_hw::design::{generate, AcceleratorDesign, HwConfig};
use tensorlib_hw::{verilog, ArrayConfig};
use tensorlib_ir::{DataType, Kernel};
use tensorlib_sim::{functional, perf, FunctionalRun, SimConfig, SimReport};

use crate::Error;

/// A generated accelerator bound to its kernel: one object that can
/// simulate, cost, and emit itself.
///
/// # Examples
///
/// ```
/// use tensorlib::Accelerator;
/// use tensorlib_ir::workloads;
///
/// let gemm = workloads::gemm(32, 32, 32);
/// let acc = Accelerator::builder(gemm)
///     .dataflow_name("MNK-SST")
///     .array(8, 8)
///     .build()?;
/// let run = acc.verify(7)?;
/// assert!(run.matches_reference);
/// let report = acc.performance(&Default::default());
/// assert!(report.normalized_perf > 0.0);
/// # Ok::<(), tensorlib::Error>(())
/// ```
#[derive(Debug, Clone)]
pub struct Accelerator {
    kernel: Kernel,
    design: AcceleratorDesign,
}

impl Accelerator {
    /// Starts configuring an accelerator for `kernel`.
    pub fn builder(kernel: Kernel) -> AcceleratorBuilder {
        AcceleratorBuilder {
            kernel,
            dataflow: DataflowChoice::Default,
            config: HwConfig::default(),
        }
    }

    /// The kernel this accelerator computes.
    pub fn kernel(&self) -> &Kernel {
        &self.kernel
    }

    /// The generated design (netlist, tiling, memory plan, summary).
    pub fn design(&self) -> &AcceleratorDesign {
        &self.design
    }

    /// The analyzed dataflow.
    pub fn dataflow(&self) -> &Dataflow {
        self.design.dataflow()
    }

    /// Runs the bit-exact functional simulation on seeded random inputs.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Simulation`] on coverage gaps or output mismatches.
    pub fn verify(&self, seed: u64) -> Result<FunctionalRun, Error> {
        Ok(functional::simulate(&self.design, &self.kernel, seed)?)
    }

    /// The analytical cycle/throughput estimate.
    pub fn performance(&self, cfg: &SimConfig) -> SimReport {
        perf::estimate(&self.design, &self.kernel, cfg)
    }

    /// ASIC area/power at the given activity.
    pub fn asic_cost(&self, activity: &Activity) -> AsicReport {
        asic_cost(&self.design, activity)
    }

    /// FPGA resources/frequency on `device`.
    pub fn fpga_cost(&self, device: &FpgaDevice, placement_optimized: bool) -> FpgaReport {
        fpga_cost(&self.design, device, placement_optimized)
    }

    /// Emits the full design as Verilog.
    pub fn verilog(&self) -> String {
        verilog::emit_design(&self.design)
    }

    /// Energy and energy-delay estimate for one full kernel execution:
    /// ASIC power at the workload's achieved utilization multiplied by the
    /// modeled runtime.
    pub fn energy(&self, cfg: &SimConfig) -> EnergyReport {
        let perf = self.performance(cfg);
        let asic = self.asic_cost(&Activity {
            utilization: perf.normalized_perf,
            freq_mhz: cfg.freq_mhz,
        });
        let energy_uj = asic.power_mw * perf.runtime_us * 1e-3;
        EnergyReport {
            energy_uj,
            avg_power_mw: asic.power_mw,
            runtime_us: perf.runtime_us,
            edp_uj_us: energy_uj * perf.runtime_us,
            uj_per_gmac: energy_uj / (perf.macs as f64 / 1e9),
        }
    }
}

/// Workload-level energy summary from [`Accelerator::energy`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyReport {
    /// Total energy for the kernel, µJ.
    pub energy_uj: f64,
    /// Average power during execution, mW.
    pub avg_power_mw: f64,
    /// Runtime, µs.
    pub runtime_us: f64,
    /// Energy-delay product, µJ·µs.
    pub edp_uj_us: f64,
    /// Energy per 10⁹ MACs, µJ.
    pub uj_per_gmac: f64,
}

/// How the builder picks the dataflow.
#[derive(Debug, Clone)]
enum DataflowChoice {
    /// Output-stationary on the first three loops.
    Default,
    /// A paper-style name like `"KCX-SST"`.
    Named(String),
    /// An explicit (selection, STT) pair.
    Explicit(LoopSelection, Stt),
}

/// Builder for [`Accelerator`]; see [`Accelerator::builder`].
#[derive(Debug, Clone)]
pub struct AcceleratorBuilder {
    kernel: Kernel,
    dataflow: DataflowChoice,
    config: HwConfig,
}

impl AcceleratorBuilder {
    /// Selects the dataflow by paper-style name (e.g. `"KCX-SST"`).
    pub fn dataflow_name(mut self, name: &str) -> AcceleratorBuilder {
        self.dataflow = DataflowChoice::Named(name.to_string());
        self
    }

    /// Selects an explicit loop selection and STT matrix.
    pub fn dataflow(mut self, selection: LoopSelection, stt: Stt) -> AcceleratorBuilder {
        self.dataflow = DataflowChoice::Explicit(selection, stt);
        self
    }

    /// Sets the PE-array dimensions (default 16×16).
    pub fn array(mut self, rows: usize, cols: usize) -> AcceleratorBuilder {
        self.config.array = ArrayConfig { rows, cols };
        self
    }

    /// Sets the element datatype (default INT16).
    pub fn datatype(mut self, dt: DataType) -> AcceleratorBuilder {
        self.config.datatype = dt;
        self
    }

    /// Sets the SIMD lanes per PE (default 1).
    pub fn vectorize(mut self, lanes: u32) -> AcceleratorBuilder {
        self.config.vectorize = lanes;
        self
    }

    /// Analyzes, generates, and validates the accelerator.
    ///
    /// # Errors
    ///
    /// Returns [`Error`] if the dataflow name cannot be realized, the STT is
    /// invalid for the kernel, or the hardware cannot be wired.
    pub fn build(self) -> Result<Accelerator, Error> {
        let dataflow = match self.dataflow {
            DataflowChoice::Named(name) => {
                find_named(&self.kernel, &name, &DseConfig::default())?
            }
            DataflowChoice::Explicit(sel, stt) => {
                Dataflow::analyze(&self.kernel, sel, stt)?
            }
            DataflowChoice::Default => {
                let names = self.kernel.loop_nest().names();
                let sel =
                    LoopSelection::by_names(&self.kernel, [names[0], names[1], names[2]])?;
                Dataflow::analyze(&self.kernel, sel, Stt::output_stationary())?
            }
        };
        let design = generate(&dataflow, &self.config)?;
        design
            .validate()
            .expect("generated designs are structurally sound by construction");
        Ok(Accelerator {
            kernel: self.kernel,
            design,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tensorlib_ir::workloads;

    #[test]
    fn default_dataflow_builds_and_verifies() {
        let acc = Accelerator::builder(workloads::gemm(16, 16, 16))
            .array(4, 4)
            .build()
            .unwrap();
        assert_eq!(acc.dataflow().letters(), "SST");
        let run = acc.verify(3).unwrap();
        assert!(run.matches_reference);
        assert_eq!(acc.kernel().name(), "GEMM");
    }

    #[test]
    fn named_dataflow_builds() {
        let acc = Accelerator::builder(workloads::gemm(32, 32, 32))
            .dataflow_name("MNK-STS")
            .array(8, 8)
            .build()
            .unwrap();
        assert_eq!(acc.dataflow().letters(), "STS");
        assert!(acc.verilog().contains("endmodule"));
    }

    #[test]
    fn explicit_dataflow_builds() {
        let k = workloads::mttkrp(8, 8, 8, 8);
        let sel = LoopSelection::by_names(&k, ["i", "j", "k"]).unwrap();
        let acc = Accelerator::builder(k)
            .dataflow(sel, Stt::output_stationary())
            .array(4, 4)
            .datatype(DataType::Int32)
            .vectorize(2)
            .build()
            .unwrap();
        assert_eq!(acc.design().config().vectorize, 2);
        assert!(acc.verify(1).unwrap().matches_reference);
    }

    #[test]
    fn bad_name_is_an_error() {
        let err = Accelerator::builder(workloads::gemm(8, 8, 8))
            .dataflow_name("nonsense")
            .build()
            .unwrap_err();
        assert!(matches!(err, Error::Dataflow(_)));
    }

    #[test]
    fn costs_are_queryable() {
        let acc = Accelerator::builder(workloads::gemm(32, 32, 32))
            .array(8, 8)
            .build()
            .unwrap();
        let a = acc.asic_cost(&Activity::default());
        assert!(a.power_mw > 0.0);
        let f = acc.fpga_cost(&FpgaDevice::vu9p(), false);
        assert!(f.freq_mhz > 0.0);
        let p = acc.performance(&SimConfig::default());
        assert!(p.total_cycles > 0);
    }
}

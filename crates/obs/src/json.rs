//! A minimal JSON parser for report validation.
//!
//! The vendored `serde_json` stub only *writes* JSON, so schema checks and
//! trace well-formedness tests need a reader. This is a small recursive
//! descent parser: full JSON syntax, objects kept in document order,
//! numbers as `f64` (plus a lossless `u64` view for integer fields). It is
//! a validator for our own reports plus the document substrate for the
//! Yosys-JSON netlist interchange in `tensorlib-hw`, which also needs the
//! [`std::fmt::Display`] serializer: `parse(&v.to_string())` reconstructs
//! `v` exactly.
//!
//! Numbers are stored as `f64`, so integers beyond 2^53 parse but round;
//! [`Value::as_u64`] returns `None` outside the exactly-representable
//! range, making the loss detectable instead of silent. Literals that
//! overflow `f64` entirely (e.g. `1e309`) are a parse error, never a
//! silent infinity.

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (integers up to 2^53 survive exactly).
    Num(f64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, entries in document order.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Looks up `key` in an object value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a finite `f64`, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is one exactly.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if it is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The object entries in document order, if it is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Obj(entries) => Some(entries),
            _ => None,
        }
    }
}

/// Parses a complete JSON document; trailing whitespace allowed, trailing
/// garbage is an error.
pub fn parse(input: &str) -> Result<Value, String> {
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing garbage at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(Value::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_literal(bytes, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Value::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", Value::Null),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(bytes, pos),
        Some(c) => Err(format!("unexpected byte {c:#x} at {pos}", pos = *pos)),
    }
}

fn parse_literal(
    bytes: &[u8],
    pos: &mut usize,
    literal: &str,
    value: Value,
) -> Result<Value, String> {
    if bytes[*pos..].starts_with(literal.as_bytes()) {
        *pos += literal.len();
        Ok(value)
    } else {
        Err(format!("expected `{literal}` at byte {pos}", pos = *pos))
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    *pos += 1; // consume '{'
    let mut entries = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Value::Obj(entries));
    }
    loop {
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b'"') {
            return Err(format!("expected object key at byte {pos}", pos = *pos));
        }
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return Err(format!("expected `:` at byte {pos}", pos = *pos));
        }
        *pos += 1;
        let value = parse_value(bytes, pos)?;
        entries.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Value::Obj(entries));
            }
            _ => return Err(format!("expected `,` or `}}` at byte {pos}", pos = *pos)),
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    *pos += 1; // consume '['
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Value::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Value::Arr(items));
            }
            _ => return Err(format!("expected `,` or `]` at byte {pos}", pos = *pos)),
        }
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    *pos += 1; // consume opening quote
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        // `*pos` is the `u`; the escape starts one byte back.
                        let at = *pos - 1;
                        let hi = read_hex4(bytes, *pos + 1, at)?;
                        *pos += 5;
                        let ch = if (0xD800..=0xDBFF).contains(&hi) {
                            // High surrogate: a low surrogate escape must
                            // follow immediately (UTF-16 pair for a
                            // supplementary-plane character).
                            if bytes.get(*pos) != Some(&b'\\')
                                || bytes.get(*pos + 1) != Some(&b'u')
                            {
                                return Err(format!(
                                    "unpaired high surrogate \\u{hi:04x} at byte {at}"
                                ));
                            }
                            let lo = read_hex4(bytes, *pos + 2, at)?;
                            if !(0xDC00..=0xDFFF).contains(&lo) {
                                return Err(format!(
                                    "invalid surrogate pair \\u{hi:04x}\\u{lo:04x} at byte {at}"
                                ));
                            }
                            *pos += 6;
                            let code = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                            char::from_u32(code).expect("surrogate pairs decode to valid scalars")
                        } else if (0xDC00..=0xDFFF).contains(&hi) {
                            return Err(format!("lone low surrogate \\u{hi:04x} at byte {at}"));
                        } else {
                            char::from_u32(hi).expect("non-surrogate BMP values are scalars")
                        };
                        out.push(ch);
                        continue;
                    }
                    other => return Err(format!("bad escape {other:?}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Copy the maximal run of unescaped bytes in one go. The
                // delimiters are ASCII and UTF-8 continuation bytes are
                // ≥ 0x80, so stopping on `"` or `\` never splits a scalar,
                // and the run is valid UTF-8 (the input is a &str).
                let start = *pos;
                while *pos < bytes.len() && !matches!(bytes[*pos], b'"' | b'\\') {
                    *pos += 1;
                }
                let run = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
                out.push_str(run);
            }
        }
    }
}

/// Reads the four hex digits of a `\u` escape starting at byte `at`;
/// `esc_at` is the position of the backslash, used only for the error.
fn read_hex4(bytes: &[u8], at: usize, esc_at: usize) -> Result<u32, String> {
    let hex = bytes
        .get(at..at + 4)
        .filter(|h| h.iter().all(u8::is_ascii_hexdigit))
        .ok_or_else(|| format!("bad \\u escape at byte {esc_at}"))?;
    let hex = std::str::from_utf8(hex).expect("hex digits are ASCII");
    Ok(u32::from_str_radix(hex, 16).expect("four hex digits fit u32"))
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
    let n: f64 = text
        .parse()
        .map_err(|_| format!("bad number `{text}` at byte {start}"))?;
    // `f64::from_str` saturates to ±inf past ~1.8e308; surfacing that as a
    // Value would silently corrupt any arithmetic downstream. Integers
    // beyond 2^53 stay finite but round — `as_u64` refuses those, so the
    // loss is detectable, and the only hard failure is true overflow.
    if !n.is_finite() {
        return Err(format!("number `{text}` at byte {start} overflows f64"));
    }
    Ok(Value::Num(n))
}

/// Serializes a [`Value`] back to JSON text: pretty-printed with two-space
/// indentation, deterministic (object entries in stored order), and
/// round-trippable — `parse(&v.to_string()) == Ok(v)` for any parsed `v`.
/// Integers up to 2^53 in magnitude print in integer form; other numbers
/// use the shortest representation that reparses to the same `f64`.
impl std::fmt::Display for Value {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write_value(f, self, 0)
    }
}

/// Serializes a [`Value`] to single-line JSON (no newlines, no indentation,
/// `"k":v` entries separated by `,`) — the form for JSONL files where one
/// value must occupy exactly one line. Same determinism and round-trip
/// guarantees as the pretty [`Display`] form: `parse(&to_compact(&v))`
/// reconstructs `v` exactly.
pub fn to_compact(v: &Value) -> String {
    let mut out = String::new();
    write_compact(&mut out, v).expect("writing to a String cannot fail");
    out
}

fn write_compact<W: std::fmt::Write>(f: &mut W, v: &Value) -> std::fmt::Result {
    match v {
        Value::Null | Value::Bool(_) | Value::Num(_) | Value::Str(_) => write_value(f, v, 0),
        Value::Arr(items) => {
            f.write_str("[")?;
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    f.write_str(",")?;
                }
                write_compact(f, item)?;
            }
            f.write_str("]")
        }
        Value::Obj(entries) => {
            f.write_str("{")?;
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    f.write_str(",")?;
                }
                write_string(f, k)?;
                f.write_str(":")?;
                write_compact(f, item)?;
            }
            f.write_str("}")
        }
    }
}

fn write_value<W: std::fmt::Write>(f: &mut W, v: &Value, indent: usize) -> std::fmt::Result {
    match v {
        Value::Null => f.write_str("null"),
        Value::Bool(b) => f.write_str(if *b { "true" } else { "false" }),
        Value::Num(n) => {
            const EXACT: f64 = 9_007_199_254_740_992.0; // 2^53
            if n.fract() == 0.0 && n.abs() <= EXACT {
                write!(f, "{}", *n as i64)
            } else {
                // `{:?}` prints the shortest string that reparses exactly.
                write!(f, "{n:?}")
            }
        }
        Value::Str(s) => write_string(f, s),
        Value::Arr(items) => {
            if items.is_empty() {
                return f.write_str("[]");
            }
            f.write_str("[\n")?;
            for (i, item) in items.iter().enumerate() {
                write!(f, "{:indent$}", "", indent = indent + 2)?;
                write_value(f, item, indent + 2)?;
                f.write_str(if i + 1 < items.len() { ",\n" } else { "\n" })?;
            }
            write!(f, "{:indent$}]", "")
        }
        Value::Obj(entries) => {
            if entries.is_empty() {
                return f.write_str("{}");
            }
            f.write_str("{\n")?;
            for (i, (k, item)) in entries.iter().enumerate() {
                write!(f, "{:indent$}", "", indent = indent + 2)?;
                write_string(f, k)?;
                f.write_str(": ")?;
                write_value(f, item, indent + 2)?;
                f.write_str(if i + 1 < entries.len() { ",\n" } else { "\n" })?;
            }
            write!(f, "{:indent$}}}", "")
        }
    }
}

fn write_string<W: std::fmt::Write>(f: &mut W, s: &str) -> std::fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\t' => f.write_str("\\t")?,
            '\r' => f.write_str("\\r")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let doc = parse(
            r#"{"a": [1, 2.5, -3], "b": {"c": "hi\n", "d": true, "e": null}, "f": "x"}"#,
        )
        .unwrap();
        assert_eq!(
            doc.get("a").and_then(Value::as_array).map(<[Value]>::len),
            Some(3)
        );
        assert_eq!(doc.get("a").unwrap().as_array().unwrap()[0].as_u64(), Some(1));
        assert_eq!(
            doc.get("b").and_then(|b| b.get("c")).and_then(Value::as_str),
            Some("hi\n")
        );
        assert_eq!(doc.get("b").and_then(|b| b.get("e")), Some(&Value::Null));
        assert_eq!(doc.get("missing"), None);
    }

    #[test]
    fn object_order_is_preserved() {
        let doc = parse(r#"{"z": 1, "a": 2}"#).unwrap();
        let keys: Vec<&str> = doc
            .as_object()
            .unwrap()
            .iter()
            .map(|(k, _)| k.as_str())
            .collect();
        assert_eq!(keys, ["z", "a"]);
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(parse("{").is_err());
        assert!(parse("[1, 2").is_err());
        assert!(parse("{\"a\" 1}").is_err());
        assert!(parse("{} trailing").is_err());
        assert!(parse("\"unterminated").is_err());
        assert!(parse("01a").is_err());
    }

    #[test]
    fn round_trips_vendored_serializer_output() {
        use std::collections::BTreeMap;
        let mut m: BTreeMap<String, Vec<u64>> = BTreeMap::new();
        m.insert("xs".to_string(), vec![1, 2, 3]);
        let s = serde_json::to_string(&m).unwrap();
        let doc = parse(&s).unwrap();
        let xs = doc.get("xs").and_then(Value::as_array).unwrap();
        let back: Vec<u64> = xs.iter().map(|v| v.as_u64().unwrap()).collect();
        assert_eq!(back, [1, 2, 3]);
    }

    #[test]
    fn as_u64_bounds() {
        assert_eq!(parse("0").unwrap().as_u64(), Some(0));
        assert_eq!(parse("-1").unwrap().as_u64(), None);
        assert_eq!(parse("1.5").unwrap().as_u64(), None);
    }

    #[test]
    fn decodes_surrogate_pairs() {
        assert_eq!(parse(r#""😀""#).unwrap().as_str(), Some("😀"));
        assert_eq!(parse(r#""a😀b""#).unwrap().as_str(), Some("a😀b"));
        // BMP escapes still decode directly.
        assert_eq!(parse(r#""é""#).unwrap().as_str(), Some("é"));
    }

    #[test]
    fn rejects_malformed_unicode_escapes_with_position() {
        // Lone high surrogate, lone low surrogate, bad pair, bad hex,
        // truncated escape: all hard positioned errors, never U+FFFD.
        for (doc, needle) in [
            (r#""\ud83d""#, "unpaired high surrogate"),
            (r#""\ud83dx""#, "unpaired high surrogate"),
            (r#""\ud83d\ud800""#, "invalid surrogate pair"),
            (r#""\ude00""#, "lone low surrogate"),
            (r#""\uzzzz""#, "bad \\u escape"),
            (r#""\u00"#, "bad \\u escape"),
        ] {
            let err = parse(doc).unwrap_err();
            assert!(err.contains(needle), "{doc}: {err}");
            assert!(err.contains("at byte 1"), "{doc}: {err}");
        }
    }

    #[test]
    fn number_overflow_is_an_error_not_infinity() {
        for doc in ["1e309", "-1e309", "123e99999"] {
            let err = parse(doc).unwrap_err();
            assert!(err.contains("overflows f64"), "{doc}: {err}");
        }
        // Just inside the representable range stays fine.
        assert!(parse("1e308").unwrap().as_f64().unwrap().is_finite());
    }

    #[test]
    fn integer_precision_boundaries() {
        // 2^53 is the last contiguously exact integer: as_u64 accepts it.
        assert_eq!(
            parse("9007199254740992").unwrap().as_u64(),
            Some(9007199254740992)
        );
        // u64::MAX and its neighbors parse (lossily, documented) but the
        // exact-integer view refuses them rather than returning a rounded
        // value.
        for doc in [
            "18446744073709551615", // u64::MAX
            "18446744073709551614",
            "18446744073709551616", // u64::MAX + 1
        ] {
            let v = parse(doc).unwrap();
            assert_eq!(v.as_u64(), None, "{doc}");
            assert!(v.as_f64().unwrap().is_finite());
        }
    }

    #[test]
    fn serializer_round_trips() {
        let doc = parse(
            r#"{"a": [1, 2.5, -3, []], "b": {"c": "hi\n\t\"\\x", "d": true, "e": null, "f": {}}, "g": "😀é", "h": 1e300, "ctl": ""}"#,
        )
        .unwrap();
        let text = doc.to_string();
        let back = parse(&text).unwrap();
        assert_eq!(back, doc);
        // Serialization is deterministic and idempotent.
        assert_eq!(back.to_string(), text);
        // Control characters serialize as \u escapes and survive the trip.
        let ctl = Value::Str("\u{1}a\u{1f}".to_string());
        assert_eq!(ctl.to_string(), "\"\\u0001a\\u001f\"");
        assert_eq!(parse(&ctl.to_string()).unwrap(), ctl);
    }

    #[test]
    fn compact_form_is_single_line_and_round_trips() {
        let doc = parse(
            r#"{"a": [1, 2.5, -3, []], "b": {"c": "hi\n", "d": true, "e": null, "f": {}}}"#,
        )
        .unwrap();
        let line = to_compact(&doc);
        assert!(!line.contains('\n'), "{line}");
        assert_eq!(parse(&line).unwrap(), doc);
        assert_eq!(
            line,
            r#"{"a":[1,2.5,-3,[]],"b":{"c":"hi\n","d":true,"e":null,"f":{}}}"#
        );
    }

    #[test]
    fn serializer_integer_form_is_stable() {
        assert_eq!(parse("42").unwrap().to_string(), "42");
        assert_eq!(parse("-7").unwrap().to_string(), "-7");
        assert_eq!(parse("2.5").unwrap().to_string(), "2.5");
        assert_eq!(
            parse("9007199254740992").unwrap().to_string(),
            "9007199254740992"
        );
    }
}

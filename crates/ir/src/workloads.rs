//! The six tensor-algebra workloads evaluated in the paper (Table II).
//!
//! | Name | Formula |
//! |------|---------|
//! | GEMM | `C[m,n] += A[m,k] × B[n,k]` |
//! | Batched-GEMV | `C[m,n] += A[m,k,n] × B[m,k]` |
//! | Conv2D | `C[k,y,x] += A[c,y+p,x+q] × B[k,c,p,q]` |
//! | Depthwise-Conv | `C[k,y,x] += A[k,y+p,x+q] × B[k,p,q]` |
//! | MTTKRP | `D[i,j] += A[i,k,l] × B[k,j] × C[l,j]` |
//! | TTMc | `D[i,j,k] += A[i,l,m] × B[l,j] × C[m,k]` |
//!
//! The `resnet_layer2`/`resnet_layer5` presets are the two ResNet Conv2D
//! layers used in Figure 5 (layer 5 is the late 7×7 feature-map layer whose
//! tiny spatial extents crater PE utilization, as §VI-A discusses).

use crate::{AccessMap, AffineExpr, Kernel, LoopNest, TensorDecl, TensorRole};

fn input(nest: &LoopNest, name: &str, dims: &[&[&str]]) -> TensorDecl {
    decl(nest, name, TensorRole::Input, dims)
}

fn output(nest: &LoopNest, name: &str, dims: &[&[&str]]) -> TensorDecl {
    decl(nest, name, TensorRole::Output, dims)
}

fn decl(nest: &LoopNest, name: &str, role: TensorRole, dims: &[&[&str]]) -> TensorDecl {
    TensorDecl::new(
        name,
        role,
        AccessMap::new(dims.iter().map(|d| AffineExpr::sum_of(nest, d)).collect()),
    )
}

/// General matrix multiplication `C[m,n] += A[m,k] × B[n,k]`.
///
/// # Examples
///
/// ```
/// use tensorlib_ir::workloads;
/// let k = workloads::gemm(16, 16, 64);
/// assert_eq!(k.macs(), 16 * 16 * 64);
/// ```
pub fn gemm(m: u64, n: u64, k: u64) -> Kernel {
    let nest = LoopNest::new(vec![("m", m), ("n", n), ("k", k)]);
    let tensors = vec![
        input(&nest, "A", &[&["m"], &["k"]]),
        input(&nest, "B", &[&["n"], &["k"]]),
        output(&nest, "C", &[&["m"], &["n"]]),
    ];
    Kernel::new("GEMM", nest, tensors).expect("GEMM is well-formed")
}

/// Batched matrix–vector product `C[m,n] += A[m,k,n] × B[m,k]`.
///
/// Tensor `A` depends on all three iterators, so it can never be reused — the
/// paper notes Batched-GEMV is restricted to unicast dataflows for `A`.
pub fn batched_gemv(m: u64, n: u64, k: u64) -> Kernel {
    let nest = LoopNest::new(vec![("m", m), ("n", n), ("k", k)]);
    let tensors = vec![
        input(&nest, "A", &[&["m"], &["k"], &["n"]]),
        input(&nest, "B", &[&["m"], &["k"]]),
        output(&nest, "C", &[&["m"], &["n"]]),
    ];
    Kernel::new("Batched-GEMV", nest, tensors).expect("Batched-GEMV is well-formed")
}

/// 2-D convolution `C[k,y,x] += A[c,y+p,x+q] × B[k,c,p,q]`.
///
/// Loop order is `(k, c, y, x, p, q)`.
pub fn conv2d(k: u64, c: u64, y: u64, x: u64, p: u64, q: u64) -> Kernel {
    let nest = LoopNest::new(vec![
        ("k", k),
        ("c", c),
        ("y", y),
        ("x", x),
        ("p", p),
        ("q", q),
    ]);
    let tensors = vec![
        input(&nest, "A", &[&["c"], &["y", "p"], &["x", "q"]]),
        input(&nest, "B", &[&["k"], &["c"], &["p"], &["q"]]),
        output(&nest, "C", &[&["k"], &["y"], &["x"]]),
    ];
    Kernel::new("Conv2D", nest, tensors).expect("Conv2D is well-formed")
}

/// Depthwise convolution `C[k,y,x] += A[k,y+p,x+q] × B[k,p,q]`.
///
/// There is no large reduction dimension (no `c` loop), which is why standard
/// systolic GEMM-style dataflows do not apply — the paper uses this kernel to
/// demonstrate generality beyond systolic generators.
pub fn depthwise_conv(k: u64, y: u64, x: u64, p: u64, q: u64) -> Kernel {
    let nest = LoopNest::new(vec![("k", k), ("y", y), ("x", x), ("p", p), ("q", q)]);
    let tensors = vec![
        input(&nest, "A", &[&["k"], &["y", "p"], &["x", "q"]]),
        input(&nest, "B", &[&["k"], &["p"], &["q"]]),
        output(&nest, "C", &[&["k"], &["y"], &["x"]]),
    ];
    Kernel::new("Depthwise-Conv", nest, tensors).expect("Depthwise-Conv is well-formed")
}

/// Matricized tensor times Khatri-Rao product
/// `D[i,j] += A[i,k,l] × B[k,j] × C[l,j]`.
pub fn mttkrp(i: u64, j: u64, k: u64, l: u64) -> Kernel {
    let nest = LoopNest::new(vec![("i", i), ("j", j), ("k", k), ("l", l)]);
    let tensors = vec![
        input(&nest, "A", &[&["i"], &["k"], &["l"]]),
        input(&nest, "B", &[&["k"], &["j"]]),
        input(&nest, "C", &[&["l"], &["j"]]),
        output(&nest, "D", &[&["i"], &["j"]]),
    ];
    Kernel::new("MTTKRP", nest, tensors).expect("MTTKRP is well-formed")
}

/// Tensor-times-matrix chain `D[i,j,k] += A[i,l,m] × B[l,j] × C[m,k]`.
pub fn ttmc(i: u64, j: u64, k: u64, l: u64, m: u64) -> Kernel {
    let nest = LoopNest::new(vec![("i", i), ("j", j), ("k", k), ("l", l), ("m", m)]);
    let tensors = vec![
        input(&nest, "A", &[&["i"], &["l"], &["m"]]),
        input(&nest, "B", &[&["l"], &["j"]]),
        input(&nest, "C", &[&["m"], &["k"]]),
        output(&nest, "D", &[&["i"], &["j"], &["k"]]),
    ];
    Kernel::new("TTMc", nest, tensors).expect("TTMc is well-formed")
}

/// ResNet layer-2 Conv2D preset: 64 output channels, 64 input channels,
/// 56×56 feature map, 3×3 kernel.
pub fn resnet_layer2() -> Kernel {
    conv2d(64, 64, 56, 56, 3, 3)
}

/// ResNet layer-5 Conv2D preset: 512 output channels, 512 input channels,
/// 7×7 feature map, 3×3 kernel. The `x = y = 7` extents are the utilization
/// cliff discussed in §VI-A of the paper.
pub fn resnet_layer5() -> Kernel {
    conv2d(512, 512, 7, 7, 3, 3)
}

/// The Table II catalog at the evaluation sizes used throughout the bench
/// harness (large enough to exercise a 16×16 array, small enough to simulate).
pub fn table2_catalog() -> Vec<Kernel> {
    vec![
        gemm(64, 64, 64),
        batched_gemv(64, 64, 64),
        resnet_layer2(),
        resnet_layer5(),
        depthwise_conv(64, 56, 56, 3, 3),
        mttkrp(32, 32, 32, 32),
        ttmc(16, 16, 16, 16, 16),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_formulas_have_expected_shapes() {
        let g = gemm(4, 5, 6);
        assert_eq!(g.input_dims(), vec![vec![4, 6], vec![5, 6]]);
        assert_eq!(g.output_dims(), vec![4, 5]);

        let bg = batched_gemv(4, 5, 6);
        assert_eq!(bg.input_dims(), vec![vec![4, 6, 5], vec![4, 6]]);
        assert_eq!(bg.output_dims(), vec![4, 5]);

        let cv = conv2d(2, 3, 8, 8, 3, 3);
        assert_eq!(cv.input_dims(), vec![vec![3, 10, 10], vec![2, 3, 3, 3]]);
        assert_eq!(cv.output_dims(), vec![2, 8, 8]);

        let dw = depthwise_conv(2, 8, 8, 3, 3);
        assert_eq!(dw.input_dims(), vec![vec![2, 10, 10], vec![2, 3, 3]]);
        assert_eq!(dw.output_dims(), vec![2, 8, 8]);

        let mt = mttkrp(2, 3, 4, 5);
        assert_eq!(mt.input_dims(), vec![vec![2, 4, 5], vec![4, 3], vec![5, 3]]);
        assert_eq!(mt.output_dims(), vec![2, 3]);

        let tt = ttmc(2, 3, 4, 5, 6);
        assert_eq!(
            tt.input_dims(),
            vec![vec![2, 5, 6], vec![5, 3], vec![6, 4]]
        );
        assert_eq!(tt.output_dims(), vec![2, 3, 4]);
    }

    #[test]
    fn conv2d_matches_hand_convolution() {
        let k = conv2d(1, 1, 3, 3, 2, 2);
        let inputs = k.random_inputs(5);
        let out = k.execute_reference(&inputs).unwrap();
        for y in 0..3i64 {
            for x in 0..3i64 {
                let mut acc = 0;
                for p in 0..2i64 {
                    for q in 0..2i64 {
                        acc += inputs[0].get(&[0, y + p, x + q]) * inputs[1].get(&[0, 0, p, q]);
                    }
                }
                assert_eq!(out.get(&[0, y, x]), acc);
            }
        }
    }

    #[test]
    fn mttkrp_matches_hand_computation() {
        let kern = mttkrp(2, 2, 3, 3);
        let ins = kern.random_inputs(11);
        let out = kern.execute_reference(&ins).unwrap();
        for i in 0..2i64 {
            for j in 0..2i64 {
                let mut acc = 0;
                for k in 0..3i64 {
                    for l in 0..3i64 {
                        acc += ins[0].get(&[i, k, l]) * ins[1].get(&[k, j]) * ins[2].get(&[l, j]);
                    }
                }
                assert_eq!(out.get(&[i, j]), acc);
            }
        }
    }

    #[test]
    fn ttmc_matches_hand_computation() {
        let kern = ttmc(2, 2, 2, 3, 3);
        let ins = kern.random_inputs(13);
        let out = kern.execute_reference(&ins).unwrap();
        for i in 0..2i64 {
            for j in 0..2i64 {
                for k in 0..2i64 {
                    let mut acc = 0;
                    for l in 0..3i64 {
                        for m in 0..3i64 {
                            acc += ins[0].get(&[i, l, m])
                                * ins[1].get(&[l, j])
                                * ins[2].get(&[m, k]);
                        }
                    }
                    assert_eq!(out.get(&[i, j, k]), acc);
                }
            }
        }
    }

    #[test]
    fn batched_gemv_matches_hand_computation() {
        let kern = batched_gemv(2, 3, 4);
        let ins = kern.random_inputs(17);
        let out = kern.execute_reference(&ins).unwrap();
        for m in 0..2i64 {
            for n in 0..3i64 {
                let mut acc = 0;
                for k in 0..4i64 {
                    acc += ins[0].get(&[m, k, n]) * ins[1].get(&[m, k]);
                }
                assert_eq!(out.get(&[m, n]), acc);
            }
        }
    }

    #[test]
    fn depthwise_keeps_channels_independent() {
        let kern = depthwise_conv(2, 3, 3, 2, 2);
        let mut ins = kern.random_inputs(23);
        // Ensure the weight multiplying the perturbed activation is nonzero.
        ins[1].set(&[1, 0, 0], 1);
        let before = kern.execute_reference(&ins).unwrap();
        // Perturb channel 1's input; channel 0 outputs must not change.
        let v = ins[0].get(&[1, 0, 0]);
        ins[0].set(&[1, 0, 0], v + 5);
        let after = kern.execute_reference(&ins).unwrap();
        for y in 0..3i64 {
            for x in 0..3i64 {
                assert_eq!(before.get(&[0, y, x]), after.get(&[0, y, x]));
            }
        }
        assert_ne!(before.get(&[1, 0, 0]), after.get(&[1, 0, 0]));
    }

    #[test]
    fn resnet_presets() {
        assert_eq!(resnet_layer2().loop_nest().extent_of("y"), Some(56));
        assert_eq!(resnet_layer5().loop_nest().extent_of("x"), Some(7));
        assert_eq!(resnet_layer5().loop_nest().extent_of("k"), Some(512));
    }

    #[test]
    fn catalog_is_complete() {
        let names: Vec<String> = table2_catalog()
            .iter()
            .map(|k| k.name().to_string())
            .collect();
        for expected in [
            "GEMM",
            "Batched-GEMV",
            "Conv2D",
            "Depthwise-Conv",
            "MTTKRP",
            "TTMc",
        ] {
            assert!(names.iter().any(|n| n == expected), "missing {expected}");
        }
    }
}

//! The workspace's one deterministic PRNG.
//!
//! Fault sampling, netlist fuzzing, and verification campaigns all need
//! reproducible streams from a single `u64` seed without pulling an RNG
//! dependency into the hardware crates. They previously each carried their
//! own copy of this generator; it lives here once, and its output stream is
//! pinned by a golden-vector test so recorded campaign seeds (fuzz corpora,
//! resilience reports) keep meaning the same draws forever.

/// A tiny deterministic PRNG (Steele et al.'s splitmix64).
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Seeds the stream.
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// The next 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A draw uniform-ish in `0..n` (modulo reduction — fine for site
    /// sampling, where `n` is tiny relative to 2^64).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "empty draw range");
        self.next_u64() % n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The output stream is pinned against the published splitmix64
    /// reference vectors (seed 0 starts 0xE220A8397B1DCDAF). If this test
    /// fails, every recorded campaign seed in the repo changes meaning.
    #[test]
    fn golden_vectors_pin_the_stream() {
        let draw4 = |seed: u64| {
            let mut r = SplitMix64::new(seed);
            [r.next_u64(), r.next_u64(), r.next_u64(), r.next_u64()]
        };
        assert_eq!(
            draw4(0),
            [
                16294208416658607535,
                7960286522194355700,
                487617019471545679,
                17909611376780542444,
            ]
        );
        assert_eq!(
            draw4(42),
            [
                13679457532755275413,
                2949826092126892291,
                5139283748462763858,
                6349198060258255764,
            ]
        );
        assert_eq!(
            draw4(0xDEAD_BEEF),
            [
                5395234354446855067,
                16021672434157553954,
                153047824787635229,
                8387618351419058064,
            ]
        );
    }

    #[test]
    fn below_stays_in_range_and_is_deterministic() {
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(7);
        for _ in 0..100 {
            let x = a.below(13);
            assert!(x < 13);
            assert_eq!(x, b.below(13));
        }
    }

    #[test]
    #[should_panic(expected = "empty draw range")]
    fn below_zero_panics() {
        SplitMix64::new(1).below(0);
    }
}

//! Space-Time Transformation (STT) dataflow analysis — the core contribution
//! of TensorLib (DAC 2021).
//!
//! A spatial accelerator executes a loop nest by assigning every loop point
//! `x` a place and a time: `[p; t] = T·x`, where `p` is a 2-D PE coordinate
//! and `t` a cycle number. Because a tensor access `I = A·x` is many-to-one,
//! the *same* tensor element is touched by a whole affine subspace of loop
//! points; pushed through `T`, that subspace becomes the **reuse subspace**
//! in space-time, and its rank and orientation determine the hardware
//! dataflow of that tensor (paper Table I):
//!
//! | rank | shape                | dataflow |
//! |------|----------------------|----------|
//! | 0    | point                | unicast |
//! | 1    | `dp = 0, dt ≠ 0`     | stationary |
//! | 1    | `dp ≠ 0, dt ≠ 0`     | systolic |
//! | 1    | `dp ≠ 0, dt = 0`     | multicast (reduction tree for outputs) |
//! | 2    | plane ⊥ t-axis       | broadcast |
//! | 2    | plane ∥ t-axis       | multicast + stationary |
//! | 2    | plane ∦ t-axis       | systolic + multicast |
//!
//! This crate implements that analysis exactly (over rationals), plus:
//!
//! - [`Stt`]: validated space-time transformation matrices.
//! - [`LoopSelection`]: the choice of three loops mapped to space-time; the
//!   rest run sequentially outside.
//! - [`classify_tensor`] / [`FlowClass`]: the Table I classification.
//! - [`Dataflow`]: the complete per-kernel analysis with paper-style names
//!   such as `KCX-SST`.
//! - [`dse`]: exhaustive enumeration of the dataflow design space.
//!
//! # Examples
//!
//! Reproduce the paper's running example — for GEMM with
//! `T = [[1,0,0],[0,1,0],[1,1,1]]`, tensor `A[m,k]` is systolic with reuse
//! vector `(dp, dt) = (0, 1, 1)`:
//!
//! ```
//! use tensorlib_dataflow::{Dataflow, LoopSelection, Stt, FlowClass};
//! use tensorlib_ir::workloads;
//!
//! let gemm = workloads::gemm(16, 16, 16);
//! let sel = LoopSelection::by_names(&gemm, ["m", "n", "k"])?;
//! let stt = Stt::from_rows([[1, 0, 0], [0, 1, 0], [1, 1, 1]])?;
//! let df = Dataflow::analyze(&gemm, sel, stt)?;
//! assert_eq!(
//!     df.tensor_flow("A").unwrap().class,
//!     FlowClass::Systolic { dp: [0, 1], dt: 1 }
//! );
//! assert_eq!(df.name(), "MNK-SST");
//! # Ok::<(), tensorlib_dataflow::DataflowError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod classify;
mod dataflow;
pub mod dse;
mod error;
mod selection;
mod stt;

pub use classify::{classify_tensor, FlowClass, TensorFlow};
pub use dataflow::Dataflow;
pub use error::DataflowError;
pub use selection::LoopSelection;
pub use stt::Stt;

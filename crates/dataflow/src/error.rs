//! Error type for dataflow analysis.

use std::fmt;

/// Error produced by STT construction or dataflow analysis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DataflowError {
    /// The STT matrix is singular, so the loop-point → space-time mapping is
    /// not one-to-one (the paper requires `T` to be full rank).
    SingularStt,
    /// A loop name passed to [`crate::LoopSelection`] does not exist in the
    /// kernel's nest.
    UnknownLoop(String),
    /// The same loop was selected more than once.
    DuplicateLoop(String),
    /// The kernel has fewer than three loops, so no 2-D space + time
    /// selection exists.
    TooFewLoops {
        /// Iterators available in the kernel.
        available: usize,
    },
    /// A dataflow name (e.g. `"KCX-SST"`) could not be parsed or matched.
    BadName(String),
}

impl fmt::Display for DataflowError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataflowError::SingularStt => {
                write!(f, "space-time transformation matrix is singular")
            }
            DataflowError::UnknownLoop(n) => write!(f, "unknown loop iterator {n:?}"),
            DataflowError::DuplicateLoop(n) => write!(f, "loop iterator {n:?} selected twice"),
            DataflowError::TooFewLoops { available } => write!(
                f,
                "space-time mapping needs 3 loops, kernel has only {available}"
            ),
            DataflowError::BadName(n) => write!(f, "malformed dataflow name {n:?}"),
        }
    }
}

impl std::error::Error for DataflowError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(DataflowError::SingularStt.to_string().contains("singular"));
        assert!(DataflowError::UnknownLoop("z".into())
            .to_string()
            .contains("\"z\""));
        assert!(DataflowError::TooFewLoops { available: 2 }
            .to_string()
            .contains("only 2"));
    }
}

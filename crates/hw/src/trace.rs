//! Simulation observability: hardware counters, a bounded event trace, and
//! VCD waveform export for the netlist interpreter.
//!
//! The interpreter is otherwise a black box — ports can be peeked, but
//! utilization, stalls, and scratchpad traffic are invisible. A
//! [`TraceConfig`] attached via [`crate::interp::Interpreter::with_trace`]
//! (or `attach_trace`) selects what to observe; the interpreter then
//! accumulates an [`InterpreterStats`] while it runs:
//!
//! - **Per-PE activity** ([`PeCounters`]): a PE *issues a MAC* in a cycle
//!   when the array enable is high and its `product` net is nonzero — with
//!   nonzero stimulus this counts exactly the useful multiply-accumulates.
//!   `enabled_cycles` counts every cycle the enable was high; the difference
//!   is pipeline-fill / drain slack inside the compute phase.
//! - **Per-bank scratchpad traffic** ([`BankCounters`]): a read (write) is a
//!   cycle with the bank's `en` (`wen`) high; a *conflict* is both in the
//!   same cycle — the behavioural model services both, but a single-ported
//!   SRAM would serialize them, so the counter is the design's port-pressure
//!   signal. A *swap* is a `buf_sel` toggle on a double-buffered bank.
//! - **Controller breakdown** ([`CtrlCounters`]): each cycle is attributed
//!   to load / compute / drain from the `load_en` / `en` / `drain_en` nets;
//!   cycles matching none of them are idle (stall) cycles. `swap_pulses`
//!   counts cycles with the ping-pong `swap` strobe high.
//!
//! Independently, any set of nets can be *watched*: every value change is
//! recorded into a bounded ring buffer of [`TraceEvent`]s (oldest events are
//! folded into the baseline when the ring overflows) and can be exported as
//! a VCD waveform with [`crate::interp::Interpreter::write_vcd`].
//! [`parse_vcd`] is a minimal reader for round-tripping the exported text.
//!
//! Everything here is strictly pay-for-what-you-use: an interpreter without
//! an attached trace carries a `None` and its step path is unchanged (the
//! perfgate bench enforces < 3 % overhead with tracing disabled).

use std::collections::VecDeque;
use std::fmt;

use serde::Serialize;

use crate::array::HwError;
use crate::interp::FlatDesign;

/// What the observability layer should record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceConfig {
    /// Accumulate PE / bank / controller counters.
    pub counters: bool,
    /// Hierarchical names of nets to watch for the event trace / VCD export.
    pub watch: Vec<String>,
    /// Maximum retained [`TraceEvent`]s; older events are folded into the
    /// waveform baseline and counted in `events_dropped`.
    pub ring_capacity: usize,
}

impl Default for TraceConfig {
    fn default() -> TraceConfig {
        TraceConfig {
            counters: true,
            watch: Vec::new(),
            ring_capacity: 4096,
        }
    }
}

impl TraceConfig {
    /// Counters on, no watched nets (the cheapest useful configuration).
    pub fn counters_only() -> TraceConfig {
        TraceConfig::default()
    }

    /// Nothing recorded; attaching this is equivalent to no trace at all.
    pub fn disabled() -> TraceConfig {
        TraceConfig {
            counters: false,
            watch: Vec::new(),
            ring_capacity: 0,
        }
    }

    /// Adds watched nets (builder style).
    pub fn with_watch<I, S>(mut self, nets: I) -> TraceConfig
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.watch.extend(nets.into_iter().map(Into::into));
        self
    }

    /// `true` if attaching this config records anything.
    pub fn is_enabled(&self) -> bool {
        self.counters || !self.watch.is_empty()
    }
}

/// Activity counters for one processing element.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct PeCounters {
    /// Hierarchical instance path (e.g. `array_i.pe_r0c1`).
    pub name: String,
    /// Row position parsed from the instance name (0 if unparsable).
    pub row: usize,
    /// Column position parsed from the instance name (0 if unparsable).
    pub col: usize,
    /// Cycles with the array enable high and a nonzero `product`.
    pub mac_cycles: u64,
    /// Cycles with the array enable high.
    pub enabled_cycles: u64,
}

impl PeCounters {
    /// Cycles this PE did no useful work, out of `total_cycles`.
    pub fn idle_cycles(&self, total_cycles: u64) -> u64 {
        total_cycles.saturating_sub(self.mac_cycles)
    }

    /// `mac_cycles / total_cycles` (0 when no cycles ran).
    pub fn utilization(&self, total_cycles: u64) -> f64 {
        if total_cycles == 0 {
            0.0
        } else {
            self.mac_cycles as f64 / total_cycles as f64
        }
    }
}

/// Scratchpad traffic counters for one memory bank.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct BankCounters {
    /// Bank instance path (e.g. `bank_0_a_feed0`).
    pub name: String,
    /// Words per buffer.
    pub words: u64,
    /// `true` if the bank is double-buffered.
    pub double_buffered: bool,
    /// Cycles with the read enable high.
    pub reads: u64,
    /// Cycles with the write enable high.
    pub writes: u64,
    /// Cycles with read *and* write enables high (port pressure).
    pub conflicts: u64,
    /// `buf_sel` toggles (double-buffer swaps).
    pub swaps: u64,
}

/// Controller-phase cycle breakdown.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize)]
pub struct CtrlCounters {
    /// Cycles with the array enable (`en`) high.
    pub compute_cycles: u64,
    /// Cycles with the stationary-load enable (`load_en`) high.
    pub load_cycles: u64,
    /// Cycles with the drain enable (`drain_en`) high.
    pub drain_cycles: u64,
    /// Cycles matching no phase enable: the stall/startup residue.
    pub idle_cycles: u64,
    /// Cycles with the double-buffer `swap` strobe high.
    pub swap_pulses: u64,
}

/// Everything the observability layer accumulated over a run.
#[derive(Debug, Clone, Default, PartialEq, Serialize)]
pub struct InterpreterStats {
    /// Clock cycles stepped since the trace was attached.
    pub cycles: u64,
    /// Per-PE activity, in elaboration order.
    pub pes: Vec<PeCounters>,
    /// Per-bank traffic, in elaboration order.
    pub banks: Vec<BankCounters>,
    /// Controller-phase breakdown.
    pub ctrl: CtrlCounters,
    /// Value-change events recorded into the ring buffer.
    pub events_recorded: u64,
    /// Events evicted from the ring (folded into the VCD baseline).
    pub events_dropped: u64,
}

impl InterpreterStats {
    /// Total MAC issue slots across all PEs.
    pub fn total_mac_cycles(&self) -> u64 {
        self.pes.iter().map(|p| p.mac_cycles).sum()
    }

    /// Mean PE utilization: `total MACs / (PEs × cycles)`.
    pub fn utilization(&self) -> f64 {
        let slots = self.pes.len() as u64 * self.cycles;
        if slots == 0 {
            0.0
        } else {
            self.total_mac_cycles() as f64 / slots as f64
        }
    }

    /// Total bank conflicts across all banks.
    pub fn total_bank_conflicts(&self) -> u64 {
        self.banks.iter().map(|b| b.conflicts).sum()
    }

    /// Cycles where the controller kept the array in no active phase.
    pub fn stall_cycles(&self) -> u64 {
        self.ctrl.idle_cycles
    }
}

/// One recorded value change on a watched net.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct TraceEvent {
    /// The clock cycle (1-based: the value after the Nth `step`).
    pub cycle: u64,
    /// Index into the watched-net list (see
    /// [`crate::interp::Interpreter::watched_signals`]).
    pub watch: usize,
    /// The new value.
    pub value: u64,
}

#[derive(Debug, Clone)]
struct WatchedNet {
    name: String,
    width: u32,
    slot: usize,
    last: u64,
}

#[derive(Debug, Clone, Copy)]
struct BankSlots {
    en: usize,
    wen: usize,
    buf_sel: Option<usize>,
}

/// The interpreter-side trace machinery: counter slots resolved to value
/// indexes at attach time, plus the bounded event ring.
#[derive(Debug, Clone)]
pub(crate) struct TraceState {
    counters_on: bool,
    pub(crate) stats: InterpreterStats,
    en_slot: Option<usize>,
    load_en_slot: Option<usize>,
    drain_en_slot: Option<usize>,
    swap_slot: Option<usize>,
    /// `product` value slots, parallel to `stats.pes`.
    pe_slots: Vec<usize>,
    /// Bank port slots, parallel to `stats.banks`.
    bank_slots: Vec<BankSlots>,
    /// Previous `buf_sel` per bank (swap edge detection).
    prev_buf_sel: Vec<u64>,
    watched: Vec<WatchedNet>,
    /// Watched-net values at the ring's horizon (attach time, advanced by
    /// evicted events).
    baseline: Vec<u64>,
    ring: VecDeque<TraceEvent>,
    ring_capacity: usize,
}

/// Parses `pe_r<row>c<col>` from the last path segment of a PE instance.
fn parse_pe_coords(segment: &str) -> Option<(usize, usize)> {
    let rest = segment.strip_prefix("pe_r")?;
    let c_pos = rest.find('c')?;
    let row = rest[..c_pos].parse().ok()?;
    let col = rest[c_pos + 1..].parse().ok()?;
    Some((row, col))
}

impl TraceState {
    /// Resolves a [`TraceConfig`] against a flattened design. `resolve` is
    /// the compiled alias-forwarding map (identity when absent).
    pub(crate) fn build(
        flat: &FlatDesign,
        resolve: Option<&[u32]>,
        cfg: &TraceConfig,
    ) -> Result<Box<TraceState>, HwError> {
        let slot_of = |id: usize| -> usize {
            resolve.map_or(id, |r| r[id] as usize)
        };
        let find_net = |name: &str| -> Option<usize> {
            flat.nets
                .iter()
                .position(|n| n.name == name)
                .map(&slot_of)
        };

        let mut pes = Vec::new();
        let mut pe_slots = Vec::new();
        if cfg.counters {
            for (id, net) in flat.nets.iter().enumerate() {
                let prefix = if net.name == "product" {
                    Some("")
                } else {
                    net.name.strip_suffix(".product")
                };
                let Some(prefix) = prefix else { continue };
                let name = if prefix.is_empty() { "pe" } else { prefix };
                let segment = name.rsplit('.').next().unwrap_or(name);
                let (row, col) = parse_pe_coords(segment).unwrap_or((0, 0));
                pes.push(PeCounters {
                    name: name.to_string(),
                    row,
                    col,
                    mac_cycles: 0,
                    enabled_cycles: 0,
                });
                pe_slots.push(slot_of(id));
            }
        }

        let mut banks = Vec::new();
        let mut bank_slots = Vec::new();
        if cfg.counters {
            for b in &flat.banks {
                banks.push(BankCounters {
                    name: b.name.clone(),
                    words: b.spec.words(),
                    double_buffered: b.spec.is_double_buffered(),
                    reads: 0,
                    writes: 0,
                    conflicts: 0,
                    swaps: 0,
                });
                bank_slots.push(BankSlots {
                    en: slot_of(b.en),
                    wen: slot_of(b.wen),
                    buf_sel: b.buf_sel.map(&slot_of),
                });
            }
        }

        let mut watched = Vec::with_capacity(cfg.watch.len());
        for name in &cfg.watch {
            let id = flat
                .nets
                .iter()
                .position(|n| n.name == *name)
                .ok_or_else(|| HwError::UnknownNet {
                    net: name.clone(),
                })?;
            watched.push(WatchedNet {
                name: name.clone(),
                width: flat.nets[id].width,
                slot: slot_of(id),
                last: 0,
            });
        }

        let n_banks = bank_slots.len();
        Ok(Box::new(TraceState {
            counters_on: cfg.counters,
            stats: InterpreterStats {
                pes,
                banks,
                ..InterpreterStats::default()
            },
            en_slot: find_net("en"),
            load_en_slot: find_net("load_en"),
            drain_en_slot: find_net("drain_en"),
            swap_slot: find_net("swap"),
            pe_slots,
            bank_slots,
            prev_buf_sel: vec![0; n_banks],
            baseline: vec![0; watched.len()],
            watched,
            ring: VecDeque::with_capacity(cfg.ring_capacity.min(4096)),
            ring_capacity: cfg.ring_capacity,
        }))
    }

    /// Captures the current settled values as the trace baseline (watched
    /// nets' VCD time-0 dump, bank `buf_sel` edge detectors).
    pub(crate) fn snapshot(&mut self, values: &[u64]) {
        for (w, base) in self.watched.iter_mut().zip(&mut self.baseline) {
            w.last = values[w.slot];
            *base = w.last;
        }
        for (b, prev) in self.bank_slots.iter().zip(&mut self.prev_buf_sel) {
            *prev = b.buf_sel.map_or(0, |s| values[s] & 1);
        }
    }

    /// Counter hook: called once per clock, on the settled pre-commit values
    /// (what the hardware's registers see on this edge).
    pub(crate) fn observe_cycle(&mut self, values: &[u64]) {
        self.stats.cycles += 1;
        if !self.counters_on {
            return;
        }
        let high = |slot: Option<usize>| slot.is_some_and(|s| values[s] & 1 == 1);
        let compute = high(self.en_slot);
        let load = high(self.load_en_slot);
        let drain = high(self.drain_en_slot);
        let ctrl = &mut self.stats.ctrl;
        if compute {
            ctrl.compute_cycles += 1;
        }
        if load {
            ctrl.load_cycles += 1;
        }
        if drain {
            ctrl.drain_cycles += 1;
        }
        if !(compute || load || drain) {
            ctrl.idle_cycles += 1;
        }
        if high(self.swap_slot) {
            ctrl.swap_pulses += 1;
        }

        // A design without an enable net (bare combinational module) counts
        // every cycle as enabled.
        let pe_active = self.en_slot.is_none_or(|s| values[s] & 1 == 1);
        if pe_active {
            for (pe, &slot) in self.stats.pes.iter_mut().zip(&self.pe_slots) {
                pe.enabled_cycles += 1;
                if values[slot] != 0 {
                    pe.mac_cycles += 1;
                }
            }
        }

        for (i, (bank, slots)) in self
            .stats
            .banks
            .iter_mut()
            .zip(&self.bank_slots)
            .enumerate()
        {
            let r = values[slots.en] & 1 == 1;
            let w = values[slots.wen] & 1 == 1;
            if r {
                bank.reads += 1;
            }
            if w {
                bank.writes += 1;
            }
            if r && w {
                bank.conflicts += 1;
            }
            if let Some(sel) = slots.buf_sel {
                let v = values[sel] & 1;
                if v != self.prev_buf_sel[i] {
                    bank.swaps += 1;
                    self.prev_buf_sel[i] = v;
                }
            }
        }
    }

    /// Event hook: called after the post-commit resettle; records one
    /// [`TraceEvent`] per watched net whose value changed this cycle.
    pub(crate) fn record_events(&mut self, values: &[u64]) {
        let cycle = self.stats.cycles;
        for (i, w) in self.watched.iter_mut().enumerate() {
            let v = values[w.slot];
            if v == w.last {
                continue;
            }
            w.last = v;
            if self.ring_capacity == 0 {
                self.stats.events_dropped += 1;
                continue;
            }
            if self.ring.len() == self.ring_capacity {
                // Fold the oldest event into the baseline so the exported
                // waveform stays consistent from its (advanced) horizon.
                if let Some(old) = self.ring.pop_front() {
                    self.baseline[old.watch] = old.value;
                    self.stats.events_dropped += 1;
                }
            }
            self.ring.push_back(TraceEvent {
                cycle,
                watch: i,
                value: v,
            });
            self.stats.events_recorded += 1;
        }
    }

    /// The retained events, oldest first.
    pub(crate) fn events(&self) -> Vec<TraceEvent> {
        self.ring.iter().copied().collect()
    }

    /// Watched-net names and widths, in watch-index order.
    pub(crate) fn signals(&self) -> Vec<(String, u32)> {
        self.watched
            .iter()
            .map(|w| (w.name.clone(), w.width))
            .collect()
    }

    /// Renders the watched nets as a VCD waveform: one timescale unit per
    /// clock cycle, baseline dumped at `#0` (when events were dropped, the
    /// baseline is the state at the ring's horizon, still stamped `#0`).
    pub(crate) fn to_vcd(&self) -> String {
        let mut out = String::from("$timescale 1ns $end\n$scope module trace $end\n");
        for (i, w) in self.watched.iter().enumerate() {
            out.push_str(&format!(
                "$var wire {} {} {} $end\n",
                w.width,
                vcd_id(i),
                w.name
            ));
        }
        out.push_str("$upscope $end\n$enddefinitions $end\n#0\n$dumpvars\n");
        for (i, w) in self.watched.iter().enumerate() {
            push_change(&mut out, w.width, self.baseline[i], &vcd_id(i));
        }
        out.push_str("$end\n");
        let mut current: Option<u64> = None;
        for ev in &self.ring {
            if current != Some(ev.cycle) {
                out.push_str(&format!("#{}\n", ev.cycle));
                current = Some(ev.cycle);
            }
            let w = &self.watched[ev.watch];
            push_change(&mut out, w.width, ev.value, &vcd_id(ev.watch));
        }
        out
    }
}

/// The VCD identifier code for watch index `i` (printable ASCII, base 94).
fn vcd_id(mut i: usize) -> String {
    let mut s = String::new();
    loop {
        s.push((b'!' + (i % 94) as u8) as char);
        i /= 94;
        if i == 0 {
            break;
        }
    }
    s
}

fn push_change(out: &mut String, width: u32, value: u64, id: &str) {
    if width == 1 {
        out.push_str(&format!("{}{}\n", value & 1, id));
    } else {
        out.push_str(&format!("b{value:b} {id}\n"));
    }
}

/// VCD parse failure (malformed token stream).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VcdParseError(pub String);

impl fmt::Display for VcdParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "VCD parse error: {}", self.0)
    }
}

impl std::error::Error for VcdParseError {}

/// One `$var` declaration from a VCD header.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VcdSignal {
    /// The identifier code.
    pub id: String,
    /// The declared net name.
    pub name: String,
    /// Bit width.
    pub width: u32,
}

/// One value change from a VCD body (`$dumpvars` entries appear at time 0).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VcdChange {
    /// Timestamp (clock cycle).
    pub time: u64,
    /// Identifier code of the changed signal.
    pub id: String,
    /// The new value.
    pub value: u64,
}

/// A parsed VCD document (the subset the exporter emits).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct VcdDocument {
    /// `$timescale` text, e.g. `1ns`.
    pub timescale: String,
    /// Declared signals.
    pub signals: Vec<VcdSignal>,
    /// All value changes, in file order.
    pub changes: Vec<VcdChange>,
}

impl VcdDocument {
    /// The identifier code declared for `name`, if any.
    pub fn id_of(&self, name: &str) -> Option<&str> {
        self.signals
            .iter()
            .find(|s| s.name == name)
            .map(|s| s.id.as_str())
    }

    /// Value changes at strictly positive time for one identifier code.
    pub fn changes_of(&self, id: &str) -> Vec<(u64, u64)> {
        self.changes
            .iter()
            .filter(|c| c.id == id && c.time > 0)
            .map(|c| (c.time, c.value))
            .collect()
    }
}

/// Parses the VCD subset produced by the exporter: `$var` declarations,
/// `#time` stamps, scalar (`0<id>` / `1<id>`) and vector (`b<bits> <id>`)
/// value changes. Header sections other than `$var` / `$timescale` are
/// skipped; `x`/`z` states are rejected (the interpreter is two-valued).
pub fn parse_vcd(text: &str) -> Result<VcdDocument, VcdParseError> {
    let mut doc = VcdDocument::default();
    let mut time = 0u64;
    let mut it = text.split_whitespace();
    let err = |m: &str| VcdParseError(m.to_string());
    while let Some(tok) = it.next() {
        match tok {
            "$var" => {
                let _kind = it
                    .next()
                    .ok_or_else(|| err("truncated $var: missing kind"))?;
                let wtok = it
                    .next()
                    .ok_or_else(|| err("truncated $var: missing width"))?;
                let width: u32 = wtok
                    .parse()
                    .map_err(|_| VcdParseError(format!("bad $var width {wtok:?}")))?;
                let id = it
                    .next()
                    .ok_or_else(|| err("truncated $var: missing identifier code"))?;
                let name = it
                    .next()
                    .ok_or_else(|| err("truncated $var: missing net name"))?;
                doc.signals.push(VcdSignal {
                    id: id.to_string(),
                    name: name.to_string(),
                    width,
                });
                for t in it.by_ref() {
                    if t == "$end" {
                        break;
                    }
                }
            }
            "$timescale" => {
                let mut parts = Vec::new();
                for t in it.by_ref() {
                    if t == "$end" {
                        break;
                    }
                    parts.push(t);
                }
                doc.timescale = parts.join(" ");
            }
            // $dumpvars contents are ordinary value changes; its closing
            // $end (and any stray $end) is a no-op.
            "$dumpvars" | "$end" => {}
            t if t.starts_with('$') => {
                for t2 in it.by_ref() {
                    if t2 == "$end" {
                        break;
                    }
                }
            }
            t if t.starts_with('#') => {
                time = t[1..]
                    .parse()
                    .map_err(|_| VcdParseError(format!("bad timestamp {t:?}")))?;
            }
            t if t.starts_with('b') || t.starts_with('B') => {
                let value = u64::from_str_radix(&t[1..], 2)
                    .map_err(|_| VcdParseError(format!("bad vector value {t:?}")))?;
                let id = it
                    .next()
                    .ok_or_else(|| VcdParseError(format!("vector change {t:?} missing id")))?;
                doc.changes.push(VcdChange {
                    time,
                    id: id.to_string(),
                    value,
                });
            }
            t if t.starts_with('0') || t.starts_with('1') => {
                if t.len() < 2 {
                    return Err(VcdParseError(format!("scalar change {t:?} missing id")));
                }
                doc.changes.push(VcdChange {
                    time,
                    id: t[1..].to_string(),
                    value: u64::from(t.as_bytes()[0] - b'0'),
                });
            }
            other => {
                return Err(VcdParseError(format!("unexpected token {other:?}")));
            }
        }
    }
    Ok(doc)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vcd_ids_are_printable_and_distinct() {
        let ids: Vec<String> = (0..200).map(vcd_id).collect();
        for id in &ids {
            assert!(id.chars().all(|c| ('!'..='~').contains(&c)), "{id:?}");
        }
        let mut dedup = ids.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), ids.len());
    }

    #[test]
    fn parse_vcd_reads_exported_subset() {
        let text = "$timescale 1ns $end\n$scope module trace $end\n\
                    $var wire 1 ! en $end\n$var wire 16 \" bus $end\n\
                    $upscope $end\n$enddefinitions $end\n\
                    #0\n$dumpvars\n0!\nb0 \"\n$end\n\
                    #3\n1!\nb101 \"\n#7\n0!\n";
        let doc = parse_vcd(text).unwrap();
        assert_eq!(doc.timescale, "1ns");
        assert_eq!(doc.signals.len(), 2);
        assert_eq!(doc.id_of("en"), Some("!"));
        assert_eq!(doc.id_of("bus"), Some("\""));
        assert_eq!(doc.changes_of("!"), vec![(3, 1), (7, 0)]);
        assert_eq!(doc.changes_of("\""), vec![(3, 5)]);
        // Baseline entries parse as time-0 changes.
        assert_eq!(doc.changes[0], VcdChange { time: 0, id: "!".into(), value: 0 });
    }

    #[test]
    fn parse_vcd_rejects_garbage() {
        assert!(parse_vcd("#abc").is_err());
        assert!(parse_vcd("wat").is_err());
        assert!(parse_vcd("bxx !").is_err());
    }

    #[test]
    fn parse_vcd_errors_name_the_offending_token() {
        let e = parse_vcd("#abc").unwrap_err();
        assert!(e.0.contains("\"#abc\""), "{e}");
        let e = parse_vcd("bxx !").unwrap_err();
        assert!(e.0.contains("\"bxx\""), "{e}");
        let e = parse_vcd("$var wire huge ! en $end").unwrap_err();
        assert!(e.0.contains("\"huge\""), "{e}");
        let e = parse_vcd("$var wire 1").unwrap_err();
        assert!(e.0.contains("truncated $var"), "{e}");
    }

    /// Robustness sweep: truncating the exported subset at every byte
    /// boundary, or mangling any single byte, must produce Ok or a
    /// descriptive Err — never a panic.
    #[test]
    fn parse_vcd_survives_truncation_and_mangling() {
        let text = "$timescale 1ns $end\n$scope module trace $end\n\
                    $var wire 1 ! en $end\n$var wire 16 \" bus $end\n\
                    $upscope $end\n$enddefinitions $end\n\
                    #0\n$dumpvars\n0!\nb0 \"\n$end\n\
                    #3\n1!\nb101 \"\n#7\n0!\n";
        for cut in 0..=text.len() {
            if !text.is_char_boundary(cut) {
                continue;
            }
            // Either outcome is fine; the point is that it returns.
            let _ = parse_vcd(&text[..cut]);
        }
        let bytes = text.as_bytes();
        for pos in 0..bytes.len() {
            let mut mangled = bytes.to_vec();
            mangled[pos] ^= 0xA5; // deterministic corruption
            let corrupted = String::from_utf8_lossy(&mangled);
            match parse_vcd(&corrupted) {
                Ok(_) => {}
                Err(e) => assert!(!e.0.is_empty(), "empty error at byte {pos}"),
            }
        }
    }

    #[test]
    fn pe_coordinate_parsing() {
        assert_eq!(parse_pe_coords("pe_r0c1"), Some((0, 1)));
        assert_eq!(parse_pe_coords("pe_r12c7"), Some((12, 7)));
        assert_eq!(parse_pe_coords("pe"), None);
        assert_eq!(parse_pe_coords("pe_r1"), None);
    }

    #[test]
    fn stats_summaries() {
        let mut s = InterpreterStats::default();
        assert_eq!(s.utilization(), 0.0);
        s.cycles = 10;
        s.pes.push(PeCounters {
            name: "pe_r0c0".into(),
            row: 0,
            col: 0,
            mac_cycles: 5,
            enabled_cycles: 10,
        });
        s.pes.push(PeCounters {
            name: "pe_r0c1".into(),
            row: 0,
            col: 1,
            mac_cycles: 10,
            enabled_cycles: 10,
        });
        assert_eq!(s.total_mac_cycles(), 15);
        assert!((s.utilization() - 0.75).abs() < 1e-12);
        assert_eq!(s.pes[0].idle_cycles(10), 5);
        assert!((s.pes[0].utilization(10) - 0.5).abs() < 1e-12);
    }
}

//! Failure injection: every guard in the stack must actually fire.
//!
//! These tests construct deliberately broken inputs at each layer — singular
//! STT matrices, malformed kernels, unwireable reuse vectors, corrupted
//! netlists, bad elaborations, wrong simulator pairings — and assert the
//! library reports them as typed errors rather than producing wrong hardware
//! silently.

use tensorlib::dataflow::{Dataflow, DataflowError, LoopSelection, Stt};
use tensorlib::hw::design::{generate, HwConfig};
use tensorlib::hw::interp::{elaborate, ElaborateError};
use tensorlib::hw::netlist::{Expr, Module, NetlistError};
use tensorlib::hw::{ArrayConfig, HwError};
use tensorlib::ir::{workloads, Kernel, KernelError, LoopNest, TensorRole};
use tensorlib::sim::{functional, SimError};

#[test]
fn singular_stt_is_rejected() {
    for rows in [
        [[0, 0, 0], [0, 1, 0], [0, 0, 1]],
        [[1, 1, 0], [1, 1, 0], [0, 0, 1]],
        [[1, 2, 3], [2, 4, 6], [1, 1, 1]],
    ] {
        assert_eq!(Stt::from_rows(rows).unwrap_err(), DataflowError::SingularStt);
    }
}

#[test]
fn malformed_kernels_are_rejected() {
    use tensorlib::ir::{AccessMap, AffineExpr, TensorDecl};
    let nest = LoopNest::new(vec![("i", 2), ("j", 2), ("k", 2)]);
    let decl = |name: &str, role| {
        TensorDecl::new(
            name,
            role,
            AccessMap::new(vec![AffineExpr::var(&nest, "i")]),
        )
    };
    // No inputs.
    assert_eq!(
        Kernel::new("x", nest.clone(), vec![decl("C", TensorRole::Output)]).unwrap_err(),
        KernelError::MissingInputs
    );
    // Two outputs.
    assert_eq!(
        Kernel::new(
            "x",
            nest.clone(),
            vec![
                decl("A", TensorRole::Input),
                decl("C", TensorRole::Output),
                decl("D", TensorRole::Output),
            ]
        )
        .unwrap_err(),
        KernelError::MultipleOutputs
    );
}

#[test]
fn unwireable_reuse_vectors_are_a_generation_error() {
    // Build an STT whose reuse step is (2, 1): T·null must land outside the
    // neighbour set. A[m,k] has null (0,1,0); pick T columns so T·(0,1,0) =
    // (2, 1, 0) — needs a max_coeff-2 matrix.
    let gemm = workloads::gemm(8, 8, 8);
    let sel = LoopSelection::by_names(&gemm, ["m", "n", "k"]).unwrap();
    let stt = Stt::from_rows([[1, 2, 0], [0, 1, 0], [0, 0, 1]]).unwrap();
    let df = Dataflow::analyze(&gemm, sel, stt).unwrap();
    let err = generate(&df, &HwConfig::default()).unwrap_err();
    assert!(matches!(err, HwError::NonNeighborReuse { .. }), "{err}");
}

#[test]
fn corrupted_netlists_fail_validation() {
    // Double driver.
    let mut m = Module::new("bad");
    let a = m.input("a", 4);
    let y = m.output("y", 4);
    m.assign(y, Expr::net(a));
    m.assign(y, Expr::lit(0, 4));
    assert!(matches!(
        m.validate().unwrap_err(),
        NetlistError::MultipleDrivers { .. }
    ));

    // Width mismatch through an instance boundary is caught at design level;
    // at module level widths are checked per assignment.
    let mut m = Module::new("bad2");
    let a = m.input("a", 4);
    let y = m.output("y", 8);
    m.assign(y, Expr::net(a));
    assert!(matches!(
        m.validate().unwrap_err(),
        NetlistError::WidthMismatch { .. }
    ));

    // Combinational loop.
    let mut m = Module::new("bad3");
    let x = m.net("x", 1);
    let y = m.net("y", 1);
    m.assign(x, Expr::net(y));
    m.assign(y, Expr::net(x));
    assert!(matches!(
        m.validate().unwrap_err(),
        NetlistError::CombinationalCycle { .. }
    ));
}

#[test]
fn undriven_read_nets_are_caught_at_design_level() {
    // A valid accelerator whose top module we corrupt by adding a read of an
    // undriven net.
    let gemm = workloads::gemm(8, 8, 8);
    let sel = LoopSelection::by_names(&gemm, ["m", "n", "k"]).unwrap();
    let df = Dataflow::analyze(&gemm, sel, Stt::output_stationary()).unwrap();
    let design = generate(
        &df,
        &HwConfig {
            array: ArrayConfig::square(2),
            ..HwConfig::default()
        },
    )
    .unwrap();
    design.validate().unwrap();
    // The design type is immutable from outside — rebuild a module list with
    // a corrupted clone and validate it through a fresh module check.
    let mut corrupted = design.module(design.top()).unwrap().clone();
    let ghost = corrupted.net("ghost", 8);
    let sink = corrupted.net("sink", 8);
    corrupted.assign(sink, Expr::net(ghost));
    // Module-level validate doesn't chase drivers of internal nets (that is
    // the design-level census), but the ghost read must fail there:
    let mut flat_check_passed = corrupted.validate().is_ok();
    // Elaborating a standalone corrupted module and interpreting it is
    // allowed (undriven = constant zero), but the design-level census in
    // AcceleratorDesign::validate flags it. Emulate that census here.
    let mut drivers = vec![0u32; corrupted.nets().len()];
    for (id, dir) in corrupted.ports() {
        if *dir == tensorlib::hw::netlist::Dir::Input {
            drivers[*id] += 1;
        }
    }
    for (t, _) in corrupted.assigns() {
        drivers[*t] += 1;
    }
    for r in corrupted.regs() {
        drivers[r.target] += 1;
    }
    flat_check_passed &= drivers[ghost] == 0;
    assert!(flat_check_passed, "ghost net must have no driver");
}

#[test]
fn elaboration_rejects_unknown_modules_and_ports() {
    let mut top = Module::new("top");
    let x = top.input("x", 8);
    top.instance("missing", "u0", vec![("a".into(), x)]);
    assert!(matches!(
        elaborate(&[top], &[], "top").unwrap_err(),
        ElaborateError::UnknownModule(_)
    ));
    assert!(matches!(
        elaborate(&[], &[], "nothing").unwrap_err(),
        ElaborateError::UnknownModule(_)
    ));
}

#[test]
fn simulator_rejects_mismatched_kernels() {
    let gemm = workloads::gemm(8, 8, 8);
    let sel = LoopSelection::by_names(&gemm, ["m", "n", "k"]).unwrap();
    let df = Dataflow::analyze(&gemm, sel, Stt::output_stationary()).unwrap();
    let design = generate(
        &df,
        &HwConfig {
            array: ArrayConfig::square(4),
            ..HwConfig::default()
        },
    )
    .unwrap();
    let other = workloads::ttmc(3, 3, 3, 3, 3);
    assert!(matches!(
        functional::simulate(&design, &other, 0).unwrap_err(),
        SimError::KernelMismatch { .. }
    ));
    // Same kernel name, different sizes: coverage gap must trip.
    let resized = workloads::gemm(10, 10, 10);
    match functional::simulate(&design, &resized, 0) {
        Err(SimError::CoverageGap { expected, executed }) => {
            assert_ne!(expected, executed);
        }
        other => panic!("expected a coverage gap, got {other:?}"),
    }
}

#[test]
fn selection_and_name_errors_are_typed() {
    let gemm = workloads::gemm(8, 8, 8);
    assert!(matches!(
        LoopSelection::by_names(&gemm, ["m", "n", "zz"]).unwrap_err(),
        DataflowError::UnknownLoop(_)
    ));
    assert!(matches!(
        tensorlib::dataflow::dse::find_named(
            &gemm,
            "MNK-UUU", // GEMM admits no all-unicast dataflow
            &tensorlib::dataflow::dse::DseConfig::default()
        )
        .unwrap_err(),
        DataflowError::BadName(_)
    ));
}

//! Element datatypes for generated hardware.

use std::fmt;

use serde::{Deserialize, Serialize};

/// The element type an accelerator instance computes on.
///
/// The generator itself is datatype-agnostic (the paper integrates Xilinx
/// floating-point IP as a black box for FP32); the datatype only changes port
/// widths, compute-cell latency, and cost-model entries.
///
/// # Examples
///
/// ```
/// use tensorlib_ir::DataType;
/// assert_eq!(DataType::Int16.bits(), 16);
/// assert!(DataType::Fp32.is_float());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[derive(Default)]
pub enum DataType {
    /// 8-bit signed integer.
    Int8,
    /// 16-bit signed integer (the paper's ASIC evaluation datatype).
    #[default]
    Int16,
    /// 32-bit signed integer.
    Int32,
    /// IEEE-754 single precision (the paper's FPGA evaluation datatype,
    /// via vendor IP).
    Fp32,
}

impl DataType {
    /// Operand width in bits.
    pub fn bits(self) -> u32 {
        match self {
            DataType::Int8 => 8,
            DataType::Int16 => 16,
            DataType::Int32 | DataType::Fp32 => 32,
        }
    }

    /// Accumulator width in bits (doubled for integers to absorb products;
    /// FP32 accumulates in FP32 as the vendor IP does).
    pub fn accumulator_bits(self) -> u32 {
        match self {
            DataType::Fp32 => 32,
            other => other.bits() * 2,
        }
    }

    /// `true` for floating-point types.
    pub fn is_float(self) -> bool {
        matches!(self, DataType::Fp32)
    }

    /// Multiplier pipeline latency in cycles (floating point IP is deeply
    /// pipelined; integer multiplies close timing in one stage at the
    /// evaluated frequencies).
    pub fn mul_latency(self) -> u32 {
        if self.is_float() {
            3
        } else {
            1
        }
    }
}


impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataType::Int8 => write!(f, "int8"),
            DataType::Int16 => write!(f, "int16"),
            DataType::Int32 => write!(f, "int32"),
            DataType::Fp32 => write!(f, "fp32"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn widths() {
        assert_eq!(DataType::Int8.bits(), 8);
        assert_eq!(DataType::Int8.accumulator_bits(), 16);
        assert_eq!(DataType::Int16.accumulator_bits(), 32);
        assert_eq!(DataType::Fp32.accumulator_bits(), 32);
        assert_eq!(DataType::default(), DataType::Int16);
    }

    #[test]
    fn latency_and_float() {
        assert_eq!(DataType::Int16.mul_latency(), 1);
        assert_eq!(DataType::Fp32.mul_latency(), 3);
        assert!(!DataType::Int32.is_float());
    }

    #[test]
    fn display() {
        assert_eq!(DataType::Fp32.to_string(), "fp32");
        assert_eq!(DataType::Int16.to_string(), "int16");
    }
}

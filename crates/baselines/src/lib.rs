//! Reimplementations of the systolic-only baseline generators the paper
//! compares against in Table III: PolySA (ICCAD'18) and Susy (ICCAD'20).
//!
//! Both tools compile affine kernels to **pure systolic arrays**: every
//! tensor must end up systolic or stationary. That restriction is the point
//! of the comparison — it shrinks both the set of reachable dataflows and
//! the set of supported kernels (no reduction trees ⇒ no Depthwise-Conv,
//! no unicast ⇒ no Batched-GEMV), and their generated RTL closes timing
//! lower than TensorLib's templates.
//!
//! The baselines reuse this workspace's analysis and hardware generation —
//! the *restriction* and the *efficiency derates* are what differ, exactly
//! as in the paper, where all three tools target the same device.
//!
//! # Examples
//!
//! ```
//! use tensorlib_baselines::{BaselineGenerator, BaselineKind};
//! use tensorlib_ir::workloads;
//!
//! let polysa = BaselineGenerator::new(BaselineKind::PolySa);
//! // GEMM has systolic dataflows: PolySA handles it.
//! assert!(polysa.generate(&workloads::gemm(64, 64, 64)).is_ok());
//! // Depthwise-Conv has no pure-systolic dataflow: PolySA fails, as §VI-C
//! // reports.
//! assert!(polysa
//!     .generate(&workloads::depthwise_conv(64, 56, 56, 3, 3))
//!     .is_err());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;

use serde::{Deserialize, Serialize};
use tensorlib_cost::{fpga_cost, FpgaDevice, FpgaReport};
use tensorlib_dataflow::dse::{design_space, DseConfig};
use tensorlib_dataflow::{Dataflow, FlowClass};
use tensorlib_hw::design::{generate, AcceleratorDesign, HwConfig};
use tensorlib_hw::ArrayConfig;
use tensorlib_ir::{DataType, Kernel};

/// Which baseline tool to model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BaselineKind {
    /// PolySA (Cong & Wang, ICCAD 2018): polyhedral systolic-array
    /// auto-compilation targeting the same VU9P.
    PolySa,
    /// Susy (Lai et al., ICCAD 2020): STT-based systolic generation on an
    /// Intel Arria-10.
    Susy,
}

impl fmt::Display for BaselineKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BaselineKind::PolySa => write!(f, "PolySA"),
            BaselineKind::Susy => write!(f, "Susy"),
        }
    }
}

/// Why a baseline could not handle a kernel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BaselineError {
    /// The kernel admits no dataflow in which every tensor is systolic or
    /// stationary.
    NoSystolicDataflow {
        /// The kernel's name.
        kernel: String,
        /// The tool that failed.
        tool: BaselineKind,
    },
}

impl fmt::Display for BaselineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BaselineError::NoSystolicDataflow { kernel, tool } => write!(
                f,
                "{tool} only generates pure systolic arrays; {kernel:?} has no such dataflow"
            ),
        }
    }
}

impl std::error::Error for BaselineError {}

/// Modeled characteristics of each baseline's generated RTL, from the numbers
/// their papers (and Table III) report.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct BaselineProfile {
    /// The device the tool targets in Table III.
    pub device: FpgaDevice,
    /// Array rows × cols the tool's DSE settles on for the MM workload
    /// (sized to match the MAC-lane counts implied by the published Gop/s).
    pub array: ArrayConfig,
    /// SIMD lanes per PE.
    pub vectorize: u32,
    /// DSP slices per FP32 MAC lane (PolySA's HLS maps less efficiently at
    /// 5/lane; Susy's Arria-10 has hard floating-point DSPs at 1/lane).
    pub dsp_per_mac: u64,
    /// Frequency derate of the tool's generated RTL relative to this
    /// workspace's templates (PolySA's HLS output closes at 229 MHz where
    /// TensorLib's Chisel closes at 263 MHz on the same device; Susy's
    /// Arria-10 build closes at 202 MHz).
    pub freq_factor: f64,
    /// Extra BRAM its buffering scheme spends relative to ours (PolySA
    /// reports 89% BRAM vs TensorLib's 51%).
    pub bram_factor: f64,
    /// Extra LUTs relative to ours (Susy reports 40% on a smaller device).
    pub lut_factor: f64,
}

/// A systolic-only accelerator generator in the style of PolySA or Susy.
#[derive(Debug, Clone)]
pub struct BaselineGenerator {
    kind: BaselineKind,
    profile: BaselineProfile,
}

impl BaselineGenerator {
    /// Creates a generator with the tool's published profile.
    pub fn new(kind: BaselineKind) -> BaselineGenerator {
        let profile = match kind {
            // 19x8 PEs x 8 lanes = 1216 MAC lanes: 555 Gop/s at 229 MHz.
            BaselineKind::PolySa => BaselineProfile {
                device: FpgaDevice::vu9p(),
                array: ArrayConfig { rows: 19, cols: 8 },
                vectorize: 8,
                dsp_per_mac: 5,
                freq_factor: 229.0 / 263.0,
                bram_factor: 1.85,
                lut_factor: 0.90,
            },
            // 13x13 PEs x 8 lanes = 1352 MAC lanes: 547 Gop/s at 202 MHz.
            BaselineKind::Susy => BaselineProfile {
                device: FpgaDevice::arria10(),
                array: ArrayConfig { rows: 13, cols: 13 },
                vectorize: 8,
                dsp_per_mac: 1,
                freq_factor: 202.0 / 263.0,
                bram_factor: 0.70,
                // Arria-10 ALMs pack ~2.5 LUT-equivalents; Susy reports 40%.
                lut_factor: 0.25,
            },
        };
        BaselineGenerator { kind, profile }
    }

    /// The tool being modeled.
    pub fn kind(&self) -> BaselineKind {
        self.kind
    }

    /// The tool's modeled profile.
    pub fn profile(&self) -> &BaselineProfile {
        &self.profile
    }

    /// Finds the best pure-systolic dataflow for `kernel`, mirroring the
    /// restricted search both tools perform.
    ///
    /// # Errors
    ///
    /// Returns [`BaselineError::NoSystolicDataflow`] when no dataflow with
    /// every tensor systolic/stationary exists — Depthwise-Conv and
    /// Batched-GEMV land here, reproducing the capability gap of §VI-C.
    pub fn find_dataflow(&self, kernel: &Kernel) -> Result<Dataflow, BaselineError> {
        let space = design_space(kernel, &DseConfig::default());
        space
            .into_iter()
            .filter(|d| d.is_pure_systolic() && uses_classic_projection(d))
            // Prefer weight/output-stationary classics: stationary tensor
            // count then name for determinism.
            .min_by_key(|d| {
                let stationaries = d
                    .flows()
                    .iter()
                    .filter(|f| f.class.is_stationary_like())
                    .count();
                (usize::MAX - stationaries, d.name())
            })
            .ok_or_else(|| BaselineError::NoSystolicDataflow {
                kernel: kernel.name().to_string(),
                tool: self.kind,
            })
    }

    /// Generates the baseline's accelerator for `kernel` at FP32 (both tools
    /// evaluate floating point on FPGA).
    ///
    /// # Errors
    ///
    /// Returns [`BaselineError`] when the kernel is out of the tool's reach.
    pub fn generate(&self, kernel: &Kernel) -> Result<AcceleratorDesign, BaselineError> {
        let df = self.find_dataflow(kernel)?;
        let cfg = HwConfig {
            array: self.profile.array,
            datatype: DataType::Fp32,
            vectorize: self.profile.vectorize,
            ..HwConfig::default()
        };
        Ok(generate(&df, &cfg).expect("systolic dataflows are always wireable"))
    }

    /// FPGA estimate for the baseline's design on its own target device,
    /// with the tool's derates applied.
    pub fn fpga_report(&self, design: &AcceleratorDesign) -> FpgaReport {
        let device = &self.profile.device;
        let base = fpga_cost(design, device, false);
        let freq = base.freq_mhz * self.profile.freq_factor;
        let luts = (base.luts as f64 * self.profile.lut_factor) as u64;
        let brams = (base.brams as f64 * self.profile.bram_factor) as u64;
        let mac_lanes = design.summary().multipliers;
        let dsps = mac_lanes * self.profile.dsp_per_mac;
        FpgaReport {
            luts,
            dsps,
            brams,
            lut_util: luts as f64 / device.luts as f64,
            dsp_util: dsps as f64 / device.dsps as f64,
            bram_util: brams as f64 / device.brams as f64,
            freq_mhz: freq,
            peak_gops: 2.0 * mac_lanes as f64 * freq * 1e6 / 1e9,
        }
    }
}

/// `true` if every flow uses the classic projection shapes both tools are
/// limited to: systolic hops of exactly one cycle along an array axis, and
/// stationary residence with unit time stride. TensorLib's larger space
/// (diagonal hops, multi-cycle delays, multicast, reduction trees) is
/// precisely what the baselines cannot express.
fn uses_classic_projection(d: &Dataflow) -> bool {
    d.flows().iter().all(|f| match &f.class {
        FlowClass::Systolic { dp, dt } => {
            *dt == 1 && (*dp == [0, 1] || *dp == [1, 0])
        }
        FlowClass::Stationary { dt } => *dt == 1,
        _ => false,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tensorlib_ir::workloads;

    #[test]
    fn baselines_handle_gemm_and_conv() {
        for kind in [BaselineKind::PolySa, BaselineKind::Susy] {
            let gen = BaselineGenerator::new(kind);
            let gemm = gen.generate(&workloads::gemm(64, 64, 64)).unwrap();
            gemm.validate().unwrap();
            assert!(gemm.dataflow().is_pure_systolic());
            let conv = gen.generate(&workloads::conv2d(16, 16, 14, 14, 3, 3)).unwrap();
            assert!(conv.dataflow().is_pure_systolic());
        }
    }

    #[test]
    fn baselines_reject_depthwise_conv() {
        // §VI-C: "they fail to generate hardware for algorithms that don't
        // fit well in systolic architecture, such as Depthwise convolution".
        let gen = BaselineGenerator::new(BaselineKind::PolySa);
        let err = gen
            .find_dataflow(&workloads::depthwise_conv(16, 14, 14, 3, 3))
            .unwrap_err();
        assert!(matches!(err, BaselineError::NoSystolicDataflow { .. }));
        assert!(err.to_string().contains("systolic"));
    }

    #[test]
    fn baselines_reject_batched_gemv() {
        // Tensor A of Batched-GEMV is always unicast, so no pure-systolic
        // dataflow exists.
        let gen = BaselineGenerator::new(BaselineKind::Susy);
        assert!(gen
            .find_dataflow(&workloads::batched_gemv(16, 16, 16))
            .is_err());
    }

    #[test]
    fn baseline_throughput_trails_tensorlib() {
        // Table III: TensorLib 673 Gop/s vs PolySA 555 and Susy 547 — about
        // a 21% gap.
        let device = FpgaDevice::vu9p();
        let gemm = workloads::gemm(640, 640, 640);

        // TensorLib's own build: 10x16, vec 8, FP32, systolic.
        let tl_design = {
            let gen = BaselineGenerator::new(BaselineKind::PolySa);
            let df = gen.find_dataflow(&gemm).unwrap();
            generate(
                &df,
                &HwConfig {
                    array: ArrayConfig { rows: 10, cols: 16 },
                    datatype: DataType::Fp32,
                    vectorize: 8,
                    ..HwConfig::default()
                },
            )
            .unwrap()
        };
        let tl = fpga_cost(&tl_design, &device, false);

        for kind in [BaselineKind::PolySa, BaselineKind::Susy] {
            let gen = BaselineGenerator::new(kind);
            let design = gen.generate(&gemm).unwrap();
            let report = gen.fpga_report(&design);
            let gain = tl.peak_gops / report.peak_gops;
            assert!(
                gain > 1.05 && gain < 1.45,
                "{kind}: TensorLib {:.0} vs {:.0} Gop/s (gain {gain:.2})",
                tl.peak_gops,
                report.peak_gops
            );
            assert!(report.freq_mhz < tl.freq_mhz);
        }
    }

    #[test]
    fn profiles_and_display() {
        assert_eq!(BaselineKind::PolySa.to_string(), "PolySA");
        assert_eq!(BaselineKind::Susy.to_string(), "Susy");
        let p = BaselineGenerator::new(BaselineKind::PolySa);
        assert!(p.profile().freq_factor < 1.0);
        assert_eq!(p.kind(), BaselineKind::PolySa);
    }
}
